"""Ablation — weighted Shingling (the paper's out-of-scope extension).

The paper restricts itself to unweighted graphs; here we quantify what edge
weights buy: on a planted instance whose cores are connected by *many* but
*weak* bridge edges (weight = alignment-score analogue), unweighted
Shingling fuses the cores while weight-proportional sampling keeps them
apart.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.core.weighted import WeightedGpClust
from repro.graph.weighted import WeightedCSRGraph
from repro.util.tables import format_table, table_payload


def _bridged_instance(seed: int = 0, n_pairs: int = 12, core: int = 16,
                      n_bridges: int = 6):
    """Pairs of dense cores connected by several weak bridge edges."""
    rng = np.random.default_rng(seed)
    edges, weights = [], []
    base = 0
    pairs = []
    for _ in range(n_pairs):
        a = np.arange(base, base + core)
        b = np.arange(base + core, base + 2 * core)
        for block in (a, b):
            for i in range(core):
                for j in range(i + 1, core):
                    if rng.random() < 0.9:
                        edges.append((int(block[i]), int(block[j])))
                        weights.append(10.0)
        for _ in range(n_bridges):
            edges.append((int(rng.choice(a)), int(rng.choice(b))))
            weights.append(0.05)
        pairs.append((a, b))
        base += 2 * core
    wgraph = WeightedCSRGraph.from_weighted_edges(
        np.array(edges), np.array(weights), n_vertices=base)
    return wgraph, pairs


def _fused_fraction(labels: np.ndarray, pairs) -> float:
    fused = 0
    for a, b in pairs:
        la = np.bincount(labels[a]).argmax()
        lb = np.bincount(labels[b]).argmax()
        fused += la == lb
    return fused / len(pairs)


def test_ablation_weighted_sampling(benchmark, report_writer, scale):
    wgraph, pairs = _bridged_instance()
    params = ShinglingParams(c1=60, c2=30, seed=9)

    weighted = benchmark.pedantic(
        lambda: WeightedGpClust(params).run(wgraph), rounds=1, iterations=1)
    unweighted = GpClust(params).run(wgraph.csr)

    fused_w = _fused_fraction(weighted.labels, pairs)
    fused_u = _fused_fraction(unweighted.labels, pairs)

    headers = ["variant", "fused core pairs", "#clusters(>=10)"]
    rows = [["unweighted shingling", f"{fused_u:.0%}",
             str(unweighted.n_clusters(min_size=10))],
            ["weighted shingling", f"{fused_w:.0%}",
             str(weighted.n_clusters(min_size=10))]]
    title = (f"Ablation — weighted vs. unweighted sampling on weak-bridge "
             f"instance (scale={scale})")
    table = format_table(headers, rows, title=title)
    report_writer("ablation_weighted", table,
                  data=[table_payload(title, headers, rows)])

    # Weight-proportional sampling must resist the weak bridges better.
    assert fused_w < fused_u
    assert fused_w <= 0.25
