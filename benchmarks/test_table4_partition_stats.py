"""Table IV — partition statistics, plus the in-text density comparison.

Paper rows (clusters of size >= 20; benchmark families unfiltered):

    Benchmark: 813 groups | 2,004,241 seqs | largest 56,266 | 2,465 ± 4,372
    GOS:     6,152 groups | 1,236,712 seqs | largest 20,027 |   201 ±   650
    gpClust: 6,646 groups | 1,414,952 seqs | largest 19,066 |   213 ±   721

In-text densities: benchmark 0.09 ± 0.12, GOS 0.40 ± 0.27,
gpClust 0.75 ± 0.28 — all measured on the pGraph similarity graph.
"""

from __future__ import annotations

from repro.eval.density import density_summary
from repro.eval.partition import partition_stats
from repro.util.tables import format_mean_std, format_table, table_payload


def test_table4_partition_stats(benchmark, quality_data, report_writer, scale):
    pg, gp, gos, bench = quality_data

    st_bench = partition_stats(bench, "Benchmark", min_size=1)
    st_gos = partition_stats(gos, "GOS", min_size=20)
    st_gp = benchmark(partition_stats, gp, "gpClust", 20)

    d_bench = density_summary(pg.graph, bench, min_size=1)
    d_gos = density_summary(pg.graph, gos, min_size=20)
    d_gp = density_summary(pg.graph, gp, min_size=20)

    rows = []
    for st, dens in ((st_bench, d_bench), (st_gos, d_gos), (st_gp, d_gp)):
        rows.append(st.table_row() + [format_mean_std(*dens)])
    headers = ["Partition", "# Groups", "# Seqs", "Largest", "Avg. size",
               "Density"]
    title = f"Table IV analogue — partition statistics (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer(
        "table4_partition_stats",
        table + "\n\nPaper (Table IV + in-text): Benchmark 813 / 2,004,241 / "
        "56,266 / 2,465±4,372 / 0.09±0.12; GOS 6,152 / 1,236,712 / 20,027 / "
        "201±650 / 0.40±0.27; gpClust 6,646 / 1,414,952 / 19,066 / 213±721 / "
        "0.75±0.28.",
        data=[table_payload(title, headers, rows)])

    # Shape assertions.
    assert st_gp.n_groups > st_gos.n_groups           # gpClust reports more
    assert st_gp.n_sequences > st_gos.n_sequences     # ... and recruits more
    assert st_bench.largest_group > st_gp.largest_group
    assert st_bench.avg_group > st_gp.avg_group
    assert d_gp[0] > d_gos[0] > d_bench[0]            # density ordering
