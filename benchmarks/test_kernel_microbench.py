"""Measured-vs-modeled throughput per kernel class, eager vs graph replay.

The launch-graph work (PR 10) claims its win on dispatch, not arithmetic:
replay must keep every kernel's element count and modeled seconds while
cutting the measured wall of the shingle hot path.  This bench pins both
sides of that claim:

* a steady-shape shingle pass timed eager (``launch_graph=off``) and warm
  (``launch_graph=on``, second run replaying committed graphs), with
  per-kernel modeled elements/s from ``device.kernel_stats`` and the
  measured pass elements/s next to it, and
* direct micro timings of the three chunk-reduce executors the capture
  autotuner chooses between — the eager select+recover sequence, the
  key-space tournament, and the rank-space tournament — on the captured
  tables themselves.

Rows land in the ledger (``microbench_rows`` / ``executor_rows``) and in
``benchmarks/results/kernel_microbench.json``; the committed snapshot is
``BENCH_PR10.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import device_exec
from repro.core.device_exec import device_shingle_pass
from repro.core.execplan import ExecutionPlan
from repro.core.params import ShinglingParams
from repro.device import launchgraph
from repro.device.device import SimulatedDevice
from repro.device.kernels import (
    fused_hash,
    recover_top_ids,
    segmented_select_top_s,
)
from repro.device.launchgraph import GRAPH_CACHE, build_tournament_plan
from repro.device.memory import ScratchPool
from repro.util.primes import DEFAULT_PRIME

TRIAL_CHUNK = 8
C = 32
S = 2


def _workload(scale):
    rng = np.random.default_rng(3)
    n_seg = 3_000 if scale == "small" else 30_000
    n_values = n_seg
    lengths = rng.integers(S, 41, n_seg)
    indptr = np.zeros(n_seg + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    elements = np.concatenate([
        rng.choice(n_values, size=length, replace=False)
        for length in lengths
    ]).astype(np.int64)
    return indptr, elements, n_values


def _timed_pass(indptr, elements, config, mode):
    """Run the pass twice on one device; wall of the second (warm) run."""
    device = SimulatedDevice()
    plan = ExecutionPlan(launch_graph=mode)
    run = lambda: device_shingle_pass(  # noqa: E731
        indptr, elements, config, device, kernel="fused",
        trial_chunk=TRIAL_CHUNK, plan=plan)
    result = run()
    before = device.launch_graph_stats
    t0 = time.perf_counter()
    warm = run()
    wall = time.perf_counter() - t0
    after = device.launch_graph_stats
    assert warm == result
    warm_lg = {k: after[k] - before[k] for k in ("hits", "misses")}
    total = warm_lg["hits"] + warm_lg["misses"]
    warm_lg["hit_rate"] = warm_lg["hits"] / total if total else 0.0
    return device, wall, result, warm_lg


def test_kernel_class_eps_eager_vs_replay(scale, report_writer):
    indptr, elements, n_values = _workload(scale)
    config = ShinglingParams(s1=S, c1=C, s2=S, c2=6,
                             trial_chunk=TRIAL_CHUNK).pass_config(1)

    rows = {}
    per_kernel = {}
    results = {}
    for mode in ("off", "on"):
        GRAPH_CACHE.clear()
        device_exec.clear_pass_plan_cache()
        device, wall, result, warm_lg = _timed_pass(indptr, elements,
                                                    config, mode)
        results[mode] = result
        stats = device.kernel_stats
        total_elements = sum(v["elements"] for v in stats.values())
        modeled_total = sum(v["modeled_s"] for v in stats.values())
        rows[f"shingle_pass_lg{mode}"] = {
            "wall_s": round(wall, 4),
            "modeled_s": round(modeled_total, 4),
            "measured_eps": round(total_elements / wall),
            "modeled_eps": round(total_elements / modeled_total),
            "graph_hit_rate": warm_lg["hit_rate"],
            "launches": sum(v["launches"] for v in stats.values()),
        }
        per_kernel[mode] = {
            name: {"elements": v["elements"],
                   "modeled_s": round(v["modeled_s"], 6),
                   "modeled_eps": round(v["elements"] / v["modeled_s"])
                   if v["modeled_s"] else None}
            for name, v in sorted(stats.items())
        }

    assert results["on"] == results["off"]
    # Replay must not change the modeled work, only the dispatch wall.
    assert per_kernel["on"].keys() == per_kernel["off"].keys()
    for name, row in per_kernel["off"].items():
        assert per_kernel["on"][name]["elements"] == row["elements"]
    assert rows["shingle_pass_lgon"]["graph_hit_rate"] > 0.9

    lines = ["kernel class microbench (warm pass, eager vs replay)", ""]
    header = f"{'row':<24}{'wall_s':>10}{'modeled_s':>11}" \
             f"{'meas eps':>14}{'hit rate':>10}"
    lines += [header, "-" * len(header)]
    for name, r in rows.items():
        lines.append(f"{name:<24}{r['wall_s']:>10.4f}{r['modeled_s']:>11.4f}"
                     f"{r['measured_eps']:>14,}{r['graph_hit_rate']:>10.3f}")
    lines += ["", "per-kernel modeled eps (identical across modes):"]
    for name, r in per_kernel["off"].items():
        eps = f"{r['modeled_eps']:,}" if r["modeled_eps"] else "-"
        lines.append(f"  {name:<28}{r['elements']:>14,}{eps:>16}")
    report_writer("kernel_microbench", "\n".join(lines),
                  {"microbench_rows": rows,
                   "per_kernel_modeled": per_kernel["off"]})


def test_chunk_reduce_executors(scale, report_writer):
    """Time the three capture-autotune candidates on one captured shape."""
    indptr, elements, n_values = _workload(scale)
    plan = build_tournament_plan(elements, indptr, S, n_values)
    assert plan is not None

    rng = np.random.default_rng(5)
    t = TRIAL_CHUNK
    a = rng.integers(1, DEFAULT_PRIME, t).astype(np.uint64)
    b = rng.integers(0, DEFAULT_PRIME, t).astype(np.uint64)
    pool = ScratchPool()
    n_seg = indptr.size - 1
    nnz = elements.size

    def eager():
        # Mirror the device's fused chunk-reduce front end exactly:
        # fused 32-bit hash, segmented select on keys, affine inversion.
        keys = pool.take((t, nnz), np.uint32)
        fused_hash(elements, a, b, DEFAULT_PRIME, out=keys, scratch=pool,
                   n_values=n_values)
        top32 = pool.take((t, n_seg, S), np.uint32)
        segmented_select_top_s(keys, indptr, S, scratch=pool, out=top32,
                               consume=True)
        ids = np.empty((t, n_seg, S), dtype=np.uint64)
        recover_top_ids(top32, a, b, DEFAULT_PRIME, out_ids=ids,
                        scratch=pool, has_sentinels=False)
        pool.give(keys)
        pool.give(top32)
        return ids

    def key_tournament():
        out = np.empty((t, n_seg, S), dtype=np.uint32)
        launchgraph.run_tournament(plan, pool, a, b, DEFAULT_PRIME, S,
                                   out32=out)
        return out

    def rank_tournament():
        out = np.empty((t, n_seg, S), dtype=np.uint64)
        launchgraph.run_tournament_ids(plan, pool, a, b, DEFAULT_PRIME, S,
                                       out_ids=out)
        return out

    reps = 3 if scale == "small" else 5
    rows = {}
    outputs = {}
    for name, fn in (("eager_select_recover", eager),
                     ("key_tournament", key_tournament),
                     ("rank_tournament", rank_tournament)):
        fn()  # warm scratch pool and caches
        best = min(
            (lambda t0=time.perf_counter(), out=fn():
             (time.perf_counter() - t0, out))()
            for _ in range(reps)
        )
        outputs[name] = best[1]
        rows[name] = {"best_s": round(best[0], 5),
                      "eps": round(nnz * t / best[0])}

    # Rank-space output is ids; verify against the eager ids directly.
    assert np.array_equal(outputs["rank_tournament"],
                          outputs["eager_select_recover"][:, plan.perm, :])

    lines = ["chunk-reduce executor timings (capture autotune candidates)",
             ""]
    for name, r in rows.items():
        lines.append(f"  {name:<24}{r['best_s']:>10.5f}s{r['eps']:>16,} eps")
    report_writer("kernel_executors", "\n".join(lines),
                  {"executor_rows": rows})
