"""Table III — qualitative comparison against the benchmark partition.

Paper rows (2M sequences, clusters of size >= 20):

    gpClust vs. Benchmark: PPV 97.17% | NPV 92.43% | SP 99.88% | SE 17.85%
    GOS     vs. Benchmark: PPV 100.00% | NPV 90.62% | SP 100.00% | SE 13.92%

The reproduced shape: both PPVs ~100% with gpClust slightly below GOS, both
sensitivities low with gpClust above GOS.
"""

from __future__ import annotations

from repro.eval.confusion import quality_scores
from repro.util.tables import format_table, table_payload


def test_table3_quality(benchmark, quality_data, report_writer, scale):
    pg, gp, gos, bench = quality_data

    qs_gp = benchmark(quality_scores, gp, bench, 20)
    qs_gos = quality_scores(gos, bench, min_size=20)

    headers = ["Approach", "PPV", "NPV", "SP", "SE"]
    rows = [qs_gp.table_row("gpClust vs. Benchmark"),
            qs_gos.table_row("GOS vs. Benchmark")]
    title = f"Table III analogue — quality vs. benchmark (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer(
        "table3_quality",
        table + "\n\nPaper (Table III): gpClust 97.17 / 92.43 / 99.88 / 17.85;"
        " GOS 100.00 / 90.62 / 100.00 / 13.92 (percent).",
        data=[table_payload(title, headers, rows)])

    # Shape assertions (the paper's qualitative claims).
    assert qs_gos.ppv > 0.999
    assert 0.90 <= qs_gp.ppv < qs_gos.ppv
    assert qs_gp.sensitivity > qs_gos.sensitivity
    assert qs_gp.sensitivity < 0.5 and qs_gos.sensitivity < 0.5
    assert qs_gp.specificity > 0.99 and qs_gos.specificity > 0.99
    assert qs_gp.npv > 0.9 and qs_gos.npv > 0.9
