"""Scaling behavior: runtime vs. graph size, and component decomposition.

Two figure-style series the paper's scalability narrative implies:

* gpClust runtime as the input graph grows at constant average degree —
  the O(m * c * s) complexity of Section III-B predicts near-linear growth;
* the divide-and-conquer driver (cluster per connected component, the
  pClust decomposition) with 1..4 workers, which must return exactly the
  single-run partition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decompose import cluster_by_components
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph
from repro.util.tables import (
    format_count,
    format_seconds,
    format_table,
    table_payload,
)


def test_scaling_with_graph_size(benchmark, scale, report_writer):
    params = ShinglingParams(c1=40, c2=20, seed=2)
    family_counts = (8, 16, 32, 64) if scale == "small" else (16, 32, 64, 128, 256)
    rows = []
    sizes, times = [], []
    for n_families in family_counts:
        pg = planted_family_graph(
            PlantedFamilyConfig(n_families=n_families), seed=3)
        graph = pg.graph
        if n_families == family_counts[-1]:
            result = benchmark.pedantic(
                lambda g=graph: GpClust(params).run(g), rounds=1, iterations=1)
        else:
            result = GpClust(params).run(graph)
        total = result.timings.total
        sizes.append(graph.nnz)
        times.append(total)
        rows.append([format_count(graph.n_vertices),
                     format_count(graph.n_edges),
                     format_seconds(total),
                     format_count(int(graph.nnz / total))])
    headers = ["#vertices", "#edges", "seconds", "arcs/s"]
    title = f"Scaling — runtime vs. graph size (c1=40, scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("scaling_graph_size", table,
                  data=[table_payload(title, headers, rows)])

    # Near-linear: time ratio grows no faster than ~2x the size ratio.
    size_ratio = sizes[-1] / sizes[0]
    time_ratio = times[-1] / times[0]
    assert time_ratio < 2.5 * size_ratio, (
        f"superlinear scaling: sizes x{size_ratio:.1f}, time x{time_ratio:.1f}")


def test_scaling_component_decomposition(benchmark, scale, report_writer):
    pg = planted_family_graph(
        PlantedFamilyConfig(n_families=48 if scale == "small" else 160),
        seed=5)
    graph = pg.graph
    params = ShinglingParams(c1=40, c2=20, seed=2)

    import time

    t0 = time.perf_counter()
    single = GpClust(params).run(graph)
    rows = [["single run", format_seconds(time.perf_counter() - t0)]]
    results = {}
    for workers in (1, 2, 4):
        t0 = time.perf_counter()
        if workers == 4:
            res = benchmark.pedantic(
                lambda: cluster_by_components(graph, params, n_workers=4),
                rounds=1, iterations=1)
        else:
            res = cluster_by_components(graph, params, n_workers=workers)
        results[workers] = res
        rows.append([f"decomposed, {workers} worker(s)",
                     format_seconds(time.perf_counter() - t0)])
    headers = ["configuration", "wall seconds"]
    title = f"Scaling — pClust component decomposition (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("scaling_decomposition", table,
                  data=[table_payload(title, headers, rows)])

    for res in results.values():
        assert np.array_equal(res.labels, single.labels), (
            "decomposed clustering must equal the single global run")
