"""Min-wise estimator accuracy vs. trial count (the theory behind c1/c2).

Section III-B rests on Broder's min-wise independence: shingle agreement
estimates neighborhood Jaccard.  This bench sweeps the trial count and
measures the empirical estimation error against the analytic bound,
showing what the paper's ``c1 = 200`` buys.
"""

from __future__ import annotations

import numpy as np

from repro.core.minhash import (
    estimate_jaccard,
    estimation_error_bound,
    exact_jaccard,
    minhash_signatures,
)
from repro.core.params import ShinglingParams
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph
from repro.util.tables import format_table, table_payload


def test_minhash_estimator_accuracy(benchmark, scale, report_writer):
    pg = planted_family_graph(
        PlantedFamilyConfig(n_families=10, family_size_median=80.0), seed=2)
    graph = pg.graph
    rng = np.random.default_rng(0)
    # Sample pairs with nonzero overlap (same-family, adjacent).
    edges = graph.edges()
    sample = edges[rng.choice(edges.shape[0], size=150, replace=False)]

    rows = []
    errors_by_c = {}
    for c in (25, 50, 100, 200, 400):
        config = ShinglingParams(c1=c, c2=10, seed=3).pass_config(1)
        if c == 200:
            signatures = benchmark.pedantic(
                lambda cfg=config: minhash_signatures(graph, cfg),
                rounds=1, iterations=1)
        else:
            signatures = minhash_signatures(graph, config)
        errors = []
        for u, v in sample.tolist():
            est = estimate_jaccard(signatures, u, v)
            errors.append(abs(est - exact_jaccard(graph, u, v)))
        errors = np.asarray(errors)
        errors_by_c[c] = errors
        rows.append([str(c),
                     f"{errors.mean():.4f}",
                     f"{np.quantile(errors, 0.95):.4f}",
                     f"{estimation_error_bound(c):.4f}"])
    headers = ["c (trials)", "mean |error|", "p95 |error|",
               "95% bound (worst case)"]
    title = f"Min-wise Jaccard estimation accuracy (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("minhash_accuracy", table,
                  data=[table_payload(title, headers, rows)])

    # Error shrinks with c and stays under the analytic bound.
    assert errors_by_c[400].mean() < errors_by_c[25].mean()
    for c, errors in errors_by_c.items():
        assert np.quantile(errors, 0.95) <= estimation_error_bound(c) + 0.02
