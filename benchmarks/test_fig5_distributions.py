"""Figure 5 — group-size distributions of the gpClust and GOS partitions.

(a) number of groups per size bin; (b) number of sequences per size bin,
for bins 20-49, 50-99, 100-199, 200-499, 500-999, 1000-2000, >2000.
The paper's observation: "both partitions show roughly the same
distribution".
"""

from __future__ import annotations

import numpy as np

from repro.eval.distribution import size_distribution
from repro.util.tables import format_count, format_table, table_payload


def _ascii_bars(values, width=40):
    peak = max(int(max(values)), 1)
    return ["#" * max(int(round(width * v / peak)), 1 if v else 0)
            for v in values]


def test_fig5_distributions(benchmark, quality_data, report_writer, scale):
    _, gp, gos, _ = quality_data

    dist_gp = benchmark(size_distribution, gp)
    dist_gos = size_distribution(gos)

    labels = dist_gp.labels()
    rows_a = [
        [lab, format_count(g1), bar1, format_count(g2), bar2]
        for lab, g1, bar1, g2, bar2 in zip(
            labels,
            dist_gp.group_counts, _ascii_bars(dist_gp.group_counts, 20),
            dist_gos.group_counts, _ascii_bars(dist_gos.group_counts, 20))
    ]
    rows_b = [
        [lab, format_count(s1), bar1, format_count(s2), bar2]
        for lab, s1, bar1, s2, bar2 in zip(
            labels,
            dist_gp.sequence_counts, _ascii_bars(dist_gp.sequence_counts, 20),
            dist_gos.sequence_counts, _ascii_bars(dist_gos.sequence_counts, 20))
    ]
    headers = ["Group size", "gpClust", "", "GOS", ""]
    title_a = f"Figure 5(a) analogue — groups per size bin (scale={scale})"
    title_b = "Figure 5(b) analogue — sequences per size bin"
    table_a = format_table(headers, rows_a, title=title_a,
                           align=["l", "r", "l", "r", "l"])
    table_b = format_table(headers, rows_b, title=title_b,
                           align=["l", "r", "l", "r", "l"])
    report_writer("fig5_distributions", table_a + "\n\n" + table_b,
                  data=[table_payload(title_a, headers, rows_a),
                        table_payload(title_b, headers, rows_b)])

    # Shape: both distributions decay from the small bins, and they are
    # "roughly the same": rank correlation of the bin series is high.
    assert dist_gp.group_counts.argmax() <= 1
    assert dist_gos.group_counts.argmax() <= 1
    a = np.argsort(np.argsort(dist_gp.group_counts))
    b = np.argsort(np.argsort(dist_gos.group_counts))
    n = a.size
    rho = 1 - 6 * float(((a - b) ** 2).sum()) / (n * (n**2 - 1))
    assert rho > 0.5, f"distributions diverged: spearman {rho:.2f}"
    # Sequence mass also concentrated in comparable bins.
    assert abs(int(dist_gp.sequence_counts.argmax())
               - int(dist_gos.sequence_counts.argmax())) <= 2
