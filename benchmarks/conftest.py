"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures and writes
the rendered table to ``benchmarks/results/`` (also echoed to stdout; run
with ``pytest benchmarks/ --benchmark-only -s`` to see it live).

Scale control: set ``REPRO_SCALE=paper`` for the larger workload tier.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.baselines.gos_kneighbor import gos_kneighbor_clustering
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.eval.partition import Partition
from repro.obs.ledger import append_ledger
from repro.pipeline.workloads import get_scale, make_quality_workload

RESULTS_DIR = Path(__file__).parent / "results"
LEDGER_DIR = RESULTS_DIR / "ledger"


@pytest.fixture(scope="session")
def scale() -> str:
    return get_scale()


@pytest.fixture(scope="session")
def report_writer():
    """Write a rendered report under benchmarks/results/ and echo it.

    ``write(name, text, data=None)`` always writes ``<name>.txt``; when
    ``data`` (a list of :func:`table_payload` dicts, or any JSON-serializable
    mapping) is given it also writes ``<name>.json`` with the stable schema::

        {"name": ..., "scale": ..., "schema_version": 1,
         "tables": [{"title", "headers", "rows"}, ...], ...extra keys}

    so downstream tooling (CI artifact diffing, plots) never has to parse
    the rendered text tables.

    Every row mapping in the payload (``workloads`` or any ``*_rows`` key)
    is also appended to the performance ledger
    (``benchmarks/results/ledger/<name>.jsonl``), keyed by a fingerprint
    of (benchmark, row mapping, scale) and tagged with ``host_cores`` —
    the cross-run trajectory store behind ``repro obs ledger``.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    scale = get_scale()

    def write(name: str, text: str, data=None) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            payload = {"name": name, "scale": scale, "schema_version": 1}
            if isinstance(data, list):
                payload["tables"] = data
            else:
                payload.update(data)
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(payload, indent=2, default=str) + "\n")
            for key, rows in payload.items():
                if key != "workloads" and not key.endswith("_rows"):
                    continue
                if not (isinstance(rows, dict)
                        and all(isinstance(r, dict) for r in rows.values())):
                    continue
                append_ledger(
                    LEDGER_DIR, name, rows,
                    config={"bench": name, "rowset": key, "scale": scale},
                    host_cores=os.cpu_count())
        print(f"\n{text}\n")

    return write


@pytest.fixture(scope="session")
def quality_data(scale):
    """The calibrated quality benchmark: graph + all three partitions.

    Computed once per session; Tables III/IV and Figure 5 all read it.
    """
    pg = make_quality_workload(scale, seed=11)
    result = GpClust(ShinglingParams(c1=100, c2=50, seed=5)).run(pg.graph)
    gp = Partition(result.labels)
    gos = Partition(gos_kneighbor_clustering(pg.gos_graph, k=10))
    bench = Partition(pg.family_labels)
    return pg, gp, gos, bench
