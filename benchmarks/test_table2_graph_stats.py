"""Table II — input graph statistics of the 2M-analogue similarity graph.

Paper row: 1,562,984 vertices | 56,919,738 edges | degree 73 ± 153 |
largest CC 10,707.
"""

from __future__ import annotations

from repro.graph.stats import compute_graph_stats
from repro.pipeline.workloads import make_runtime_workload
from repro.util.tables import (
    format_count,
    format_mean_std,
    format_table,
    table_payload,
)


def test_table2_graph_stats(benchmark, scale, report_writer):
    pg = make_runtime_workload("2m", scale)
    stats = benchmark(compute_graph_stats, pg.graph)

    headers = ["# Vertices", "# Edges", "Avg. degree", "Largest CC size",
               "# CCs (>1)"]
    rows = [[format_count(stats.n_vertices),
             format_count(stats.n_edges),
             format_mean_std(stats.avg_degree, stats.std_degree),
             format_count(stats.largest_cc_size),
             format_count(stats.n_components)]]
    title = f"Table II analogue — 2M-analogue graph statistics (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer(
        "table2_graph_stats",
        table + "\n\nPaper (Table II): 1,562,984 vertices | 56,919,738 edges "
        "| 73 ± 153 | largest CC 10,707.",
        data=[table_payload(title, headers, rows)])

    # Shape: skewed degree distribution (std comparable to mean), and the
    # largest component far below the vertex count (the graph decomposes,
    # which is what makes pClust's CC preprocessing worthwhile).
    assert stats.std_degree > 0.3 * stats.avg_degree
    assert stats.largest_cc_size < 0.5 * stats.n_vertices
    assert stats.n_components > 10
