"""Multi-device scaling — the Table-I 2m bucket and the homology workload
across ``--devices 1/2/4``.

Two workloads, each run on one, two and four simulated devices:

* **2m** — the Table-I 2M-analogue clustering pipeline (``GpClust`` with
  ``exec_mode=multidevice``), trial chunks sharded across the group by the
  least-loaded dispatcher and merged through the StreamingAggregator;
* **homology** — homology-graph construction at ``align_backend=device``,
  length-binned alignment bins distributed across the group.

Every row reports both a **wall** and a **modeled** time.  The modeled
device time is the deterministic quantity: for a single device it is the
sum of its per-kernel modeled seconds; for a group it is the *max* over
members (members run concurrently in the model), so "2 devices are ~2x"
means the max-loaded member carries about half the single-device modeled
time.  Wall times on a single-core host cannot show a multi-device win —
the members' NumPy kernels serialize on the one core — so the wall-clock
acceptance gate only arms on multi-core machines, while the modeled
speedup assertions are unconditional and CI-stable.

The committed reference lives in BENCH_PR7.json (``device_scaling_rows``);
CI guards each row's ``total_s`` (lower is better) and the 2-device rows'
``speedup_vs_1dev`` (higher is better) via ``scripts/check_perf_guard.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.pipeline import GpClust
from repro.device.device import SimulatedDevice
from repro.device.group import DeviceGroup
from repro.pipeline.workloads import (
    make_homology_workload,
    make_runtime_workload,
    workload_params,
)
from repro.sequence.homology import build_homology_graph
from repro.util.tables import format_table, table_payload

REPEATS = 2  # best-of; warm timings only
DEVICE_COUNTS = (1, 2, 4)
MULTI_CORE = (os.cpu_count() or 1) >= 2

HEADERS = ["workload", "devices", "wall", "modeled device",
           "modeled speedup", "wall speedup"]


def _make_device(n: int):
    return DeviceGroup(n) if n > 1 else SimulatedDevice()


def _modeled_device_seconds(device) -> float:
    """The group-aware modeled kernel time (max over concurrent members)."""
    if isinstance(device, DeviceGroup):
        return max(device.modeled_kernel_seconds())
    return sum(s["modeled_s"] for s in device.kernel_stats.values())


def _best_of(fn, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        run = fn()
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    return best


def _scaling_rows(runs: dict[int, dict], label: str):
    """Per-device-count payload rows + formatted table rows."""
    base = runs[1]
    payload, table_rows = {}, []
    for n, run in sorted(runs.items()):
        modeled_speedup = base["modeled_s"] / max(run["modeled_s"], 1e-12)
        wall_speedup = base["wall_s"] / max(run["wall_s"], 1e-12)
        payload[f"scaling_{label}_dev{n}"] = {
            "devices": n,
            "total_s": round(run["wall_s"], 4),
            "modeled_device_s": round(run["modeled_s"], 6),
            "speedup_vs_1dev": round(modeled_speedup, 4),
            "wall_speedup_vs_1dev": round(wall_speedup, 4),
            # Machine tag, not a metric: lets compare_bench.py skip the
            # wall metrics when reference and measurement machines differ.
            "host_cores": os.cpu_count(),
        }
        table_rows.append([label, str(n), f"{run['wall_s']:.3f}s",
                           f"{run['modeled_s'] * 1e3:.3f}ms",
                           f"{modeled_speedup:.2f}x",
                           f"{wall_speedup:.2f}x"])
    return payload, table_rows


def test_device_scaling(report_writer, scale):
    # ----------------------------------------------------------------- #
    # Workload 1: Table-I 2m clustering bucket.
    # ----------------------------------------------------------------- #
    pg = make_runtime_workload("2m", scale)
    base_params = workload_params(scale)

    def run_cluster(n_devices):
        # Pin host aggregation: this benchmark gates how the *sharded*
        # shingling work scales with member count, and the aggregation/CC
        # offload serializes its merge on the primary member (measured by
        # benchmarks/test_aggregate_offload.py instead), which would dilute
        # the modeled speedup ratio guarded here.
        params = base_params.with_overrides(devices=n_devices,
                                            aggregate_backend="host")
        device = _make_device(n_devices)
        GpClust(params).run(pg.graph, device=device)  # warm-up
        device = _make_device(n_devices)
        t0 = time.perf_counter()
        result = GpClust(params).run(pg.graph, device=device)
        wall = time.perf_counter() - t0
        return {"wall_s": wall, "modeled_s": _modeled_device_seconds(device),
                "labels": result.labels}

    cluster_runs = {n: _best_of(lambda n=n: run_cluster(n))
                    for n in DEVICE_COUNTS}

    # Bit-identity: every device count yields the same clustering.
    for n in DEVICE_COUNTS[1:]:
        assert np.array_equal(cluster_runs[n]["labels"],
                              cluster_runs[1]["labels"]), n

    # ----------------------------------------------------------------- #
    # Workload 2: homology construction on the device backend.
    # ----------------------------------------------------------------- #
    protein_set, base_config = make_homology_workload(scale)
    import dataclasses
    config = dataclasses.replace(base_config, align_backend="device")

    def run_homology(n_devices):
        device = _make_device(n_devices)
        t0 = time.perf_counter()
        result = build_homology_graph(protein_set.sequences, config,
                                      device=device)
        wall = time.perf_counter() - t0
        return {"wall_s": wall, "modeled_s": _modeled_device_seconds(device),
                "graph": result.graph}

    homology_runs = {n: _best_of(lambda n=n: run_homology(n))
                     for n in DEVICE_COUNTS}

    for n in DEVICE_COUNTS[1:]:
        got, ref = homology_runs[n]["graph"], homology_runs[1]["graph"]
        assert np.array_equal(got.indptr, ref.indptr), n
        assert np.array_equal(got.indices, ref.indices), n

    # ----------------------------------------------------------------- #
    # Report + acceptance.
    # ----------------------------------------------------------------- #
    workloads, rows = {}, []
    for label, runs in (("2m", cluster_runs), ("homology", homology_runs)):
        payload, table_rows = _scaling_rows(runs, label)
        workloads.update(payload)
        rows.extend(table_rows)

    title = (f"Multi-device scaling (modeled device seconds are max-over-"
             f"members; scale={scale}, host cores={os.cpu_count()})")
    table = format_table(HEADERS, rows, title=title)
    note = ("Wall speedups on a single-core host hover near (or below) 1x:\n"
            "the members' kernels serialize on one core, so the wall gate\n"
            "only arms on multi-core machines.  The modeled speedup is the\n"
            "deterministic, CI-guarded quantity.")
    report_writer(
        "device_scaling",
        table + "\n\n" + note,
        data={
            "tables": [table_payload(title, HEADERS, rows)],
            "workloads": workloads,
            "host_cores": os.cpu_count(),
            "wall_gate_armed": MULTI_CORE,
        })

    # Modeled scaling is deterministic: 2 devices must cut the max-loaded
    # member's modeled time by >= 1.5x on both workloads, and 4 devices
    # must not be slower than 2.
    for label in ("2m", "homology"):
        s2 = workloads[f"scaling_{label}_dev2"]["speedup_vs_1dev"]
        s4 = workloads[f"scaling_{label}_dev4"]["speedup_vs_1dev"]
        assert s2 >= 1.5, f"{label}: 2-device modeled speedup {s2:.2f}x < 1.5x"
        assert s4 >= s2 * 0.95, (
            f"{label}: 4-device modeled speedup {s4:.2f}x regressed below "
            f"the 2-device {s2:.2f}x")

    # Wall-clock gate (the ISSUE's >= 1.2x on the homology row): only
    # meaningful when the host can actually run members concurrently.
    if MULTI_CORE:
        wall2 = workloads["scaling_homology_dev2"]["wall_speedup_vs_1dev"]
        assert wall2 >= 1.2, (
            f"homology 2-device wall speedup {wall2:.2f}x < 1.2x on a "
            f"{os.cpu_count()}-core host")
