"""Large-scale demonstration run.

The paper: "we were able to cluster a real world homology graph, containing
11M vertices and 640M edges ... in about 94 minutes."  This bench runs the
scaled R-MAT analogue through the full device pipeline (multi-batch: the
device memory is capped so the graph cannot fit at once) and reports
throughput, so the run extrapolates.
"""

from __future__ import annotations

from repro.core.pipeline import GpClust
from repro.device.timingmodels import DeviceSpec
from repro.pipeline.workloads import WORKLOADS, make_large_workload
from repro.util.tables import (
    format_count,
    format_seconds,
    format_table,
    table_payload,
)
from repro.util.timer import BUCKET_C2G, BUCKET_CPU, BUCKET_G2C, BUCKET_GPU


def test_large_scale_run(benchmark, scale, report_writer):
    graph = make_large_workload(scale)
    params = WORKLOADS["large"].params(scale)
    # Cap device memory so the run must stream in many batches, exercising
    # the same code path the 640M-edge graph would.
    spec = DeviceSpec(memory_capacity_bytes=64 * 2**20)

    result = benchmark.pedantic(
        lambda: GpClust(params, device_spec=spec).run(graph),
        rounds=1, iterations=1)

    t = result.timings
    total = t.total
    edges_per_second = graph.n_edges / total
    # Extrapolation to the paper's 640M-edge graph at this throughput.
    projected_minutes = 640e6 / edges_per_second / 60

    headers = ["#vertices", "#edges", "CPU", "GPU", "c->g", "g->c", "Total",
               "Edges/s", "640M-edge projection"]
    rows = [[format_count(graph.n_vertices),
             format_count(graph.n_edges),
             format_seconds(t.get(BUCKET_CPU)),
             format_seconds(t.get(BUCKET_GPU)),
             format_seconds(t.get(BUCKET_C2G)),
             format_seconds(t.get(BUCKET_G2C)),
             format_seconds(total),
             format_count(int(edges_per_second)),
             f"{projected_minutes:,.0f} min"]]
    title = (f"Large-scale demo analogue (scale={scale}, "
             f"params c1={params.c1}, c2={params.c2})")
    table = format_table(headers, rows, title=title)
    report_writer(
        "large_scale",
        table + "\n\nPaper: 11M vertices / 640M edges clustered in ~94 min "
        "on a K20 (c1=200, c2=100).",
        data=[table_payload(title, headers, rows)])

    assert result.n_clusters(min_size=2) > 0
    assert total < 1800, "large-scale analogue must finish in under 30 min"
