"""Homology-graph construction runtime — the pGraph-stage breakdown.

pGraph parallelizes homology detection because alignment dominates its
cost; this benchmark reproduces that observation for our analogue and
measures what this PR bought.  Three variants run on the same workload:

* **seed** — the original implementation, embedded below verbatim-in-spirit
  (per-sequence k-mer loop + ``np.split``/``triu_indices`` group expansion,
  anti-diagonal wavefront aligner, eager self-scores for every sequence);
* **serial** — the current path at ``n_jobs=1`` (vectorized seed filter,
  row-scan aligner, lazy self-scores);
* **parallel** — the current path at ``n_jobs=4`` (sharded alignment over a
  shared-memory arena).

Each variant reports per-stage wall clock (seed filter / self-scores /
alignment / graph build); all three must produce the identical graph.
The committed reference lives in BENCH_PR3.json and is guarded by
``scripts/check_perf_guard.py --reference-key homology_rows`` in CI.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.obs import observe, use_obs
from repro.pipeline.workloads import make_homology_workload
from repro.sequence.kmer_filter import kmer_codes
from repro.sequence.scoring import BLOSUM62
from repro.sequence.smith_waterman import _extended_matrix, self_score
from repro.sequence.homology import build_homology_graph
from repro.util.tables import format_table, table_payload

REPEATS = 2  # best-of; warm timings only
PARALLEL_JOBS = 4

STAGES = ["seed_filter_s", "self_scores_s", "alignment_s", "graph_build_s"]
HEADERS = ["variant", "seed filter", "self-scores", "alignment",
           "graph build", "total", "speedup vs seed"]


# --------------------------------------------------------------------- #
# The serial seed path, embedded as the measured baseline.
# --------------------------------------------------------------------- #

_PAD = 21  # ALPHABET_SIZE


def _legacy_pad_block(seqs):
    width = max((s.size for s in seqs), default=0)
    block = np.full((len(seqs), max(width, 1)), _PAD, dtype=np.int64)
    for r, s in enumerate(seqs):
        block[r, :s.size] = s
    return block


def _legacy_chunk_scores(seqs_a, seqs_b, mat, gap):
    """The original anti-diagonal wavefront kernel (full matrix)."""
    a = _legacy_pad_block(seqs_a)
    b = _legacy_pad_block(seqs_b)
    n_pairs, la = a.shape
    lb = b.shape[1]
    if n_pairs == 0:
        return np.zeros(0, dtype=np.int64)
    h_prev2 = np.zeros((n_pairs, la + 1), dtype=np.int64)
    h_prev1 = np.zeros((n_pairs, la + 1), dtype=np.int64)
    best = np.zeros(n_pairs, dtype=np.int64)
    for d in range(2, la + lb + 1):
        i_lo = max(1, d - lb)
        i_hi = min(la, d - 1)
        if i_lo > i_hi:
            h_prev2, h_prev1 = h_prev1, np.zeros_like(h_prev1)
            continue
        i_range = np.arange(i_lo, i_hi + 1)
        sub = mat[a[:, i_range - 1], b[:, d - i_range - 1]]
        diag = h_prev2[:, i_range - 1] + sub
        up = h_prev1[:, i_range - 1] - gap
        left = h_prev1[:, i_range] - gap
        h_cur_vals = np.maximum(np.maximum(diag, up), np.maximum(left, 0))
        h_cur = np.zeros((n_pairs, la + 1), dtype=np.int64)
        h_cur[:, i_range] = h_cur_vals
        np.maximum(best, h_cur_vals.max(axis=1), out=best)
        h_prev2, h_prev1 = h_prev1, h_cur
    return best


def _legacy_batch_sw(seqs_a, seqs_b, matrix, gap, chunk_size):
    n = len(seqs_a)
    out = np.zeros(n, dtype=np.int64)
    mat = _extended_matrix(matrix)
    order = np.argsort([len(a) + len(b) for a, b in zip(seqs_a, seqs_b)],
                       kind="stable")
    for lo in range(0, n, chunk_size):
        idx = order[lo:lo + chunk_size]
        chunk_a = [np.asarray(seqs_a[i], dtype=np.uint8) for i in idx]
        chunk_b = [np.asarray(seqs_b[i], dtype=np.uint8) for i in idx]
        out[idx] = _legacy_chunk_scores(chunk_a, chunk_b, mat, gap)
    return out


def _legacy_candidate_pairs(sequences, k, min_shared, max_kmer_occurrence):
    """The original per-sequence loop + np.split group expansion."""
    all_kmers, all_owners = [], []
    for i, seq in enumerate(sequences):
        codes = np.unique(kmer_codes(seq, k))
        all_kmers.append(codes)
        all_owners.append(np.full(codes.size, i, dtype=np.int64))
    if not all_kmers:
        return np.empty((0, 2), dtype=np.int64)
    kmers = np.concatenate(all_kmers)
    owners = np.concatenate(all_owners)
    order = np.argsort(kmers, kind="stable")
    kmers = kmers[order]
    owners = owners[order]
    boundaries = np.flatnonzero(np.diff(kmers)) + 1
    chunks = []
    for group in np.split(owners, boundaries):
        g = group.size
        if g < 2 or g > max_kmer_occurrence:
            continue
        members = np.sort(group)
        iu, ju = np.triu_indices(g, k=1)
        chunks.append(np.stack([members[iu], members[ju]], axis=1))
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(chunks, axis=0)
    n = len(sequences)
    keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
    uniq, counts = np.unique(keys, return_counts=True)
    qualified = uniq[counts >= min_shared]
    return np.stack([qualified // n, qualified % n], axis=1)


def _run_seed_path(sequences, config):
    """The pre-PR build_homology_graph, stage-timed."""
    stages = {}
    n = len(sequences)
    t0 = time.perf_counter()
    pairs = _legacy_candidate_pairs(sequences, config.k,
                                    config.min_shared_kmers,
                                    config.max_kmer_occurrence)
    stages["seed_filter_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    scores = _legacy_batch_sw([sequences[i] for i in pairs[:, 0]],
                              [sequences[j] for j in pairs[:, 1]],
                              BLOSUM62, config.gap, config.chunk_size)
    stages["alignment_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    selfs = np.array([self_score(s) for s in sequences], dtype=np.int64)
    stages["self_scores_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    denom = np.minimum(selfs[pairs[:, 0]], selfs[pairs[:, 1]])
    normalized = scores / np.maximum(denom, 1)
    keep = normalized >= config.min_normalized_score
    graph = CSRGraph.from_edges(pairs[keep], n_vertices=n)
    stages["graph_build_s"] = time.perf_counter() - t0
    return stages, graph


def _best_of(fn, repeats=REPEATS):
    """Re-run ``fn`` and keep the run with the smallest stage total."""
    best = None
    for _ in range(repeats):
        stages, graph = fn()
        total = sum(stages[s] for s in STAGES)
        if best is None or total < best[0]:
            best = (total, stages, graph)
    return best[1], best[2]


def _row(name, stages, seed_total):
    total = sum(stages[s] for s in STAGES)
    return [name] + [f"{stages[s]:.3f}s" for s in STAGES] + [
        f"{total:.3f}s", f"{seed_total / total:.2f}x"]


def _payload(stages):
    total = sum(stages[s] for s in STAGES)
    out = {s: round(stages[s], 4) for s in STAGES}
    out["total_s"] = round(total, 4)
    return out


def test_homology_runtime(report_writer, scale):
    protein_set, base_config = make_homology_workload(scale)
    sequences = protein_set.sequences

    seed_stages, seed_graph = _best_of(
        lambda: _run_seed_path(sequences, base_config))
    seed_total = sum(seed_stages[s] for s in STAGES)

    def run_current(n_jobs):
        config = dataclasses.replace(base_config, n_jobs=n_jobs)
        # Metrics-only observation (no tracer): counter increments are a
        # handful of adds, far below timing noise.
        ctx = observe(trace=False)
        with use_obs(ctx):
            result = build_homology_graph(sequences, config)
        stages = dict(result.timings.as_dict())
        stages["_metrics"] = ctx.metrics.snapshot()["counters"]
        return stages, result.graph

    serial_stages, serial_graph = _best_of(lambda: run_current(1))
    parallel_stages, parallel_graph = _best_of(
        lambda: run_current(PARALLEL_JOBS))
    serial_metrics = serial_stages.pop("_metrics")
    parallel_metrics = parallel_stages.pop("_metrics")

    # All three paths must build the identical graph.
    for other in (serial_graph, parallel_graph):
        assert np.array_equal(seed_graph.indptr, other.indptr)
        assert np.array_equal(seed_graph.indices, other.indices)

    serial_total = sum(serial_stages[s] for s in STAGES)
    parallel_total = sum(parallel_stages[s] for s in STAGES)
    serial_speedup = seed_total / serial_total
    parallel_speedup = seed_total / parallel_total

    rows = [_row("seed (pre-PR)", seed_stages, seed_total),
            _row("serial (n_jobs=1)", serial_stages, seed_total),
            _row(f"parallel (n_jobs={PARALLEL_JOBS})", parallel_stages,
                 seed_total)]
    title = (f"Homology-graph construction breakdown "
             f"({protein_set.n_sequences} sequences, scale={scale})")
    table = format_table(HEADERS, rows, title=title)
    report_writer(
        "homology_runtime",
        table + "\n\n"
        "pGraph's observation holds: alignment dominates the stage cost, so\n"
        "it is the piece worth vectorizing harder and sharding across "
        "workers.",
        data={
            "tables": [table_payload(title, HEADERS, rows)],
            "workloads": {
                "homology_seed": _payload(seed_stages),
                "homology_serial": _payload(serial_stages),
                f"homology_parallel_j{PARALLEL_JOBS}":
                    _payload(parallel_stages),
            },
            "n_sequences": protein_set.n_sequences,
            "n_edges": int(seed_graph.n_edges),
            "metrics": {
                "homology_serial": serial_metrics,
                f"homology_parallel_j{PARALLEL_JOBS}": parallel_metrics,
            },
            "speedups": {
                "serial_vs_seed": round(serial_speedup, 3),
                f"parallel_j{PARALLEL_JOBS}_vs_seed":
                    round(parallel_speedup, 3),
            },
        })

    # Alignment must dominate the seed path (the premise of the PR).
    assert seed_stages["alignment_s"] > 0.5 * seed_total

    # Acceptance: serial >= 1.25x from the vectorized filter + row-scan
    # aligner + lazy self-scores; parallel >= 2x vs the serial seed path.
    assert serial_speedup >= 1.25, (
        f"serial speedup {serial_speedup:.2f}x < 1.25x")
    assert parallel_speedup >= 2.0, (
        f"parallel speedup {parallel_speedup:.2f}x < 2.0x")
