"""Homology-graph construction runtime — the per-backend breakdown.

pGraph parallelizes homology detection because alignment dominates its
cost; this benchmark reproduces that observation for our analogue and
measures every scoring backend on the same workload:

* **seed** — the original implementation, embedded below verbatim-in-spirit
  (per-sequence k-mer loop + ``np.split``/``triu_indices`` group expansion,
  anti-diagonal wavefront aligner, eager self-scores for every sequence);
* **host** — the current path at ``align_backend=host``, ``n_jobs=1``
  (vectorized seed filter, row-scan aligner, lazy self-scores);
* **pool** — ``align_backend=pool``, ``n_jobs=4`` (sharded alignment over
  a shared-memory arena);
* **device** — ``align_backend=device`` (length-binned packing + ramped
  row-scan kernels on the simulated device, prefetch overlap);
* **auto** — ``align_backend=auto``, ``n_jobs=0`` (the hybrid scheduler
  picks; by this point it schedules from this run's measured rates).

Each variant reports per-stage wall clock (seed filter / self-scores /
alignment / graph build); all must produce the identical graph.  The
device row additionally reports ``padding_waste`` (wasted fraction of
padded DP cells, from the ``device.align.*`` metrics) and
``dp_cells_per_s`` (actual DP-cell throughput of its alignment stage).
The committed reference lives in BENCH_PR6.json: ``homology_rows`` guards
every row's ``total_s`` and ``device_alignment_rows`` guards the device
row's ``alignment_s`` and ``padding_waste``
(``scripts/check_perf_guard.py --reference-key ... [--metric ...]``).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.obs import observe, use_obs
from repro.pipeline.workloads import make_homology_workload
from repro.sequence.kmer_filter import kmer_codes
from repro.sequence.scoring import BLOSUM62
from repro.sequence.smith_waterman import _extended_matrix, self_score
from repro.sequence.homology import build_homology_graph
from repro.util.tables import format_table, table_payload

REPEATS = 2  # best-of; warm timings only
PARALLEL_JOBS = 4

STAGES = ["seed_filter_s", "self_scores_s", "alignment_s", "graph_build_s"]
HEADERS = ["variant", "seed filter", "self-scores", "alignment",
           "graph build", "total", "speedup vs seed"]


# --------------------------------------------------------------------- #
# The serial seed path, embedded as the measured baseline.
# --------------------------------------------------------------------- #

_PAD = 21  # ALPHABET_SIZE


def _legacy_pad_block(seqs):
    width = max((s.size for s in seqs), default=0)
    block = np.full((len(seqs), max(width, 1)), _PAD, dtype=np.int64)
    for r, s in enumerate(seqs):
        block[r, :s.size] = s
    return block


def _legacy_chunk_scores(seqs_a, seqs_b, mat, gap):
    """The original anti-diagonal wavefront kernel (full matrix)."""
    a = _legacy_pad_block(seqs_a)
    b = _legacy_pad_block(seqs_b)
    n_pairs, la = a.shape
    lb = b.shape[1]
    if n_pairs == 0:
        return np.zeros(0, dtype=np.int64)
    h_prev2 = np.zeros((n_pairs, la + 1), dtype=np.int64)
    h_prev1 = np.zeros((n_pairs, la + 1), dtype=np.int64)
    best = np.zeros(n_pairs, dtype=np.int64)
    for d in range(2, la + lb + 1):
        i_lo = max(1, d - lb)
        i_hi = min(la, d - 1)
        if i_lo > i_hi:
            h_prev2, h_prev1 = h_prev1, np.zeros_like(h_prev1)
            continue
        i_range = np.arange(i_lo, i_hi + 1)
        sub = mat[a[:, i_range - 1], b[:, d - i_range - 1]]
        diag = h_prev2[:, i_range - 1] + sub
        up = h_prev1[:, i_range - 1] - gap
        left = h_prev1[:, i_range] - gap
        h_cur_vals = np.maximum(np.maximum(diag, up), np.maximum(left, 0))
        h_cur = np.zeros((n_pairs, la + 1), dtype=np.int64)
        h_cur[:, i_range] = h_cur_vals
        np.maximum(best, h_cur_vals.max(axis=1), out=best)
        h_prev2, h_prev1 = h_prev1, h_cur
    return best


def _legacy_batch_sw(seqs_a, seqs_b, matrix, gap, chunk_size):
    n = len(seqs_a)
    out = np.zeros(n, dtype=np.int64)
    mat = _extended_matrix(matrix)
    order = np.argsort([len(a) + len(b) for a, b in zip(seqs_a, seqs_b)],
                       kind="stable")
    for lo in range(0, n, chunk_size):
        idx = order[lo:lo + chunk_size]
        chunk_a = [np.asarray(seqs_a[i], dtype=np.uint8) for i in idx]
        chunk_b = [np.asarray(seqs_b[i], dtype=np.uint8) for i in idx]
        out[idx] = _legacy_chunk_scores(chunk_a, chunk_b, mat, gap)
    return out


def _legacy_candidate_pairs(sequences, k, min_shared, max_kmer_occurrence):
    """The original per-sequence loop + np.split group expansion."""
    all_kmers, all_owners = [], []
    for i, seq in enumerate(sequences):
        codes = np.unique(kmer_codes(seq, k))
        all_kmers.append(codes)
        all_owners.append(np.full(codes.size, i, dtype=np.int64))
    if not all_kmers:
        return np.empty((0, 2), dtype=np.int64)
    kmers = np.concatenate(all_kmers)
    owners = np.concatenate(all_owners)
    order = np.argsort(kmers, kind="stable")
    kmers = kmers[order]
    owners = owners[order]
    boundaries = np.flatnonzero(np.diff(kmers)) + 1
    chunks = []
    for group in np.split(owners, boundaries):
        g = group.size
        if g < 2 or g > max_kmer_occurrence:
            continue
        members = np.sort(group)
        iu, ju = np.triu_indices(g, k=1)
        chunks.append(np.stack([members[iu], members[ju]], axis=1))
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(chunks, axis=0)
    n = len(sequences)
    keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
    uniq, counts = np.unique(keys, return_counts=True)
    qualified = uniq[counts >= min_shared]
    return np.stack([qualified // n, qualified % n], axis=1)


def _run_seed_path(sequences, config):
    """The pre-PR build_homology_graph, stage-timed."""
    stages = {}
    n = len(sequences)
    t0 = time.perf_counter()
    pairs = _legacy_candidate_pairs(sequences, config.k,
                                    config.min_shared_kmers,
                                    config.max_kmer_occurrence)
    stages["seed_filter_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    scores = _legacy_batch_sw([sequences[i] for i in pairs[:, 0]],
                              [sequences[j] for j in pairs[:, 1]],
                              BLOSUM62, config.gap, config.chunk_size)
    stages["alignment_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    selfs = np.array([self_score(s) for s in sequences], dtype=np.int64)
    stages["self_scores_s"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    denom = np.minimum(selfs[pairs[:, 0]], selfs[pairs[:, 1]])
    normalized = scores / np.maximum(denom, 1)
    keep = normalized >= config.min_normalized_score
    graph = CSRGraph.from_edges(pairs[keep], n_vertices=n)
    stages["graph_build_s"] = time.perf_counter() - t0
    return stages, graph


def _best_of(fn, repeats=REPEATS):
    """Re-run ``fn`` and keep the run with the smallest stage total."""
    best = None
    for _ in range(repeats):
        stages, graph = fn()
        total = sum(stages[s] for s in STAGES)
        if best is None or total < best[0]:
            best = (total, stages, graph)
    return best[1], best[2]


def _row(name, stages, seed_total):
    total = sum(stages[s] for s in STAGES)
    return [name] + [f"{stages[s]:.3f}s" for s in STAGES] + [
        f"{total:.3f}s", f"{seed_total / total:.2f}x"]


def _payload(stages):
    total = sum(stages[s] for s in STAGES)
    out = {s: round(stages[s], 4) for s in STAGES}
    out["total_s"] = round(total, 4)
    return out


def test_homology_runtime(report_writer, scale):
    protein_set, base_config = make_homology_workload(scale)
    sequences = protein_set.sequences

    seed_stages, seed_graph = _best_of(
        lambda: _run_seed_path(sequences, base_config))
    seed_total = sum(seed_stages[s] for s in STAGES)

    def run_current(n_jobs, align_backend):
        config = dataclasses.replace(base_config, n_jobs=n_jobs,
                                     align_backend=align_backend)
        # Metrics-only observation (no tracer): counter increments are a
        # handful of adds, far below timing noise.
        ctx = observe(trace=False)
        with use_obs(ctx):
            result = build_homology_graph(sequences, config)
        stages = dict(result.timings.as_dict())
        stages["_snapshot"] = ctx.metrics.snapshot()
        stages["_backend"] = result.align_backend
        return stages, result.graph

    variants = {
        "host": lambda: run_current(1, "host"),
        f"pool_j{PARALLEL_JOBS}": lambda: run_current(PARALLEL_JOBS, "pool"),
        "device": lambda: run_current(1, "device"),
        # Runs last on purpose: the scheduler has this process's measured
        # host/pool/device rates by now, so "auto" is an informed pick.
        "auto": lambda: run_current(0, "auto"),
    }
    stages_by, graphs, snapshots, resolved = {}, {}, {}, {}
    for name, fn in variants.items():
        stages, graph = _best_of(fn)
        snapshots[name] = stages.pop("_snapshot")
        resolved[name] = stages.pop("_backend")
        stages_by[name], graphs[name] = stages, graph

    # Every backend must build the identical graph.
    for name, graph in graphs.items():
        assert np.array_equal(seed_graph.indptr, graph.indptr), name
        assert np.array_equal(seed_graph.indices, graph.indices), name

    totals = {name: sum(stages[s] for s in STAGES)
              for name, stages in stages_by.items()}
    speedups = {f"{name}_vs_seed": round(seed_total / total, 3)
                for name, total in totals.items()}

    # Device extras: wasted padded-cell fraction + actual DP throughput.
    dev_counters = snapshots["device"]["counters"]
    dev_cells = dev_counters["device.align.cells_actual"]
    padding_waste = snapshots["device"]["gauges"][
        "device.align.padding_waste"]
    dp_cells_per_s = dev_cells / max(stages_by["device"]["alignment_s"],
                                     1e-9)

    rows = [_row("seed (pre-PR)", seed_stages, seed_total)]
    for name, stages in stages_by.items():
        label = name if name != "auto" else f"auto -> {resolved['auto']}"
        rows.append(_row(label, stages, seed_total))
    title = (f"Homology-graph construction by alignment backend "
             f"({protein_set.n_sequences} sequences, scale={scale})")
    table = format_table(HEADERS, rows, title=title)

    workloads = {"homology_seed": _payload(seed_stages)}
    for name, stages in stages_by.items():
        workloads[f"homology_{name}"] = _payload(stages)
    workloads["homology_device"]["padding_waste"] = round(padding_waste, 4)
    workloads["homology_device"]["dp_cells_per_s"] = round(dp_cells_per_s)

    report_writer(
        "homology_runtime",
        table + "\n\n"
        "pGraph's observation holds: alignment dominates the stage cost, so\n"
        "it is the stage worth offloading — the device backend's binned\n"
        f"row-scan wastes {padding_waste:.1%} of its padded DP cells and\n"
        f"sustains {dp_cells_per_s / 1e6:.0f}M DP cells/s.",
        data={
            "tables": [table_payload(title, HEADERS, rows)],
            "workloads": workloads,
            "n_sequences": protein_set.n_sequences,
            "n_edges": int(seed_graph.n_edges),
            "auto_resolved_to": resolved["auto"],
            "metrics": {f"homology_{name}": snap["counters"]
                        for name, snap in snapshots.items()},
            "speedups": speedups,
        })

    # Alignment must dominate the seed path (the premise of the PR).
    assert seed_stages["alignment_s"] > 0.5 * seed_total

    # Acceptance (PR3): host >= 1.25x from the vectorized filter + row-scan
    # aligner + lazy self-scores; pool >= 2x vs the serial seed path.
    assert speedups["host_vs_seed"] >= 1.25, (
        f"host speedup {speedups['host_vs_seed']:.2f}x < 1.25x")
    assert speedups[f"pool_j{PARALLEL_JOBS}_vs_seed"] >= 2.0, (
        f"pool speedup {speedups[f'pool_j{PARALLEL_JOBS}_vs_seed']:.2f}x "
        f"< 2.0x")

    # Acceptance (PR6), relative within this run so box noise cancels:
    # the device alignment stage beats serial host alignment by >= 1.5x,
    # wastes < 25% of its padded DP cells, and auto lands within 10% of
    # the best fixed backend's total.
    device_gain = (stages_by["host"]["alignment_s"]
                   / max(stages_by["device"]["alignment_s"], 1e-9))
    assert device_gain >= 1.5, (
        f"device alignment speedup {device_gain:.2f}x < 1.5x vs host")
    assert padding_waste < 0.25, (
        f"padding waste {padding_waste:.3f} >= 0.25")
    best_fixed = min(totals["host"], totals[f"pool_j{PARALLEL_JOBS}"],
                     totals["device"])
    assert totals["auto"] <= 1.1 * best_fixed, (
        f"auto total {totals['auto']:.3f}s > 110% of best fixed backend "
        f"({best_fixed:.3f}s, resolved to {resolved['auto']!r})")
