"""Microbenchmarks of the device kernels (the Thrust primitive analogues).

The paper's profile: "roughly 80% of the runtime is consumed by the hashing
and sorting operations" — these benches measure exactly those primitives in
isolation: the affine min-wise hash (``thrust::transform``), the two top-s
engines, and fingerprint folding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.device.kernels import (
    affine_hash,
    fold_fingerprints,
    pack_pairs,
    segmented_select_top_s,
    segmented_sort_top_s,
)
from repro.util.primes import DEFAULT_PRIME


@pytest.fixture(scope="module")
def batch(scale):
    rng = np.random.default_rng(0)
    nnz = 200_000 if scale == "small" else 2_000_000
    n_seg = nnz // 40
    lengths = rng.multinomial(nnz, np.ones(n_seg) / n_seg)
    indptr = np.zeros(n_seg + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    values = rng.integers(0, 1 << 31, size=nnz, dtype=np.int64).astype(np.uint64)
    a = rng.integers(1, DEFAULT_PRIME, size=8).astype(np.uint64)
    b = rng.integers(0, DEFAULT_PRIME, size=8).astype(np.uint64)
    hashed = affine_hash(values, a, b, DEFAULT_PRIME)
    packed = pack_pairs(hashed, values)
    return values, indptr, a, b, packed


def test_kernel_affine_hash(benchmark, batch):
    values, _, a, b, _ = batch
    out = benchmark(affine_hash, values, a, b, DEFAULT_PRIME)
    assert out.shape == (8, values.size)


def test_kernel_select_top_s(benchmark, batch):
    _, indptr, _, _, packed = batch
    out = benchmark(segmented_select_top_s, packed, indptr, 2)
    assert out.shape[2] == 2


def test_kernel_sort_top_s(benchmark, batch):
    _, indptr, _, _, packed = batch
    out = benchmark(segmented_sort_top_s, packed, indptr, 2)
    ref = segmented_select_top_s(packed, indptr, 2)
    assert np.array_equal(out, ref)


def test_kernel_fingerprint_fold(benchmark, batch):
    _, indptr, _, _, packed = batch
    top = segmented_select_top_s(packed, indptr, 2)
    salts = np.arange(8, dtype=np.uint64)
    out = benchmark(fold_fingerprints, top & np.uint64(0xFFFFFFFF), salts)
    assert out.shape == (8, indptr.size - 1)
