"""Ablation — asynchronous (double-buffered) transfers.

The paper's future work: "the data transfer overhead ... can be eliminated
through asynchronous data transfer" / "better performance could be achieved
through asynchronous operations provided in CUDA C/C++."

We compare the synchronous Thrust-style pipeline against the double-buffered
prefetching variant, and additionally report the analytically modeled
benefit: with perfect overlap the transfer time hides under compute, so
``modeled_async_total = cpu + max(gpu, c2g + g2c)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GpClust
from repro.device.timingmodels import DeviceSpec
from repro.pipeline.workloads import make_runtime_workload, workload_params
from repro.util.tables import format_seconds, format_table, table_payload
from repro.util.timer import BUCKET_C2G, BUCKET_CPU, BUCKET_G2C, BUCKET_GPU


@pytest.mark.parametrize("mode", ["sync", "async"])
def test_ablation_async_transfers(benchmark, mode, scale, report_writer):
    pg = make_runtime_workload("2m", scale)
    params = workload_params(scale)
    # Small device memory => many batches => transfers matter.
    spec = DeviceSpec(memory_capacity_bytes=16 * 2**20)
    prefetch = mode == "async"

    result = benchmark.pedantic(
        lambda: GpClust(params, device_spec=spec, prefetch=prefetch).run(pg.graph),
        rounds=1, iterations=1)

    t = result.timings
    if not hasattr(test_ablation_async_transfers, "_rows"):
        test_ablation_async_transfers._rows = {}
    rows = test_ablation_async_transfers._rows
    rows[mode] = (result, t)

    if len(rows) == 2:
        table_rows = []
        for name in ("sync", "async"):
            res, bt = rows[name]
            modeled_async = (bt.get(BUCKET_CPU)
                             + max(bt.get(BUCKET_GPU),
                                   bt.get(BUCKET_C2G) + bt.get(BUCKET_G2C)))
            table_rows.append([
                name,
                format_seconds(bt.get(BUCKET_CPU)),
                format_seconds(bt.get(BUCKET_GPU)),
                format_seconds(bt.get(BUCKET_C2G) + bt.get(BUCKET_G2C)),
                format_seconds(bt.total),
                format_seconds(modeled_async),
            ])
        headers = ["mode", "CPU", "GPU", "transfers", "total (bucket sum)",
                   "perfect-overlap bound"]
        title = (f"Ablation — sync vs. double-buffered transfers "
                 f"(scale={scale})")
        table = format_table(headers, table_rows, title=title)

        # Modeled K20/PCIe schedule of the first shingling pass, rendered as
        # a Gantt, sequential vs. overlapped.
        from repro.core.device_exec import device_shingle_pass
        from repro.core.pipeline import GpClust as _GpClust  # noqa: F401
        from repro.device.device import SimulatedDevice
        from repro.device.timeline import Timeline

        timeline = Timeline()
        device = SimulatedDevice(spec, timeline=timeline)
        device_shingle_pass(pg.graph.indptr, pg.graph.indices,
                            params.pass_config(1), device)
        overlapped = timeline.overlapped()
        gantt = ("\nModeled K20 schedule of pass 1 (synchronous):\n"
                 + timeline.render()
                 + "\n\nModeled with transfer/compute overlap:\n"
                 + overlapped.render())
        report_writer("ablation_async", table + gantt,
                      data=[table_payload(title, headers, table_rows)])

        assert overlapped.makespan <= timeline.makespan
        # Correctness must be unaffected by the overlap.
        assert np.array_equal(rows["sync"][0].labels, rows["async"][0].labels)
