"""Ablations over the design choices DESIGN.md calls out.

* Shingle parameters ``s`` and ``c`` (the paper credits gpClust's higher
  sensitivity to "the high configurable s and c parameters");
* selection kernel vs. Thrust-faithful full segmented sort;
* union-find partition vs. overlapping component reporting;
* vectorized vs. scalar Phase III engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.eval.confusion import quality_scores
from repro.eval.partition import Partition
from repro.pipeline.workloads import make_quality_workload
from repro.util.tables import (
    format_percent,
    format_seconds,
    format_table,
    table_payload,
)


@pytest.fixture(scope="module")
def quality_graph(scale):
    return make_quality_workload(scale, seed=11)


def test_ablation_c_parameter(benchmark, quality_graph, report_writer, scale):
    """Sensitivity grows with the trial count c (more shingles, more
    recruitment) at roughly constant PPV."""
    pg = quality_graph
    bench = Partition(pg.family_labels)
    rows = []
    sensitivities = []
    for c1 in (20, 50, 100, 200):
        params = ShinglingParams(c1=c1, c2=c1 // 2, seed=5)
        if c1 == 100:
            result = benchmark.pedantic(
                lambda p=params: GpClust(p).run(pg.graph), rounds=1, iterations=1)
        else:
            result = GpClust(params).run(pg.graph)
        qs = quality_scores(Partition(result.labels), bench, min_size=20)
        sensitivities.append(qs.sensitivity)
        rows.append([f"c1={c1}, c2={c1 // 2}",
                     format_percent(qs.ppv),
                     format_percent(qs.sensitivity),
                     str(result.n_clusters(min_size=20)),
                     format_seconds(result.timings.total)])
    headers = ["params", "PPV", "SE", "#clusters(>=20)", "seconds"]
    title = f"Ablation — trial count c (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("ablation_c_parameter", table,
                  data=[table_payload(title, headers, rows)])
    # More trials must not reduce sensitivity (monotone up to noise).
    assert sensitivities[-1] >= sensitivities[0]


def test_ablation_s_parameter(benchmark, quality_graph, report_writer, scale):
    """Larger shingle size s is more conservative: fewer merges."""
    pg = quality_graph
    bench = Partition(pg.family_labels)
    rows = []
    recruited = []
    for s in (1, 2, 3, 4):
        params = ShinglingParams(s1=s, s2=2, c1=60, c2=30, seed=5)
        if s == 2:
            result = benchmark.pedantic(
                lambda p=params: GpClust(p).run(pg.graph), rounds=1, iterations=1)
        else:
            result = GpClust(params).run(pg.graph)
        part = Partition(result.labels)
        qs = quality_scores(part, bench, min_size=20)
        recruited.append(part.n_clustered(min_size=20))
        rows.append([f"s1={s}",
                     format_percent(qs.ppv),
                     format_percent(qs.sensitivity),
                     str(part.n_clustered(min_size=20))])
    headers = ["params", "PPV", "SE", "#seqs clustered"]
    title = f"Ablation — shingle size s (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("ablation_s_parameter", table,
                  data=[table_payload(title, headers, rows)])
    # s=1 ("one shingle based approach can be too aggressive") recruits the
    # most; s=4 the least.
    assert recruited[0] >= recruited[-1]


def test_ablation_kernel_choice(benchmark, quality_graph, report_writer, scale):
    """Selection kernel vs. Thrust-style full segmented sort: identical
    output, different cost."""
    pg = quality_graph
    params = ShinglingParams(c1=60, c2=30, seed=5)
    results = {}
    timings = {}
    for kernel in ("select", "sort"):
        p = params.with_overrides(kernel=kernel)
        if kernel == "select":
            res = benchmark.pedantic(lambda p=p: GpClust(p).run(pg.graph),
                                     rounds=1, iterations=1)
        else:
            res = GpClust(p).run(pg.graph)
        results[kernel] = res
        timings[kernel] = res.timings.get("gpu")
    headers = ["kernel", "GPU seconds"]
    rows = [[k, format_seconds(v)] for k, v in timings.items()]
    title = f"Ablation — selection vs. segmented-sort kernel (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("ablation_kernel", table,
                  data=[table_payload(title, headers, rows)])
    assert np.array_equal(results["select"].labels, results["sort"].labels)


def test_ablation_report_modes(benchmark, quality_graph, report_writer, scale):
    """Partition (paper's choice) vs. overlapping reporting."""
    pg = quality_graph
    params = ShinglingParams(c1=60, c2=30, seed=5)
    part_res = GpClust(params).run(pg.graph)
    over_res = benchmark.pedantic(
        lambda: GpClust(params.with_overrides(report_mode="overlapping")).run(pg.graph),
        rounds=1, iterations=1)

    part_clusters = part_res.clusters(min_size=20)
    over_clusters = over_res.clusters(min_size=20)
    n_over_vertices = (np.unique(np.concatenate(over_clusters)).size
                       if over_clusters else 0)
    total_memberships = sum(c.size for c in over_clusters)

    headers = ["mode", "#clusters(>=20)", "#memberships", "#distinct vertices"]
    rows = [["partition", str(len(part_clusters)),
             str(sum(c.size for c in part_clusters)),
             str(sum(c.size for c in part_clusters))],
            ["overlapping", str(len(over_clusters)),
             str(total_memberships), str(n_over_vertices)]]
    title = f"Ablation — Phase III reporting mode (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("ablation_report_mode", table,
                  data=[table_payload(title, headers, rows)])

    # Overlapping mode may assign a vertex to several clusters.
    assert total_memberships >= n_over_vertices
    # The partition covers at least the vertices the components cover.
    assert sum(c.size for c in part_clusters) > 0


def test_ablation_grouping_strategy(benchmark, quality_graph, report_writer,
                                    scale):
    """One-shingle grouping (Section III-B's rejected alternative) vs. the
    two-level scheme: under union-find partitioning the quality converges
    (co-generators merge either way), but skipping the second pass buys a
    large runtime saving — the honest trade the ablation quantifies."""
    pg = quality_graph
    bench = Partition(pg.family_labels)
    rows = []
    results = {}
    for grouping in ("two_level", "one_shingle"):
        params = ShinglingParams(c1=60, c2=30, seed=5, grouping=grouping)
        if grouping == "one_shingle":
            res = benchmark.pedantic(
                lambda p=params: GpClust(p).run(pg.graph),
                rounds=1, iterations=1)
        else:
            res = GpClust(params).run(pg.graph)
        results[grouping] = res
        qs = quality_scores(Partition(res.labels), bench, min_size=20)
        rows.append([grouping,
                     format_percent(qs.ppv),
                     format_percent(qs.sensitivity),
                     str(res.n_clusters(min_size=20)),
                     format_seconds(res.timings.total)])
    headers = ["grouping", "PPV", "SE", "#clusters(>=20)", "seconds"]
    title = f"Ablation — grouping strategy (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("ablation_grouping", table,
                  data=[table_payload(title, headers, rows)])
    # One-shingle skips pass 2 entirely: it must be clearly faster.
    assert (results["one_shingle"].timings.total
            < 0.8 * results["two_level"].timings.total)


def test_ablation_kcore_prefilter(benchmark, quality_graph, report_writer,
                                  scale):
    """k-core pruning before shingling: discard vertices that cannot sit in
    any dense cluster.  Reduces shingling work; cluster cores (internal
    degree >= p_core * size) survive the filter."""
    from repro.graph.kcore import core_filter

    pg = quality_graph
    bench = Partition(pg.family_labels)
    params = ShinglingParams(c1=60, c2=30, seed=5)
    rows = []
    results = {}
    for k in (0, 3, 8):
        graph = pg.graph if k == 0 else core_filter(pg.graph, k)
        if k == 3:
            res = benchmark.pedantic(
                lambda g=graph: GpClust(params).run(g), rounds=1, iterations=1)
        else:
            res = GpClust(params).run(graph)
        results[k] = res
        qs = quality_scores(Partition(res.labels), bench, min_size=20)
        rows.append([f"k={k}" if k else "no filter",
                     str(graph.nnz // 2),
                     format_percent(qs.ppv),
                     format_percent(qs.sensitivity),
                     format_seconds(res.timings.total)])
    headers = ["prefilter", "#edges kept", "PPV", "SE", "seconds"]
    title = f"Ablation — k-core prefilter (scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer("ablation_kcore", table,
                  data=[table_payload(title, headers, rows)])
    # Filtering must not create false merges (PPV non-decreasing-ish).
    qs_base = quality_scores(Partition(results[0].labels), bench, min_size=20)
    qs_k8 = quality_scores(Partition(results[8].labels), bench, min_size=20)
    assert qs_k8.ppv >= qs_base.ppv - 0.02


def test_ablation_union_backend(benchmark, quality_graph, report_writer, scale):
    """Vectorized label propagation vs. scalar union-find: identical labels,
    the vectorized engine is the production default."""
    pg = quality_graph
    params = ShinglingParams(c1=60, c2=30, seed=5)
    vec = benchmark.pedantic(
        lambda: GpClust(params.with_overrides(union_backend="vectorized")).run(pg.graph),
        rounds=1, iterations=1)
    scalar = GpClust(params.with_overrides(union_backend="unionfind")).run(pg.graph)
    assert np.array_equal(vec.labels, scalar.labels)
    headers = ["backend", "total seconds"]
    rows = [["vectorized", format_seconds(vec.timings.total)],
            ["unionfind", format_seconds(scalar.timings.total)]]
    title = f"Ablation — Phase III engine (scale={scale})"
    report_writer("ablation_union_backend",
                  format_table(headers, rows, title=title),
                  data=[table_payload(title, headers, rows)])
