"""Aggregation + Phase III offload — host vs device backend on the 2m bucket.

The PR-8 tentpole moves the inter-pass inversion (sort-based group-by over
chunk partials) and Phase III connected components (hooking +
pointer-jumping kernels) onto the simulated device.  This benchmark runs
the Table-I 2m workload under ``aggregate_backend=host`` and ``=device``
(one device, warm best-of) and reports where the time went:

* ``total_s`` / ``cpu_s`` — wall clock and the measured host-CPU bucket
  share.  The device row's ``cpu_s`` must shrink: aggregation sorts and the
  CC fixpoint no longer run under the cpu bucket.
* ``modeled_device_s`` — deterministic modeled kernel seconds (now
  including the ``agg_*``/``cc_*`` kernel classes).
* ``cc_rounds`` — hooking rounds to fixpoint (the O(log n) bound in
  practice; deterministic for a fixed workload).
* ``agg_bytes_saved`` — device-resident bytes never downloaded as
  intermediate partials.

Rows are tagged with ``host_cores`` so cross-machine comparisons skip the
wall metrics.  The committed reference is BENCH_PR8.json
(``aggregate_rows``); CI guards ``total_s`` (lower) and ``cc_rounds``
(presence + lower) via ``scripts/check_perf_guard.py``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.pipeline import GpClust
from repro.device.device import SimulatedDevice
from repro.obs import observe, use_obs
from repro.pipeline.workloads import make_runtime_workload, workload_params
from repro.util.tables import format_table, table_payload
from repro.util.timer import BUCKET_CPU, BUCKET_GPU

REPEATS = 2  # best-of; warm timings only

HEADERS = ["backend", "wall", "cpu bucket", "gpu bucket", "modeled device",
           "cc rounds", "agg runs"]


def _run_once(params, graph):
    obs = observe(trace=False)
    with use_obs(obs):
        device = SimulatedDevice()
        t0 = time.perf_counter()
        result = GpClust(params).run(graph, device=device)
        wall = time.perf_counter() - t0
    counters = obs.metrics.snapshot()["counters"]
    stats = device.kernel_stats
    return {
        "wall_s": wall,
        "cpu_s": result.timings.get(BUCKET_CPU),
        "gpu_s": result.timings.get(BUCKET_GPU),
        "modeled_s": sum(s["modeled_s"] for s in stats.values()),
        "cc_rounds": int(counters.get("device.cc.rounds", 0)),
        "agg_runs": int(stats.get("agg_sort", {}).get("launches", 0)),
        "agg_bytes_saved": int(
            counters.get("device.aggregate.bytes_saved", 0)),
        "labels": result.labels,
    }


def _best_of(params, graph):
    best = None
    _run_once(params, graph)  # warm-up
    for _ in range(REPEATS):
        run = _run_once(params, graph)
        if best is None or run["wall_s"] < best["wall_s"]:
            best = run
    return best


def test_aggregate_offload(report_writer, scale):
    pg = make_runtime_workload("2m", scale)
    base = workload_params(scale)

    runs = {
        "host": _best_of(base.with_overrides(aggregate_backend="host"),
                         pg.graph),
        "device": _best_of(base.with_overrides(aggregate_backend="device"),
                           pg.graph),
    }

    # Bit-identity across backends is the non-negotiable gate.
    assert np.array_equal(runs["device"]["labels"], runs["host"]["labels"])
    # The offload actually ran: group-by merges and CC rounds on-device.
    assert runs["device"]["agg_runs"] >= 1
    assert runs["device"]["cc_rounds"] >= 1
    assert runs["host"]["cc_rounds"] == 0

    workloads, rows = {}, []
    for backend, run in runs.items():
        workloads[f"agg_2m_{backend}"] = {
            "total_s": round(run["wall_s"], 4),
            "cpu_s": round(run["cpu_s"], 4),
            "gpu_s": round(run["gpu_s"], 4),
            "modeled_device_s": round(run["modeled_s"], 6),
            "cc_rounds": run["cc_rounds"],
            "agg_bytes_saved": run["agg_bytes_saved"],
            "host_cores": os.cpu_count(),
        }
        rows.append([backend, f"{run['wall_s']:.3f}s", f"{run['cpu_s']:.3f}s",
                     f"{run['gpu_s']:.3f}s",
                     f"{run['modeled_s'] * 1e3:.3f}ms",
                     str(run["cc_rounds"]), str(run["agg_runs"])])

    title = (f"Aggregation + Phase III offload, Table-I 2m bucket "
             f"(scale={scale}, host cores={os.cpu_count()})")
    table = format_table(HEADERS, rows, title=title)
    note = ("The device row moves the inter-pass group-by and the Phase III\n"
            "CC fixpoint out of the cpu bucket and into gpu/modeled kernel\n"
            "time; the host row's cc_rounds is 0 because the counter only\n"
            "counts device hooking rounds.")
    report_writer(
        "aggregate_offload",
        table + "\n\n" + note,
        data={
            "tables": [table_payload(title, HEADERS, rows)],
            "workloads": workloads,
            "host_cores": os.cpu_count(),
        })

    # The cpu-bucket share must drop when aggregation + Phase III leave the
    # host (lenient: only gate when the host share is measurable at all).
    host_cpu = runs["host"]["cpu_s"]
    if host_cpu > 0.005:
        assert runs["device"]["cpu_s"] < host_cpu, (
            f"device-backend cpu bucket {runs['device']['cpu_s']:.4f}s did "
            f"not drop below the host backend's {host_cpu:.4f}s")
