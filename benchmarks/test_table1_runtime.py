"""Table I — runtime breakdown of gpClust vs. the serial implementation.

Paper columns, per input graph (20K and 2M analogues):

    #non-singleton vertices | #edges | CPU | GPU | Data c->g | Data g->c |
    Disk I/O | total | serial runtime | total speedup | GPU-part speedup

The GPU-part speedup compares the serial time spent in the two shingling
levels (~80% of the serial runtime, per the paper's profile) against the
device kernel time.  Modeled K20/PCIe seconds are reported alongside the
measured wall times.
"""

from __future__ import annotations

import gc

import pytest

from repro.core.pipeline import BUCKET_SERIAL_SHINGLING, GpClust, SerialPClust
from repro.device.device import SimulatedDevice
from repro.graph.io import save_npz, timed_load
from repro.pipeline.workloads import make_runtime_workload, workload_params
from repro.util.tables import (
    format_count,
    format_seconds,
    format_table,
    table_payload,
)
from repro.util.timer import (
    BUCKET_C2G,
    BUCKET_CPU,
    BUCKET_G2C,
    BUCKET_GPU,
    BUCKET_IO,
)

HEADERS = ["graph", "#vertices", "#edges", "CPU", "GPU", "Data c->g",
           "Data g->c", "Disk I/O", "Total", "Serial", "Speedup",
           "GPU speedup"]

_rows: list[list[str]] = []
_modeled_rows: list[list[str]] = []
_raw: dict[str, dict] = {}


@pytest.fixture(scope="module")
def runtime_results(scale, tmp_path_factory):
    """Run serial and device pipelines once per workload, via disk I/O.

    The device run is measured warm (one untimed warm-up first) and with
    the cyclic garbage collector paused: the serial run that precedes it
    provokes automatic gen-2 collections which would otherwise fire
    *during* the device run, charging its CPU bucket with multi-second GC
    pauses that have nothing to do with the pipeline under measurement.
    """
    results = {}
    tmp = tmp_path_factory.mktemp("table1")
    for name in ("20k", "2m"):
        pg = make_runtime_workload(name, scale)
        path = tmp / f"{name}.npz"
        save_npz(pg.graph, path)
        graph, io_seconds = timed_load(path)
        params = workload_params(scale)
        serial = SerialPClust(params).run(graph, io_seconds=io_seconds)
        graph, io_seconds = timed_load(path)
        GpClust(params).run(graph)  # warm-up: page in buffers, prime pools
        gc.collect()
        gc.disable()
        try:
            # Explicit device so its metrics registry (transfer bytes,
            # dedup counters) survives the run for the JSON payload.
            sim = SimulatedDevice()
            device = GpClust(params).run(graph, io_seconds=io_seconds,
                                         device=sim)
        finally:
            gc.enable()
        results[name] = (graph, serial, device, sim)
    return results


@pytest.mark.parametrize("name", ["20k", "2m"])
def test_table1_row(benchmark, name, runtime_results, report_writer, scale):
    graph, serial, device, sim = runtime_results[name]

    params = workload_params(scale)
    benchmark.pedantic(
        lambda: GpClust(params).run(graph), rounds=1, iterations=1)

    t = device.timings
    serial_total = serial.timings.total
    serial_shingling = serial.timings.get(BUCKET_SERIAL_SHINGLING)
    total = t.total
    gpu = t.get(BUCKET_GPU)
    _rows.append([
        name,
        format_count((graph.degrees() > 0).sum()),
        format_count(graph.n_edges),
        format_seconds(t.get(BUCKET_CPU)),
        format_seconds(gpu),
        format_seconds(t.get(BUCKET_C2G)),
        format_seconds(t.get(BUCKET_G2C)),
        format_seconds(t.get(BUCKET_IO)),
        format_seconds(total),
        format_seconds(serial_total),
        f"{serial_total / total:.2f}x",
        f"{serial_shingling / max(gpu, 1e-9):.2f}x",
    ])
    _modeled_rows.append([
        name, "", "",
        "-",
        format_seconds(t.get_modeled(BUCKET_GPU)),
        format_seconds(t.get_modeled(BUCKET_C2G)),
        format_seconds(t.get_modeled(BUCKET_G2C)),
        "-", "-", "-", "-",
        f"{serial_shingling / max(t.get_modeled(BUCKET_GPU), 1e-9):.0f}x",
    ])
    _raw[name] = {
        "n_vertices": int((graph.degrees() > 0).sum()),
        "n_edges": int(graph.n_edges),
        "cpu_s": round(t.get(BUCKET_CPU), 4),
        "gpu_s": round(gpu, 4),
        "data_c2g_s": round(t.get(BUCKET_C2G), 4),
        "data_g2c_s": round(t.get(BUCKET_G2C), 4),
        "disk_io_s": round(t.get(BUCKET_IO), 4),
        "total_s": round(total, 4),
        "serial_s": round(serial_total, 4),
        "speedup": round(serial_total / total, 4),
        "gpu_part_speedup": round(serial_shingling / max(gpu, 1e-9), 4),
        "modeled_gpu_s": round(t.get_modeled(BUCKET_GPU), 6),
        "modeled_c2g_s": round(t.get_modeled(BUCKET_C2G), 6),
        "modeled_g2c_s": round(t.get_modeled(BUCKET_G2C), 6),
    }
    # Obs metrics snapshot of the measured run: bytes actually moved across
    # the simulated bus and the on-device shingle dedup ratio.
    sim.sync_metrics()
    snap = sim.obs.metrics.snapshot()
    gauges, counters = snap["gauges"], snap["counters"]
    slots = counters.get("shingle.occurrence_slots", 0)
    distinct = counters.get("shingle.distinct_fps", 0)
    _raw[name]["metrics"] = {
        "h2d_bytes": gauges["device.h2d_bytes"],
        "d2h_bytes": gauges["device.d2h_bytes"],
        "peak_device_bytes": gauges["device.peak_device_bytes"],
        "scratch_hits": gauges["device.scratch.hits"],
        "scratch_misses": gauges["device.scratch.misses"],
        "shingle_occurrence_slots": slots,
        "shingle_distinct_fps": distinct,
        "shingle_dedup_ratio":
            round(distinct / slots, 6) if slots else None,
    }

    # Shape assertions mirroring the paper's findings.
    assert serial_total / total > 2.0, "gpClust must clearly beat serial"
    assert serial_shingling / max(gpu, 1e-9) > serial_total / total, (
        "the accelerated part must speed up more than the whole pipeline "
        "(Amdahl)")
    assert serial_shingling > 0.5 * serial_total, (
        "shingling should dominate the serial runtime (paper: ~80%)")

    if name == "2m":
        title = f"Table I analogue — runtime breakdown (seconds, scale={scale})"
        modeled_title = ("Modeled device seconds (K20 kernel + PCIe transfer "
                         "models)")
        table = format_table(HEADERS, _rows, title=title)
        modeled = format_table(HEADERS, _modeled_rows, title=modeled_title)
        report_writer(
            "table1_runtime",
            table + "\n\n" + modeled + "\n\n"
            "Paper (Table I): 20K -> serial 392.32s, total 66.75s (5.88x), "
            "GPU part 44.86x;\n"
            "               2M -> serial 23,537.80s, total 3,275.98s (7.18x), "
            "GPU part 373.71x.",
            data={
                "tables": [table_payload(title, HEADERS, _rows),
                           table_payload(modeled_title, HEADERS,
                                         _modeled_rows)],
                "workloads": _raw,
            })
