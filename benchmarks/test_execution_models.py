"""Execution-model comparison: device vs. serial vs. MapReduce.

Reproduces the comparison point the paper inherits from Rytsareva et al.
[18]: "The OpenMP implementation was significantly faster than the Hadoop
implementation due to the expensive disk I/O operations involved in the
Hadoop platform."  All three pipelines produce bit-identical clusterings;
only where the time goes differs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.pipeline import GpClust, SerialPClust
from repro.mapreduce.shingle_mr import MapReducePClust
from repro.pipeline.workloads import make_runtime_workload, workload_params
from repro.util.tables import (
    format_count,
    format_seconds,
    format_table,
    table_payload,
)


def test_execution_models(benchmark, scale, report_writer, tmp_path):
    pg = make_runtime_workload("20k", scale)
    graph = pg.graph
    params = workload_params(scale).with_overrides(c1=40, c2=20)

    t0 = time.perf_counter()
    device = benchmark.pedantic(lambda: GpClust(params).run(graph),
                                rounds=1, iterations=1)
    device_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = SerialPClust(params).run(graph)
    serial_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    mr = MapReducePClust(tmp_path / "mr", params).run(graph)
    mr_wall = time.perf_counter() - t0
    stats = mr.mr_stats

    assert np.array_equal(device.labels, serial.labels)
    assert np.array_equal(device.labels, mr.labels)

    rows = [
        ["gpClust (device)", format_seconds(device_wall), "-", "-"],
        ["serial pClust", format_seconds(serial_wall), "-", "-"],
        ["MapReduce pClust",
         format_seconds(mr_wall),
         format_count(stats.bytes_spilled),
         f"{stats.shuffle_seconds + stats.map_seconds:.2f}s"],
    ]
    headers = ["execution model", "wall seconds", "bytes spilled to disk",
               "map+shuffle (disk path)"]
    title = f"Execution models on the 20K analogue (c1=40, scale={scale})"
    table = format_table(headers, rows, title=title)
    report_writer(
        "execution_models",
        table + "\n\nAll three produce bit-identical clusterings.  Paper "
        "context (via [18]): the shared-memory implementation was "
        "'significantly faster than the Hadoop implementation due to the "
        "expensive disk I/O operations'.",
        data=[table_payload(title, headers, rows)])

    assert mr_wall > serial_wall * 0.8, "MR should not beat even serial"
    assert mr_wall > 3 * device_wall, "disk path must dominate the device"
