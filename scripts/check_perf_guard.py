#!/usr/bin/env python
"""CI perf guard: fail when a smoke bench regresses past tolerance.

Diffs a freshly-measured benchmark JSON (``workloads`` mapping under
``benchmarks/results/``) against a committed per-PR reference and exits
non-zero when any workload's warm total time regresses by more than the
tolerance (default 15%).  Warm timings on shared CI runners are noisy,
which is why the guard is tolerance-based rather than exact; improvements
never fail.

``--reference-key`` selects which mapping of the reference file holds the
guarded rows: ``table1_rows`` (clustering bench vs BENCH_PR2.json) or
``homology_rows`` (homology-construction bench vs BENCH_PR3.json).

Usage::

    python scripts/check_perf_guard.py \
        --measured benchmarks/results/table1_runtime.json \
        --reference BENCH_PR2.json [--tolerance 0.15]
    python scripts/check_perf_guard.py \
        --measured benchmarks/results/homology_runtime.json \
        --reference BENCH_PR3.json --reference-key homology_rows
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(measured: dict, reference: dict, tolerance: float,
          reference_key: str = "table1_rows") -> list[str]:
    """Return a list of failure messages (empty == pass)."""
    failures = []
    ref_rows = reference[reference_key]
    got_rows = measured["workloads"]
    for name, ref in sorted(ref_rows.items()):
        if name not in got_rows:
            failures.append(f"{name}: missing from measured results")
            continue
        ref_total = float(ref["total_s"])
        got_total = float(got_rows[name]["total_s"])
        limit = ref_total * (1.0 + tolerance)
        verdict = "OK" if got_total <= limit else "REGRESSION"
        print(f"{name}: total {got_total:.4f}s vs reference {ref_total:.4f}s "
              f"(limit {limit:.4f}s, tolerance {tolerance:.0%}) -> {verdict}")
        if got_total > limit:
            failures.append(
                f"{name}: total {got_total:.4f}s exceeds {limit:.4f}s "
                f"({got_total / ref_total - 1.0:+.1%} vs reference)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--measured",
                        default="benchmarks/results/table1_runtime.json",
                        help="fresh bench JSON (written by the smoke bench)")
    parser.add_argument("--reference", default="BENCH_PR2.json",
                        help="committed reference JSON")
    parser.add_argument("--reference-key", default="table1_rows",
                        help="mapping in the reference file holding the "
                             "guarded rows (table1_rows, homology_rows)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional total-time regression")
    args = parser.parse_args(argv)

    measured = json.loads(Path(args.measured).read_text())
    reference = json.loads(Path(args.reference).read_text())
    failures = check(measured, reference, args.tolerance,
                     reference_key=args.reference_key)
    if failures:
        print("\nPERF GUARD FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("perf guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
