#!/usr/bin/env python
"""CI perf guard: fail when a smoke bench regresses past tolerance.

Diffs a freshly-measured benchmark JSON (``workloads`` mapping under
``benchmarks/results/``) against a committed per-PR reference and exits
non-zero when any workload's warm total time regresses by more than the
tolerance (default 15%).  Warm timings on shared CI runners are noisy,
which is why the guard is tolerance-based rather than exact; improvements
never fail.  The comparison machinery is shared with ``compare_bench.py``
and the performance ledger (:mod:`repro.obs.ledger`).

``--reference-key`` selects which mapping of the reference file holds the
guarded rows: ``table1_rows`` (clustering bench vs BENCH_PR2.json),
``homology_rows`` (homology-construction bench vs BENCH_PR6.json), or
``device_alignment_rows`` (the device backend's alignment row, also in
BENCH_PR6.json), or ``device_scaling_rows`` (the multi-device scaling
bench vs BENCH_PR7.json).  ``--metric`` picks which per-row value is
compared (default ``total_s``).  Metrics are lower-is-better unless the
spec carries a ``:higher`` suffix (``speedup_vs_1dev:higher``).

``--max-overhead-pct`` switches to observability-overhead mode: the
measured file is then a ``trace_overhead.json`` written by
``scripts/run_traced_smoke.py`` (``traced_off_s`` / ``traced_on_s``), no
reference file is read, and the guard fails when enabling tracing costs
more than the given percentage.

``--bottleneck-row`` switches to bottleneck-class mode: the measured file
is an attribution report written by ``run_traced_smoke.py`` (the output
of ``repro obs attribute --json``) and the reference's
``bottleneck_rows`` mapping names the expected top-ranked cause *class*
per configuration.  The guard fails when the top cause changes class
(e.g. alignment -> host-link contention) without the committed baseline
being updated — a perf PR must own its attribution shift.

Usage::

    python scripts/check_perf_guard.py \
        --measured benchmarks/results/table1_runtime.json \
        --reference BENCH_PR2.json [--tolerance 0.15]
    python scripts/check_perf_guard.py \
        --measured benchmarks/results/trace_overhead.json \
        --max-overhead-pct 2
    python scripts/check_perf_guard.py \
        --measured benchmarks/results/attribution_2m.json \
        --reference BENCH_PR9.json --bottleneck-row traced_2m_dev1
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.ledger import (  # noqa: E402
    compare_rows,
    parse_metric_spec,
    render_deltas,
    rows_from,
    skipped_wall_note,
)


def check(measured: dict, reference: dict, tolerance: float,
          reference_key: str = "table1_rows",
          metric: str = "total_s") -> list[str]:
    """Return a list of failure messages (empty == pass).

    A thin wrapper over :func:`repro.obs.ledger.compare_rows`: the
    guarded rows come from ``reference[reference_key]``, the measured
    rows from ``measured["workloads"]``, and ``metric`` may carry a
    ``:higher``/``:lower`` direction suffix (default lower-is-better).
    """
    ref_rows = rows_from(reference, reference_key)
    got_rows = rows_from(measured, "workloads")
    deltas, failures = compare_rows(ref_rows, got_rows, tolerance,
                                    metrics=[parse_metric_spec(metric)])
    print(render_deltas(deltas, tolerance))
    note = skipped_wall_note(ref_rows, got_rows, deltas)
    if note:
        print(note)
    return failures


def check_overhead(measured: dict, max_overhead_pct: float) -> list[str]:
    """Overhead mode: traced-on wall time vs traced-off wall time."""
    off_s = float(measured["traced_off_s"])
    on_s = float(measured["traced_on_s"])
    overhead_pct = (on_s / off_s - 1.0) * 100.0
    verdict = "OK" if overhead_pct <= max_overhead_pct else "REGRESSION"
    print(f"{measured.get('workload', 'workload')}: tracing on {on_s:.4f}s "
          f"vs off {off_s:.4f}s (overhead {overhead_pct:+.2f}%, "
          f"limit {max_overhead_pct:.1f}%) -> {verdict}")
    if overhead_pct > max_overhead_pct:
        return [f"observability overhead {overhead_pct:+.2f}% exceeds "
                f"{max_overhead_pct:.1f}%"]
    return []


def check_bottleneck(measured: dict, reference: dict, row: str,
                     reference_key: str = "bottleneck_rows") -> list[str]:
    """Bottleneck-class mode: the top-ranked cause must keep its class.

    ``measured`` is an attribution report (``repro obs attribute
    --json``); ``reference[reference_key][row]`` holds the committed
    baseline ``{"cause", "class"}``.  Only the *class* gates — the exact
    cause slug and magnitudes are informational, wall noise must not
    flip the guard.
    """
    causes = measured.get("causes") or []
    if not causes:
        return [f"{row}: attribution report has no ranked causes"]
    top = causes[0]
    baseline = rows_from(reference, reference_key).get(row)
    if baseline is None:
        return [f"{row}: no committed bottleneck baseline under "
                f"{reference_key!r} — add it to the reference file"]
    expected = baseline["class"]
    print(f"{row}: top bottleneck {top['cause']} (class {top['class']}, "
          f"{top['seconds']:.4f}s, {top['share']:.1%} of wall) vs "
          f"baseline class {expected}")
    if top["class"] != expected:
        return [
            f"{row}: top-ranked bottleneck changed class "
            f"{expected} -> {top['class']} ({top['cause']}); if this PR "
            f"intends the shift, update the committed baseline"]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--measured",
                        default="benchmarks/results/table1_runtime.json",
                        help="fresh bench JSON (written by the smoke bench)")
    parser.add_argument("--reference", default="BENCH_PR2.json",
                        help="committed reference JSON")
    parser.add_argument("--reference-key", default="table1_rows",
                        help="mapping in the reference file holding the "
                             "guarded rows (table1_rows, homology_rows, "
                             "bottleneck_rows in bottleneck mode)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional total-time regression")
    parser.add_argument("--metric", default="total_s",
                        help="per-row value to compare, e.g. total_s, "
                             "alignment_s, padding_waste; lower is better "
                             "unless the spec says NAME:higher (e.g. "
                             "speedup_vs_1dev:higher)")
    parser.add_argument("--max-overhead-pct", type=float, default=None,
                        metavar="PCT",
                        help="observability-overhead mode: fail when the "
                             "traced run in a trace_overhead.json is more "
                             "than PCT%% slower than the untraced run")
    parser.add_argument("--bottleneck-row", default=None, metavar="ROW",
                        help="bottleneck-class mode: the measured file is "
                             "an attribution report; fail when its top-"
                             "ranked cause class differs from the "
                             "reference's bottleneck_rows[ROW]")
    args = parser.parse_args(argv)

    measured = json.loads(Path(args.measured).read_text())
    if args.max_overhead_pct is not None:
        failures = check_overhead(measured, args.max_overhead_pct)
    elif args.bottleneck_row is not None:
        reference = json.loads(Path(args.reference).read_text())
        key = ("bottleneck_rows" if args.reference_key == "table1_rows"
               else args.reference_key)
        failures = check_bottleneck(measured, reference, args.bottleneck_row,
                                    reference_key=key)
    else:
        reference = json.loads(Path(args.reference).read_text())
        failures = check(measured, reference, args.tolerance,
                         reference_key=args.reference_key,
                         metric=args.metric)
    if failures:
        print("\nPERF GUARD FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("perf guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
