#!/usr/bin/env python
"""CI perf guard: fail when a smoke bench regresses past tolerance.

Diffs a freshly-measured benchmark JSON (``workloads`` mapping under
``benchmarks/results/``) against a committed per-PR reference and exits
non-zero when any workload's warm total time regresses by more than the
tolerance (default 15%).  Warm timings on shared CI runners are noisy,
which is why the guard is tolerance-based rather than exact; improvements
never fail.

``--reference-key`` selects which mapping of the reference file holds the
guarded rows: ``table1_rows`` (clustering bench vs BENCH_PR2.json),
``homology_rows`` (homology-construction bench vs BENCH_PR6.json), or
``device_alignment_rows`` (the device backend's alignment row, also in
BENCH_PR6.json), or ``device_scaling_rows`` (the multi-device scaling
bench vs BENCH_PR7.json).  ``--metric`` picks which per-row value is
compared (default ``total_s``).  Metrics are lower-is-better unless the
spec carries a ``:higher`` suffix (``speedup_vs_1dev:higher``); the
comparison itself lives in ``compare_bench.py``.

``--max-overhead-pct`` switches to observability-overhead mode: the
measured file is then a ``trace_overhead.json`` written by
``scripts/run_traced_smoke.py`` (``traced_off_s`` / ``traced_on_s``), no
reference file is read, and the guard fails when enabling tracing costs
more than the given percentage.

Usage::

    python scripts/check_perf_guard.py \
        --measured benchmarks/results/table1_runtime.json \
        --reference BENCH_PR2.json [--tolerance 0.15]
    python scripts/check_perf_guard.py \
        --measured benchmarks/results/homology_runtime.json \
        --reference BENCH_PR3.json --reference-key homology_rows
    python scripts/check_perf_guard.py \
        --measured benchmarks/results/trace_overhead.json \
        --max-overhead-pct 2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from compare_bench import compare_rows, parse_metric_spec, render_deltas


def check(measured: dict, reference: dict, tolerance: float,
          reference_key: str = "table1_rows",
          metric: str = "total_s") -> list[str]:
    """Return a list of failure messages (empty == pass).

    A thin wrapper over :func:`compare_bench.compare_rows`: the guarded
    rows come from ``reference[reference_key]``, the measured rows from
    ``measured["workloads"]``, and ``metric`` may carry a
    ``:higher``/``:lower`` direction suffix (default lower-is-better).
    """
    deltas, failures = compare_rows(
        reference[reference_key], measured["workloads"], tolerance,
        metrics=[parse_metric_spec(metric)])
    print(render_deltas(deltas, tolerance))
    return failures


def check_overhead(measured: dict, max_overhead_pct: float) -> list[str]:
    """Overhead mode: traced-on wall time vs traced-off wall time."""
    off_s = float(measured["traced_off_s"])
    on_s = float(measured["traced_on_s"])
    overhead_pct = (on_s / off_s - 1.0) * 100.0
    verdict = "OK" if overhead_pct <= max_overhead_pct else "REGRESSION"
    print(f"{measured.get('workload', 'workload')}: tracing on {on_s:.4f}s "
          f"vs off {off_s:.4f}s (overhead {overhead_pct:+.2f}%, "
          f"limit {max_overhead_pct:.1f}%) -> {verdict}")
    if overhead_pct > max_overhead_pct:
        return [f"observability overhead {overhead_pct:+.2f}% exceeds "
                f"{max_overhead_pct:.1f}%"]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--measured",
                        default="benchmarks/results/table1_runtime.json",
                        help="fresh bench JSON (written by the smoke bench)")
    parser.add_argument("--reference", default="BENCH_PR2.json",
                        help="committed reference JSON")
    parser.add_argument("--reference-key", default="table1_rows",
                        help="mapping in the reference file holding the "
                             "guarded rows (table1_rows, homology_rows)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional total-time regression")
    parser.add_argument("--metric", default="total_s",
                        help="per-row value to compare, e.g. total_s, "
                             "alignment_s, padding_waste; lower is better "
                             "unless the spec says NAME:higher (e.g. "
                             "speedup_vs_1dev:higher)")
    parser.add_argument("--max-overhead-pct", type=float, default=None,
                        metavar="PCT",
                        help="observability-overhead mode: fail when the "
                             "traced run in a trace_overhead.json is more "
                             "than PCT%% slower than the untraced run")
    args = parser.parse_args(argv)

    measured = json.loads(Path(args.measured).read_text())
    if args.max_overhead_pct is not None:
        failures = check_overhead(measured, args.max_overhead_pct)
    else:
        reference = json.loads(Path(args.reference).read_text())
        failures = check(measured, reference, args.tolerance,
                         reference_key=args.reference_key,
                         metric=args.metric)
    if failures:
        print("\nPERF GUARD FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("perf guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
