#!/usr/bin/env python
"""Diff two benchmark JSON files row by row, metric by metric.

The benchmark harness writes ``benchmarks/results/<name>.json`` documents
and each PR commits a ``BENCH_PR<N>.json`` reference; this tool is the one
place that compares them.  It prints a per-row/per-metric delta table and
exits non-zero when any guarded metric regresses past the tolerance.
``check_perf_guard.py`` builds its CI checks on :func:`compare_rows`
instead of ad-hoc key lookups.

Metric direction: metrics are lower-is-better by default (seconds, waste
fractions).  Append ``:higher`` to a ``--metric`` spec for higher-is-better
quantities (speedups, throughput) — a regression is then a *drop* past the
tolerance.  Improvements never fail in either direction.

Usage::

    python scripts/compare_bench.py BENCH_PR6.json \
        benchmarks/results/homology_runtime.json \
        --key homology_rows --measured-key workloads --metric total_s

    python scripts/compare_bench.py BENCH_PR7.json \
        benchmarks/results/device_scaling.json \
        --key device_scaling_rows --measured-key workloads \
        --metric total_s --metric speedup_vs_1dev:higher

With no ``--metric``, every numeric metric shared by a reference row and
its measured counterpart is compared (all treated as lower-is-better).

Rows may carry tag keys (currently ``host_cores``) describing the machine
that measured them.  Tags are never compared as metrics; when the reference
and measured rows were produced on machines with different ``host_cores``,
wall-clock metrics are reported with a ``SKIP`` verdict instead of a
pass/fail — comparing wall seconds across core counts is noise, and the
modeled metrics still guard the row.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Valid direction suffixes of a ``--metric name[:direction]`` spec.
DIRECTIONS = ("lower", "higher")

#: Row keys that describe the measuring machine, not the measurement —
#: never compared as metrics.
TAG_KEYS = frozenset({"host_cores"})

#: Metrics that measure wall-clock time (or wall-clock-derived speedups),
#: meaningless to compare across machines with different core counts.
WALL_METRICS = frozenset({"total_s", "cpu_s", "gpu_s", "alignment_s",
                          "overhead_frac"})


def _is_wall_metric(name: str) -> bool:
    """Whether ``name`` is wall-clock-derived (vs modeled/counted)."""
    return (name in WALL_METRICS or name.startswith("wall_")
            or name.endswith("_wall"))


def parse_metric_spec(spec: str) -> tuple[str, str]:
    """Split ``"name"`` / ``"name:higher"`` into ``(name, direction)``."""
    name, sep, direction = spec.partition(":")
    if not sep:
        return name, "lower"
    if direction not in DIRECTIONS:
        raise ValueError(
            f"bad metric spec {spec!r}: direction must be one of "
            f"{DIRECTIONS}")
    return name, direction


def _numeric_metrics(row: dict) -> list[str]:
    return [k for k, v in row.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
            and k not in TAG_KEYS]


def _host_cores_differ(ref: dict, got: dict) -> bool:
    """True when both rows carry ``host_cores`` and they disagree."""
    return ("host_cores" in ref and "host_cores" in got
            and ref["host_cores"] != got["host_cores"])


def compare_rows(ref_rows: dict, got_rows: dict, tolerance: float,
                 metrics: list[tuple[str, str]] | None = None
                 ) -> tuple[list[dict], list[str]]:
    """Compare measured rows against reference rows.

    Returns ``(deltas, failures)``: one delta dict per (row, metric)
    comparison — ``{"row", "metric", "direction", "ref", "got",
    "delta_frac", "verdict"}`` — and a list of human-readable failure
    messages (empty == pass).  A reference row or metric missing from the
    measured side is itself a failure: silently-dropped coverage must not
    read as a pass.

    When a reference row and its measured counterpart both carry a
    ``host_cores`` tag and the values differ, wall-clock metrics (see
    :data:`WALL_METRICS`) get a ``SKIP`` verdict instead of pass/fail —
    they were measured on different machines.  Modeled and counted metrics
    still compare normally.
    """
    deltas: list[dict] = []
    failures: list[str] = []
    for name, ref in sorted(ref_rows.items()):
        if name not in got_rows:
            failures.append(f"{name}: missing from measured results")
            continue
        got = got_rows[name]
        skip_wall = _host_cores_differ(ref, got)
        row_metrics = metrics or [(m, "lower") for m in _numeric_metrics(ref)]
        for metric, direction in row_metrics:
            if metric not in ref:
                continue        # reference does not guard this metric here
            if metric not in got:
                failures.append(f"{name}: metric {metric!r} missing from "
                                f"measured results")
                continue
            ref_val = float(ref[metric])
            got_val = float(got[metric])
            delta_frac = (got_val / ref_val - 1.0) if ref_val else 0.0
            if skip_wall and _is_wall_metric(metric):
                deltas.append({"row": name, "metric": metric,
                               "direction": direction, "ref": ref_val,
                               "got": got_val, "delta_frac": delta_frac,
                               "verdict": "SKIP"})
                continue
            if direction == "higher":
                regressed = got_val < ref_val * (1.0 - tolerance)
            else:
                regressed = got_val > ref_val * (1.0 + tolerance)
            verdict = "REGRESSION" if regressed else "OK"
            deltas.append({"row": name, "metric": metric,
                           "direction": direction, "ref": ref_val,
                           "got": got_val, "delta_frac": delta_frac,
                           "verdict": verdict})
            if regressed:
                failures.append(
                    f"{name}: {metric} {got_val:.4f} vs reference "
                    f"{ref_val:.4f} ({delta_frac:+.1%}, "
                    f"{direction}-is-better, tolerance {tolerance:.0%})")
    return deltas, failures


def render_deltas(deltas: list[dict], tolerance: float) -> str:
    """The per-row/per-metric delta table as aligned text."""
    headers = ["row", "metric", "dir", "reference", "measured", "delta",
               "verdict"]
    rows = [[d["row"], d["metric"], d["direction"], f"{d['ref']:.4f}",
             f"{d['got']:.4f}", f"{d['delta_frac']:+.1%}", d["verdict"]]
            for d in deltas]
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
              for row in rows]
    lines.append(f"(tolerance {tolerance:.0%}; improvements never fail)")
    return "\n".join(lines)


def rows_from(doc: dict, key: str) -> dict:
    """The named row mapping of a bench document."""
    if key not in doc:
        raise KeyError(
            f"key {key!r} not in document (has: {sorted(doc)})")
    rows = doc[key]
    if not isinstance(rows, dict):
        raise TypeError(f"key {key!r} is not a row mapping")
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reference", help="committed reference JSON")
    parser.add_argument("measured", help="freshly-measured bench JSON")
    parser.add_argument("--key", default="workloads",
                        help="row mapping in the reference file")
    parser.add_argument("--measured-key", default=None,
                        help="row mapping in the measured file "
                             "(default: same as --key)")
    parser.add_argument("--metric", action="append", default=None,
                        metavar="NAME[:lower|higher]",
                        help="metric to compare (repeatable); default is "
                             "every numeric metric the reference row holds")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional regression")
    args = parser.parse_args(argv)

    reference = json.loads(Path(args.reference).read_text())
    measured = json.loads(Path(args.measured).read_text())
    ref_rows = rows_from(reference, args.key)
    got_rows = rows_from(measured, args.measured_key or args.key)
    metrics = ([parse_metric_spec(m) for m in args.metric]
               if args.metric else None)

    deltas, failures = compare_rows(ref_rows, got_rows, args.tolerance,
                                    metrics)
    print(render_deltas(deltas, args.tolerance))
    if failures:
        # Every failed comparison is listed — a run with five regressions
        # must name all five, not just the first one encountered.
        print(f"\nBENCH COMPARISON FAILED — {len(failures)} issue(s):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    skipped = sum(1 for d in deltas if d["verdict"] == "SKIP")
    if skipped:
        print(f"bench comparison passed "
              f"({skipped} wall metric(s) skipped: host_cores differ)")
    else:
        print("bench comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
