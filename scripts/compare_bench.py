#!/usr/bin/env python
"""Diff two benchmark JSON files row by row, metric by metric.

The benchmark harness writes ``benchmarks/results/<name>.json`` documents
and each PR commits a ``BENCH_PR<N>.json`` reference; this tool is the one
CLI that compares them.  It prints a per-row/per-metric delta table and
exits non-zero when any guarded metric regresses past the tolerance.

The comparison itself — metric directions, machine tags, the cross-machine
wall-metric skip — lives in :mod:`repro.obs.ledger`, shared with
``check_perf_guard.py``, the performance ledger, and ``repro obs diff``;
this module re-exports the names its callers and tests import.

Metric direction: metrics are lower-is-better by default (seconds, waste
fractions).  Append ``:higher`` to a ``--metric`` spec for higher-is-better
quantities (speedups, throughput) — a regression is then a *drop* past the
tolerance.  Improvements never fail in either direction.

Usage::

    python scripts/compare_bench.py BENCH_PR6.json \
        benchmarks/results/homology_runtime.json \
        --key homology_rows --measured-key workloads --metric total_s

    python scripts/compare_bench.py BENCH_PR7.json \
        benchmarks/results/device_scaling.json \
        --key device_scaling_rows --measured-key workloads \
        --metric total_s --metric speedup_vs_1dev:higher

With no ``--metric``, every numeric metric shared by a reference row and
its measured counterpart is compared (all treated as lower-is-better).

Rows may carry tag keys (currently ``host_cores``) describing the machine
that measured them.  Tags are never compared as metrics; when the reference
and measured rows were produced on machines with different ``host_cores``,
wall-clock metrics are reported with a ``SKIP`` verdict instead of a
pass/fail — comparing wall seconds across core counts is noise, and the
modeled metrics still guard the row.  Every skip is called out with a
one-line note so CI logs show *why* the guard passed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.ledger import (  # noqa: E402
    DIRECTIONS,
    TAG_KEYS,
    WALL_METRICS,
    compare_rows,
    is_wall_metric,
    parse_metric_spec,
    render_deltas,
    rows_from,
    skipped_wall_note,
)

# Historical private aliases, kept for callers that predate the move of
# the comparison machinery into repro.obs.ledger.
_is_wall_metric = is_wall_metric

__all__ = [
    "DIRECTIONS",
    "TAG_KEYS",
    "WALL_METRICS",
    "compare_rows",
    "is_wall_metric",
    "main",
    "parse_metric_spec",
    "render_deltas",
    "rows_from",
    "skipped_wall_note",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reference", help="committed reference JSON")
    parser.add_argument("measured", help="freshly-measured bench JSON")
    parser.add_argument("--key", default="workloads",
                        help="row mapping in the reference file")
    parser.add_argument("--measured-key", default=None,
                        help="row mapping in the measured file "
                             "(default: same as --key)")
    parser.add_argument("--metric", action="append", default=None,
                        metavar="NAME[:lower|higher]",
                        help="metric to compare (repeatable); default is "
                             "every numeric metric the reference row holds")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional regression")
    args = parser.parse_args(argv)

    reference = json.loads(Path(args.reference).read_text())
    measured = json.loads(Path(args.measured).read_text())
    ref_rows = rows_from(reference, args.key)
    got_rows = rows_from(measured, args.measured_key or args.key)
    metrics = ([parse_metric_spec(m) for m in args.metric]
               if args.metric else None)

    deltas, failures = compare_rows(ref_rows, got_rows, args.tolerance,
                                    metrics)
    print(render_deltas(deltas, args.tolerance))
    note = skipped_wall_note(ref_rows, got_rows, deltas)
    if note:
        # Printed pass or fail: a skipped wall guard must be visible in
        # the CI log either way.
        print(note)
    if failures:
        # Every failed comparison is listed — a run with five regressions
        # must name all five, not just the first one encountered.
        print(f"\nBENCH COMPARISON FAILED — {len(failures)} issue(s):",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("bench comparison passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
