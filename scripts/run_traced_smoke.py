#!/usr/bin/env python
"""CI traced smoke run: trace the Table-I "2m" config and bound the cost.

Runs the 2M-analogue clustering workload twice — observation off, then on —
then a traced homology build on the device alignment backend, and writes
these artifacts under ``benchmarks/results/``:

``trace_2m.json``
    The Chrome Trace Event export of the traced run (Perfetto-loadable),
    with the metrics snapshot and span summary embedded in ``otherData``.
``trace_overhead.json``
    ``{"traced_off_s", "traced_on_s", "overhead_pct", ...}`` — consumed by
    ``check_perf_guard.py --max-overhead-pct`` to fail CI when tracing
    stops being near-free.
``trace_2m_summary.txt``
    The ``repro obs summary`` rendering of the trace, for humans.
``attribution_2m.json`` / ``attribution_2m.txt`` / ``critical_path_2m.txt``
    Bottleneck attribution (machine-readable + rendered) and the
    critical-path rendering of the traced run — the JSON report is what
    ``check_perf_guard.py --bottleneck-row`` gates against BENCH_PR9.json.
``ledger/traced_smoke.jsonl``
    One performance-ledger entry per invocation (overhead, wall,
    critical-path seconds), keyed by the run configuration — the
    cross-run trajectory behind ``repro obs ledger``.
``trace_homology_device.json`` / ``trace_homology_device_summary.txt``
    The Chrome Trace export (and rendering) of a homology-graph build run
    with ``--align-backend device``: alignment bins must appear as
    ``device.align_bin`` spans, which this script asserts.

The script also asserts the tracer's own accounting: the root
``gpclust.run`` span must reconcile with the pipeline's reported wall time
within 5%, and both trace documents must pass schema validation.  Exits
non-zero on any violation.

Usage::

    PYTHONPATH=src python scripts/run_traced_smoke.py [--repeats 3]
        [--align-backend device] [--devices 2]

With ``--devices N > 1`` both runs go through a ``DeviceGroup``: the
clustering workload switches to ``exec_mode=multidevice`` and the traced
documents must then carry per-device processes (``device0`` ..
``device{N-1}``), which this script asserts.

With ``--aggregate-backend device`` the clustering run offloads the
inter-pass aggregation and Phase III, and the 2m trace must then carry a
``device.aggregate`` span and ``device.cc.*`` spans — asserted here so CI
notices if the offload silently degrades to the host path.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

from repro.core.pipeline import GpClust
from repro.obs import (
    SUMMARY_SCHEMA_VERSION,
    attribute,
    critical_path,
    observe,
    render_attribution,
    render_critical_path,
    render_summary,
    use_obs,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.ledger import append_ledger
from repro.pipeline.workloads import get_scale, make_runtime_workload, workload_params

RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
WORKLOAD = "2m"
RECONCILE_TOLERANCE = 0.05


def _best_of(repeats: int, fn) -> float:
    """Minimum wall seconds over ``repeats`` runs, GC paused while timed."""
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        finally:
            gc.enable()
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per mode (min is kept)")
    parser.add_argument("--align-backend", default="device",
                        help="alignment backend for the traced homology "
                             "run (auto/host/pool/device)")
    parser.add_argument("--devices", type=int, default=1,
                        help="simulated devices; >1 runs both workloads "
                             "on a DeviceGroup (multidevice exec mode)")
    parser.add_argument("--aggregate-backend", default="auto",
                        choices=["auto", "host", "device"],
                        help="inter-pass aggregation + Phase III backend "
                             "for the clustering run; 'device' asserts the "
                             "offload spans appear in the trace")
    parser.add_argument("--launch-graph", default="auto",
                        choices=["auto", "on", "off"],
                        help="kernel launch-graph capture/replay for the "
                             "shingle hot path; when not 'off' the traced "
                             "run (warm: prior runs primed the process "
                             "graph cache) must replay >90%% of its "
                             "steady-state chunks")
    parser.add_argument("--out-dir", default=str(RESULTS_DIR),
                        help="artifact directory")
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    scale = get_scale()
    graph = make_runtime_workload(WORKLOAD, scale).graph
    params = workload_params(scale).with_overrides(
        devices=args.devices, aggregate_backend=args.aggregate_backend,
        launch_graph=args.launch_graph)
    print(f"workload {WORKLOAD} (scale={scale}): "
          f"{graph.n_vertices} vertices, {graph.n_edges} edges, "
          f"devices={args.devices}, "
          f"aggregate_backend={args.aggregate_backend}, "
          f"launch_graph={args.launch_graph}")

    GpClust(params).run(graph)  # warm-up: page in buffers, prime pools
    off_s = _best_of(args.repeats, lambda: GpClust(params).run(graph))

    ctx = observe()
    result = None

    def traced_run():
        nonlocal ctx, result
        ctx = observe()
        with use_obs(ctx):
            result = GpClust(params).run(graph)

    on_s = _best_of(args.repeats, traced_run)
    overhead_pct = (on_s / off_s - 1.0) * 100.0
    print(f"observation off: {off_s:.4f}s | on: {on_s:.4f}s "
          f"| overhead {overhead_pct:+.2f}%")

    # --- trace artifact -------------------------------------------------
    records = ctx.tracer.records
    doc = write_chrome_trace(
        out_dir / "trace_2m.json", records, ctx.tracer.t0,
        metadata={"workload": WORKLOAD, "scale": scale,
                  "metrics": ctx.metrics.snapshot(),
                  "spans": ctx.tracer.summary()})
    validate_chrome_trace(doc)
    print(f"trace written to {out_dir / 'trace_2m.json'} "
          f"({len(records)} spans)")
    summary_text = render_summary(doc)
    (out_dir / "trace_2m_summary.txt").write_text(summary_text + "\n")
    print(summary_text)

    # --- trace analytics: critical path + bottleneck attribution --------
    failures: list[str] = []
    cp = critical_path(doc)
    (out_dir / "critical_path_2m.txt").write_text(
        render_critical_path(cp) + "\n")
    report = attribute(doc)
    (out_dir / "attribution_2m.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    (out_dir / "attribution_2m.txt").write_text(
        render_attribution(report) + "\n")
    print(f"critical path: {cp['path_s']:.4f}s of {cp['wall_s']:.4f}s "
          f"bounded by {cp['bounding_proc']}/{cp['bounding_track']}; "
          f"top cause: {report['causes'][0]['cause'] if report['causes'] else 'none'}")
    if cp["bounding_proc"] is None:
        failures.append("critical path found no bounding proc")
    if not report["causes"]:
        failures.append("attribution produced no ranked causes")
    # The analysis must describe the run it claims to: its wall and
    # path/idle split reconcile with the tracer's own summary within 5%.
    summary_wall = ctx.tracer.summary()["wall_s"]
    if summary_wall > 0:
        attr_drift = abs(report["wall_s"] - summary_wall) / summary_wall
        split_drift = abs(cp["path_s"] + cp["idle_s"] - cp["wall_s"]) / (
            cp["wall_s"] or 1.0)
        print(f"attribution wall {report['wall_s']:.4f}s vs summary "
              f"{summary_wall:.4f}s (drift {attr_drift:.2%}); "
              f"path+idle split drift {split_drift:.2%}")
        if attr_drift > RECONCILE_TOLERANCE:
            failures.append(
                f"attribution wall {report['wall_s']:.4f}s does not "
                f"reconcile with summary wall {summary_wall:.4f}s "
                f"(drift {attr_drift:.2%})")
        if split_drift > RECONCILE_TOLERANCE:
            failures.append(
                f"critical-path split path {cp['path_s']:.4f}s + idle "
                f"{cp['idle_s']:.4f}s does not reconcile with wall "
                f"{cp['wall_s']:.4f}s")

    # --- launch-graph replay: shingle roofline + hit rate ---------------
    # The traced run is warm (the warm-up and untraced repeats primed the
    # process-wide graph cache), so with capture enabled every steady-state
    # chunk must resolve to a replay.
    gauges = ctx.metrics.snapshot().get("gauges", {})
    g_hits = sum(v for k, v in gauges.items() if k.endswith(".graph.hits"))
    g_misses = sum(v for k, v in gauges.items()
                   if k.endswith(".graph.misses"))
    graph_hit_rate = g_hits / (g_hits + g_misses) if (g_hits + g_misses) else 0.0
    shingle_roof = report["roofline"].get(
        "shingle", {"wall_s": 0.0, "modeled_s": 0.0, "gap_s": 0.0})
    print(f"launch-graph {args.launch_graph}: hit rate {graph_hit_rate:.3f} "
          f"({int(g_hits)} replays / {int(g_misses)} misses); shingle wall "
          f"{shingle_roof['wall_s']:.4f}s, modeled "
          f"{shingle_roof['modeled_s']:.6f}s, gap "
          f"{shingle_roof['gap_s']:.4f}s")
    if args.launch_graph != "off" and graph_hit_rate <= 0.9:
        failures.append(
            f"launch-graph hit rate {graph_hit_rate:.3f} <= 0.9 on the warm "
            f"traced run ({int(g_hits)} hits / {int(g_misses)} misses)")

    # --- reconciliation: root span vs reported wall time ----------------
    # Only meaningful on a single device: a DeviceGroup charges wall
    # buckets per member, so concurrent members make the reported bucket
    # total exceed true wall time (busy > wall under concurrency).
    roots = [r for r in records if r.name == "gpclust.run"]
    if not roots:
        failures.append("trace has no gpclust.run root span")
    elif args.devices > 1:
        print(f"root span {roots[-1].duration:.4f}s (reconciliation "
              f"skipped: per-member bucket charges overlap at "
              f"devices={args.devices})")
    else:
        root_s = roots[-1].duration
        reported_s = result.timings.total
        drift = abs(root_s - reported_s) / reported_s
        print(f"root span {root_s:.4f}s vs reported total {reported_s:.4f}s "
              f"(drift {drift:.2%}, tolerance {RECONCILE_TOLERANCE:.0%})")
        if drift > RECONCILE_TOLERANCE:
            failures.append(
                f"root span {root_s:.4f}s does not reconcile with reported "
                f"wall time {reported_s:.4f}s (drift {drift:.2%})")

    # --- aggregation/Phase III offload spans ----------------------------
    if args.aggregate_backend == "device":
        span_names = {r.name for r in records}
        if "device.aggregate" not in span_names:
            failures.append(
                "device-aggregation trace has no device.aggregate span "
                "(the inter-pass merge did not run on the device)")
        if not any(name.startswith("device.cc.") for name in span_names):
            failures.append(
                "device-aggregation trace has no device.cc.* span "
                "(Phase III did not run as the CC kernels)")

    # --- homology build on the device alignment backend -----------------
    import dataclasses

    from repro.pipeline.workloads import make_homology_workload
    from repro.sequence.homology import build_homology_graph

    protein_set, h_config = make_homology_workload(scale)
    h_config = dataclasses.replace(h_config,
                                   align_backend=args.align_backend,
                                   devices=args.devices)
    h_ctx = observe()
    with use_obs(h_ctx):
        h_result = build_homology_graph(protein_set.sequences, h_config)
    h_records = h_ctx.tracer.records
    h_doc = write_chrome_trace(
        out_dir / "trace_homology_device.json", h_records, h_ctx.tracer.t0,
        metadata={"workload": "homology", "scale": scale,
                  "align_backend": h_result.align_backend,
                  "metrics": h_ctx.metrics.snapshot(),
                  "spans": h_ctx.tracer.summary()})
    validate_chrome_trace(h_doc)
    (out_dir / "trace_homology_device_summary.txt").write_text(
        render_summary(h_doc) + "\n")
    bin_spans = [r for r in h_records if r.name == "device.align_bin"]
    print(f"homology trace ({h_result.align_backend} backend): "
          f"{len(h_records)} spans, {len(bin_spans)} device.align_bin, "
          f"{h_result.n_edges} edges -> "
          f"{out_dir / 'trace_homology_device.json'}")
    if args.align_backend == "device":
        if h_result.align_backend != "device":
            failures.append(
                f"homology run resolved to {h_result.align_backend!r}, "
                f"not 'device'")
        if not bin_spans:
            failures.append(
                "device-backend homology trace has no device.align_bin "
                "spans (alignment bins are not visible as device work)")

    # --- multi-device: every member must appear as its own process ------
    if args.devices > 1:
        want = {f"device{i}" for i in range(args.devices)}
        for label, recs in (("2m", records), ("homology", h_records)):
            procs = {r.proc for r in recs}
            missing = want - procs
            if missing:
                failures.append(
                    f"{label} trace is missing per-device processes "
                    f"{sorted(missing)} (has {sorted(procs)})")

    overhead_doc = {
        "name": "trace_overhead",
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "workload": WORKLOAD,
        "scale": scale,
        "repeats": args.repeats,
        "traced_off_s": round(off_s, 6),
        "traced_on_s": round(on_s, 6),
        "overhead_pct": round(overhead_pct, 4),
        "n_spans": len(records),
    }
    (out_dir / "trace_overhead.json").write_text(
        json.dumps(overhead_doc, indent=2) + "\n")
    print(f"overhead report written to {out_dir / 'trace_overhead.json'}")

    # --- performance ledger ---------------------------------------------
    row_name = f"2m_dev{args.devices}_agg{args.aggregate_backend}"
    ledger_row = {
        "traced_off_s": round(off_s, 6),
        "traced_on_s": round(on_s, 6),
        "overhead_pct": round(overhead_pct, 4),
        "wall_s": round(report["wall_s"], 6),
        "critical_path_s": round(cp["path_s"], 6),
        "critical_path_idle_s": round(cp["idle_s"], 6),
        "n_spans": len(records),
        "launch_graph": args.launch_graph,
        "graph_hit_rate": round(graph_hit_rate, 4),
        "shingle_wall_s": round(shingle_roof["wall_s"], 6),
        "shingle_modeled_s": round(shingle_roof["modeled_s"], 9),
        "shingle_gap_s": round(shingle_roof["gap_s"], 6),
    }
    # Launch-graph comparison rowset: compare_bench.py gates the on-vs-off
    # shingle-class wall delta between two out-dirs of this file.
    (out_dir / "launchgraph_2m.json").write_text(json.dumps({
        "name": "launchgraph_2m",
        "schema_version": SUMMARY_SCHEMA_VERSION,
        "launch_graph": args.launch_graph,
        "workloads": {row_name: {
            "wall_s": ledger_row["wall_s"],
            "shingle_wall_s": ledger_row["shingle_wall_s"],
            "shingle_modeled_s": ledger_row["shingle_modeled_s"],
            "shingle_gap_s": ledger_row["shingle_gap_s"],
            "graph_hit_rate": ledger_row["graph_hit_rate"],
            "traced_off_s": ledger_row["traced_off_s"],
        }},
    }, indent=2) + "\n")
    append_ledger(
        out_dir / "ledger", "traced_smoke", {row_name: ledger_row},
        config={"workload": WORKLOAD, "scale": scale,
                "devices": args.devices,
                "align_backend": args.align_backend,
                "aggregate_backend": args.aggregate_backend},
        host_cores=os.cpu_count())
    print(f"ledger row {row_name} appended under {out_dir / 'ledger'}")

    if failures:
        print("\nTRACED SMOKE FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("traced smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
