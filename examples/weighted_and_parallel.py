#!/usr/bin/env python
"""Advanced features: weighted shingling and component-parallel clustering.

Two capabilities beyond the paper's scope, built on the same machinery:

1. **Weighted sampling** — the paper notes edge weights (e.g. alignment
   scores) are "sometimes available" but stays unweighted.  Here, cores
   connected by many *weak* edges fuse under unweighted Shingling but stay
   separate under weight-proportional (exponential-race) sampling.
2. **Divide-and-conquer** — pClust's connected-component decomposition,
   run with a thread pool (one simulated device per worker).  Produces the
   exact same partition as a single global run.

Run:  python examples/weighted_and_parallel.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import GpClust, ShinglingParams, cluster_by_components
from repro.core.weighted import WeightedGpClust
from repro.graph.weighted import WeightedCSRGraph
from repro.synthdata import PlantedFamilyConfig, planted_family_graph
from repro.util.tables import format_table


def weighted_demo() -> None:
    print("--- weighted shingling " + "-" * 40)
    rng = np.random.default_rng(1)
    edges, weights = [], []
    # Two strong cores...
    for base in (0, 20):
        for i in range(20):
            for j in range(i + 1, 20):
                if rng.random() < 0.9:
                    edges.append((base + i, base + j))
                    weights.append(10.0)
    # ... connected by eight weak (low-alignment-score) bridges.
    for _ in range(8):
        edges.append((int(rng.integers(0, 20)), int(rng.integers(20, 40))))
        weights.append(0.05)
    wgraph = WeightedCSRGraph.from_weighted_edges(
        np.array(edges), np.array(weights), n_vertices=40)

    params = ShinglingParams(c1=60, c2=30, seed=9)
    unweighted = GpClust(params).run(wgraph.csr)
    weighted = WeightedGpClust(params).run(wgraph)

    def fused(labels):
        return "fused" if labels[0] == labels[20] else "separate"

    print(format_table(
        ["variant", "core A vs core B", "#clusters(>=10)"],
        [["unweighted", fused(unweighted.labels),
          str(unweighted.n_clusters(min_size=10))],
         ["weighted", fused(weighted.labels),
          str(weighted.n_clusters(min_size=10))]],
        title="weak-bridge instance"))


def parallel_demo() -> None:
    print("\n--- component-parallel clustering " + "-" * 29)
    planted = planted_family_graph(PlantedFamilyConfig(n_families=48), seed=5)
    graph = planted.graph
    params = ShinglingParams(c1=40, c2=20, seed=2)

    t0 = time.perf_counter()
    single = GpClust(params).run(graph)
    t_single = time.perf_counter() - t0

    rows = [["single global run", f"{t_single:.2f}s", "-"]]
    for workers in (1, 2, 4):
        t0 = time.perf_counter()
        result = cluster_by_components(graph, params, n_workers=workers)
        elapsed = time.perf_counter() - t0
        identical = bool(np.array_equal(result.labels, single.labels))
        rows.append([f"{workers} worker(s)", f"{elapsed:.2f}s",
                     "identical" if identical else "DIFFERENT!"])
        assert identical
    print(format_table(["configuration", "wall time", "vs. single run"],
                       rows, title=f"{graph.n_vertices} vertices, "
                                   f"{graph.n_edges} edges"))
    print("\nevery decomposition returns the exact single-run partition ✔")


if __name__ == "__main__":
    weighted_demo()
    parallel_demo()
