#!/usr/bin/env python
"""Shingling in its original habitat: dense subgraphs of a web-scale graph.

The Shingling heuristic was introduced by Gibson, Kumar & Tomkins (VLDB
2005) to find large dense subgraphs — link farms and communities — in web
host graphs.  This example applies the same gpClust machinery to a skewed
R-MAT graph (the standard synthetic web-graph stand-in), demonstrates the
overlapping reporting mode (the paper's Phase III option 1), and contrasts
it with the partition mode used for protein families.

Run:  python examples/web_communities.py
"""

from __future__ import annotations

import numpy as np

from repro import GpClust, ShinglingParams
from repro.eval import Partition
from repro.graph import compute_graph_stats
from repro.synthdata import rmat_graph
from repro.util.tables import format_count, format_table


def main() -> None:
    # A web-like graph: heavy-tailed degrees, local clustering.
    graph = rmat_graph(scale=13, edge_factor=12, seed=99)
    stats = compute_graph_stats(graph)
    print(stats.render(title="R-MAT 'web' graph"))

    params = ShinglingParams(s1=2, c1=40, s2=2, c2=20, seed=3)

    # Partition mode: every host in at most one community.
    partition_result = GpClust(params).run(graph)
    part = Partition(partition_result.labels)
    sizes = partition_result.cluster_sizes(min_size=5)
    print(f"\npartition mode: {sizes.size} communities of size >= 5, "
          f"largest {sizes[0] if sizes.size else 0}")

    # Overlapping mode: hub hosts may appear in several communities —
    # "the same input vertex can be part of two entirely different shingles
    # and different connected components" (Section III-B).
    overlap_params = params.with_overrides(report_mode="overlapping")
    overlap_result = GpClust(overlap_params).run(graph)
    communities = overlap_result.clusters(min_size=5)
    memberships = sum(c.size for c in communities)
    distinct = (np.unique(np.concatenate(communities)).size
                if communities else 0)
    print(f"overlapping mode: {len(communities)} communities, "
          f"{memberships} memberships over {distinct} distinct hosts "
          f"({memberships - distinct} multi-community memberships)")

    # Density check: detected communities should be far denser than the
    # graph at large.
    rows = []
    background = graph.n_edges / (graph.n_vertices * (graph.n_vertices - 1) / 2)
    for i, community in enumerate(sorted(communities, key=len,
                                         reverse=True)[:5]):
        sub, _ = graph.subgraph(community)
        density = sub.n_edges / (community.size * (community.size - 1) / 2)
        rows.append([f"community {i}", format_count(community.size),
                     f"{density:.3f}", f"{density / background:,.0f}x"])
    print()
    print(format_table(
        ["community", "hosts", "density", "vs. background"], rows,
        title="Densest detected communities"))


if __name__ == "__main__":
    main()
