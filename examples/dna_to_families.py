#!/usr/bin/env python
"""The whole survey, from nucleotides: DNA -> ORFs -> graph -> families.

Walks the paper's complete data path (Section I): a simulated environmental
DNA pool is shotgun-sequenced into reads, reads are six-frame translated
and ORF-called, the putative proteins go through the pGraph-analogue
homology stage, and gpClust reports the protein families.

Run:  python examples/dna_to_families.py
"""

from __future__ import annotations

import numpy as np

from repro import GpClust, ShinglingParams
from repro.eval import Partition, quality_scores
from repro.sequence import SequenceFamilyConfig, build_homology_graph, generate_protein_families
from repro.sequence.translate import extract_orfs, reverse_translate, shotgun_reads
from repro.util.tables import format_percent, format_table


def main() -> None:
    rng = np.random.default_rng(20130520)

    # 1. The hidden truth: protein families living in the environment.
    families = generate_protein_families(
        SequenceFamilyConfig(n_families=8, family_size_median=10.0,
                             ancestor_length=(120, 180)), seed=12)
    print(f"environment: {families.n_sequences} proteins in 8 families "
          f"(+ singletons)")

    # 2. Encode each protein back into genomic DNA, pool it, and shotgun it.
    genome_parts, owners = [], []
    for i, protein in enumerate(families.sequences):
        dna = reverse_translate(protein, rng)
        genome_parts.append(dna)
        owners.append(i)
    print(f"DNA pool: {sum(len(g) for g in genome_parts):,} bp over "
          f"{len(genome_parts)} genomic fragments")

    # 3. Sequence + ORF-call each fragment (reads would normally be
    #    assembled first; fragments here are read-sized already).
    orfs, truth = [], []
    for dna, owner in zip(genome_parts, owners):
        for read in shotgun_reads(dna, n_reads=2,
                                  read_length=min(240, len(dna)),
                                  rng=rng, error_rate=0.002):
            for orf in extract_orfs(read, min_length=40):
                orfs.append(orf)
                truth.append(families.family_labels[owner])
    print(f"ORF calling: {len(orfs)} putative proteins "
          f"(>= 40 residues, six frames)")

    # 4. Homology graph + clustering.
    homology = build_homology_graph(orfs)
    result = GpClust(ShinglingParams(c1=40, c2=20, seed=3)).run(homology.graph)
    print(f"homology: {homology.n_edges} edges; gpClust: "
          f"{result.n_clusters(min_size=3)} clusters of size >= 3")

    # 5. Score against the families the ORFs came from.
    qs = quality_scores(Partition(result.labels),
                        Partition(np.asarray(truth)), min_size=3)
    print()
    print(format_table(
        ["metric", "value"],
        [["PPV", format_percent(qs.ppv)],
         ["Sensitivity", format_percent(qs.sensitivity)]],
        title="recovered families vs. ground truth"))
    assert qs.ppv > 0.9


if __name__ == "__main__":
    main()
