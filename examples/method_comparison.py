#!/usr/bin/env python
"""Method comparison: gpClust vs. GOS k-neighbor vs. single linkage.

Reproduces the paper's Section IV-D comparison in miniature: all methods
cluster the calibrated planted-family benchmark, and are scored against the
ground-truth families on pairwise precision/recall and cluster density.
The GOS baseline runs on its own pipeline's (more sensitive) edge view, as
in the original study; density is evaluated on the shared pGraph-analog
graph for everyone.

Run:  python examples/method_comparison.py
"""

from __future__ import annotations

from repro import GpClust, ShinglingParams
from repro.baselines import (
    gos_kneighbor_clustering,
    single_linkage_clustering,
)
from repro.eval import (
    Partition,
    density_summary,
    partition_stats,
    quality_scores,
    size_distribution,
)
from repro.synthdata import PlantedFamilyConfig, planted_family_graph
from repro.util.tables import format_percent, format_table


def main() -> None:
    planted = planted_family_graph(PlantedFamilyConfig(n_families=40), seed=11)
    graph = planted.graph
    benchmark = Partition(planted.family_labels)
    print(f"benchmark: {graph.n_vertices} sequences, {graph.n_edges} edges, "
          f"{planted.config.n_families} true families")

    partitions = {
        "gpClust": Partition(
            GpClust(ShinglingParams(c1=100, c2=50, seed=5)).run(graph).labels),
        "GOS k-neighbor (k=10)": Partition(
            gos_kneighbor_clustering(planted.gos_graph, k=10)),
        "single linkage": Partition(single_linkage_clustering(graph)),
    }

    rows = []
    for name, part in partitions.items():
        qs = quality_scores(part, benchmark, min_size=20)
        st = partition_stats(part, name, min_size=20)
        dens = density_summary(graph, part, min_size=20)
        rows.append([
            name,
            format_percent(qs.ppv),
            format_percent(qs.sensitivity),
            str(st.n_groups),
            f"{st.n_sequences:,}",
            f"{dens[0]:.2f} ± {dens[1]:.2f}",
        ])
    print()
    print(format_table(
        ["method", "PPV", "SE", "#clusters(>=20)", "#seqs", "density"],
        rows, title="Method comparison vs. ground-truth families"))

    # Figure 5-style size distribution for the two main contenders.
    print()
    dist_rows = []
    d_gp = size_distribution(partitions["gpClust"])
    d_gos = size_distribution(partitions["GOS k-neighbor (k=10)"])
    for label, a, b in zip(d_gp.labels(), d_gp.group_counts,
                           d_gos.group_counts):
        dist_rows.append([label, str(a), str(b)])
    print(format_table(["size bin", "gpClust groups", "GOS groups"],
                       dist_rows, title="Group-size distribution (Fig. 5a)"))


if __name__ == "__main__":
    main()
