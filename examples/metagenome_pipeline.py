#!/usr/bin/env python
"""End-to-end metagenomics pipeline: ORFs -> homology graph -> families.

The paper's motivating workload, from raw sequences up:

1. simulate a metagenomic protein set (families of diverged ORFs plus
   unrelated singletons), written to / read back from FASTA;
2. build the similarity graph with the pGraph analogue (k-mer seed filter +
   batched Smith-Waterman);
3. cluster with gpClust;
4. score the clustering against the known families (Table III's metrics).

Run:  python examples/metagenome_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GpClust, ShinglingParams
from repro.eval import Partition, density_summary, quality_scores
from repro.sequence import (
    HomologyConfig,
    SequenceFamilyConfig,
    build_homology_graph,
    encode,
    generate_protein_families,
    read_fasta,
    write_fasta,
)
from repro.util.tables import format_percent, format_table


def main() -> None:
    # 1. Simulate the survey: 15 families, heavy-tailed sizes, shotgun-style
    #    sequence divergence; plus ~15% unrelated "dark matter" sequences.
    protein_set = generate_protein_families(
        SequenceFamilyConfig(n_families=15, family_size_median=16.0,
                             periphery_divergence=0.45),
        seed=2013)
    print(f"simulated {protein_set.n_sequences} ORFs "
          f"({protein_set.is_core.sum()} core members)")

    # Round-trip through FASTA, as a real pipeline would.
    with tempfile.TemporaryDirectory() as tmp:
        fasta = Path(tmp) / "orfs.fasta"
        write_fasta(protein_set.as_fasta_records(), fasta)
        records = read_fasta(fasta)
    sequences = [encode(seq) for _, seq in records]
    print(f"wrote + reread {len(records)} FASTA records")

    # 2. Homology detection (the pGraph analogue).
    homology = build_homology_graph(
        sequences, HomologyConfig(k=5, min_shared_kmers=2,
                                  min_normalized_score=0.4))
    print(f"homology: {homology.n_candidate_pairs} candidate pairs -> "
          f"{homology.n_edges} edges after Smith-Waterman")

    # 3. Cluster the similarity graph.
    result = GpClust(ShinglingParams(c1=60, c2=30, seed=7)).run(homology.graph)
    clusters = result.clusters(min_size=3)
    print(f"gpClust: {len(clusters)} clusters of size >= 3 in "
          f"{result.timings.total:.2f}s")

    # 4. Score against the ground-truth families.
    test = Partition(result.labels)
    benchmark = Partition(protein_set.family_labels)
    qs = quality_scores(test, benchmark, min_size=3)
    dens = density_summary(homology.graph, test, min_size=3)
    print()
    print(format_table(
        ["metric", "value"],
        [["PPV (precision over pairs)", format_percent(qs.ppv)],
         ["NPV", format_percent(qs.npv)],
         ["Specificity", format_percent(qs.specificity)],
         ["Sensitivity", format_percent(qs.sensitivity)],
         ["Cluster density", f"{dens[0]:.2f} ± {dens[1]:.2f}"]],
        title="Clustering quality vs. true families"))

    # The expected regime (the paper's Table III shape): near-perfect
    # precision, partial recall — clusters are the families' "core sets".
    assert qs.ppv > 0.9
    print("\nclusters are high-precision core sets of the true families ✔")

    # 5. Profile-based expansion — how the paper's benchmark grew the core
    #    sets into full families ("profile-sequence and profile-profile
    #    matching techniques").  Expanding each cluster recruits diverged
    #    periphery members that pairwise alignment missed.
    from repro.sequence import expand_cluster

    expanded_total = 0
    recruits_total = 0
    for members in clusters:
        expanded = expand_cluster(sequences, members,
                                  min_normalized_score=0.25)
        recruits_total += expanded.size - members.size
        expanded_total += expanded.size
    print(f"\nprofile expansion: {recruits_total} additional sequences "
          f"recruited into the {len(clusters)} clusters "
          f"({sum(c.size for c in clusters)} -> {expanded_total} members) — "
          f"the sensitivity gap profile methods close")


if __name__ == "__main__":
    main()
