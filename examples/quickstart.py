#!/usr/bin/env python
"""Quickstart: cluster a synthetic protein similarity graph with gpClust.

Generates a planted-family similarity graph (the stand-in for a metagenomic
homology graph), runs the device-backed two-pass Shingling pipeline, and
prints the clusters, component timings, and a comparison against the serial
baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import GpClust, SerialPClust, ShinglingParams
from repro.synthdata import PlantedFamilyConfig, planted_family_graph
from repro.util.tables import format_seconds, format_table


def main() -> None:
    # 1. A small planted-family graph: 12 "protein families", each with
    #    dense cores and loose periphery, plus spurious-hit noise.
    planted = planted_family_graph(
        PlantedFamilyConfig(n_families=12, family_size_median=90.0), seed=42)
    graph = planted.graph
    print(f"input graph: {graph.n_vertices} vertices, {graph.n_edges} edges")

    # 2. Cluster with gpClust (the simulated-GPU pipeline).  Parameters are
    #    the paper's defaults scaled down: s=2 with fewer random trials.
    params = ShinglingParams(s1=2, c1=60, s2=2, c2=30, seed=1)
    result = GpClust(params).run(graph)

    clusters = result.clusters(min_size=10)
    print(f"\ngpClust found {len(clusters)} clusters of size >= 10 "
          f"(largest: {max(c.size for c in clusters)})")
    print("first three clusters:")
    for cluster in clusters[:3]:
        members = ", ".join(map(str, cluster[:8]))
        more = f", ... ({cluster.size} total)" if cluster.size > 8 else ""
        print(f"  [{members}{more}]")

    # 3. Where did the time go?  (Table I's columns.)
    t = result.timings
    print()
    print(format_table(
        ["component", "seconds"],
        [[name, format_seconds(t.get(key))] for name, key in [
            ("CPU (aggregation + Phase III)", "cpu"),
            ("GPU kernels", "gpu"),
            ("host->device transfer", "data_c2g"),
            ("device->host transfer", "data_g2c"),
        ]] + [["total", format_seconds(t.total)]],
        title="gpClust component breakdown"))

    # 4. The serial reference computes the identical clustering, slower.
    serial = SerialPClust(params).run(graph)
    assert (serial.labels == result.labels).all()
    print(f"\nserial baseline: {format_seconds(serial.timings.total)}s "
          f"-> {serial.timings.total / t.total:.1f}x speedup, identical labels")


if __name__ == "__main__":
    main()
