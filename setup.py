"""Legacy-editable-install shim.

This offline environment has setuptools 65.5 without the ``wheel`` package,
so PEP 660 editable installs (``build_editable`` -> ``bdist_wheel``) fail.
pip falls back to ``setup.py develop`` when this shim is present and no
``[build-system]`` table is declared.
"""

from setuptools import setup

setup()
