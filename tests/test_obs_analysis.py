"""Tests for the trace analytics engine: critical path, attribution, diff.

The critical-path property test exercises randomly-generated span
forests: for any trace, the extracted path length must dominate every
single track's busy time (the path can always follow the busiest track)
while never exceeding wall time (the path is a set of disjoint
timeline stretches).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    SpanRecord,
    attribute,
    critical_path,
    diff_traces,
    render_attribution,
    render_critical_path,
    render_diff,
    to_chrome_trace,
    trace_spans,
    track_busy_seconds,
)
from repro.obs.analysis import leaf_spans


def make_doc(spans):
    """Trace document from ``(name, proc, track, start_s, dur_s)`` tuples."""
    records = [SpanRecord(name, start, start + dur, proc, track)
               for name, proc, track, start, dur in spans]
    return to_chrome_trace(records, 0.0)


# A random "span forest": per track, a sequence of (gap, dur) pairs laid
# out left to right, so spans on one track never overlap (they nest or
# abut in real traces; disjoint is the leaf view the path walks).
track_strategy = st.lists(
    st.tuples(st.floats(0.0, 3.0), st.floats(0.01, 5.0)),
    min_size=1, max_size=6)
forest_strategy = st.lists(track_strategy, min_size=1, max_size=4)


def forest_to_doc(forest):
    spans = []
    for t_idx, segments in enumerate(forest):
        cursor = 0.0
        for s_idx, (gap, dur) in enumerate(segments):
            cursor += gap
            spans.append((f"work_{t_idx}_{s_idx}", f"proc{t_idx}",
                          f"track{t_idx}", cursor, dur))
            cursor += dur
    return make_doc(spans)


class TestCriticalPathProperties:
    @given(forest=forest_strategy)
    @settings(max_examples=100, deadline=None)
    def test_path_bounded_by_track_busy_and_wall(self, forest):
        doc = forest_to_doc(forest)
        cp = critical_path(doc)
        busy = track_busy_seconds(trace_spans(doc))
        max_busy = max(busy.values())
        wall = cp["wall_s"]
        tol = 1e-5  # critical_path rounds its outputs to 6 decimals
        assert cp["path_s"] >= max_busy - tol
        assert cp["path_s"] <= wall + tol
        # The walk partitions the wall into on-path work and idle gaps.
        assert abs(cp["path_s"] + cp["idle_s"] - wall) < tol

    @given(forest=forest_strategy)
    @settings(max_examples=100, deadline=None)
    def test_entries_are_disjoint_and_ordered(self, forest):
        cp = critical_path(forest_to_doc(forest))
        entries = cp["entries"]
        for a, b in zip(entries, entries[1:]):
            # Timeline order; the stretch each entry bounds ends where
            # the next one starts walking (entries never overlap).
            assert a["start_s"] <= b["start_s"] + 1e-9
        assert cp["bounding_proc"] is not None
        assert 0.0 < cp["bounding_share"] <= 1.0 + 1e-9


class TestCriticalPathUnits:
    def test_single_span_is_the_whole_path(self):
        cp = critical_path(make_doc([("run", "main", "main", 0.0, 2.0)]))
        assert cp["path_s"] == 2.0
        assert cp["idle_s"] == 0.0
        assert cp["bounding_proc"] == "main"
        assert cp["n_entries"] == 1

    def test_idle_gap_charged_as_slack(self):
        cp = critical_path(make_doc([
            ("a", "main", "main", 0.0, 1.0),
            ("b", "main", "main", 3.0, 1.0),
        ]))
        assert cp["wall_s"] == 4.0
        assert cp["path_s"] == 2.0
        assert cp["idle_s"] == 2.0
        # Slack lands on the entry that follows the gap.
        assert cp["entries"][1]["slack_s"] == 2.0

    def test_path_hops_to_the_bounding_track(self):
        # device0 works 0..4 while main only brackets the ends; the path
        # must route through device0 and credit it as bounding.
        cp = critical_path(make_doc([
            ("host_setup", "main", "main", 0.0, 1.0),
            ("kernel", "device0", "stream", 0.5, 3.5),
            ("host_teardown", "main", "main", 4.0, 1.0),
        ]))
        assert cp["bounding_proc"] == "device0"
        assert cp["idle_s"] == 0.0
        assert cp["path_s"] == 5.0
        names = [e["name"] for e in cp["entries"]]
        assert names == ["host_setup", "kernel", "host_teardown"]

    def test_nested_spans_walk_leaves_only(self):
        # Scaffolding (outer) must not appear on the path when inner
        # spans tile it.
        cp = critical_path(make_doc([
            ("outer", "main", "main", 0.0, 4.0),
            ("inner_a", "main", "main", 0.0, 2.0),
            ("inner_b", "main", "main", 2.0, 2.0),
        ]))
        assert [e["name"] for e in cp["entries"]] == ["inner_a", "inner_b"]
        assert cp["path_s"] == 4.0

    def test_empty_trace(self):
        cp = critical_path(make_doc([]))
        assert cp["path_s"] == 0.0
        assert cp["bounding_proc"] is None
        assert cp["entries"] == []

    def test_render_merges_repeated_entries(self):
        doc = make_doc([(f"chunk", "device0", "stream", float(i), 1.0)
                        for i in range(10)])
        text = render_critical_path(critical_path(doc))
        assert "chunk" in text
        assert "| 10 |" in text.replace("  ", " ").replace("  ", " ") or \
            "10" in text  # collapsed count column
        assert "bounded by device0/stream" in text


class TestLeafSpans:
    def test_leaves_exclude_parents(self):
        doc = make_doc([
            ("outer", "main", "main", 0.0, 4.0),
            ("inner", "main", "main", 1.0, 2.0),
        ])
        leaves = leaf_spans(trace_spans(doc))
        assert [s["name"] for s in leaves] == ["inner"]

    def test_same_interval_on_other_track_kept(self):
        doc = make_doc([
            ("a", "main", "main", 0.0, 2.0),
            ("b", "device0", "stream", 0.0, 2.0),
        ])
        leaves = leaf_spans(trace_spans(doc))
        assert len(leaves) == 2


class TestAttribution:
    def _doc(self):
        doc = make_doc([
            ("gpclust.run", "main", "main", 0.0, 10.0),
            ("device.shingle_chunk_reduce", "device0", "stream", 0.0, 6.0),
            ("device.upload", "device0", "io", 6.0, 1.0),
            ("device.align_bin", "device0", "stream", 7.0, 2.0),
        ])
        doc["otherData"]["metrics"] = {
            "counters": {
                "device.kernel.shingle_reduce.modeled_s": 2.0,
                "device.kernel.sw_batch.modeled_s": 0.5,
            },
            "gauges": {
                "group.host_link.contended_modeled_s": 0.25,
                "device.align.padding_waste": 0.4,
            },
            "histograms": {},
        }
        return doc

    def test_roofline_and_cause_ranking(self):
        report = attribute(self._doc())
        roof = report["roofline"]
        assert roof["shingle"]["wall_s"] == 6.0
        assert roof["shingle"]["modeled_s"] == 2.0
        assert roof["shingle"]["gap_s"] == 4.0
        assert roof["alignment"]["gap_s"] == 1.5
        causes = report["causes"]
        assert causes[0]["cause"] == "roofline_gap:shingle"
        assert causes[0]["class"] == "shingle"
        assert [c["rank"] for c in causes] == list(range(1, len(causes) + 1))
        slugs = {c["cause"] for c in causes}
        # The dispatch slug splits each gap into "not explained by link
        # traffic"; with zero transfer overlap it equals the full gap and
        # ranks right behind it, displacing the small contention/padding
        # causes from the top five (they are still considered).
        assert "dispatch_overhead:shingle" in slugs
        assert "dispatch_overhead:alignment" in slugs
        by_slug = {c["cause"]: c for c in causes}
        assert (by_slug["dispatch_overhead:shingle"]["seconds"]
                <= by_slug["roofline_gap:shingle"]["seconds"])
        assert report["n_causes_considered"] >= 7
        # Shares are fractions of wall.
        assert all(0.0 <= c["share"] <= 1.0 for c in causes)

    def test_caps_at_five_causes(self):
        report = attribute(self._doc())
        assert len(report["causes"]) <= 5
        assert report["n_causes_considered"] >= len(report["causes"])

    def test_reconciliation_against_embedded_summary(self):
        doc = self._doc()
        doc["otherData"]["spans"] = {"wall_s": 10.0}
        report = attribute(doc)
        rec = report["reconciliation"]
        assert rec["summary_wall_s"] == 10.0
        assert rec["wall_drift_frac"] <= 0.05
        assert rec["busy_s"] > 0.0

    def test_metrics_override(self):
        report = attribute(self._doc(), metrics={"counters": {},
                                                 "gauges": {},
                                                 "histograms": {}})
        # No modeled seconds: the whole class wall time is the gap.
        assert report["roofline"]["shingle"]["gap_s"] == 6.0
        assert report["roofline"]["shingle"]["ratio"] is None

    def test_render_attribution(self):
        text = render_attribution(attribute(self._doc()))
        assert "per-process utilization" in text
        assert "roofline" in text
        assert "top places this run lost time" in text
        assert "roofline_gap:shingle" in text


class TestAttributionCommittedTrace:
    """Pin the dispatch slug against the committed mini trace.

    mini_trace_a.json holds device.upload on io at [0, 0.1]s,
    device.shingle_chunk_reduce on stream at [0.1, 0.5]s, plus host-side
    gpclust.run/aggregate.merge_partials spans.  With the metrics zeroed
    the shingle gap is the full 0.4s device wall, and — with zero overlap
    between the transfer and the shingle interval — dispatch_overhead must
    claim exactly that gap, not a share diluted by the upload time.
    """

    def _load(self):
        import json
        from pathlib import Path
        path = Path(__file__).parent / "data" / "mini_trace_a.json"
        return json.loads(path.read_text())

    def test_dispatch_overhead_equals_unoverlapped_gap(self):
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        report = attribute(self._load(), metrics=empty)
        roof = report["roofline"]["shingle"]
        assert roof["wall_s"] == pytest.approx(0.4)
        assert roof["gap_s"] == pytest.approx(0.4)
        by_slug = {c["cause"]: c for c in report["causes"]}
        assert "dispatch_overhead:shingle" in by_slug
        assert by_slug["dispatch_overhead:shingle"]["seconds"] == \
            pytest.approx(0.4)

    def test_transfer_overlap_discounts_dispatch(self):
        # Shift the upload to overlap the shingle interval: the dispatch
        # slug must shrink by exactly the overlapped seconds while the
        # roofline gap itself is unchanged.
        doc = self._load()
        for ev in doc["traceEvents"]:
            if ev.get("name") == "device.upload":
                ev["ts"] = 150000.0  # [0.15, 0.25]s, inside the reduce span
        empty = {"counters": {}, "gauges": {}, "histograms": {}}
        report = attribute(doc, metrics=empty)
        assert report["roofline"]["shingle"]["gap_s"] == pytest.approx(0.4)
        by_slug = {c["cause"]: c for c in report["causes"]}
        assert by_slug["dispatch_overhead:shingle"]["seconds"] == \
            pytest.approx(0.3)


class TestDiff:
    def test_diff_totals_and_new_gone(self):
        a = make_doc([("work", "main", "main", 0.0, 1.0),
                      ("old_only", "main", "main", 1.0, 0.5)])
        b = make_doc([("work", "main", "main", 0.0, 3.0),
                      ("new_only", "device0", "stream", 0.0, 0.25)])
        diff = diff_traces(a, b)
        rows = {r["name"]: r for r in diff["spans"]}
        assert rows["work"]["delta_s"] == 2.0
        assert rows["work"]["delta_frac"] == 2.0
        assert rows["old_only"]["b_s"] == 0.0
        assert rows["new_only"]["a_s"] == 0.0
        assert rows["new_only"]["delta_frac"] is None
        # Ranked by |delta|.
        assert diff["spans"][0]["name"] == "work"
        assert diff["wall"]["a_s"] == 1.5
        assert diff["wall"]["b_s"] == 3.0

    def test_render_diff_marks_new_and_gone(self):
        a = make_doc([("gone_span", "main", "main", 0.0, 1.0)])
        b = make_doc([("new_span", "main", "main", 0.0, 1.0)])
        text = render_diff(diff_traces(a, b))
        assert "new" in text and "gone" in text
        assert "per-process busy deltas" in text
