"""Tests for the serial shingling reference."""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.serial import serial_shingle_pass, serial_top_s
from repro.util.mixhash import fold_fingerprint


class TestSerialTopS:
    def test_matches_sorted(self):
        neighbors = [9, 4, 17, 2, 30]
        a, b, prime = 37, 11, 101
        top = serial_top_s(neighbors, a, b, prime, 3)
        expected = sorted(((a * v + b) % prime, v) for v in neighbors)[:3]
        assert top == expected

    def test_short_list(self):
        top = serial_top_s([5], 3, 1, 101, 2)
        assert top == [((3 * 5 + 1) % 101, 5)]

    def test_empty_list(self):
        assert serial_top_s([], 3, 1, 101, 2) == []

    @pytest.mark.parametrize("s", [1, 2, 4, 8])
    def test_sizes(self, s):
        neighbors = list(range(20))
        top = serial_top_s(neighbors, 7, 3, 2_147_483_659, s)
        assert len(top) == min(s, 20)
        hashes = [h for h, _ in top]
        assert hashes == sorted(hashes)


class TestSerialShinglePass:
    def _pass(self, lists, s=2, c=6, seed=0):
        params = ShinglingParams(s1=s, c1=c, s2=s, c2=c, seed=seed)
        cfg = params.pass_config(1)
        indptr = np.zeros(len(lists) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(x) for x in lists])
        flat = (np.concatenate([np.asarray(x, dtype=np.int64) for x in lists])
                if any(lists) else np.empty(0, dtype=np.int64))
        return serial_shingle_pass(indptr, flat, cfg), cfg

    def test_short_lists_generate_no_shingles(self):
        result, _ = self._pass([[5], [], [1, 2]])
        gens = set()
        for i in range(result.n_shingles):
            gens.update(result.gen_graph.neighbors(i).tolist())
        assert gens == {2}

    def test_shingle_count_upper_bound(self):
        result, cfg = self._pass([[1, 2, 3], [4, 5, 6]], c=5)
        # each qualifying list yields exactly c shingle occurrences
        assert result.gen_graph.nnz == 2 * 5
        assert result.n_shingles <= 10

    def test_identical_lists_share_all_shingles(self):
        result, _ = self._pass([[7, 8, 9], [7, 8, 9]], c=8)
        for i in range(result.n_shingles):
            assert list(result.gen_graph.neighbors(i)) == [0, 1]

    def test_disjoint_lists_share_no_shingles(self):
        result, _ = self._pass([[1, 2, 3], [10, 11, 12]], c=8)
        for i in range(result.n_shingles):
            assert result.gen_graph.neighbors(i).size == 1

    def test_members_are_subset_of_list(self):
        lists = [[3, 7, 11, 15], [2, 4, 6]]
        result, _ = self._pass(lists)
        for i in range(result.n_shingles):
            gens = result.gen_graph.neighbors(i)
            members = set(result.members[i].tolist())
            for g in gens:
                assert members <= set(lists[g])

    def test_fingerprints_sorted_unique(self):
        result, _ = self._pass([[1, 2, 3, 4], [2, 3, 4, 5]], c=10)
        fps = result.fingerprints
        assert np.all(np.diff(fps.astype(np.uint64)) > 0)

    def test_fingerprint_reproducible(self):
        lists = [[4, 8, 15, 16, 23, 42]]
        result, cfg = self._pass(lists, c=3)
        pair = cfg.hash_pairs[0]
        top = serial_top_s(lists[0], pair.a, pair.b, cfg.prime, 2)
        fp = fold_fingerprint([v for _, v in top], int(cfg.salts[0]))
        assert fp in result.fingerprints

    def test_n_input_segments_recorded(self):
        result, _ = self._pass([[1, 2], [3, 4], []])
        assert result.n_input_segments == 3

    def test_next_pass_input_shape(self):
        result, _ = self._pass([[1, 2, 3], [1, 2, 3]], c=4)
        indptr, elements = result.next_pass_input()
        assert indptr[-1] == elements.size == result.gen_graph.nnz
