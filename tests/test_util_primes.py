"""Tests for repro.util.primes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.primes import DEFAULT_PRIME, is_probable_prime, next_prime, random_prime

KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 101, 104729, 2_147_483_647, 2_147_483_659]
KNOWN_COMPOSITES = [4, 6, 9, 15, 100, 104730, 2_147_483_649,
                    3215031751,  # strong pseudoprime to bases 2,3,5,7
                    341, 561, 645, 1105]  # Fermat pseudoprimes base 2


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c):
        assert not is_probable_prime(c)

    @pytest.mark.parametrize("n", [-5, -1, 0, 1])
    def test_small_non_primes(self, n):
        assert not is_probable_prime(n)

    def test_agrees_with_sieve_below_10000(self):
        limit = 10_000
        sieve = np.ones(limit, dtype=bool)
        sieve[:2] = False
        for i in range(2, int(limit ** 0.5) + 1):
            if sieve[i]:
                sieve[i * i::i] = False
        for n in range(limit):
            assert is_probable_prime(n) == bool(sieve[n]), n

    @given(st.integers(min_value=2, max_value=2**40))
    @settings(max_examples=200)
    def test_product_of_two_factors_is_composite(self, n):
        # n*(n+1) is never prime for n >= 2.
        assert not is_probable_prime(n * (n + 1))


class TestNextPrime:
    def test_next_prime_basic(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(10) == 11
        assert next_prime(13) == 17

    def test_default_prime_is_the_next_prime_after_2_31(self):
        assert DEFAULT_PRIME == next_prime(2**31)
        assert is_probable_prime(DEFAULT_PRIME)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50)
    def test_result_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n
        assert is_probable_prime(p)


class TestRandomPrime:
    def test_bit_width(self, rng):
        for bits in (8, 16, 24, 31):
            p = random_prime(bits, rng)
            assert p.bit_length() <= bits
            assert is_probable_prime(p)

    def test_rejects_tiny_widths(self, rng):
        with pytest.raises(ValueError):
            random_prime(1, rng)

    def test_deterministic_for_seeded_rng(self):
        a = random_prime(20, np.random.default_rng(1))
        b = random_prime(20, np.random.default_rng(1))
        assert a == b
