"""Unit tests for the span tracer: nesting, export, and the no-op contract."""

import json
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    NULL_OBS,
    NULL_TRACER,
    SUMMARY_SCHEMA_VERSION,
    ObsContext,
    SpanRecord,
    Tracer,
    get_obs,
    observe,
    timed,
    to_chrome_trace,
    traced,
    use_obs,
    validate_chrome_trace,
    worker_tracer,
    write_chrome_trace,
)
from repro.obs.tracer import NULL_SPAN


class FakeClock:
    """Deterministic clock: advances by a fixed step per read."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_span_records_interval_and_attrs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", batch=3):
            pass
        (record,) = tracer.records
        assert record.name == "work"
        assert record.end > record.start
        assert record.attrs == {"batch": 3}
        assert record.proc == "main"
        assert record.track == "main"

    def test_set_attaches_mid_span_attrs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", a=1) as span:
            span.set(b=2)
        (record,) = tracer.records
        assert record.attrs == {"a": 1, "b": 2}

    def test_record_direct(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("manual", 2.0, 5.0, track="stream_0",
                      attrs={"bytes": 10})
        (record,) = tracer.records
        assert record.duration == 3.0
        assert record.track == "stream_0"

    def test_summary_aggregates_by_name(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("inner"):
                pass
        summary = tracer.summary()
        assert summary["schema_version"] == SUMMARY_SCHEMA_VERSION
        assert summary["n_spans"] == 3
        assert summary["spans"]["inner"]["count"] == 3
        # v2 adds busy_s while keeping every v1 key.
        assert summary["busy_s"] > 0.0
        assert {"wall_s", "n_spans", "spans"} <= summary.keys()

    @given(depths=st.lists(st.integers(1, 6), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_nesting_order_and_containment(self, depths):
        """Nested spans close inner-first, and every child interval lies
        inside its parent's — for any nesting profile."""
        tracer = Tracer(clock=FakeClock())

        def nest(depth: int) -> None:
            with tracer.span(f"level{depth}"):
                if depth > 1:
                    nest(depth - 1)

        for depth in depths:
            nest(depth)

        records = tracer.records
        assert len(records) == sum(depths)
        # Records append at span close: within one nest() call they appear
        # deepest-first, with strictly containing intervals.
        cursor = 0
        for depth in depths:
            chunk = records[cursor:cursor + depth]
            cursor += depth
            for child, parent in zip(chunk, chunk[1:]):
                assert parent.start < child.start
                assert child.end < parent.end
            names = [r.name for r in chunk]
            assert names == [f"level{i}" for i in range(1, depth + 1)]

    def test_spans_from_threads_keep_track_names(self):
        import threading

        tracer = Tracer(clock=FakeClock())

        def work():
            with tracer.span("threaded"):
                pass

        t = threading.Thread(target=work, name="stream_7")
        t.start()
        t.join()
        (record,) = tracer.records
        assert record.track == "stream_7"


class TestNullTracer:
    def test_span_returns_shared_singleton(self):
        """Disabled-mode spans allocate nothing: every call returns the
        same object (the ScratchPool-style zero-allocation contract)."""
        first = NULL_TRACER.span("a", x=1)
        second = NULL_TRACER.span("b")
        assert first is second is NULL_SPAN
        assert NULL_TRACER.drain() is NULL_TRACER.drain()

    def test_noop_records_nothing(self):
        with NULL_TRACER.span("work"):
            pass
        NULL_TRACER.record("manual", 0.0, 1.0)
        assert NULL_TRACER.records == []
        assert NULL_TRACER.summary()["n_spans"] == 0
        assert not NULL_TRACER.enabled

    def test_null_tracer_still_has_a_clock(self):
        assert NULL_TRACER.clock() >= 0.0


class TestTimed:
    def test_measures_even_when_disabled(self):
        with timed(NULL_TRACER, "stage") as stage:
            pass
        assert stage.elapsed >= 0.0
        assert NULL_TRACER.records == []

    def test_records_span_when_enabled(self):
        tracer = Tracer(clock=FakeClock())
        with timed(tracer, "stage", n=4) as stage:
            stage.set(m=5)
        assert stage.elapsed == 1.0
        (record,) = tracer.records
        assert record.name == "stage"
        assert record.attrs == {"n": 4, "m": 5}


class TestWorkerTracer:
    def test_disabled_returns_null(self):
        assert worker_tracer(False) is NULL_TRACER

    def test_enabled_labels_proc_by_pid(self):
        import os

        tracer = worker_tracer(True, "sw-worker")
        assert tracer.proc == f"sw-worker-{os.getpid()}"

    def test_records_pickle_round_trip(self):
        record = SpanRecord("shard", 1.0, 2.5, "sw-worker-7", "main",
                            {"shard": 3})
        clone = pickle.loads(pickle.dumps(record))
        assert clone.name == "shard"
        assert clone.duration == 1.5
        assert clone.attrs == {"shard": 3}

    def test_absorb_merges_worker_records(self):
        parent = Tracer(clock=FakeClock())
        worker = Tracer(clock=FakeClock(), proc="sw-worker-1")
        with worker.span("remote"):
            pass
        parent.absorb(worker.drain())
        assert [r.proc for r in parent.records] == ["sw-worker-1"]
        assert worker.records == []


class TestTracedDecorator:
    def test_uses_ambient_tracer(self):
        @traced("decorated")
        def fn(x):
            return x + 1

        assert fn(1) == 2           # ambient is NULL_OBS: no-op
        ctx = observe()
        with use_obs(ctx):
            assert fn(2) == 3
        assert [r.name for r in ctx.tracer.records] == ["decorated"]

    def test_ambient_context_restored(self):
        ctx = observe()
        with use_obs(ctx):
            assert get_obs() is ctx
        assert get_obs() is NULL_OBS

    def test_obs_context_enabled_flag(self):
        assert not NULL_OBS.enabled
        assert observe().enabled
        assert ObsContext(tracer=Tracer()).enabled


class TestChromeTrace:
    def _tracer_with_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", batch=0):
            with tracer.span("inner"):
                pass
        tracer.record("shard", 0.5, 1.5, proc="sw-worker-9")
        return tracer

    def test_export_validates(self):
        tracer = self._tracer_with_spans()
        doc = to_chrome_trace(tracer.records, tracer.t0)
        validate_chrome_trace(doc)

    def test_processes_and_threads_are_named(self):
        tracer = self._tracer_with_spans()
        doc = to_chrome_trace(tracer.records, tracer.t0)
        events = doc["traceEvents"]
        procs = {e["args"]["name"]: e["pid"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert procs["main"] == 1
        assert "sw-worker-9" in procs
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner", "shard"}
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_attrs_become_args(self):
        tracer = self._tracer_with_spans()
        doc = to_chrome_trace(tracer.records, tracer.t0)
        outer = next(e for e in doc["traceEvents"]
                     if e.get("name") == "outer" and e["ph"] == "X")
        assert outer["args"] == {"batch": 0}

    def test_empty_trace_still_valid(self):
        doc = to_chrome_trace([], 0.0)
        validate_chrome_trace(doc)

    def test_write_and_load_round_trip(self, tmp_path):
        from repro.obs import load_trace

        tracer = self._tracer_with_spans()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer.records, tracer.t0,
                           metadata={"command": "test"})
        doc = load_trace(path)
        assert doc["otherData"]["command"] == "test"
        assert doc["otherData"]["schema_version"] == 1

    def test_validate_rejects_malformed(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Q", "name": "x",
                                                    "pid": 1, "tid": 1}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 9, "tid": 1,
                 "ts": 0, "dur": 1}]})  # pid never named
        with pytest.raises(ValueError):
            validate_chrome_trace({"no_events": []})

    def test_numpy_attrs_serialize(self):
        import numpy as np

        tracer = Tracer(clock=FakeClock())
        with tracer.span("np", count=np.int64(7), frac=np.float64(0.5)):
            pass
        doc = to_chrome_trace(tracer.records, tracer.t0)
        json.dumps(doc)  # must be JSON-native after _jsonable coercion


class TestSummaryReport:
    def test_summarize_and_render(self):
        from repro.obs import render_summary, summarize_trace

        tracer = Tracer(clock=FakeClock())
        for _ in range(2):
            with tracer.span("busy"):
                pass
        doc = to_chrome_trace(tracer.records, tracer.t0)
        agg = summarize_trace(doc)
        assert agg["n_spans"] == 2
        assert agg["rows"][0]["name"] == "busy"
        text = render_summary(doc)
        assert "busy" in text and "wall" in text

    def test_per_process_table_breaks_out_p2p(self):
        from repro.obs import render_summary, summarize_trace

        records = [
            SpanRecord("kernel", 0.0, 2.0, "device0", "stream"),
            SpanRecord("device.p2p_copy", 0.5, 1.0, "device1", "io"),
            SpanRecord("kernel", 1.0, 2.0, "device1", "stream"),
        ]
        doc = to_chrome_trace(records, 0.0)
        procs = {p["proc"]: p for p in summarize_trace(doc)["procs"]}
        assert procs["device0"]["p2p_s"] == 0.0
        assert procs["device1"]["p2p_s"] == 0.5
        # p2p copies count toward the destination's busy time too.
        assert procs["device1"]["busy_s"] == 1.5
        text = render_summary(doc)
        assert "p2p ms" in text
