"""Unit tests for scripts/compare_bench.py — the bench diff tool."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from compare_bench import (  # noqa: E402
    compare_rows,
    main,
    parse_metric_spec,
    render_deltas,
    rows_from,
)


class TestParseMetricSpec:
    def test_bare_name_defaults_lower(self):
        assert parse_metric_spec("total_s") == ("total_s", "lower")

    def test_explicit_directions(self):
        assert parse_metric_spec("speedup_vs_1dev:higher") == \
            ("speedup_vs_1dev", "higher")
        assert parse_metric_spec("total_s:lower") == ("total_s", "lower")

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            parse_metric_spec("total_s:fastest")


class TestCompareRows:
    REF = {"w1": {"total_s": 1.0, "speedup": 2.0},
           "w2": {"total_s": 5.0}}

    def test_identical_passes(self):
        deltas, failures = compare_rows(self.REF, self.REF, 0.15)
        assert failures == []
        assert all(d["verdict"] == "OK" for d in deltas)

    def test_lower_is_better_regression(self):
        got = {"w1": {"total_s": 1.5, "speedup": 2.0},
               "w2": {"total_s": 5.0}}
        _, failures = compare_rows(self.REF, got, 0.15,
                                   metrics=[("total_s", "lower")])
        assert len(failures) == 1
        assert "w1" in failures[0]

    def test_lower_is_better_improvement_never_fails(self):
        got = {"w1": {"total_s": 0.1, "speedup": 2.0},
               "w2": {"total_s": 0.1}}
        _, failures = compare_rows(self.REF, got, 0.15)
        assert failures == []

    def test_higher_is_better_regression_is_a_drop(self):
        got = {"w1": {"total_s": 1.0, "speedup": 1.2},
               "w2": {"total_s": 5.0}}
        _, failures = compare_rows(self.REF, got, 0.15,
                                   metrics=[("speedup", "higher")])
        assert len(failures) == 1
        # A higher speedup is an improvement, not a regression.
        got["w1"]["speedup"] = 10.0
        _, failures = compare_rows(self.REF, got, 0.15,
                                   metrics=[("speedup", "higher")])
        assert failures == []

    def test_within_tolerance_passes(self):
        got = {"w1": {"total_s": 1.1, "speedup": 2.0},
               "w2": {"total_s": 5.0}}
        _, failures = compare_rows(self.REF, got, 0.15)
        assert failures == []

    def test_missing_row_is_a_failure(self):
        got = {"w1": {"total_s": 1.0, "speedup": 2.0}}
        _, failures = compare_rows(self.REF, got, 0.15)
        assert any("w2" in f and "missing" in f for f in failures)

    def test_missing_metric_is_a_failure(self):
        got = {"w1": {"speedup": 2.0}, "w2": {"total_s": 5.0}}
        _, failures = compare_rows(self.REF, got, 0.15,
                                   metrics=[("total_s", "lower")])
        assert any("w1" in f and "total_s" in f for f in failures)

    def test_metric_absent_from_reference_is_skipped(self):
        # A guarded metric only some rows carry does not fail the others.
        _, failures = compare_rows(self.REF, dict(self.REF), 0.15,
                                   metrics=[("speedup", "higher")])
        assert failures == []

    def test_non_numeric_metrics_ignored_by_default(self):
        ref = {"w": {"total_s": 1.0, "label": "warm", "ok": True}}
        deltas, failures = compare_rows(ref, ref, 0.15)
        assert failures == []
        assert [d["metric"] for d in deltas] == ["total_s"]

    def test_all_regressions_reported_not_just_first(self):
        # Two rows, two regressed metrics each — all four must be listed.
        ref = {"w1": {"total_s": 1.0, "cc_rounds": 4.0},
               "w2": {"total_s": 2.0, "cc_rounds": 3.0}}
        got = {"w1": {"total_s": 9.0, "cc_rounds": 9.0},
               "w2": {"total_s": 9.0, "cc_rounds": 9.0}}
        _, failures = compare_rows(ref, got, 0.15)
        assert len(failures) == 4
        for row in ("w1", "w2"):
            for metric in ("total_s", "cc_rounds"):
                assert any(row in f and metric in f for f in failures)


class TestHostCoresTag:
    def test_tag_never_compared_as_metric(self):
        ref = {"w": {"total_s": 1.0, "host_cores": 1}}
        got = {"w": {"total_s": 1.0, "host_cores": 64}}
        deltas, failures = compare_rows(ref, got, 0.15)
        assert failures == []
        assert "host_cores" not in [d["metric"] for d in deltas]

    def test_wall_metrics_skipped_when_host_cores_differ(self):
        ref = {"w": {"total_s": 1.0, "wall_speedup_vs_1dev": 2.0,
                     "modeled_device_s": 0.01, "host_cores": 1}}
        got = {"w": {"total_s": 9.0, "wall_speedup_vs_1dev": 0.5,
                     "modeled_device_s": 0.01, "host_cores": 8}}
        deltas, failures = compare_rows(ref, got, 0.15)
        # Wall regressions on a different machine are noise, not failures.
        assert failures == []
        verdicts = {d["metric"]: d["verdict"] for d in deltas}
        assert verdicts["total_s"] == "SKIP"
        assert verdicts["wall_speedup_vs_1dev"] == "SKIP"
        assert verdicts["modeled_device_s"] == "OK"

    def test_modeled_metrics_still_guard_across_machines(self):
        ref = {"w": {"modeled_device_s": 0.01, "host_cores": 1}}
        got = {"w": {"modeled_device_s": 0.09, "host_cores": 8}}
        _, failures = compare_rows(ref, got, 0.15)
        assert len(failures) == 1 and "modeled_device_s" in failures[0]

    def test_same_host_cores_compares_wall_normally(self):
        ref = {"w": {"total_s": 1.0, "host_cores": 4}}
        got = {"w": {"total_s": 9.0, "host_cores": 4}}
        _, failures = compare_rows(ref, got, 0.15)
        assert len(failures) == 1 and "total_s" in failures[0]

    def test_untagged_rows_compare_wall_normally(self):
        # Pre-PR8 references carry no tag: behavior is unchanged.
        ref = {"w": {"total_s": 1.0}}
        got = {"w": {"total_s": 9.0, "host_cores": 8}}
        _, failures = compare_rows(ref, got, 0.15)
        assert len(failures) == 1


class TestRendering:
    def test_table_mentions_every_comparison(self):
        deltas, _ = compare_rows(TestCompareRows.REF, TestCompareRows.REF,
                                 0.15)
        text = render_deltas(deltas, 0.15)
        assert "w1" in text and "w2" in text
        assert "total_s" in text and "speedup" in text
        assert "improvements never fail" in text

    def test_rows_from_validates(self):
        assert rows_from({"workloads": {"a": {}}}, "workloads") == {"a": {}}
        with pytest.raises(KeyError):
            rows_from({"other": {}}, "workloads")
        with pytest.raises(TypeError):
            rows_from({"workloads": [1, 2]}, "workloads")


class TestCli:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        ref = self._write(tmp_path, "ref.json",
                          {"rows": {"w": {"total_s": 1.0}}})
        got = self._write(tmp_path, "got.json",
                          {"workloads": {"w": {"total_s": 1.02}}})
        rc = main([ref, got, "--key", "rows", "--measured-key", "workloads"])
        assert rc == 0
        assert "bench comparison passed" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        ref = self._write(tmp_path, "ref.json",
                          {"workloads": {"w": {"speedup": 2.0}}})
        got = self._write(tmp_path, "got.json",
                          {"workloads": {"w": {"speedup": 1.0}}})
        rc = main([ref, got, "--metric", "speedup:higher",
                   "--tolerance", "0.15"])
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err

    def test_failure_message_lists_every_regressed_metric(self, tmp_path,
                                                          capsys):
        ref = self._write(tmp_path, "ref.json", {"workloads": {
            "w1": {"total_s": 1.0, "cc_rounds": 4.0},
            "w2": {"total_s": 2.0}}})
        got = self._write(tmp_path, "got.json", {"workloads": {
            "w1": {"total_s": 9.0, "cc_rounds": 9.0},
            "w2": {"total_s": 9.0}}})
        rc = main([ref, got])
        assert rc == 1
        err = capsys.readouterr().err
        assert "3 issue(s)" in err
        assert err.count("total_s") == 2 and "cc_rounds" in err
        assert "w1" in err and "w2" in err

    def test_cross_machine_wall_skip_passes_cli(self, tmp_path, capsys):
        ref = self._write(tmp_path, "ref.json", {"workloads": {
            "w": {"total_s": 1.0, "host_cores": 1}}})
        got = self._write(tmp_path, "got.json", {"workloads": {
            "w": {"total_s": 9.0, "host_cores": 8}}})
        rc = main([ref, got])
        assert rc == 0
        out = capsys.readouterr().out
        assert "SKIP" in out and "host_cores differ" in out
