"""Tests for the generalized suffix array and the maximal-match filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import AMINO_ACIDS, encode
from repro.sequence.homology import HomologyConfig, build_homology_graph
from repro.sequence.suffix import (
    GeneralizedSuffixArray,
    build_lcp_array,
    build_suffix_array,
    candidate_pairs_suffix,
)

protein_strings = st.text(alphabet=AMINO_ACIDS[:6], min_size=0, max_size=40)


def reference_suffix_array(text):
    n = len(text)
    suffixes = sorted(range(n), key=lambda i: list(text[i:]))
    return np.array(suffixes, dtype=np.int64)


class TestSuffixArray:
    def test_banana_style(self):
        text = encode("ABAAB".replace("B", "R")).astype(np.int64)
        sa = build_suffix_array(text)
        assert np.array_equal(sa, reference_suffix_array(text.tolist()))

    def test_empty_and_single(self):
        assert build_suffix_array(np.array([], dtype=np.int64)).size == 0
        assert list(build_suffix_array(np.array([3]))) == [0]

    def test_repetitive_text(self):
        text = np.zeros(50, dtype=np.int64)  # "AAAA..."
        sa = build_suffix_array(text)
        # shortest suffix sorts first
        assert np.array_equal(sa, np.arange(49, -1, -1))

    @given(protein_strings)
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_property(self, s):
        text = encode(s).astype(np.int64)
        sa = build_suffix_array(text)
        assert np.array_equal(sa, reference_suffix_array(text.tolist()))

    @given(protein_strings)
    @settings(max_examples=80, deadline=None)
    def test_lcp_correct_property(self, s):
        text = encode(s).astype(np.int64)
        sa = build_suffix_array(text)
        lcp = build_lcp_array(text, sa)
        tl = text.tolist()
        for r in range(1, len(tl)):
            a, b = tl[sa[r - 1]:], tl[sa[r]:]
            expected = 0
            while (expected < len(a) and expected < len(b)
                   and a[expected] == b[expected]):
                expected += 1
            assert lcp[r] == expected


class TestGeneralizedSuffixArray:
    def test_separators_prevent_cross_matches(self):
        # Without unique separators, "AC|CA" could match across boundary.
        gsa = GeneralizedSuffixArray([encode("ACCC"), encode("CCAA")])
        assert gsa.text.size == 10  # 4 + 1 + 4 + 1
        assert gsa.owner.size == 10

    def test_candidate_pairs_exact_match(self):
        shared = "WYVHEAGAWGH"
        seqs = [encode("AAA" + shared), encode(shared + "CCC"),
                encode("RNDRNDRNDRND")]
        pairs = candidate_pairs_suffix(seqs, min_match_len=8)
        assert [tuple(p) for p in pairs.tolist()] == [(0, 1)]

    def test_min_match_len_threshold(self):
        seqs = [encode("HEAGAWGHEE"), encode("HEAGAPPPPP")]  # share 5
        assert candidate_pairs_suffix(seqs, min_match_len=5).shape[0] == 1
        assert candidate_pairs_suffix(seqs, min_match_len=6).shape[0] == 0

    def test_no_self_pairs(self):
        seqs = [encode("ACDACDACDACD")]
        assert candidate_pairs_suffix(seqs, min_match_len=3).shape[0] == 0

    def test_low_complexity_run_cap(self):
        seqs = [encode("AAAAAAAAAA") for _ in range(10)]
        capped = candidate_pairs_suffix(seqs, min_match_len=4, max_run=5)
        assert capped.shape[0] == 0
        uncapped = candidate_pairs_suffix(seqs, min_match_len=4, max_run=100)
        assert uncapped.shape[0] == 45

    def test_empty_input(self):
        assert candidate_pairs_suffix([], min_match_len=4).shape[0] == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            candidate_pairs_suffix([encode("ACD")], min_match_len=0)
        with pytest.raises(ValueError):
            GeneralizedSuffixArray([np.array([99], dtype=np.int64)])

    @given(st.lists(protein_strings, min_size=2, max_size=6),
           st.integers(3, 6))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_bruteforce(self, strings, min_len):
        seqs = [encode(s) for s in strings]
        got = {tuple(p) for p in
               candidate_pairs_suffix(seqs, min_match_len=min_len,
                                      max_run=1000).tolist()}
        expected = set()
        for i in range(len(strings)):
            for j in range(i + 1, len(strings)):
                a, b = strings[i], strings[j]
                if any(a[p:p + min_len] in b
                       for p in range(max(len(a) - min_len + 1, 0))):
                    expected.add((i, j))
        assert got == expected


class TestSuffixFilterInHomology:
    def test_suffix_mode_builds_similar_graph(self):
        from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families

        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=5), seed=4)
        kmer = build_homology_graph(ps.sequences,
                                    HomologyConfig(pair_filter="kmer"))
        suffix = build_homology_graph(
            ps.sequences, HomologyConfig(pair_filter="suffix",
                                         min_match_len=8))
        # Both filters must find the bulk of the same homology structure.
        kmer_edges = {tuple(e) for e in kmer.graph.edges().tolist()}
        suffix_edges = {tuple(e) for e in suffix.graph.edges().tolist()}
        overlap = len(kmer_edges & suffix_edges)
        assert overlap > 0.7 * max(len(kmer_edges), 1)

    def test_invalid_filter_rejected(self):
        with pytest.raises(ValueError):
            HomologyConfig(pair_filter="regex")
