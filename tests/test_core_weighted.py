"""Tests for the weighted Shingling extension."""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.weighted import (
    WeightedGpClust,
    weighted_keys,
    weighted_shingle_pass,
    winner_probabilities,
)
from repro.graph.csr import CSRGraph
from repro.graph.weighted import WeightedCSRGraph


def weighted_two_cliques(bridge_weight: float = 0.01) -> WeightedCSRGraph:
    """Two K5s joined by light bridge edges."""
    edges, weights = [], []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j))
                weights.append(10.0)
    for t in range(3):
        edges.append((t, 5 + t))
        weights.append(bridge_weight)
    return WeightedCSRGraph.from_weighted_edges(
        np.array(edges), np.array(weights), n_vertices=10)


class TestWeightedCSRGraph:
    def test_construction(self):
        wg = weighted_two_cliques()
        assert wg.n_vertices == 10
        assert wg.n_edges == 23
        assert wg.edge_weight(0, 1) == 10.0
        assert wg.edge_weight(0, 5) == 0.01
        assert wg.edge_weight(5, 0) == 0.01  # symmetric

    def test_duplicate_edges_keep_max_weight(self):
        wg = WeightedCSRGraph.from_weighted_edges(
            np.array([(0, 1), (1, 0)]), np.array([2.0, 5.0]))
        assert wg.edge_weight(0, 1) == 5.0

    def test_missing_edge_raises(self):
        wg = weighted_two_cliques()
        with pytest.raises(KeyError):
            wg.edge_weight(0, 9)

    def test_uniform(self, two_cliques_graph):
        wg = WeightedCSRGraph.uniform(two_cliques_graph, 3.0)
        assert np.all(wg.weights == 3.0)
        with pytest.raises(ValueError):
            WeightedCSRGraph.uniform(two_cliques_graph, 0.0)

    def test_validation(self, two_cliques_graph):
        with pytest.raises(ValueError):
            WeightedCSRGraph(two_cliques_graph, np.ones(3))
        with pytest.raises(ValueError):
            WeightedCSRGraph(two_cliques_graph,
                             np.zeros(two_cliques_graph.nnz))
        with pytest.raises(ValueError):
            WeightedCSRGraph.from_weighted_edges(
                np.array([(0, 1)]), np.array([-1.0]))

    def test_neighbors_aligned(self):
        wg = weighted_two_cliques()
        nbrs, weights = wg.neighbors(0)
        assert nbrs.size == weights.size == 5


class TestWeightedKeys:
    def test_deterministic(self):
        ids = np.arange(10)
        w = np.ones(10)
        assert np.array_equal(weighted_keys(ids, w, 7),
                              weighted_keys(ids, w, 7))
        assert not np.array_equal(weighted_keys(ids, w, 7),
                                  weighted_keys(ids, w, 8))

    def test_positive_finite(self):
        keys = weighted_keys(np.arange(100), np.full(100, 0.001), 3)
        assert np.all(np.isfinite(keys)) and np.all(keys > 0)

    def test_scaling_with_weight(self):
        # Same uniforms, bigger weight -> smaller key.
        ids = np.arange(5)
        k1 = weighted_keys(ids, np.ones(5), 3)
        k2 = weighted_keys(ids, np.full(5, 10.0), 3)
        assert np.allclose(k2, k1 / 10.0)

    def test_winner_probability_proportional_to_weight(self):
        """The exponential-race property, statistically."""
        weights = np.array([1.0, 2.0, 4.0, 8.0])
        probs = winner_probabilities(weights, salt_count=30_000, seed=1)
        expected = weights / weights.sum()
        assert np.allclose(probs, expected, atol=0.015)

    def test_equal_weights_uniform_winners(self):
        probs = winner_probabilities(np.ones(5), salt_count=30_000, seed=2)
        assert np.allclose(probs, 0.2, atol=0.015)


class TestWeightedShinglePass:
    def test_backends_identical(self):
        wg = weighted_two_cliques()
        cfg = ShinglingParams(c1=12, c2=6, seed=4).pass_config(1)
        vec = weighted_shingle_pass(wg, cfg, backend="vectorized")
        ser = weighted_shingle_pass(wg, cfg, backend="serial")
        assert vec == ser

    def test_unknown_backend(self):
        wg = weighted_two_cliques()
        cfg = ShinglingParams(c1=4, c2=2).pass_config(1)
        with pytest.raises(ValueError):
            weighted_shingle_pass(wg, cfg, backend="quantum")

    def test_members_subset_of_neighborhood(self):
        wg = weighted_two_cliques()
        cfg = ShinglingParams(c1=10, c2=5, seed=1).pass_config(1)
        result = weighted_shingle_pass(wg, cfg)
        for i in range(result.n_shingles):
            for gen in result.gen_graph.neighbors(i):
                nbrs, _ = wg.neighbors(int(gen))
                assert set(result.members[i].tolist()) <= set(nbrs.tolist())

    def test_heavy_neighbors_dominate_shingles(self):
        """With one overwhelming edge per vertex, shingles concentrate on
        the heavy endpoints."""
        edges = [(0, i) for i in range(1, 8)]
        weights = [1000.0] + [0.001] * 6
        wg = WeightedCSRGraph.from_weighted_edges(
            np.array(edges), np.array(weights), n_vertices=8)
        cfg = ShinglingParams(s1=1, c1=50, c2=5, seed=0).pass_config(1)
        result = weighted_shingle_pass(wg, cfg)
        # vertex 0's s=1 shingles: almost always the heavy neighbor (1)
        zero_shingles = [i for i in range(result.n_shingles)
                         if 0 in result.gen_graph.neighbors(i)]
        members = np.array([result.members[i][0] for i in zero_shingles])
        heavy_fraction = np.mean(members == 1)
        assert heavy_fraction > 0.9


class TestWeightedGpClust:
    def test_clusters_cliques(self):
        wg = weighted_two_cliques()
        result = WeightedGpClust(ShinglingParams(c1=20, c2=10, seed=3)).run(wg)
        clusters = result.clusters(min_size=5)
        as_sets = [set(c.tolist()) for c in clusters]
        assert {0, 1, 2, 3, 4} in as_sets
        assert {5, 6, 7, 8, 9} in as_sets

    def test_downweighting_suppresses_bridges(self):
        """Heavy bridges can merge the cliques; making them light keeps the
        cliques apart — the point of weighted sampling."""
        light = WeightedGpClust(ShinglingParams(c1=40, c2=20, seed=3)).run(
            weighted_two_cliques(bridge_weight=0.0001))
        assert light.labels[0] != light.labels[5]

    def test_uniform_weights_behave_like_unweighted(self, two_cliques_graph):
        from repro.core.pipeline import GpClust

        params = ShinglingParams(c1=20, c2=10, seed=3)
        weighted = WeightedGpClust(params).run(
            WeightedCSRGraph.uniform(two_cliques_graph))
        unweighted = GpClust(params).run(two_cliques_graph)
        # Different sampling machinery (exponential race vs. affine
        # permutation), same partition on a clean instance.
        w_sets = {frozenset(c.tolist()) for c in weighted.clusters(min_size=5)}
        u_sets = {frozenset(c.tolist()) for c in unweighted.clusters(min_size=5)}
        assert w_sets == u_sets

    def test_overlapping_mode(self):
        wg = weighted_two_cliques()
        params = ShinglingParams(c1=15, c2=8, seed=3,
                                 report_mode="overlapping")
        result = WeightedGpClust(params).run(wg)
        assert result.overlapping is not None
        assert result.n_clusters(min_size=5) >= 2
