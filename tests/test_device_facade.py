"""Tests for the SimulatedDevice facade (transfers + shingle_batch)."""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.serial import serial_top_s
from repro.device.device import SimulatedDevice
from repro.device.kernels import SENTINEL, unpack_pairs
from repro.device.memory import DeviceMemoryError
from repro.device.timingmodels import DeviceSpec
from repro.util.mixhash import fold_fingerprint
from repro.util.timer import BUCKET_C2G, BUCKET_G2C, BUCKET_GPU


@pytest.fixture
def device():
    return SimulatedDevice(DeviceSpec(memory_capacity_bytes=16 * 2**20))


class TestTransfers:
    def test_upload_download_round_trip(self, device):
        host = np.arange(100, dtype=np.int64)
        buf = device.upload(host)
        out = device.download(buf)
        assert np.array_equal(out, host)
        device.free(buf)
        assert device.memory.used_bytes == 0

    def test_transfer_buckets_accumulate(self, device):
        buf = device.upload(np.zeros(1000))
        device.download(buf)
        assert device.breakdown.get(BUCKET_C2G) > 0
        assert device.breakdown.get(BUCKET_G2C) > 0
        assert device.breakdown.get_modeled(BUCKET_C2G) > 0
        assert device.breakdown.get_modeled(BUCKET_G2C) > 0

    def test_upload_beyond_capacity_raises(self):
        tiny = SimulatedDevice(DeviceSpec(memory_capacity_bytes=64))
        with pytest.raises(DeviceMemoryError):
            tiny.upload(np.zeros(1000))


class TestShingleBatch:
    def _run(self, device, lists, s=2, c=6, kernel="select", trial_chunk=3):
        params = ShinglingParams(s1=s, c1=c, s2=s, c2=c, seed=4)
        cfg = params.pass_config(1)
        indptr = np.zeros(len(lists) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(x) for x in lists])
        flat = (np.concatenate([np.asarray(x, dtype=np.int64) for x in lists])
                if lists else np.empty(0, dtype=np.int64))
        d_elem = device.upload(flat)
        d_ind = device.upload(indptr)
        fps, top = device.shingle_batch(
            d_elem, d_ind, a=cfg.a_array, b=cfg.b_array, prime=cfg.prime,
            s=s, salts=cfg.salts, kernel=kernel, trial_chunk=trial_chunk)
        device.free(d_elem, d_ind)
        return cfg, fps, top

    def test_matches_serial_reference(self, device):
        lists = [[3, 9, 14, 2], [5, 6], [8], [1, 2, 3, 4, 5, 6, 7]]
        cfg, fps, top = self._run(device, lists)
        for j, pair in enumerate(cfg.hash_pairs):
            for seg, lst in enumerate(lists):
                if len(lst) < 2:
                    continue
                ref = serial_top_s(lst, pair.a, pair.b, cfg.prime, 2)
                ids = [v for _, v in ref]
                assert fps[j, seg] == fold_fingerprint(ids, int(cfg.salts[j]))
                _, got_ids = unpack_pairs(top[j, seg])
                assert list(got_ids.astype(int)) == ids

    def test_sort_and_select_kernels_identical(self, device):
        lists = [[10, 20, 30], [7, 8, 9, 11], [1]]
        _, fps_a, top_a = self._run(device, lists, kernel="select")
        _, fps_b, top_b = self._run(device, lists, kernel="sort")
        assert np.array_equal(fps_a, fps_b)
        assert np.array_equal(top_a, top_b)

    def test_short_segments_sentinel(self, device):
        _, _, top = self._run(device, [[4]], s=3)
        assert top[0, 0, 0] != SENTINEL
        assert top[0, 0, 1] == SENTINEL

    def test_trial_chunking_invariance(self, device):
        lists = [[3, 1, 4, 1 + 4, 9], [2, 6, 5]]
        _, fps_a, top_a = self._run(device, lists, c=10, trial_chunk=1)
        _, fps_b, top_b = self._run(device, lists, c=10, trial_chunk=10)
        assert np.array_equal(fps_a, fps_b)
        assert np.array_equal(top_a, top_b)

    def test_gpu_bucket_accumulates(self, device):
        self._run(device, [[1, 2, 3]])
        assert device.breakdown.get(BUCKET_GPU) > 0
        assert device.breakdown.get_modeled(BUCKET_GPU) > 0

    def test_device_memory_released_after_batch(self, device):
        before = device.memory.used_bytes
        self._run(device, [[1, 2, 3], [4, 5]])
        assert device.memory.used_bytes == before

    def test_bad_kernel_rejected(self, device):
        with pytest.raises(ValueError):
            self._run(device, [[1, 2]], kernel="warp")

    def test_mismatched_params_rejected(self, device):
        d_elem = device.upload(np.array([1, 2], dtype=np.int64))
        d_ind = device.upload(np.array([0, 2], dtype=np.int64))
        with pytest.raises(ValueError):
            device.shingle_batch(d_elem, d_ind,
                                 a=np.array([1], dtype=np.uint64),
                                 b=np.array([1, 2], dtype=np.uint64),
                                 prime=101, s=2,
                                 salts=np.array([0], dtype=np.uint64))

    def test_set_breakdown_redirects(self, device):
        from repro.util.timer import TimeBreakdown
        fresh = TimeBreakdown()
        device.set_breakdown(fresh)
        device.upload(np.zeros(10))
        assert fresh.get(BUCKET_C2G) > 0
