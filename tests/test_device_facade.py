"""Tests for the SimulatedDevice facade (transfers + shingle_batch)."""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.serial import serial_top_s
from repro.device.device import SimulatedDevice
from repro.device.kernels import SENTINEL, unpack_pairs
from repro.device.memory import DeviceMemoryError
from repro.device.timingmodels import DeviceSpec
from repro.util.mixhash import fold_fingerprint
from repro.util.timer import BUCKET_C2G, BUCKET_G2C, BUCKET_GPU


@pytest.fixture
def device():
    return SimulatedDevice(DeviceSpec(memory_capacity_bytes=16 * 2**20))


class TestTransfers:
    def test_upload_download_round_trip(self, device):
        host = np.arange(100, dtype=np.int64)
        buf = device.upload(host)
        out = device.download(buf)
        assert np.array_equal(out, host)
        device.free(buf)
        assert device.memory.used_bytes == 0

    def test_transfer_buckets_accumulate(self, device):
        buf = device.upload(np.zeros(1000))
        device.download(buf)
        assert device.breakdown.get(BUCKET_C2G) > 0
        assert device.breakdown.get(BUCKET_G2C) > 0
        assert device.breakdown.get_modeled(BUCKET_C2G) > 0
        assert device.breakdown.get_modeled(BUCKET_G2C) > 0

    def test_upload_beyond_capacity_raises(self):
        tiny = SimulatedDevice(DeviceSpec(memory_capacity_bytes=64))
        with pytest.raises(DeviceMemoryError):
            tiny.upload(np.zeros(1000))


class TestShingleBatch:
    def _run(self, device, lists, s=2, c=6, kernel="select", trial_chunk=3):
        params = ShinglingParams(s1=s, c1=c, s2=s, c2=c, seed=4)
        cfg = params.pass_config(1)
        indptr = np.zeros(len(lists) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(x) for x in lists])
        flat = (np.concatenate([np.asarray(x, dtype=np.int64) for x in lists])
                if lists else np.empty(0, dtype=np.int64))
        d_elem = device.upload(flat)
        d_ind = device.upload(indptr)
        fps, top = device.shingle_batch(
            d_elem, d_ind, a=cfg.a_array, b=cfg.b_array, prime=cfg.prime,
            s=s, salts=cfg.salts, kernel=kernel, trial_chunk=trial_chunk)
        device.free(d_elem, d_ind)
        return cfg, fps, top

    def test_matches_serial_reference(self, device):
        lists = [[3, 9, 14, 2], [5, 6], [8], [1, 2, 3, 4, 5, 6, 7]]
        cfg, fps, top = self._run(device, lists)
        for j, pair in enumerate(cfg.hash_pairs):
            for seg, lst in enumerate(lists):
                if len(lst) < 2:
                    continue
                ref = serial_top_s(lst, pair.a, pair.b, cfg.prime, 2)
                ids = [v for _, v in ref]
                assert fps[j, seg] == fold_fingerprint(ids, int(cfg.salts[j]))
                _, got_ids = unpack_pairs(top[j, seg])
                assert list(got_ids.astype(int)) == ids

    def test_sort_and_select_kernels_identical(self, device):
        lists = [[10, 20, 30], [7, 8, 9, 11], [1]]
        _, fps_a, top_a = self._run(device, lists, kernel="select")
        _, fps_b, top_b = self._run(device, lists, kernel="sort")
        assert np.array_equal(fps_a, fps_b)
        assert np.array_equal(top_a, top_b)

    def test_short_segments_sentinel(self, device):
        _, _, top = self._run(device, [[4]], s=3)
        assert top[0, 0, 0] != SENTINEL
        assert top[0, 0, 1] == SENTINEL

    def test_trial_chunking_invariance(self, device):
        lists = [[3, 1, 4, 1 + 4, 9], [2, 6, 5]]
        _, fps_a, top_a = self._run(device, lists, c=10, trial_chunk=1)
        _, fps_b, top_b = self._run(device, lists, c=10, trial_chunk=10)
        assert np.array_equal(fps_a, fps_b)
        assert np.array_equal(top_a, top_b)

    def test_gpu_bucket_accumulates(self, device):
        self._run(device, [[1, 2, 3]])
        assert device.breakdown.get(BUCKET_GPU) > 0
        assert device.breakdown.get_modeled(BUCKET_GPU) > 0

    def test_device_memory_released_after_batch(self, device):
        before = device.memory.used_bytes
        self._run(device, [[1, 2, 3], [4, 5]])
        assert device.memory.used_bytes == before

    def test_bad_kernel_rejected(self, device):
        with pytest.raises(ValueError):
            self._run(device, [[1, 2]], kernel="warp")

    def test_mismatched_params_rejected(self, device):
        d_elem = device.upload(np.array([1, 2], dtype=np.int64))
        d_ind = device.upload(np.array([0, 2], dtype=np.int64))
        with pytest.raises(ValueError):
            device.shingle_batch(d_elem, d_ind,
                                 a=np.array([1], dtype=np.uint64),
                                 b=np.array([1, 2], dtype=np.uint64),
                                 prime=101, s=2,
                                 salts=np.array([0], dtype=np.uint64))

    def test_set_breakdown_redirects(self, device):
        from repro.util.timer import TimeBreakdown
        fresh = TimeBreakdown()
        device.set_breakdown(fresh)
        device.upload(np.zeros(10))
        assert fresh.get(BUCKET_C2G) > 0


class TestFusedKernelFacade:
    def test_fused_identical_to_select(self, device):
        runner = TestShingleBatch()
        lists = [[10, 20, 30], [7, 8, 9, 11], [1], [2, 4, 6, 8, 10]]
        _, fps_a, top_a = runner._run(device, lists, kernel="select")
        _, fps_b, top_b = runner._run(device, lists, kernel="fused")
        assert np.array_equal(fps_a, fps_b)
        assert np.array_equal(top_a, top_b)

    def test_fused_short_segments_sentinel(self, device):
        runner = TestShingleBatch()
        _, _, top = runner._run(device, [[4]], s=3, kernel="fused")
        assert top[0, 0, 0] != SENTINEL
        assert top[0, 0, 1] == SENTINEL

    def test_kernel_stats_recorded(self, device):
        runner = TestShingleBatch()
        runner._run(device, [[1, 2, 3], [4, 5, 6]], kernel="fused")
        prof = device.profile()
        assert "fused_transform" in prof["kernels"]
        assert prof["kernels"]["fused_transform"]["launches"] > 0
        assert prof["transfers"]["bytes_to_device"] > 0
        assert "scratch_pool" in prof

    def test_fused_charges_one_transform(self):
        """The cost model bills fused as ONE launch where hash+pack is two."""
        spec = DeviceSpec(memory_capacity_bytes=16 * 2**20)
        runner = TestShingleBatch()
        lists = [[1, 2, 3, 4], [5, 6, 7]]
        dev_a, dev_b = SimulatedDevice(spec), SimulatedDevice(spec)
        runner._run(dev_a, lists, kernel="select")
        runner._run(dev_b, lists, kernel="fused")
        unfused = dev_a.profile()["kernels"]["hash+pack_transform"]
        fused = dev_b.profile()["kernels"]["fused_transform"]
        assert unfused["elements"] == 2 * fused["elements"]
        assert unfused["modeled_s"] > fused["modeled_s"]


class TestShingleChunkReduce:
    def _run_reduce(self, device, lists, s=2, c=6):
        from repro.device.kernels import segment_element_ids

        params = ShinglingParams(s1=s, c1=c, s2=s, c2=c, seed=4)
        cfg = params.pass_config(1)
        indptr = np.zeros(len(lists) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(x) for x in lists])
        flat = np.concatenate([np.asarray(x, dtype=np.int64) for x in lists])
        d_elem = device.upload(flat)
        d_ind = device.upload(indptr)
        d_gen = device.upload(np.arange(len(lists), dtype=np.uint32))
        out = device.shingle_chunk_reduce(
            d_elem, d_ind, d_gen, a=cfg.a_array, b=cfg.b_array,
            prime=cfg.prime, s=s, salts=cfg.salts,
            seg_ids=segment_element_ids(indptr),
            n_values=int(flat.max()) + 1)
        device.free(d_elem, d_ind, d_gen)
        return cfg, out

    def test_matches_dense_aggregation(self, device):
        from repro.core.aggregate import aggregate_pass

        # all lists valid (length >= s): the reduce path's precondition
        lists = [[3, 9, 14, 2], [5, 6], [1, 2, 3, 4, 5, 6, 7], [9, 14]]
        other = SimulatedDevice(DeviceSpec(memory_capacity_bytes=16 * 2**20))
        runner = TestShingleBatch()
        _, fps_dense, top_dense = runner._run(other, lists, kernel="select",
                                              trial_chunk=6)
        ref = aggregate_pass(fps_dense, top_dense,
                             np.array([len(x) for x in lists]), 2)
        cfg, (fps, members, counts, gens) = self._run_reduce(device, lists)
        assert np.array_equal(fps, ref.fingerprints)
        assert np.array_equal(members.astype(np.int64), ref.members)
        assert np.array_equal(gens.astype(np.int64), ref.gen_graph.indices)
        assert np.array_equal(np.cumsum(counts), ref.gen_graph.indptr[1:])

    def test_compacted_transfer_is_smaller(self):
        """The reduce path must ship fewer g2c bytes than the dense path."""
        spec = DeviceSpec(memory_capacity_bytes=16 * 2**20)
        lists = [list(range(i, i + 5)) for i in range(30)]
        dense_dev, reduce_dev = SimulatedDevice(spec), SimulatedDevice(spec)
        runner = TestShingleBatch()
        runner._run(dense_dev, lists, kernel="select", trial_chunk=6)
        self._run_reduce(reduce_dev, lists)
        assert (reduce_dev.memory.bytes_to_host
                < dense_dev.memory.bytes_to_host)

    def test_reduce_memory_released(self, device):
        before = device.memory.used_bytes
        self._run_reduce(device, [[1, 2, 3], [4, 5, 6]])
        assert device.memory.used_bytes == before
