"""Tests for the pipeline drivers and ClusterResult."""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.pipeline import (
    BUCKET_SERIAL_SHINGLING,
    GpClust,
    SerialPClust,
    cluster_graph,
)
from repro.core.result import ClusterResult
from repro.device.timingmodels import DeviceSpec
from repro.graph.io import save_npz
from repro.util.timer import (
    BUCKET_C2G,
    BUCKET_CPU,
    BUCKET_G2C,
    BUCKET_GPU,
    BUCKET_IO,
)


class TestDrivers:
    def test_serial_buckets(self, two_cliques_graph, small_params):
        res = SerialPClust(small_params).run(two_cliques_graph)
        assert res.backend == "serial"
        assert res.timings.get(BUCKET_CPU) > 0
        assert res.timings.get(BUCKET_SERIAL_SHINGLING) > 0
        # Buckets partition the wall time: no double counting.
        assert res.timings.total == pytest.approx(
            res.timings.get(BUCKET_CPU)
            + res.timings.get(BUCKET_SERIAL_SHINGLING))
        assert res.timings.get(BUCKET_GPU) == 0

    def test_device_buckets(self, two_cliques_graph, small_params):
        res = GpClust(small_params).run(two_cliques_graph)
        assert res.backend == "device"
        for bucket in (BUCKET_CPU, BUCKET_GPU, BUCKET_C2G, BUCKET_G2C):
            assert res.timings.get(bucket) > 0, bucket

    def test_two_cliques_found(self, two_cliques_graph, small_params):
        res = GpClust(small_params).run(two_cliques_graph)
        clusters = res.clusters(min_size=5)
        as_sets = [set(c.tolist()) for c in clusters]
        assert {0, 1, 2, 3, 4} in as_sets
        assert {5, 6, 7, 8, 9} in as_sets

    def test_io_seconds_recorded(self, two_cliques_graph, small_params):
        res = GpClust(small_params).run(two_cliques_graph, io_seconds=1.5)
        assert res.timings.get(BUCKET_IO) == pytest.approx(1.5)

    def test_overlapping_mode(self, two_cliques_graph, small_params):
        params = small_params.with_overrides(report_mode="overlapping")
        res = GpClust(params).run(two_cliques_graph)
        assert res.labels is None
        assert res.overlapping is not None
        assert res.n_clusters(min_size=5) == 2

    def test_shingle_counts_recorded(self, two_cliques_graph, small_params):
        res = GpClust(small_params).run(two_cliques_graph)
        assert res.n_first_level_shingles > 0
        assert res.n_second_level_shingles > 0


class TestClusterGraphConvenience:
    def test_from_graph(self, two_cliques_graph, small_params):
        res = cluster_graph(two_cliques_graph, small_params)
        assert res.backend == "device"

    def test_serial_backend(self, two_cliques_graph, small_params):
        res = cluster_graph(two_cliques_graph, small_params, backend="serial")
        assert res.backend == "serial"

    def test_unknown_backend(self, two_cliques_graph):
        with pytest.raises(ValueError):
            cluster_graph(two_cliques_graph, backend="tpu")

    def test_from_path_times_io(self, tmp_path, two_cliques_graph, small_params):
        path = tmp_path / "g.npz"
        save_npz(two_cliques_graph, path)
        res = cluster_graph(path, small_params)
        assert res.timings.get(BUCKET_IO) > 0
        assert res.n_clusters(min_size=5) == 2


class TestClusterResult:
    def _result(self, labels, params=None):
        labels = np.asarray(labels, dtype=np.int64)
        return ClusterResult(n_vertices=labels.size,
                             params=params or ShinglingParams(),
                             backend="device", labels=labels)

    def test_clusters_and_sizes(self):
        res = self._result([0, 0, 0, 1, 1, 2])
        assert [len(c) for c in res.clusters()] == [3, 2, 1]
        assert list(res.cluster_sizes()) == [3, 2, 1]
        assert list(res.cluster_sizes(min_size=2)) == [3, 2]
        assert res.n_clusters(min_size=2) == 2

    def test_clusters_sorted_members(self):
        res = self._result([1, 0, 1, 0])
        clusters = res.clusters(min_size=2)
        assert all(np.all(np.diff(c) > 0) for c in clusters)

    def test_n_clustered_vertices(self):
        res = self._result([0, 0, 1, 2, 3])
        assert res.n_clustered_vertices(min_size=2) == 2

    def test_validation_partition_mode(self):
        with pytest.raises(ValueError):
            ClusterResult(n_vertices=3, params=ShinglingParams(),
                          backend="device", labels=None)

    def test_validation_label_length(self):
        with pytest.raises(ValueError):
            ClusterResult(n_vertices=3, params=ShinglingParams(),
                          backend="device", labels=np.zeros(2, dtype=np.int64))

    def test_validation_overlapping_mode(self):
        params = ShinglingParams(report_mode="overlapping")
        with pytest.raises(ValueError):
            ClusterResult(n_vertices=3, params=params, backend="device",
                          labels=np.zeros(3, dtype=np.int64))

    def test_summary_keys(self):
        res = self._result([0, 0, 1])
        summary = res.summary()
        assert summary["n_clusters(>=2)"] == 1
        assert summary["largest_cluster"] == 2
        assert summary["backend"] == "device"
