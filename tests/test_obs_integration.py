"""Integration tests: obs wired through device, homology, pipeline, CLI.

The central guarantees: observation never changes results (tracing on vs
off is bit-identical, including across process-pool workers), worker and
stream activity land on their own trace tracks, and the unified
``--profile`` document keeps every schema-version-1 key alive.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, SerialPClust
from repro.device.device import SimulatedDevice
from repro.graph.csr import CSRGraph
from repro.obs import observe, to_chrome_trace, use_obs, validate_chrome_trace
from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families
from repro.sequence.homology import HomologyConfig, build_homology_graph
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph


@pytest.fixture(scope="module")
def graph():
    return planted_family_graph(PlantedFamilyConfig(n_families=6),
                                seed=3).graph


@pytest.fixture(scope="module")
def protein_set():
    return generate_protein_families(
        SequenceFamilyConfig(n_families=5), seed=4)


class TestTracedClustering:
    def test_traced_run_matches_untraced(self, graph):
        params = ShinglingParams(c1=30, c2=15, seed=0)
        plain = GpClust(params).run(graph)
        with use_obs(observe()):
            traced = GpClust(params).run(graph)
        assert np.array_equal(plain.labels, traced.labels)

    def test_device_spans_cover_both_passes(self, graph):
        ctx = observe()
        with use_obs(ctx):
            GpClust(ShinglingParams(c1=20, c2=10, seed=0)).run(graph)
        names = {r.name for r in ctx.tracer.records}
        assert {"gpclust.run", "gpclust.pass1", "gpclust.pass2",
                "exec.shingle_pass", "phase3.report",
                "phase3.union"} <= names

    def test_root_span_reconciles_with_reported_wall_time(self, graph):
        # Trial counts sized so the run is long enough (~150ms) that the
        # fixed ~1ms of span/bucket accounting overhead sits well inside
        # the 5% tolerance — at c1=30 the same run measures 20-25ms and
        # the ratio hovers right on the boundary.
        ctx = observe()
        with use_obs(ctx):
            result = GpClust(ShinglingParams(c1=100, c2=50, seed=0)).run(graph)
        root = next(r for r in ctx.tracer.records if r.name == "gpclust.run")
        assert root.duration == pytest.approx(result.timings.total,
                                              rel=0.05)

    def test_multistream_spans_use_stream_tracks(self, graph):
        ctx = observe()
        params = ShinglingParams(c1=30, c2=15, seed=0,
                                 exec_mode="multistream", streams=2)
        with use_obs(ctx):
            GpClust(params).run(graph)
        tracks = {r.track for r in ctx.tracer.records}
        assert any(t.startswith("stream") for t in tracks)
        doc = to_chrome_trace(ctx.tracer.records, ctx.tracer.t0)
        validate_chrome_trace(doc)

    def test_serial_backend_traced(self, graph):
        ctx = observe()
        with use_obs(ctx):
            SerialPClust(ShinglingParams(c1=20, c2=10, seed=0)).run(graph)
        names = {r.name for r in ctx.tracer.records}
        assert {"serial_pclust.run", "serial.shingle_pass",
                "phase3.report"} <= names


class TestDeviceMetrics:
    def test_profile_keeps_v1_shape(self, graph):
        device = SimulatedDevice()
        GpClust(ShinglingParams(c1=20, c2=10, seed=0)).run(graph,
                                                           device=device)
        profile = device.profile()
        assert {"kernels", "transfers", "scratch_pool"} <= set(profile)
        assert all({"launches", "elements", "modeled_s"} <= set(stats)
                   for stats in profile["kernels"].values())
        assert profile["transfers"]["bytes_to_device"] > 0

    def test_registry_mirrors_device_counters(self, graph):
        ctx = observe()
        with use_obs(ctx):
            device = SimulatedDevice()
            GpClust(ShinglingParams(c1=20, c2=10, seed=0)).run(graph,
                                                               device=device)
            device.sync_metrics()
        snap = ctx.metrics.snapshot()
        launches = {name: value for name, value in snap["counters"].items()
                    if name.endswith(".launches")}
        assert sum(launches.values()) > 0
        profile = device.profile()
        total = sum(stats["launches"]
                    for stats in profile["kernels"].values())
        assert sum(launches.values()) == total
        assert (snap["gauges"]["device.h2d_bytes"]
                == profile["transfers"]["bytes_to_device"])

    def test_dedup_ratio_counters(self, graph):
        ctx = observe()
        with use_obs(ctx):
            GpClust(ShinglingParams(c1=20, c2=10, seed=0)).run(graph)
        counters = ctx.metrics.snapshot()["counters"]
        assert counters["shingle.occurrence_slots"] > 0
        assert 0 < counters["shingle.distinct_fps"] <= \
            counters["shingle.occurrence_slots"]


class TestHomologyWorkerSpans:
    def test_pool_tracing_is_bit_identical(self, protein_set):
        """Tracing on vs off, serial vs pool: same graph, same scores."""
        config = HomologyConfig(n_jobs=2, chunk_size=16)
        plain = build_homology_graph(protein_set.sequences, config)
        with use_obs(observe()):
            traced = build_homology_graph(protein_set.sequences, config)
        assert np.array_equal(plain.graph.indptr, traced.graph.indptr)
        assert np.array_equal(plain.graph.indices, traced.graph.indices)
        assert np.array_equal(plain.normalized_scores,
                              traced.normalized_scores)

    def test_worker_spans_merge_onto_parent(self, protein_set):
        ctx = observe()
        with use_obs(ctx):
            build_homology_graph(
                protein_set.sequences,
                HomologyConfig(n_jobs=2, chunk_size=16,
                               align_backend="pool"))
        records = ctx.tracer.records
        shard_spans = [r for r in records
                       if r.name == "homology.align.shard"]
        assert shard_spans, "no worker shard spans absorbed"
        worker_procs = {r.proc for r in shard_spans}
        assert all(p.startswith("sw-worker-") for p in worker_procs)
        # Worker spans lie inside the parent's alignment stage: shared
        # monotonic clock, one timeline.
        alignment = next(r for r in records
                         if r.name == "homology.alignment")
        for span in shard_spans:
            assert alignment.start <= span.start
            assert span.end <= alignment.end + 1e-3
        doc = to_chrome_trace(records, ctx.tracer.t0)
        validate_chrome_trace(doc)

    def test_serial_path_emits_shard_spans_on_main(self, protein_set):
        ctx = observe()
        with use_obs(ctx):
            build_homology_graph(protein_set.sequences,
                                 HomologyConfig(n_jobs=1,
                                                align_backend="host"))
        shard_spans = [r for r in ctx.tracer.records
                       if r.name == "homology.align.shard"]
        assert shard_spans
        assert {r.proc for r in shard_spans} == {"main"}

    def test_timings_match_stage_spans(self, protein_set):
        ctx = observe()
        with use_obs(ctx):
            result = build_homology_graph(protein_set.sequences,
                                          HomologyConfig())
        by_name = {r.name: r for r in ctx.tracer.records}
        timings = result.timings
        assert timings.seed_filter_s == pytest.approx(
            by_name["homology.seed_filter"].duration)
        assert timings.alignment_s == pytest.approx(
            by_name["homology.alignment"].duration)

    def test_homology_counters(self, protein_set):
        ctx = observe()
        with use_obs(ctx):
            result = build_homology_graph(protein_set.sequences,
                                          HomologyConfig())
        counters = ctx.metrics.snapshot()["counters"]
        assert counters["homology.candidate_pairs"] == \
            result.n_candidate_pairs
        assert counters["homology.edges_kept"] == result.n_edges
        assert counters["homology.pairs_dropped"] == \
            result.n_candidate_pairs - result.n_edges


class TestEndToEndObs:
    def test_e2e_spans_and_rss_gauge(self):
        from repro.pipeline.end_to_end import run_end_to_end

        ctx = observe()
        with use_obs(ctx):
            run_end_to_end(
                sequence_config=SequenceFamilyConfig(n_families=4), seed=1)
        names = {r.name for r in ctx.tracer.records}
        assert {"e2e.run", "e2e.homology", "e2e.clustering",
                "e2e.quality"} <= names
        assert ctx.metrics.snapshot()["gauges"][
            "process.peak_rss_bytes"] > 1 << 20


class TestCliObs:
    @pytest.fixture(scope="class")
    def bench(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs_cli") / "bench"
        main(["generate", "--families", "5", "--seed", "2",
              "--out", str(path)])
        return path.with_suffix(".npz")

    def test_trace_flag_writes_valid_trace(self, bench, tmp_path, capsys):
        from repro.obs import load_trace

        trace_path = tmp_path / "trace.json"
        assert main(["cluster", str(bench), "--trace",
                     str(trace_path)]) == 0
        doc = load_trace(trace_path)
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert "gpclust.run" in names
        assert doc["otherData"]["command"] == "cluster"
        assert "metrics" in doc["otherData"]

    def test_trace_does_not_change_labels(self, bench, tmp_path, capsys):
        plain_out = tmp_path / "plain.npz"
        traced_out = tmp_path / "traced.npz"
        main(["cluster", str(bench), "--out", str(plain_out)])
        main(["cluster", str(bench), "--out", str(traced_out),
              "--trace", str(tmp_path / "t.json")])
        with np.load(plain_out) as a, np.load(traced_out) as b:
            assert np.array_equal(a["labels"], b["labels"])

    def test_metrics_out(self, bench, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(["cluster", str(bench), "--metrics-out",
                     str(metrics_path)]) == 0
        snap = json.loads(metrics_path.read_text())
        assert snap["schema_version"] == 1
        assert snap["gauges"]["device.h2d_bytes"] > 0

    def test_profile_schema_v2_with_v1_aliases(self, bench, tmp_path,
                                               capsys):
        profile_path = tmp_path / "profile.json"
        assert main(["cluster", str(bench), "--profile",
                     str(profile_path)]) == 0
        doc = json.loads(profile_path.read_text())
        assert doc["schema_version"] == 2
        # v1 aliases stay at the top level...
        assert {"kernels", "transfers", "scratch_pool"} <= set(doc)
        # ...and mirror the canonical nested copy.
        assert doc["kernels"] == doc["device"]["kernels"]
        assert "metrics" in doc

    def test_obs_summary_command(self, bench, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(["cluster", str(bench), "--trace", str(trace_path)])
        capsys.readouterr()
        assert main(["obs", "summary", str(trace_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "gpclust.run" in out
        assert "wall" in out

    def test_pipeline_profile_keeps_homology_key(self, tmp_path, capsys):
        fasta = tmp_path / "prot"
        main(["generate", "--families", "4", "--seed", "1", "--fasta",
              "--out", str(fasta)])
        profile_path = tmp_path / "profile.json"
        assert main(["pipeline", str(fasta.with_suffix(".fasta")),
                     "--profile", str(profile_path),
                     "--trace", str(tmp_path / "trace.json")]) == 0
        doc = json.loads(profile_path.read_text())
        assert doc["schema_version"] == 2
        assert {"homology", "device", "spans"} <= set(doc)
        assert doc["homology"]["total_s"] > 0


class TestFakeClockInjection:
    def test_stopwatch_uses_injected_clock(self):
        from repro.util.timer import Stopwatch, fake_clock

        ticks = iter(range(100))
        with fake_clock(lambda: float(next(ticks))):
            watch = Stopwatch()
            watch.start()
            assert watch.stop() == 1.0

    def test_tracer_defaults_to_injected_clock(self):
        from repro.obs import Tracer
        from repro.util.timer import fake_clock

        ticks = iter(range(100))
        with fake_clock(lambda: float(next(ticks))):
            tracer = Tracer()
            with tracer.span("step"):
                pass
        (record,) = tracer.records
        assert record.duration == 1.0

    def test_set_clock_restores(self):
        import time

        from repro.util.timer import clock, set_clock

        previous = set_clock(lambda: 42.0)
        try:
            assert clock() == 42.0
        finally:
            set_clock(previous)
        assert previous is time.perf_counter
