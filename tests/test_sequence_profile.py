"""Tests for PSSM profiles and profile-based family expansion."""

import numpy as np
import pytest

from repro.sequence.alphabet import AMINO_ACIDS, encode, random_sequence
from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families
from repro.sequence.mutate import substitute
from repro.sequence.profile import (
    Profile,
    build_profile,
    expand_cluster,
    profile_score,
    profile_self_score,
)
from repro.sequence.smith_waterman import self_score, sw_score_linear


class TestBuildProfile:
    def test_single_member_profile(self):
        seq = encode("HEAGAWGHEE")
        profile = build_profile([seq])
        assert profile.length == 10
        assert profile.n_members == 1
        # consensus residue scores highest at every position
        best = profile.scores[:, :len(AMINO_ACIDS)].argmax(axis=1)
        assert np.array_equal(best, seq)

    def test_conserved_positions_score_high(self):
        rng = np.random.default_rng(0)
        ancestor = random_sequence(60, rng)
        members = [substitute(ancestor, 0.1, rng) for _ in range(8)]
        profile = build_profile(members)
        consensus_scores = profile.scores[
            np.arange(profile.length), ancestor]
        assert float(np.mean(consensus_scores > 0)) > 0.8

    def test_reference_is_longest(self):
        a, b = encode("ACD"), encode("ACDEFGH")
        profile = build_profile([a, b])
        assert profile.length == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            build_profile([])
        with pytest.raises(ValueError):
            build_profile([encode("ACD")], pseudocount=0.0)


class TestProfileScore:
    def test_member_scores_near_self(self):
        rng = np.random.default_rng(1)
        ancestor = random_sequence(80, rng)
        members = [substitute(ancestor, 0.08, rng) for _ in range(6)]
        profile = build_profile(members)
        denom = profile_self_score(profile)
        member_scores = [profile_score(profile, m) / denom for m in members]
        random_score = profile_score(profile, random_sequence(80, rng)) / denom
        assert min(member_scores) > 0.5
        assert random_score < min(member_scores)

    def test_profile_more_sensitive_than_pairwise(self):
        """The paper's rationale: profile matching recruits diverged members
        that pairwise alignment misses."""
        rng = np.random.default_rng(2)
        ancestor = random_sequence(100, rng)
        core = [substitute(ancestor, 0.05, rng) for _ in range(8)]
        distant = substitute(ancestor, 0.45, rng)
        profile = build_profile(core)
        prof_norm = profile_score(profile, distant) / profile_self_score(profile)
        pair_norm = (sw_score_linear(core[0], distant)
                     / min(self_score(core[0]), self_score(distant)))
        random_seq = random_sequence(100, rng)
        prof_rand = profile_score(profile, random_seq) / profile_self_score(profile)
        # the distant member is clearly separable from random under the
        # profile...
        assert prof_norm > 2.0 * prof_rand
        # ...and the profile margin (relative to noise floor) beats pairwise.
        pair_rand = (sw_score_linear(core[0], random_seq)
                     / min(self_score(core[0]), self_score(random_seq)))
        assert prof_norm / max(prof_rand, 1e-9) > pair_norm / max(pair_rand, 1e-9)

    def test_empty_sequence(self):
        profile = build_profile([encode("ACDEFG")])
        assert profile_score(profile, encode("")) == 0

    def test_gap_validation(self):
        profile = build_profile([encode("ACD")])
        with pytest.raises(ValueError):
            profile_score(profile, encode("ACD"), gap=-1)


class TestExpandCluster:
    def test_recruits_diverged_family_members(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=4, core_divergence=0.06,
                                 periphery_divergence=0.40), seed=9)
        fam0 = np.flatnonzero(ps.family_labels == 0)
        core0 = fam0[ps.is_core[fam0]]
        expanded = expand_cluster(ps.sequences, core0,
                                  min_normalized_score=0.3)
        # expansion must recruit at least one non-core family-0 member
        recruits = np.setdiff1d(expanded, core0)
        assert recruits.size > 0
        recruit_families = ps.family_labels[recruits]
        # and stay precise: most recruits from family 0
        assert np.mean(recruit_families == 0) > 0.8

    def test_core_always_included(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=3), seed=10)
        core = np.array([0, 1])
        expanded = expand_cluster(ps.sequences, core)
        assert set(core.tolist()) <= set(expanded.tolist())

    def test_validation(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=2), seed=1)
        with pytest.raises(ValueError):
            expand_cluster(ps.sequences, np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            expand_cluster(ps.sequences, np.array([0]),
                           min_normalized_score=0.0)
