"""Tests for the baseline clustering methods."""

import numpy as np
import pytest

from repro.baselines.gos_kneighbor import gos_kneighbor_clustering, shared_neighbor_counts
from repro.baselines.jaccard import (
    MAX_BRUTE_FORCE_VERTICES,
    jaccard_bruteforce_clustering,
    jaccard_matrix,
)
from repro.baselines.single_linkage import single_linkage_clustering
from repro.graph.csr import CSRGraph


def clique(n, base=0):
    return [(base + i, base + j) for i in range(n) for j in range(i + 1, n)]


class TestSharedNeighborCounts:
    def test_triangle(self, triangle_graph):
        edges = triangle_graph.edges()
        counts = shared_neighbor_counts(triangle_graph, edges)
        assert list(counts) == [1, 1, 1]  # each edge closes one triangle

    def test_clique_counts(self):
        g = CSRGraph.from_edges(clique(6))
        counts = shared_neighbor_counts(g)
        assert np.all(counts == 4)  # every pair in K6 shares 4 neighbors

    def test_path_has_no_shared(self, path_graph):
        counts = shared_neighbor_counts(path_graph)
        assert np.all(counts == 0)

    def test_empty_graph(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=3)
        assert shared_neighbor_counts(g).size == 0

    def test_matches_bruteforce(self, blocky_graph):
        edges = blocky_graph.edges()
        counts = shared_neighbor_counts(blocky_graph, edges)
        for (u, v), c in list(zip(edges.tolist(), counts.tolist()))[:50]:
            expected = np.intersect1d(blocky_graph.neighbors(u),
                                      blocky_graph.neighbors(v)).size
            assert c == expected


class TestGosKNeighbor:
    def test_clique_with_low_k_clusters(self):
        g = CSRGraph.from_edges(clique(8))
        labels = gos_kneighbor_clustering(g, k=3)
        assert np.unique(labels).size == 1

    def test_high_k_blind_to_small_cliques(self):
        g = CSRGraph.from_edges(clique(8))
        labels = gos_kneighbor_clustering(g, k=10)
        assert np.unique(labels).size == 8  # all singletons

    def test_two_cliques_stay_apart(self, two_cliques_graph):
        labels = gos_kneighbor_clustering(two_cliques_graph, k=2)
        assert labels[0] == labels[4]
        assert labels[5] == labels[9]
        assert labels[0] != labels[5]

    def test_k_zero_degenerates_to_single_linkage(self, blocky_graph):
        gos = gos_kneighbor_clustering(blocky_graph, k=0)
        sl = single_linkage_clustering(blocky_graph)
        assert np.array_equal(gos, sl)

    def test_negative_k_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            gos_kneighbor_clustering(triangle_graph, k=-1)

    def test_fixed_k_fuses_bridged_cliques(self):
        """The failure mode the paper criticizes: two cliques sharing
        enough boundary support fuse under a fixed k."""
        edges = clique(12) + clique(12, base=12)
        # bridge: vertex 24 adjacent to 6 members of each clique
        for t in range(6):
            edges.append((24, t))
            edges.append((24, 12 + t))
        g = CSRGraph.from_edges(edges, n_vertices=25)
        labels = gos_kneighbor_clustering(g, k=4)
        assert labels[0] == labels[24] == labels[12]


class TestJaccard:
    def test_matrix_values(self, triangle_graph):
        j = jaccard_matrix(triangle_graph)
        # N(0)={1,2}, N(1)={0,2}: intersection {2}? no - {1,2} n {0,2} = {2}
        assert j[0, 1] == pytest.approx(1 / 3)
        assert j[0, 0] == pytest.approx(1.0)

    def test_matrix_symmetric(self, blocky_graph):
        j = jaccard_matrix(blocky_graph)
        assert np.allclose(j, j.T)

    def test_size_guard(self):
        huge = CSRGraph(np.zeros(MAX_BRUTE_FORCE_VERTICES + 2, dtype=np.int64),
                        np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            jaccard_matrix(huge)

    def test_clusters_cliques(self, two_cliques_graph):
        labels = jaccard_bruteforce_clustering(two_cliques_graph, threshold=0.5)
        assert labels[0] == labels[4]
        assert labels[0] != labels[5]

    def test_threshold_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            jaccard_bruteforce_clustering(triangle_graph, threshold=1.5)

    def test_require_edge_flag(self):
        # two vertices with identical neighborhoods but no edge between them
        g = CSRGraph.from_edges([(0, 2), (0, 3), (1, 2), (1, 3)])
        with_edge = jaccard_bruteforce_clustering(g, 0.9, require_edge=True)
        without = jaccard_bruteforce_clustering(g, 0.9, require_edge=False)
        assert with_edge[0] != with_edge[1]
        assert without[0] == without[1]


class TestSingleLinkage:
    def test_components(self, two_cliques_graph):
        labels = single_linkage_clustering(two_cliques_graph)
        assert np.unique(labels).size == 2
