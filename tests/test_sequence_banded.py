"""Tests for banded Smith-Waterman (scalar and batched)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import AMINO_ACIDS, encode, random_sequence
from repro.sequence.mutate import substitute
from repro.sequence.smith_waterman import (
    batch_smith_waterman,
    sw_score_banded,
    sw_score_linear,
)

seq_strategy = st.text(alphabet=AMINO_ACIDS, min_size=0, max_size=35)


class TestBandedScalar:
    @given(seq_strategy, seq_strategy)
    @settings(max_examples=80, deadline=None)
    def test_full_band_equals_unbanded(self, a, b):
        ea, eb = encode(a), encode(b)
        band = max(len(a), len(b))
        assert sw_score_banded(ea, eb, band) == sw_score_linear(ea, eb)

    @given(seq_strategy, seq_strategy,
           st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_band(self, a, b, band1, band2):
        ea, eb = encode(a), encode(b)
        lo, hi = sorted((band1, band2))
        assert sw_score_banded(ea, eb, lo) <= sw_score_banded(ea, eb, hi)

    def test_high_identity_pair_needs_tiny_band(self):
        rng = np.random.default_rng(0)
        a = random_sequence(150, rng)
        b = substitute(a, 0.05, rng)  # no indels: diagonal alignment
        assert sw_score_banded(a, b, 2) == sw_score_linear(a, b)

    def test_band_zero_is_diagonal_only(self):
        a = encode("ACDEFG")
        assert sw_score_banded(a, a, 0) == sw_score_linear(a, a)

    def test_validation(self):
        with pytest.raises(ValueError):
            sw_score_banded(encode("A"), encode("A"), -1)
        with pytest.raises(ValueError):
            sw_score_banded(encode("A"), encode("A"), 1, gap=-2)

    def test_empty(self):
        assert sw_score_banded(encode(""), encode("ACD"), 3) == 0


class TestBandedBatch:
    @given(st.lists(st.tuples(seq_strategy, seq_strategy), min_size=1,
                    max_size=8), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_banded(self, pairs, band):
        seqs_a = [encode(a) for a, _ in pairs]
        seqs_b = [encode(b) for _, b in pairs]
        batch = batch_smith_waterman(seqs_a, seqs_b, band=band, chunk_size=3)
        scalar = [sw_score_banded(a, b, band) for a, b in zip(seqs_a, seqs_b)]
        assert list(batch) == scalar

    def test_band_none_is_full_dp(self, rng):
        seqs = [rng.integers(0, 20, size=30).astype(np.uint8)
                for _ in range(6)]
        full = batch_smith_waterman(seqs, seqs[::-1], band=None)
        ref = [sw_score_linear(a, b) for a, b in zip(seqs, seqs[::-1])]
        assert list(full) == ref

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_smith_waterman([encode("A")], [encode("A")], band=-1)
