"""Tests for the one-shingle grouping alternative (Section III-B's
"too aggressive" option) against the default two-level scheme."""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, SerialPClust
from repro.core.report import one_shingle_labels
from repro.core.serial import serial_shingle_pass
from repro.eval.confusion import quality_scores
from repro.eval.partition import Partition
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph
from tests.conftest import random_blocky_graph


class TestOneShingleLabels:
    def test_identical_lists_grouped(self):
        from repro.graph.csr import CSRGraph

        # Vertices 0..3 all adjacent to the same set -> same shingles.
        g = CSRGraph.from_edges([(i, j) for i in range(4) for j in (4, 5, 6)])
        cfg = ShinglingParams(c1=8, c2=4, seed=1).pass_config(1)
        pass1 = serial_shingle_pass(g.indptr, g.indices, cfg)
        labels = one_shingle_labels(pass1, g.n_vertices)
        assert labels[0] == labels[1] == labels[2] == labels[3]

    def test_backends_agree(self, blocky_graph):
        cfg = ShinglingParams(c1=10, c2=5, seed=2).pass_config(1)
        pass1 = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        a = one_shingle_labels(pass1, blocky_graph.n_vertices, "vectorized")
        b = one_shingle_labels(pass1, blocky_graph.n_vertices, "unionfind")
        assert np.array_equal(a, b)

    def test_unknown_backend(self, blocky_graph):
        cfg = ShinglingParams(c1=4, c2=2).pass_config(1)
        pass1 = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        with pytest.raises(ValueError):
            one_shingle_labels(pass1, blocky_graph.n_vertices, "gpu")


class TestPipelinesWithGrouping:
    def test_serial_equals_device(self):
        g = random_blocky_graph(seed=31)
        params = ShinglingParams(c1=12, c2=6, seed=3, grouping="one_shingle")
        serial = SerialPClust(params).run(g)
        device = GpClust(params).run(g)
        assert np.array_equal(serial.labels, device.labels)
        assert serial.n_second_level_shingles == 0
        assert device.n_second_level_shingles == 0

    def test_one_shingle_merges_at_least_as_much(self):
        """Sharing ONE shingle is a weaker requirement than sharing a
        second-level shingle chain, so one-shingle clusters refine-or-equal
        never: every two-level merge of generators implies a shared
        first-level shingle... the aggressive mode merges more."""
        g = random_blocky_graph(seed=32)
        base = ShinglingParams(c1=15, c2=8, seed=3)
        two = GpClust(base).run(g)
        one = GpClust(base.with_overrides(grouping="one_shingle")).run(g)
        assert one.n_clusters(min_size=2) > 0
        # Aggressive mode recruits at least as many vertices into clusters.
        assert (one.n_clustered_vertices(min_size=2)
                >= 0.8 * two.n_clustered_vertices(min_size=2))

    def test_quality_shape_on_planted_graph(self):
        """Under union-find partitioning the two schemes converge: any pair
        of co-generators gets unioned either way (via L(f) directly, or via
        a second-level shingle over L(f)).  The one-shingle mode must stay
        in the same quality regime — the paper's "too aggressive" concern
        is about cluster-boundary formation, which the partition-mode
        union-find already relaxes for both."""
        pg = planted_family_graph(
            PlantedFamilyConfig(n_families=15, family_size_median=100.0),
            seed=7)
        base = ShinglingParams(c1=40, c2=20, seed=5)
        bench = Partition(pg.family_labels)
        two = quality_scores(
            Partition(GpClust(base).run(pg.graph).labels), bench, min_size=20)
        one = quality_scores(
            Partition(GpClust(base.with_overrides(
                grouping="one_shingle")).run(pg.graph).labels),
            bench, min_size=20)
        assert abs(one.ppv - two.ppv) < 0.05
        assert abs(one.sensitivity - two.sensitivity) < 0.05

    def test_invalid_combinations(self):
        with pytest.raises(ValueError):
            ShinglingParams(grouping="three_level")
        with pytest.raises(ValueError):
            ShinglingParams(grouping="one_shingle",
                            report_mode="overlapping")
