"""Tests for repro.util.mixhash — scalar/vector equivalence is load-bearing:
the serial and device paths must fingerprint shingles identically."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.mixhash import (
    fold_fingerprint,
    fold_fingerprint_array,
    mix64,
    mix64_array,
    trial_salt,
)

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestMix64:
    @given(U64)
    @settings(max_examples=300)
    def test_scalar_equals_vectorized(self, x):
        assert mix64(x) == int(mix64_array(np.array([x], dtype=np.uint64))[0])

    def test_known_avalanche(self):
        # Flipping one input bit should flip roughly half the output bits.
        flips = bin(mix64(0) ^ mix64(1)).count("1")
        assert 16 <= flips <= 48

    @given(U64, U64)
    @settings(max_examples=200)
    def test_injective_on_samples(self, x, y):
        if x != y:
            assert mix64(x) != mix64(y)

    def test_output_is_64_bits(self):
        for x in (0, 1, (1 << 64) - 1):
            assert 0 <= mix64(x) < (1 << 64)


class TestFoldFingerprint:
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1),
                    min_size=1, max_size=8), U64)
    @settings(max_examples=200)
    def test_scalar_equals_vectorized(self, ids, salt):
        scalar = fold_fingerprint(ids, salt)
        vec = fold_fingerprint_array(
            np.array([ids], dtype=np.uint64), np.array([salt], dtype=np.uint64))
        assert scalar == int(vec[0])

    def test_order_sensitivity(self):
        assert fold_fingerprint([1, 2], 0) != fold_fingerprint([2, 1], 0)

    def test_salt_sensitivity(self):
        assert fold_fingerprint([1, 2], 0) != fold_fingerprint([1, 2], 1)

    def test_batch_shapes(self):
        ids = np.arange(24, dtype=np.uint64).reshape(2, 4, 3)
        salts = np.array([[1], [2]], dtype=np.uint64)
        out = fold_fingerprint_array(ids, salts)
        assert out.shape == (2, 4)
        # row salt actually applied
        out_same = fold_fingerprint_array(ids, np.array([[1], [1]], dtype=np.uint64))
        assert not np.array_equal(out, out_same)

    def test_no_collisions_on_small_universe(self):
        seen = {fold_fingerprint([i, j], 0)
                for i in range(40) for j in range(40)}
        assert len(seen) == 1600


class TestTrialSalt:
    def test_pass_and_trial_separation(self):
        salts = {trial_salt(p, t) for p in (1, 2) for t in range(100)}
        assert len(salts) == 200
