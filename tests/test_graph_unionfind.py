"""Tests for repro.graph.unionfind — both the scalar structure and the
vectorized bulk union, which must agree with each other."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.unionfind import UnionFind, union_groups


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert len(uf) == 5
        assert uf.n_components == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_and_find(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_components == 3

    def test_idempotent_union(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(1, 0)
        assert uf.n_components == 2

    def test_set_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(2) == 3
        assert uf.set_size(5) == 1

    def test_union_group(self):
        uf = UnionFind(6)
        uf.union_group(np.array([1, 3, 5]))
        assert uf.connected(1, 5) and uf.connected(3, 5)
        assert uf.n_components == 4

    def test_union_group_trivial(self):
        uf = UnionFind(3)
        uf.union_group(np.array([2]))
        uf.union_group(np.array([], dtype=np.int64))
        assert uf.n_components == 3

    def test_union_many(self):
        uf = UnionFind(6)
        uf.union_many(np.array([0, 2]), np.array([1, 3]))
        assert uf.connected(0, 1) and uf.connected(2, 3)

    def test_union_many_shape_mismatch(self):
        uf = UnionFind(4)
        with pytest.raises(ValueError):
            uf.union_many(np.array([0]), np.array([1, 2]))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_labels_are_canonical(self):
        uf = UnionFind(5)
        uf.union(3, 4)
        labels = uf.labels()
        # first-appearance order: 0,1,2 singleton, {3,4} shares one label
        assert list(labels[:3]) == [0, 1, 2]
        assert labels[3] == labels[4] == 3

    def test_roots_fully_compressed(self):
        uf = UnionFind(10)
        for i in range(9):
            uf.union(i, i + 1)
        roots = uf.roots()
        assert np.unique(roots).size == 1
        assert np.array_equal(roots, uf._parent)


class TestUnionGroups:
    def test_matches_unionfind(self):
        rng = np.random.default_rng(0)
        n = 60
        groups = [rng.choice(n, size=rng.integers(1, 6), replace=False)
                  for _ in range(15)]
        offsets = np.zeros(len(groups) + 1, dtype=np.int64)
        offsets[1:] = np.cumsum([len(g) for g in groups])
        flat = np.concatenate(groups)

        roots = union_groups(n, offsets, flat)
        uf = UnionFind(n)
        for g in groups:
            uf.union_group(g)
        # same partition (compare canonical forms)
        _, vec_labels = np.unique(roots, return_inverse=True)
        assert np.array_equal(vec_labels, uf.labels())

    def test_empty_groups(self):
        roots = union_groups(4, np.array([0, 0, 0]), np.array([], dtype=np.int64))
        assert np.array_equal(roots, np.arange(4))

    def test_roots_are_set_minima(self):
        offsets = np.array([0, 3])
        flat = np.array([5, 2, 7])
        roots = union_groups(10, offsets, flat)
        assert roots[5] == roots[2] == roots[7] == 2

    def test_transitive_merging_across_groups(self):
        # {0,1} and {1,2} must merge into {0,1,2}
        offsets = np.array([0, 2, 4])
        flat = np.array([0, 1, 1, 2])
        roots = union_groups(5, offsets, flat)
        assert roots[0] == roots[1] == roots[2] == 0
        assert roots[3] == 3

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            union_groups(3, np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError):
            union_groups(3, np.array([0, 2]), np.array([0]))

    def test_member_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            union_groups(3, np.array([0, 1]), np.array([7]))

    @given(st.lists(st.lists(st.integers(0, 29), min_size=1, max_size=5),
                    min_size=0, max_size=12))
    @settings(max_examples=80)
    def test_property_matches_unionfind(self, group_lists):
        n = 30
        groups = [np.array(sorted(set(g)), dtype=np.int64) for g in group_lists]
        offsets = np.zeros(len(groups) + 1, dtype=np.int64)
        offsets[1:] = np.cumsum([len(g) for g in groups])
        flat = (np.concatenate(groups) if groups
                else np.array([], dtype=np.int64))
        roots = union_groups(n, offsets, flat)
        uf = UnionFind(n)
        for g in groups:
            uf.union_group(g)
        _, vec_labels = np.unique(roots, return_inverse=True)
        assert np.array_equal(vec_labels, uf.labels())
