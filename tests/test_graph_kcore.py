"""Tests for k-core decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.kcore import core_filter, core_numbers, k_core


def reference_core_numbers(graph: CSRGraph) -> np.ndarray:
    """Naive iterative-peeling reference."""
    n = graph.n_vertices
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    degrees = graph.degrees().astype(np.int64).copy()
    k = 0
    remaining = n
    while remaining:
        while True:
            peel = np.flatnonzero(alive & (degrees <= k))
            if peel.size == 0:
                break
            for v in peel:
                core[v] = k
                alive[v] = False
                remaining -= 1
                for u in graph.neighbors(v):
                    if alive[u]:
                        degrees[u] -= 1
        k += 1
    return core


class TestCoreNumbers:
    def test_clique(self):
        g = CSRGraph.from_edges([(i, j) for i in range(6)
                                 for j in range(i + 1, 6)])
        assert np.all(core_numbers(g) == 5)

    def test_path(self, path_graph):
        assert np.all(core_numbers(path_graph) == 1)

    def test_isolates(self):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=4)
        core = core_numbers(g)
        assert list(core) == [1, 1, 0, 0]

    def test_clique_with_pendant(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges.append((0, 5))  # pendant vertex
        g = CSRGraph.from_edges(edges)
        core = core_numbers(g)
        assert np.all(core[:5] == 4)
        assert core[5] == 1

    def test_matches_reference(self, blocky_graph):
        assert np.array_equal(core_numbers(blocky_graph),
                              reference_core_numbers(blocky_graph))

    @given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)),
                    max_size=40))
    @settings(max_examples=80)
    def test_matches_reference_property(self, edges):
        g = CSRGraph.from_edges(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2)
            if edges else np.empty((0, 2), dtype=np.int64), n_vertices=15)
        assert np.array_equal(core_numbers(g), reference_core_numbers(g))

    def test_empty_graph(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=0)
        assert core_numbers(g).size == 0


class TestKCoreFilter:
    def test_k_core_selection(self, two_cliques_graph):
        assert k_core(two_cliques_graph, 4).size == 10
        assert k_core(two_cliques_graph, 5).size == 0

    def test_negative_k_rejected(self, two_cliques_graph):
        with pytest.raises(ValueError):
            k_core(two_cliques_graph, -1)

    def test_core_filter_preserves_ids(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(0, 5), (5, 6)]  # a tail
        g = CSRGraph.from_edges(edges)
        filtered = core_filter(g, 3)
        assert filtered.n_vertices == g.n_vertices
        assert filtered.degree(5) == 0
        assert filtered.degree(0) == 4

    def test_core_filter_min_degree_invariant(self, blocky_graph):
        for k in (2, 4, 6):
            filtered = core_filter(blocky_graph, k)
            degs = filtered.degrees()
            assert np.all(degs[degs > 0] >= k)

    def test_core_filter_keeps_clusters(self, two_cliques_graph):
        from repro.core.params import ShinglingParams
        from repro.core.pipeline import GpClust

        filtered = core_filter(two_cliques_graph, 4)
        result = GpClust(ShinglingParams(c1=15, c2=8, seed=1)).run(filtered)
        assert result.n_clusters(min_size=5) == 2
