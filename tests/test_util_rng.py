"""Tests for repro.util.rng (hash pairs and seeded streams)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.primes import DEFAULT_PRIME
from repro.util.rng import HashPair, hash_pair_arrays, make_hash_pairs, spawn_rng


class TestHashPair:
    def test_apply_matches_scalar(self):
        pair = HashPair(a=12345, b=678, prime=DEFAULT_PRIME)
        values = np.arange(1000, dtype=np.int64)
        vec = pair.apply(values)
        scal = np.array([pair.apply_scalar(int(v)) for v in values])
        assert np.array_equal(vec.astype(np.int64), scal)

    def test_rejects_zero_a(self):
        with pytest.raises(ValueError):
            HashPair(a=0, b=1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            HashPair(a=DEFAULT_PRIME, b=0)
        with pytest.raises(ValueError):
            HashPair(a=1, b=DEFAULT_PRIME)
        with pytest.raises(ValueError):
            HashPair(a=1, b=-1)

    @given(st.integers(min_value=1, max_value=DEFAULT_PRIME - 1),
           st.integers(min_value=0, max_value=DEFAULT_PRIME - 1))
    @settings(max_examples=50)
    def test_is_bijection_on_samples(self, a, b):
        """Min-wise property needs a permutation: distinct inputs map to
        distinct outputs."""
        pair = HashPair(a=a, b=b)
        values = np.arange(512, dtype=np.uint64)
        hashed = pair.apply(values)
        assert np.unique(hashed).size == values.size

    def test_no_overflow_at_prime_boundary(self):
        pair = HashPair(a=DEFAULT_PRIME - 1, b=DEFAULT_PRIME - 1)
        v = np.array([DEFAULT_PRIME - 1], dtype=np.uint64)
        out = int(pair.apply(v)[0])
        expected = ((DEFAULT_PRIME - 1) * (DEFAULT_PRIME - 1)
                    + (DEFAULT_PRIME - 1)) % DEFAULT_PRIME
        assert out == expected


class TestMakeHashPairs:
    def test_count_and_determinism(self):
        p1 = make_hash_pairs(10, np.random.default_rng(3))
        p2 = make_hash_pairs(10, np.random.default_rng(3))
        assert len(p1) == 10
        assert p1 == p2

    def test_distinct_pairs(self):
        pairs = make_hash_pairs(100, np.random.default_rng(0))
        assert len({(p.a, p.b) for p in pairs}) == 100

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            make_hash_pairs(0, np.random.default_rng(0))


class TestHashPairArrays:
    def test_round_trip(self):
        pairs = make_hash_pairs(5, np.random.default_rng(1))
        a, b, prime = hash_pair_arrays(pairs)
        assert prime == DEFAULT_PRIME
        assert [int(x) for x in a] == [p.a for p in pairs]
        assert [int(x) for x in b] == [p.b for p in pairs]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            hash_pair_arrays([])

    def test_rejects_mixed_primes(self):
        pairs = [HashPair(1, 0, prime=101), HashPair(1, 0, prime=103)]
        with pytest.raises(ValueError):
            hash_pair_arrays(pairs)


class TestSpawnRng:
    def test_same_seed_same_stream(self):
        a = spawn_rng(7, "pass1").integers(0, 1 << 30, size=5)
        b = spawn_rng(7, "pass1").integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_different_streams_differ(self):
        a = spawn_rng(7, "pass1").integers(0, 1 << 30, size=8)
        b = spawn_rng(7, "pass2").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert spawn_rng(gen) is gen
