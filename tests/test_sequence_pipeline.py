"""Tests for the sequence generator and the homology-graph pipeline."""

import numpy as np
import pytest

from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families
from repro.sequence.homology import HomologyConfig, build_homology_graph
from repro.sequence.smith_waterman import self_score, sw_score_linear


class TestGenerator:
    @pytest.fixture(scope="class")
    def protein_set(self):
        return generate_protein_families(
            SequenceFamilyConfig(n_families=6), seed=2)

    def test_ground_truth_shapes(self, protein_set):
        ps = protein_set
        assert ps.family_labels.size == ps.n_sequences
        assert ps.is_core.size == ps.n_sequences

    def test_family_sizes_at_least_three(self, protein_set):
        fam_sizes = np.bincount(protein_set.family_labels)[:6]
        assert fam_sizes.min() >= 3

    def test_singletons_have_unique_labels(self, protein_set):
        labels = protein_set.family_labels
        singleton_labels = labels[labels >= 6]
        assert np.unique(singleton_labels).size == singleton_labels.size

    def test_core_members_similar_to_each_other(self, protein_set):
        ps = protein_set
        fam0_core = [i for i in range(ps.n_sequences)
                     if ps.family_labels[i] == 0 and ps.is_core[i]]
        a, b = ps.sequences[fam0_core[0]], ps.sequences[fam0_core[1]]
        score = sw_score_linear(a, b)
        assert score > 0.5 * min(self_score(a), self_score(b))

    def test_cross_family_sequences_dissimilar(self, protein_set):
        ps = protein_set
        first_of = {}
        for i in range(ps.n_sequences):
            first_of.setdefault(int(ps.family_labels[i]), i)
        a, b = ps.sequences[first_of[0]], ps.sequences[first_of[1]]
        score = sw_score_linear(a, b)
        assert score < 0.3 * min(self_score(a), self_score(b))

    def test_fragmenting_bounds_lengths(self):
        cfg = SequenceFamilyConfig(n_families=4, fragment=True,
                                   fragment_length=(50, 80))
        ps = generate_protein_families(cfg, seed=1)
        assert max(len(s) for s in ps.sequences) <= 80

    def test_deterministic(self):
        a = generate_protein_families(seed=7)
        b = generate_protein_families(seed=7)
        assert all(np.array_equal(x, y)
                   for x, y in zip(a.sequences, b.sequences))

    def test_fasta_records(self, protein_set):
        records = protein_set.as_fasta_records()
        assert len(records) == protein_set.n_sequences
        assert "family=0" in records[0][0]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SequenceFamilyConfig(n_families=0)
        with pytest.raises(ValueError):
            SequenceFamilyConfig(core_divergence=2.0)
        with pytest.raises(ValueError):
            SequenceFamilyConfig(ancestor_length=(300, 100))


class TestHomologyGraph:
    @pytest.fixture(scope="class")
    def result(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=6), seed=3)
        return ps, build_homology_graph(ps.sequences)

    def test_graph_covers_all_sequences(self, result):
        ps, res = result
        assert res.graph.n_vertices == ps.n_sequences

    def test_edges_mostly_within_families(self, result):
        ps, res = result
        edges = res.graph.edges()
        same = ps.family_labels[edges[:, 0]] == ps.family_labels[edges[:, 1]]
        assert same.mean() > 0.95

    def test_core_members_connected(self, result):
        ps, res = result
        fam0_core = [i for i in range(ps.n_sequences)
                     if ps.family_labels[i] == 0 and ps.is_core[i]]
        degrees = res.graph.degrees()[fam0_core]
        assert np.all(degrees >= 1)

    def test_candidates_superset_of_edges(self, result):
        _, res = result
        assert res.n_candidate_pairs >= res.n_edges

    def test_threshold_monotonicity(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=4), seed=5)
        loose = build_homology_graph(
            ps.sequences, HomologyConfig(min_normalized_score=0.3))
        strict = build_homology_graph(
            ps.sequences, HomologyConfig(min_normalized_score=0.7))
        assert strict.n_edges <= loose.n_edges

    def test_empty_input(self):
        res = build_homology_graph([])
        assert res.graph.n_vertices == 0
        assert res.n_edges == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HomologyConfig(min_normalized_score=0.0)
        with pytest.raises(ValueError):
            HomologyConfig(chunk_size=0)
