"""Tests for the simulated device memory and cost models."""

import numpy as np
import pytest

from repro.device.memory import DeviceBuffer, DeviceMemory, DeviceMemoryError
from repro.device.timingmodels import DeviceSpec, KernelCostModel, TransferModel


class TestTransferModel:
    def test_seconds_scale_with_bytes(self):
        tm = TransferModel(latency_s=1e-5, bandwidth_bytes_per_s=1e9)
        assert tm.seconds_for(0) == pytest.approx(1e-5)
        assert tm.seconds_for(10**9) == pytest.approx(1.0 + 1e-5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TransferModel(latency_s=-1)
        with pytest.raises(ValueError):
            TransferModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            TransferModel().seconds_for(-1)


class TestKernelCostModel:
    def test_known_kernels(self):
        km = KernelCostModel()
        for kernel in ("transform", "sort", "select", "reduce"):
            assert km.seconds_for(kernel, 10**6) > km.launch_latency_s

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            KernelCostModel().seconds_for("fft", 10)

    def test_negative_elements_rejected(self):
        with pytest.raises(ValueError):
            KernelCostModel().seconds_for("sort", -1)

    def test_sort_slower_than_transform(self):
        km = KernelCostModel()
        assert km.seconds_for("sort", 10**8) > km.seconds_for("transform", 10**8)


class TestDeviceSpec:
    def test_defaults_are_k20_like(self):
        spec = DeviceSpec()
        assert spec.memory_capacity_bytes == 5 * 2**30
        assert spec.name == "sim-k20"

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            DeviceSpec(memory_capacity_bytes=0)


class TestDeviceMemory:
    def test_alloc_and_free_accounting(self):
        mem = DeviceMemory(capacity_bytes=1024)
        buf = mem.alloc(64, dtype=np.uint64)
        assert mem.used_bytes == 512
        buf.free()
        assert mem.used_bytes == 0
        assert mem.peak_bytes == 512

    def test_oom_raises(self):
        mem = DeviceMemory(capacity_bytes=100)
        with pytest.raises(DeviceMemoryError):
            mem.alloc(1000, dtype=np.uint64)

    def test_double_free_is_idempotent(self):
        mem = DeviceMemory(capacity_bytes=1024)
        buf = mem.alloc(8)
        buf.free()
        buf.free()
        assert mem.used_bytes == 0

    def test_use_after_free_rejected(self):
        mem = DeviceMemory(capacity_bytes=1024)
        buf = mem.alloc(8)
        buf.free()
        with pytest.raises(RuntimeError):
            buf.device_view()

    def test_to_device_copies(self):
        mem = DeviceMemory(capacity_bytes=1 << 20)
        host = np.arange(10, dtype=np.int64)
        buf, modeled = mem.to_device(host)
        host[0] = 999  # mutating host must not affect device copy
        assert buf.device_view()[0] == 0
        assert modeled > 0
        assert mem.bytes_to_device == 80

    def test_to_host_copies(self):
        mem = DeviceMemory(capacity_bytes=1 << 20)
        buf, _ = mem.to_device(np.arange(4, dtype=np.int64))
        out, modeled = mem.to_host(buf)
        out[0] = 42  # mutating the download must not affect the device
        assert buf.device_view()[0] == 0
        assert mem.bytes_to_host == 32
        assert modeled > 0

    def test_transfer_respects_capacity(self):
        mem = DeviceMemory(capacity_bytes=64)
        with pytest.raises(DeviceMemoryError):
            mem.to_device(np.zeros(100, dtype=np.float64))

    def test_adopt_reserves(self):
        mem = DeviceMemory(capacity_bytes=100)
        arr = np.zeros(10, dtype=np.uint64)
        buf = mem.adopt(arr)
        assert mem.used_bytes == 80
        with pytest.raises(DeviceMemoryError):
            mem.adopt(np.zeros(10, dtype=np.uint64))
        buf.free()

    def test_reset_counters(self):
        mem = DeviceMemory(capacity_bytes=1 << 20)
        mem.to_device(np.zeros(4))
        mem.reset_counters()
        assert mem.bytes_to_device == 0

    def test_repr_shows_state(self):
        mem = DeviceMemory(capacity_bytes=1024)
        buf = mem.alloc(4)
        assert "B" in repr(buf)
        buf.free()
        assert "freed" in repr(buf)
