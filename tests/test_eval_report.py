"""Tests for the one-call ComparisonReport."""

import numpy as np
import pytest

from repro.baselines.gos_kneighbor import gos_kneighbor_clustering
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.eval.partition import Partition
from repro.eval.report import ComparisonReport
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph


@pytest.fixture(scope="module")
def report():
    pg = planted_family_graph(
        PlantedFamilyConfig(n_families=12, family_size_median=90.0), seed=4)
    gp = Partition(GpClust(ShinglingParams(c1=40, c2=20, seed=1)).run(pg.graph).labels)
    gos = Partition(gos_kneighbor_clustering(pg.gos_graph, k=10))
    bench = Partition(pg.family_labels)
    return ComparisonReport.compute(pg.graph, {"gpClust": gp, "GOS": gos},
                                    bench, min_size=20)


class TestComparisonReport:
    def test_methods_present(self, report):
        assert [m.name for m in report.methods] == ["gpClust", "GOS"]
        assert report.method("GOS").quality.ppv > 0.99
        with pytest.raises(KeyError):
            report.method("mcl")

    def test_measurements_consistent(self, report):
        for m in report.methods:
            assert 0.0 <= m.quality.sensitivity <= 1.0
            assert 0.0 <= m.density_mean <= 1.0
            assert -1.0 <= m.ari <= 1.0
            assert 0.0 <= m.f1 <= 1.0
            assert m.stats.n_groups == int(m.stats.n_groups)

    def test_f1_between_ppv_and_se_extremes(self, report):
        for m in report.methods:
            lo = min(m.quality.ppv, m.quality.sensitivity)
            hi = max(m.quality.ppv, m.quality.sensitivity)
            assert lo <= m.f1 <= hi

    def test_render_contains_all_tables(self, report):
        text = report.render()
        assert "Quality vs. benchmark" in text
        assert "Partition statistics" in text
        assert "Group-size distribution" in text
        assert "gpClust" in text and "GOS" in text
        assert "Benchmark" in text

    def test_benchmark_row(self, report):
        assert report.benchmark_stats.n_groups >= 12
        assert 0.0 < report.benchmark_density[0] < 1.0

    def test_distribution_columns_match_methods(self, report):
        table = report.distribution_table()
        header = table.splitlines()[2]
        assert "gpClust" in header and "GOS" in header

    def test_empty_methods(self):
        graph_part = Partition(np.array([0, 0, 1]))
        from repro.graph.csr import CSRGraph

        g = CSRGraph.from_edges([(0, 1)], n_vertices=3)
        report = ComparisonReport.compute(g, {}, graph_part, min_size=2)
        assert report.methods == []
        assert "(no methods)" in report.distribution_table()
