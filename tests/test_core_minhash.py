"""Tests for min-wise hashing Jaccard estimation — the statistical property
the whole Shingling heuristic rests on."""

import numpy as np
import pytest

from repro.core.minhash import (
    estimate_jaccard,
    estimate_jaccard_matrix,
    estimation_error_bound,
    exact_jaccard,
    minhash_signatures,
)
from repro.core.params import ShinglingParams
from repro.device.kernels import SENTINEL
from repro.graph.csr import CSRGraph
from tests.conftest import random_blocky_graph


@pytest.fixture(scope="module")
def sig_setup():
    graph = random_blocky_graph(seed=17, n=120, n_blocks=3, block=20, p=0.85,
                                n_noise=60)
    config = ShinglingParams(c1=400, c2=10, seed=2).pass_config(1)
    signatures = minhash_signatures(graph, config)
    return graph, signatures


class TestSignatures:
    def test_shape(self, sig_setup):
        graph, signatures = sig_setup
        assert signatures.shape == (400, graph.n_vertices)

    def test_empty_neighborhoods_sentinel(self):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=3)
        config = ShinglingParams(c1=5, c2=5, seed=0).pass_config(1)
        sigs = minhash_signatures(g, config)
        assert np.all(sigs[:, 2] == SENTINEL)
        assert np.all(sigs[:, 0] != SENTINEL)

    def test_identical_neighborhoods_identical_signatures(self):
        # vertices 0 and 1 both adjacent exactly to {2, 3}
        g = CSRGraph.from_edges([(0, 2), (0, 3), (1, 2), (1, 3)])
        config = ShinglingParams(c1=16, c2=5, seed=1).pass_config(1)
        sigs = minhash_signatures(g, config)
        assert np.array_equal(sigs[:, 0], sigs[:, 1])

    def test_trial_chunk_invariance(self, sig_setup):
        graph, signatures = sig_setup
        config = ShinglingParams(c1=400, c2=10, seed=2).pass_config(1)
        again = minhash_signatures(graph, config, trial_chunk=7)
        assert np.array_equal(signatures, again)


class TestEstimation:
    def test_estimates_close_to_exact(self, sig_setup):
        """The core min-wise property: agreement frequency ~= Jaccard."""
        graph, signatures = sig_setup
        rng = np.random.default_rng(3)
        bound = estimation_error_bound(400, confidence=0.999)
        checked = 0
        for _ in range(60):
            u, v = rng.integers(0, graph.n_vertices, size=2)
            if graph.degree(int(u)) == 0 or graph.degree(int(v)) == 0:
                continue
            est = estimate_jaccard(signatures, int(u), int(v))
            exact = exact_jaccard(graph, int(u), int(v))
            assert abs(est - exact) <= bound + 0.02, (u, v, est, exact)
            checked += 1
        assert checked > 30

    def test_self_similarity(self, sig_setup):
        graph, signatures = sig_setup
        v = int(np.argmax(graph.degrees()))
        assert estimate_jaccard(signatures, v, v) == 1.0
        assert exact_jaccard(graph, v, v) == 1.0

    def test_empty_neighborhood_is_zero(self):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=3)
        config = ShinglingParams(c1=8, c2=5, seed=0).pass_config(1)
        sigs = minhash_signatures(g, config)
        assert estimate_jaccard(sigs, 0, 2) == 0.0
        assert exact_jaccard(g, 0, 2) == 0.0

    def test_matrix_consistent_with_pairwise(self, sig_setup):
        graph, signatures = sig_setup
        vertices = np.array([0, 5, 10, 20])
        mat = estimate_jaccard_matrix(signatures, vertices)
        for i, u in enumerate(vertices):
            for j, v in enumerate(vertices):
                if i == j:
                    continue
                assert mat[i, j] == pytest.approx(
                    estimate_jaccard(signatures, int(u), int(v)))

    def test_matrix_diagonal(self, sig_setup):
        graph, signatures = sig_setup
        vertices = np.flatnonzero(graph.degrees() > 0)[:4]
        mat = estimate_jaccard_matrix(signatures, vertices)
        assert np.allclose(np.diag(mat), 1.0)

    def test_matrix_empty_vertex_scores_zero(self):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=3)
        config = ShinglingParams(c1=8, c2=5, seed=0).pass_config(1)
        sigs = minhash_signatures(g, config)
        mat = estimate_jaccard_matrix(sigs, np.array([0, 2]))
        assert mat[0, 1] == 0.0 and mat[1, 1] == 0.0
        assert mat[0, 0] == 1.0


class TestErrorBound:
    def test_decreases_with_c(self):
        assert (estimation_error_bound(400) < estimation_error_bound(100)
                < estimation_error_bound(25))

    def test_paper_c200_bound(self):
        # c1=200 bounds the estimate within ~±0.07 at 95%.
        assert 0.05 < estimation_error_bound(200) < 0.08

    def test_validation(self):
        with pytest.raises(ValueError):
            estimation_error_bound(0)
        with pytest.raises(ValueError):
            estimation_error_bound(10, confidence=1.5)
