"""Tests for Smith-Waterman (all three implementations) and the k-mer filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import AMINO_ACIDS, encode
from repro.sequence.kmer_filter import candidate_pairs, kmer_codes
from repro.sequence.scoring import BLOSUM62
from repro.sequence.smith_waterman import (
    batch_smith_waterman,
    self_score,
    sw_align,
    sw_score_affine,
    sw_score_linear,
)

seq_strategy = st.text(alphabet=AMINO_ACIDS, min_size=0, max_size=40)


class TestScalarSW:
    def test_identical_sequences(self):
        s = encode("HEAGAWGHEE")
        assert sw_score_linear(s, s) == self_score(s)

    def test_empty_sequence(self):
        assert sw_score_linear(encode(""), encode("ACD")) == 0

    def test_disjoint_alphabet_segments_score_low(self):
        a = encode("WWWWW")
        b = encode("PPPPP")
        assert sw_score_linear(a, b) == 0  # W-P scores -4, local => 0

    def test_symmetry(self):
        a, b = encode("ACDEFGHIKL"), encode("ACDWWGHIKL")
        assert sw_score_linear(a, b) == sw_score_linear(b, a)

    def test_local_alignment_ignores_flanks(self):
        core = "HEAGAWGHE"
        a = encode("PPPP" + core)
        b = encode(core + "GGGG")
        assert sw_score_linear(a, b) >= sw_score_linear(encode(core), encode(core)) - 8

    def test_gap_penalty_monotonicity(self):
        a = encode("ACDEFGHIKLMNP")
        b = encode("ACDEFGIKLMNP")  # one deletion
        assert sw_score_linear(a, b, gap=4) >= sw_score_linear(a, b, gap=12)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            sw_score_linear(encode("A"), encode("A"), gap=-1)


class TestAffineSW:
    def test_identical(self):
        s = encode("ACDEFGHIKLMNPQRSTVWY")
        assert sw_score_affine(s, s) == self_score(s)

    def test_affine_beats_linear_on_long_gap(self):
        a = encode("ACDEFGHIKLMNPQRSTVWY")
        b = encode("ACDEFGHIK" + "LMNPQRSTVWY")  # same; now insert a long gap
        b = encode("ACDEFGHIKWWWWWWWWLMNPQRSTVWY")
        affine = sw_score_affine(a, b, gap_open=11, gap_extend=1)
        linear = sw_score_linear(a, b, gap=8)
        assert affine >= linear  # one long gap is cheap under affine

    def test_invalid_penalties(self):
        with pytest.raises(ValueError):
            sw_score_affine(encode("A"), encode("A"), gap_open=-1)

    def test_affine_equals_linear_when_open_equals_extend(self):
        a, b = encode("HEAGAWGHEE"), encode("PAWHEAE")
        assert (sw_score_affine(a, b, gap_open=8, gap_extend=8)
                == sw_score_linear(a, b, gap=8))


class TestSwAlign:
    def test_score_matches_scalar(self):
        a, b = encode("HEAGAWGHEE"), encode("PAWHEAE")
        score, path = sw_align(a, b)
        assert score == sw_score_linear(a, b)
        assert path  # non-empty for homologous strings

    def test_path_is_strictly_increasing(self):
        a, b = encode("ACDEFGHIKLM"), encode("ACDFGHIKLM")
        _, path = sw_align(a, b)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert i2 > i1 and j2 > j1

    def test_path_indices_valid(self):
        a, b = encode("WYVA"), encode("AWYV")
        _, path = sw_align(a, b)
        for i, j in path:
            assert 0 <= i < len(a) and 0 <= j < len(b)

    def test_empty(self):
        assert sw_align(encode(""), encode("ACD")) == (0, [])


class TestBatchSW:
    @given(st.lists(st.tuples(seq_strategy, seq_strategy), min_size=1,
                    max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_property(self, string_pairs):
        seqs_a = [encode(a) for a, _ in string_pairs]
        seqs_b = [encode(b) for _, b in string_pairs]
        batch = batch_smith_waterman(seqs_a, seqs_b, gap=8, chunk_size=5)
        scalar = [sw_score_linear(a, b, gap=8) for a, b in zip(seqs_a, seqs_b)]
        assert list(batch) == scalar

    def test_chunking_invariance(self, rng):
        seqs_a = [rng.integers(0, 20, size=rng.integers(3, 50)).astype(np.uint8)
                  for _ in range(20)]
        seqs_b = [rng.integers(0, 20, size=rng.integers(3, 50)).astype(np.uint8)
                  for _ in range(20)]
        s1 = batch_smith_waterman(seqs_a, seqs_b, chunk_size=1)
        s2 = batch_smith_waterman(seqs_a, seqs_b, chunk_size=64)
        assert np.array_equal(s1, s2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batch_smith_waterman([encode("A")], [])

    def test_custom_gap(self):
        a, b = encode("ACDEFGHIKL"), encode("ACDGHIKL")
        out = batch_smith_waterman([a], [b], gap=2)
        assert out[0] == sw_score_linear(a, b, gap=2)


class TestKmerFilter:
    def test_kmer_codes_basic(self):
        seq = encode("ACDAC")
        codes = kmer_codes(seq, 3)
        assert codes.size == 3
        # "ACD" appears at position 0; check uniqueness structure
        assert kmer_codes(encode("ACD"), 3)[0] == codes[0]

    def test_kmer_codes_short_sequence(self):
        assert kmer_codes(encode("AC"), 3).size == 0

    def test_kmer_k_too_large(self):
        with pytest.raises(ValueError):
            kmer_codes(encode("ACDEFGHIKLMNPQRSTVWY"), 15)

    def test_identical_sequences_are_candidates(self):
        s = encode("ACDEFGHIKLMNP")
        pairs = candidate_pairs([s, s.copy(), encode("WWWWWYYYYY")], k=4)
        assert [tuple(p) for p in pairs.tolist()] == [(0, 1)]

    def test_min_shared_raises_bar(self):
        a = encode("ACDEFGHIKL")
        b = encode("ACDEFWWWWW")  # shares k-mers only in the ACDEF prefix
        assert candidate_pairs([a, b], k=4, min_shared=1).shape[0] == 1
        assert candidate_pairs([a, b], k=4, min_shared=5).shape[0] == 0

    def test_low_complexity_filter(self):
        seqs = [encode("AAAAAAAAAA") for _ in range(10)]
        pairs = candidate_pairs(seqs, k=4, max_kmer_occurrence=5)
        assert pairs.shape[0] == 0

    def test_no_self_pairs(self):
        s = encode("ACDACDACD")  # repeated k-mers within one sequence
        pairs = candidate_pairs([s], k=3)
        assert pairs.shape[0] == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            candidate_pairs([], k=4, min_shared=0)
        with pytest.raises(ValueError):
            candidate_pairs([], k=4, max_kmer_occurrence=1)

    def test_pairs_sorted_unique(self, rng):
        seqs = [rng.integers(0, 4, size=30).astype(np.uint8) for _ in range(8)]
        pairs = candidate_pairs(seqs, k=3, max_kmer_occurrence=8)
        assert np.all(pairs[:, 0] < pairs[:, 1])
        keys = pairs[:, 0] * 8 + pairs[:, 1]
        assert np.unique(keys).size == keys.size
