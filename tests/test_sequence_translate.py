"""Tests for DNA handling and six-frame ORF extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import decode
from repro.sequence.translate import (
    CODON_TABLE,
    extract_orfs,
    reverse_complement,
    reverse_translate,
    shotgun_reads,
    six_frame_translation,
    translate_frame,
)

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=120)


class TestCodonTable:
    def test_complete(self):
        assert len(CODON_TABLE) == 64

    def test_stops(self):
        assert {c for c, aa in CODON_TABLE.items() if aa == "*"} == {
            "TAA", "TAG", "TGA"}

    def test_known_codons(self):
        assert CODON_TABLE["ATG"] == "M"
        assert CODON_TABLE["TGG"] == "W"


class TestReverseComplement:
    def test_basic(self):
        assert reverse_complement("ATGC") == "GCAT"

    @given(dna_strings)
    @settings(max_examples=100)
    def test_involution(self, dna):
        assert reverse_complement(reverse_complement(dna)) == dna

    def test_unknown_bases(self):
        assert reverse_complement("AXG") == "CNT"


class TestTranslation:
    def test_frame0(self):
        assert translate_frame("ATGGCC") == "MA"

    def test_frames_shift(self):
        dna = "AATGGCC"
        assert translate_frame(dna, 1) == "MA"

    def test_stop_codon(self):
        assert translate_frame("ATGTAAGCC") == "M*A"

    def test_invalid_frame(self):
        with pytest.raises(ValueError):
            translate_frame("ATG", 3)

    def test_six_frames_count(self):
        frames = six_frame_translation("ATGGCCATTGTA")
        assert len(frames) == 6

    @given(dna_strings)
    @settings(max_examples=60)
    def test_frame_lengths(self, dna):
        for f in range(3):
            assert len(translate_frame(dna, f)) == max(0, (len(dna) - f) // 3)


class TestReverseTranslate:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        protein = rng.integers(0, 20, size=30).astype(np.uint8)
        dna = reverse_translate(protein, rng)
        assert translate_frame(dna, 0) == decode(protein)


class TestExtractOrfs:
    def test_finds_embedded_protein(self):
        rng = np.random.default_rng(0)
        protein = rng.integers(0, 20, size=50).astype(np.uint8)
        dna = reverse_translate(protein, rng)
        orfs = extract_orfs(dna, min_length=40)
        assert any(decode(protein) in decode(o) for o in orfs)

    def test_finds_protein_on_reverse_strand(self):
        rng = np.random.default_rng(1)
        protein = rng.integers(0, 20, size=50).astype(np.uint8)
        dna = reverse_complement(reverse_translate(protein, rng))
        orfs = extract_orfs(dna, min_length=40)
        assert any(decode(protein) in decode(o) for o in orfs)

    def test_min_length_respected(self):
        orfs = extract_orfs("ATGGCC", min_length=30)
        assert orfs == []

    def test_stops_break_orfs(self):
        rng = np.random.default_rng(2)
        a = reverse_translate(rng.integers(0, 20, size=35).astype(np.uint8), rng)
        b = reverse_translate(rng.integers(0, 20, size=35).astype(np.uint8), rng)
        dna = a + "TAA" + b
        orfs = extract_orfs(dna, min_length=30)
        lengths = sorted(len(o) for o in orfs if 30 <= len(o) <= 36)
        assert len(lengths) >= 2  # the two halves show up separately

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            extract_orfs("ATG", min_length=0)


class TestShotgunReads:
    def test_read_properties(self):
        rng = np.random.default_rng(3)
        dna = "".join(rng.choice(list("ACGT"), size=500))
        reads = shotgun_reads(dna, n_reads=20, read_length=80, rng=rng)
        assert len(reads) == 20
        assert all(len(r) == 80 for r in reads)

    def test_error_rate(self):
        rng = np.random.default_rng(4)
        dna = "A" * 1000
        reads = shotgun_reads(dna, 10, 200, rng, error_rate=0.2)
        # With errors, reads are no longer homopolymers (A or its complement T)
        assert any(set(r) - {"A"} and set(r) - {"T"} for r in reads)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            shotgun_reads("ACGT", 1, 0, rng)
        with pytest.raises(ValueError):
            shotgun_reads("ACGT", 1, 10, rng)
        with pytest.raises(ValueError):
            shotgun_reads("ACGTACGT", 1, 4, rng, error_rate=2.0)


class TestDnaToClusterPipeline:
    def test_orfs_from_dna_cluster_into_families(self):
        """Full front end: proteins -> DNA -> shotgun fragments -> ORFs ->
        homology graph -> clusters recover the families."""
        from repro.core.params import ShinglingParams
        from repro.core.pipeline import GpClust
        from repro.eval.confusion import quality_scores
        from repro.eval.partition import Partition
        from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families
        from repro.sequence.homology import build_homology_graph

        rng = np.random.default_rng(5)
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=4, family_size_median=8.0,
                                 ancestor_length=(90, 120)), seed=6)
        orfs, labels = [], []
        for i, protein in enumerate(ps.sequences):
            dna = reverse_translate(protein, rng)
            found = extract_orfs(dna, min_length=min(60, len(protein) - 5))
            assert found, "embedded protein must be recoverable"
            orfs.append(max(found, key=len))
            labels.append(ps.family_labels[i])
        result = build_homology_graph(orfs)
        clustering = GpClust(ShinglingParams(c1=20, c2=10, seed=1)).run(result.graph)
        qs = quality_scores(Partition(clustering.labels),
                            Partition(np.asarray(labels)), min_size=3)
        assert qs.ppv > 0.9
        assert qs.sensitivity > 0.2
