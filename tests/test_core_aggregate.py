"""Tests for CPU aggregation and split-list merging."""

import numpy as np
import pytest

from repro.core.aggregate import (
    aggregate_pass,
    fingerprints_from_pairs,
    merge_split_pairs,
)
from repro.device.kernels import SENTINEL, pack_pairs
from repro.util.mixhash import fold_fingerprint


class TestMergeSplitPairs:
    def test_recovers_global_top_s(self):
        # chunk tops (hash<<32|id) for one split segment, c=1, s=2
        c1 = pack_pairs(np.array([[[5, 9]]], dtype=np.uint64),
                        np.array([[[50, 90]]], dtype=np.uint64))
        c2 = pack_pairs(np.array([[[3, 7]]], dtype=np.uint64),
                        np.array([[[30, 70]]], dtype=np.uint64))
        merged = merge_split_pairs([c1, c2], s=2)
        hashes = merged >> np.uint64(32)
        assert list(hashes[0, 0]) == [3, 5]

    def test_sentinel_padding_respected(self):
        c1 = np.full((1, 1, 2), SENTINEL, dtype=np.uint64)
        c2 = pack_pairs(np.array([[[4, 6]]], dtype=np.uint64),
                        np.array([[[1, 2]]], dtype=np.uint64))
        merged = merge_split_pairs([c1, c2], s=2)
        assert np.array_equal(merged, c2)

    def test_too_short_union_stays_padded(self):
        c1 = np.full((1, 1, 2), SENTINEL, dtype=np.uint64)
        c1[0, 0, 0] = pack_pairs(np.array([7], dtype=np.uint64),
                                 np.array([1], dtype=np.uint64))[0]
        merged = merge_split_pairs([c1], s=2)
        assert merged[0, 0, 1] == SENTINEL

    def test_empty_chunk_list_rejected(self):
        with pytest.raises(ValueError):
            merge_split_pairs([], s=2)


class TestFingerprintsFromPairs:
    def test_matches_scalar_fold(self):
        pairs = pack_pairs(np.array([[[2, 8]]], dtype=np.uint64),
                           np.array([[[20, 80]]], dtype=np.uint64))
        salts = np.array([42], dtype=np.uint64)
        fps = fingerprints_from_pairs(pairs, salts)
        assert fps[0, 0] == fold_fingerprint([20, 80], 42)


class TestAggregatePass:
    def _inputs(self, c=2, n_seg=3, s=2):
        fps = np.arange(c * n_seg, dtype=np.uint64).reshape(c, n_seg) + 100
        ids = np.arange(c * n_seg * s, dtype=np.uint64).reshape(c, n_seg, s)
        top = pack_pairs(np.zeros_like(ids), ids)
        lengths = np.array([3, 1, 4])  # segment 1 too short for s=2
        return fps, top, lengths

    def test_short_segments_excluded(self):
        fps, top, lengths = self._inputs()
        result = aggregate_pass(fps, top, lengths, s=2)
        gens = set()
        for i in range(result.n_shingles):
            gens.update(result.gen_graph.neighbors(i).tolist())
        assert 1 not in gens
        assert gens == {0, 2}

    def test_distinct_count(self):
        fps, top, lengths = self._inputs()
        result = aggregate_pass(fps, top, lengths, s=2)
        assert result.n_shingles == 4  # 2 trials x 2 valid segments, all distinct

    def test_shared_fingerprints_grouped(self):
        fps = np.array([[7, 7, 7]], dtype=np.uint64)
        ids = np.tile(np.array([1, 2], dtype=np.uint64), (1, 3, 1))
        top = pack_pairs(np.zeros_like(ids), ids)
        result = aggregate_pass(fps, top, np.array([2, 2, 2]), s=2)
        assert result.n_shingles == 1
        assert list(result.gen_graph.neighbors(0)) == [0, 1, 2]
        assert list(result.members[0]) == [1, 2]

    def test_empty_input(self):
        result = aggregate_pass(np.zeros((2, 0), dtype=np.uint64),
                                np.zeros((2, 0, 2), dtype=np.uint64),
                                np.zeros(0, dtype=np.int64), s=2)
        assert result.n_shingles == 0
        assert result.n_input_segments == 0

    def test_all_segments_too_short(self):
        fps = np.zeros((1, 2), dtype=np.uint64)
        top = np.zeros((1, 2, 3), dtype=np.uint64)
        result = aggregate_pass(fps, top, np.array([1, 2]), s=3)
        assert result.n_shingles == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_pass(np.zeros((2, 3), dtype=np.uint64),
                           np.zeros((2, 4, 2), dtype=np.uint64),
                           np.array([2, 2, 2]), s=2)
        with pytest.raises(ValueError):
            aggregate_pass(np.zeros((2, 3), dtype=np.uint64),
                           np.zeros((2, 3, 2), dtype=np.uint64),
                           np.array([2, 2]), s=2)

    def test_sentinel_member_leak_detected(self):
        # A sentinel id in a "valid" segment is a contract violation.
        fps = np.array([[1]], dtype=np.uint64)
        top = np.full((1, 1, 2), SENTINEL, dtype=np.uint64)
        with pytest.raises(AssertionError):
            aggregate_pass(fps, top, np.array([5]), s=2)
