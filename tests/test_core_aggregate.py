"""Tests for CPU aggregation and split-list merging."""

import numpy as np
import pytest

from repro.core.aggregate import (
    aggregate_pass,
    fingerprints_from_pairs,
    merge_split_pairs,
)
from repro.device.kernels import SENTINEL, pack_pairs
from repro.util.mixhash import fold_fingerprint


class TestMergeSplitPairs:
    def test_recovers_global_top_s(self):
        # chunk tops (hash<<32|id) for one split segment, c=1, s=2
        c1 = pack_pairs(np.array([[[5, 9]]], dtype=np.uint64),
                        np.array([[[50, 90]]], dtype=np.uint64))
        c2 = pack_pairs(np.array([[[3, 7]]], dtype=np.uint64),
                        np.array([[[30, 70]]], dtype=np.uint64))
        merged = merge_split_pairs([c1, c2], s=2)
        hashes = merged >> np.uint64(32)
        assert list(hashes[0, 0]) == [3, 5]

    def test_sentinel_padding_respected(self):
        c1 = np.full((1, 1, 2), SENTINEL, dtype=np.uint64)
        c2 = pack_pairs(np.array([[[4, 6]]], dtype=np.uint64),
                        np.array([[[1, 2]]], dtype=np.uint64))
        merged = merge_split_pairs([c1, c2], s=2)
        assert np.array_equal(merged, c2)

    def test_too_short_union_stays_padded(self):
        c1 = np.full((1, 1, 2), SENTINEL, dtype=np.uint64)
        c1[0, 0, 0] = pack_pairs(np.array([7], dtype=np.uint64),
                                 np.array([1], dtype=np.uint64))[0]
        merged = merge_split_pairs([c1], s=2)
        assert merged[0, 0, 1] == SENTINEL

    def test_empty_chunk_list_rejected(self):
        with pytest.raises(ValueError):
            merge_split_pairs([], s=2)


class TestFingerprintsFromPairs:
    def test_matches_scalar_fold(self):
        pairs = pack_pairs(np.array([[[2, 8]]], dtype=np.uint64),
                           np.array([[[20, 80]]], dtype=np.uint64))
        salts = np.array([42], dtype=np.uint64)
        fps = fingerprints_from_pairs(pairs, salts)
        assert fps[0, 0] == fold_fingerprint([20, 80], 42)


class TestAggregatePass:
    def _inputs(self, c=2, n_seg=3, s=2):
        fps = np.arange(c * n_seg, dtype=np.uint64).reshape(c, n_seg) + 100
        ids = np.arange(c * n_seg * s, dtype=np.uint64).reshape(c, n_seg, s)
        top = pack_pairs(np.zeros_like(ids), ids)
        lengths = np.array([3, 1, 4])  # segment 1 too short for s=2
        return fps, top, lengths

    def test_short_segments_excluded(self):
        fps, top, lengths = self._inputs()
        result = aggregate_pass(fps, top, lengths, s=2)
        gens = set()
        for i in range(result.n_shingles):
            gens.update(result.gen_graph.neighbors(i).tolist())
        assert 1 not in gens
        assert gens == {0, 2}

    def test_distinct_count(self):
        fps, top, lengths = self._inputs()
        result = aggregate_pass(fps, top, lengths, s=2)
        assert result.n_shingles == 4  # 2 trials x 2 valid segments, all distinct

    def test_shared_fingerprints_grouped(self):
        fps = np.array([[7, 7, 7]], dtype=np.uint64)
        ids = np.tile(np.array([1, 2], dtype=np.uint64), (1, 3, 1))
        top = pack_pairs(np.zeros_like(ids), ids)
        result = aggregate_pass(fps, top, np.array([2, 2, 2]), s=2)
        assert result.n_shingles == 1
        assert list(result.gen_graph.neighbors(0)) == [0, 1, 2]
        assert list(result.members[0]) == [1, 2]

    def test_empty_input(self):
        result = aggregate_pass(np.zeros((2, 0), dtype=np.uint64),
                                np.zeros((2, 0, 2), dtype=np.uint64),
                                np.zeros(0, dtype=np.int64), s=2)
        assert result.n_shingles == 0
        assert result.n_input_segments == 0

    def test_all_segments_too_short(self):
        fps = np.zeros((1, 2), dtype=np.uint64)
        top = np.zeros((1, 2, 3), dtype=np.uint64)
        result = aggregate_pass(fps, top, np.array([1, 2]), s=3)
        assert result.n_shingles == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_pass(np.zeros((2, 3), dtype=np.uint64),
                           np.zeros((2, 4, 2), dtype=np.uint64),
                           np.array([2, 2, 2]), s=2)
        with pytest.raises(ValueError):
            aggregate_pass(np.zeros((2, 3), dtype=np.uint64),
                           np.zeros((2, 3, 2), dtype=np.uint64),
                           np.array([2, 2]), s=2)

    def test_sentinel_member_leak_detected(self):
        # A sentinel id in a "valid" segment is a contract violation.
        fps = np.array([[1]], dtype=np.uint64)
        top = np.full((1, 1, 2), SENTINEL, dtype=np.uint64)
        with pytest.raises(AssertionError):
            aggregate_pass(fps, top, np.array([5]), s=2)


class TestDebugChecksGate:
    def test_default_off_outside_suite(self):
        from repro.core.aggregate import set_debug_checks

        prev = set_debug_checks(False)
        try:
            # With checks off, the contract violation passes through silently
            # (the hot path no longer pays the O(k*s) scan).
            fps = np.array([[1]], dtype=np.uint64)
            top = np.full((1, 1, 2), SENTINEL, dtype=np.uint64)
            lengths = np.array([2], dtype=np.int64)
            aggregate_pass(fps, top, lengths, 2)  # must not raise
        finally:
            set_debug_checks(prev)
        assert prev is True  # the suite force-enables checks

    def test_toggle_returns_previous(self):
        from repro.core.aggregate import debug_checks_enabled, set_debug_checks

        prev = set_debug_checks(False)
        assert debug_checks_enabled() is False
        assert set_debug_checks(prev) is False
        assert debug_checks_enabled() is prev


class TestSharedSplitMerge:
    def test_merge_splits_into_matches_merge_split_pairs(self):
        """The two historical call signatures share one merge core."""
        from repro.core.aggregate import merge_splits_into

        rng = np.random.default_rng(6)
        c, s = 3, 2
        chunks = [
            (rng.integers(0, 1 << 40, size=(c, 1, s)).astype(np.uint64))
            for _ in range(3)
        ]
        for chunk in chunks:
            chunk.sort(axis=2)
        expected = merge_split_pairs([ch.copy() for ch in chunks], s)

        salts = rng.integers(0, 1 << 60, size=c).astype(np.uint64)
        fps_all = np.zeros((c, 4), dtype=np.uint64)
        top_all = np.full((c, 4, s), SENTINEL, dtype=np.uint64)
        merge_splits_into(fps_all, top_all,
                          {2: [ch[:, 0, :] for ch in chunks]}, s, salts)
        assert np.array_equal(top_all[:, 2, :], expected[:, 0, :])
        assert np.array_equal(fps_all[:, 2],
                              fingerprints_from_pairs(expected, salts)[:, 0])

    def test_merge_candidate_pairs_truncates_in_place(self):
        from repro.core.aggregate import merge_candidate_pairs

        block = np.array([[5, 1, 9, 3]], dtype=np.uint64)
        out = merge_candidate_pairs(block, 2)
        assert np.array_equal(out, [[1, 3]])
        assert np.array_equal(block, [[1, 3, 5, 9]])  # sorted in place
