"""Tests for the LSD radix sort kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.radix import radix_argsort, radix_sort, radix_sort_pairs_by_segment

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestRadixSort:
    def test_basic(self):
        keys, _ = radix_sort(np.array([5, 3, 9, 1], dtype=np.uint64))
        assert list(keys) == [1, 3, 5, 9]

    def test_matches_npsort(self, rng):
        keys = rng.integers(0, 1 << 62, size=5000).astype(np.uint64)
        sorted_keys, _ = radix_sort(keys)
        assert np.array_equal(sorted_keys, np.sort(keys))

    def test_payload_permuted_along(self):
        keys = np.array([30, 10, 20], dtype=np.uint64)
        values = np.array(["c", "a", "b"])
        skeys, svalues = radix_sort(keys, values)
        assert list(skeys) == [10, 20, 30]
        assert list(svalues) == ["a", "b", "c"]

    def test_stability(self):
        # equal keys keep input order of their payloads
        keys = np.array([1, 1, 0, 1], dtype=np.uint64)
        values = np.arange(4)
        _, svalues = radix_sort(keys, values)
        assert list(svalues) == [2, 0, 1, 3]

    def test_early_exit_small_keys(self):
        # keys below 2^8: a single pass must suffice and still be correct
        keys = np.array([200, 5, 130, 5], dtype=np.uint64)
        skeys, _ = radix_sort(keys, bits_per_pass=8)
        assert list(skeys) == [5, 5, 130, 200]

    def test_empty_and_singleton(self):
        assert radix_sort(np.array([], dtype=np.uint64))[0].size == 0
        keys, _ = radix_sort(np.array([7], dtype=np.uint64))
        assert list(keys) == [7]

    def test_validation(self):
        with pytest.raises(ValueError):
            radix_sort(np.zeros((2, 2), dtype=np.uint64))
        with pytest.raises(ValueError):
            radix_sort(np.array([1], dtype=np.uint64), bits_per_pass=0)
        with pytest.raises(ValueError):
            radix_sort(np.array([1, 2], dtype=np.uint64), np.array([1]))

    @given(st.lists(U64, max_size=300), st.sampled_from([4, 8, 11, 16]))
    @settings(max_examples=60)
    def test_matches_npsort_property(self, values, bits):
        keys = np.array(values, dtype=np.uint64)
        skeys, _ = radix_sort(keys, bits_per_pass=bits)
        assert np.array_equal(skeys, np.sort(keys))


class TestRadixArgsort:
    def test_matches_stable_argsort(self, rng):
        keys = rng.integers(0, 1000, size=2000).astype(np.uint64)
        assert np.array_equal(radix_argsort(keys),
                              np.argsort(keys, kind="stable"))


class TestSegmentedRadix:
    def test_lexicographic_by_composition(self, rng):
        n = 3000
        seg = rng.integers(0, 40, size=n).astype(np.int64)
        keys = rng.integers(0, 1 << 40, size=n).astype(np.uint64)
        perm = radix_sort_pairs_by_segment(seg, keys, n_segments=40)
        ref = np.lexsort((keys, seg))
        # Both are stable lexicographic sorts -> identical permutations.
        assert np.array_equal(perm, ref)

    def test_validation(self):
        with pytest.raises(ValueError):
            radix_sort_pairs_by_segment(np.array([0]), np.array([1],
                                        dtype=np.uint64), n_segments=0)
