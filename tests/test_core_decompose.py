"""Tests for component-wise decomposition (divide-and-conquer pClust)."""

import numpy as np
import pytest

from repro.core.decompose import (
    _component_buckets,
    _masked_graph,
    canonicalize_labels,
    cluster_by_components,
)
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph
from tests.conftest import random_blocky_graph


def multi_component_graph(seed=3) -> CSRGraph:
    """Several disjoint dense blocks (guaranteed multiple components)."""
    rng = np.random.default_rng(seed)
    edges = []
    base = 0
    for size in (12, 8, 20, 15, 6):
        for i in range(size):
            for j in range(i + 1, size):
                if rng.random() < 0.7:
                    edges.append((base + i, base + j))
        base += size
    return CSRGraph.from_edges(edges, n_vertices=base + 4)  # + isolates


class TestCanonicalizeLabels:
    def test_idempotent(self):
        labels = np.array([2, 2, 0, 1, 0])
        canon = canonicalize_labels(labels)
        assert np.array_equal(canon, canonicalize_labels(canon))

    def test_orders_by_smallest_member(self):
        labels = np.array([5, 5, 3, 3, 9])
        assert list(canonicalize_labels(labels)) == [0, 0, 1, 1, 2]

    def test_preserves_grouping(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 10, size=50)
        canon = canonicalize_labels(labels)
        for i in range(50):
            for j in range(50):
                assert (labels[i] == labels[j]) == (canon[i] == canon[j])

    def test_empty(self):
        assert canonicalize_labels(np.array([], dtype=np.int64)).size == 0


class TestMaskedGraph:
    def test_preserves_ids_and_adjacency(self, two_cliques_graph):
        sub = _masked_graph(two_cliques_graph, np.arange(5))
        assert sub.n_vertices == two_cliques_graph.n_vertices
        assert list(sub.neighbors(0)) == list(two_cliques_graph.neighbors(0))
        assert sub.degree(7) == 0

    def test_edge_count(self, two_cliques_graph):
        sub = _masked_graph(two_cliques_graph, np.arange(5))
        assert sub.n_edges == 10  # one K5


class TestComponentBuckets:
    def test_buckets_partition_vertices(self):
        g = multi_component_graph()
        labels = connected_components(g)
        buckets = _component_buckets(labels, g, 3)
        all_vertices = np.sort(np.concatenate(buckets))
        assert np.array_equal(all_vertices, np.arange(g.n_vertices))

    def test_components_never_split(self):
        g = multi_component_graph()
        labels = connected_components(g)
        buckets = _component_buckets(labels, g, 3)
        for bucket in buckets:
            comps = np.unique(labels[bucket])
            for comp in comps:
                members = np.flatnonzero(labels == comp)
                assert np.isin(members, bucket).all()

    def test_load_balanced(self):
        g = multi_component_graph()
        labels = connected_components(g)
        buckets = _component_buckets(labels, g, 2)
        degs = g.degrees()
        loads = [int(degs[b].sum()) for b in buckets]
        assert max(loads) <= 2 * (sum(loads) / len(loads)) + max(degs)


class TestClusterByComponents:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_equals_global_run(self, n_workers):
        g = multi_component_graph()
        params = ShinglingParams(c1=20, c2=10, seed=4)
        global_run = GpClust(params).run(g)
        decomposed = cluster_by_components(g, params, n_workers=n_workers)
        assert np.array_equal(decomposed.labels, global_run.labels)

    def test_equals_global_on_noisy_graph(self):
        g = random_blocky_graph(seed=21)
        params = ShinglingParams(c1=15, c2=8, seed=4)
        global_run = GpClust(params).run(g)
        decomposed = cluster_by_components(g, params, n_workers=3)
        assert np.array_equal(decomposed.labels, global_run.labels)

    def test_serial_backend(self):
        g = multi_component_graph()
        params = ShinglingParams(c1=10, c2=5, seed=4)
        device = cluster_by_components(g, params, backend="device")
        serial = cluster_by_components(g, params, backend="serial")
        assert np.array_equal(device.labels, serial.labels)
        assert serial.backend == "serial+components"

    def test_timings_merged(self):
        g = multi_component_graph()
        result = cluster_by_components(
            g, ShinglingParams(c1=10, c2=5, seed=1), n_workers=2)
        assert result.timings.total > 0

    def test_rejects_overlapping_mode(self):
        g = multi_component_graph()
        params = ShinglingParams(report_mode="overlapping")
        with pytest.raises(ValueError):
            cluster_by_components(g, params)

    def test_rejects_bad_worker_count(self):
        g = multi_component_graph()
        with pytest.raises(ValueError):
            cluster_by_components(g, ShinglingParams(), n_workers=0)

    def test_unknown_backend(self):
        g = multi_component_graph()
        with pytest.raises(ValueError):
            cluster_by_components(g, ShinglingParams(c1=5, c2=5),
                                  backend="fpga")

    def test_empty_graph(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=5)
        result = cluster_by_components(g, ShinglingParams(c1=5, c2=5))
        assert np.array_equal(result.labels, np.arange(5))
