"""Tests for cluster density (Eq. 6) and the Figure 5 distributions."""

import numpy as np
import pytest

from repro.eval.density import cluster_densities, density_summary
from repro.eval.distribution import FIG5_BINS, bin_label, size_distribution
from repro.eval.partition import Partition
from repro.graph.csr import CSRGraph


class TestDensity:
    def test_clique_density_is_one(self, two_cliques_graph):
        labels = np.repeat([0, 1], 5)
        dens = cluster_densities(two_cliques_graph, Partition(labels), min_size=5)
        assert np.allclose(dens, 1.0)

    def test_path_cluster_density(self, path_graph):
        labels = np.zeros(6, dtype=np.int64)
        dens = cluster_densities(path_graph, Partition(labels), min_size=2)
        assert dens[0] == pytest.approx(5 / 15)

    def test_min_size_filter(self, two_cliques_graph):
        labels = np.repeat([0, 1], 5)
        dens = cluster_densities(two_cliques_graph, Partition(labels), min_size=6)
        assert dens.size == 0

    def test_cross_cluster_edges_ignored(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        labels = np.array([0, 0, 1, 1])
        dens = cluster_densities(g, Partition(labels), min_size=2)
        assert np.allclose(dens, [1.0, 1.0])  # the (1,2) bridge not counted

    def test_summary(self, two_cliques_graph):
        labels = np.repeat([0, 1], 5)
        mean, std = density_summary(two_cliques_graph, Partition(labels), min_size=5)
        assert mean == pytest.approx(1.0)
        assert std == pytest.approx(0.0)

    def test_summary_empty(self, path_graph):
        mean, std = density_summary(path_graph, Partition(np.arange(6)), min_size=2)
        assert (mean, std) == (0.0, 0.0)

    def test_universe_mismatch_rejected(self, path_graph):
        with pytest.raises(ValueError):
            cluster_densities(path_graph, Partition(np.zeros(3, dtype=np.int64)))

    def test_singleton_partition_trap(self, blocky_graph):
        """The paper's caveat: all-singletons would trivially score 1.0 if
        unfiltered — the min_size filter must exclude that regime."""
        singles = Partition(np.arange(blocky_graph.n_vertices))
        assert cluster_densities(blocky_graph, singles, min_size=20).size == 0


class TestSizeDistribution:
    def test_fig5_bins_match_paper(self):
        labels = [bin_label(b) for b in FIG5_BINS]
        assert labels == ["20-49", "50-99", "100-199", "200-499",
                          "500-999", "1000-2000", ">2000"]

    def test_binning(self):
        sizes = [25, 30, 75, 150, 300, 700, 1500, 2500, 10]  # last two edge
        labels = np.repeat(np.arange(len(sizes)), sizes)
        dist = size_distribution(Partition(labels))
        assert list(dist.group_counts) == [2, 1, 1, 1, 1, 1, 1]
        assert dist.sequence_counts[0] == 55
        assert dist.sequence_counts[-1] == 2500
        # the size-10 group falls below every bin
        assert dist.total_sequences == sum(sizes) - 10

    def test_bin_boundaries_inclusive(self):
        sizes = [20, 49, 50, 2000, 2001]
        labels = np.repeat(np.arange(len(sizes)), sizes)
        dist = size_distribution(Partition(labels))
        assert dist.group_counts[0] == 2      # 20 and 49
        assert dist.group_counts[1] == 1      # 50
        assert dist.group_counts[5] == 1      # 2000
        assert dist.group_counts[6] == 1      # 2001

    def test_totals(self):
        labels = np.repeat([0, 1], [30, 60])
        dist = size_distribution(Partition(labels))
        assert dist.total_groups == 2
        assert dist.total_sequences == 90
