"""Cross-cutting property tests over the whole clustering pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.core.serial import serial_shingle_pass
from repro.graph.csr import CSRGraph


def random_graph(seed: int, n_max: int = 35, m_max: int = 90) -> CSRGraph:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, n_max))
    m = int(rng.integers(0, m_max))
    return CSRGraph.from_edges(rng.integers(0, n, size=(m, 2)), n_vertices=n)


class TestPassInvariants:
    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_occurrence_count_exact(self, seed):
        """Every vertex with deg >= s generates exactly c shingle
        occurrences, so gen_graph.nnz == c * n_valid — a strong exactness
        invariant of the aggregation."""
        g = random_graph(seed)
        params = ShinglingParams(c1=7, c2=3, seed=seed)
        cfg = params.pass_config(1)
        result = serial_shingle_pass(g.indptr, g.indices, cfg)
        n_valid = int((g.degrees() >= cfg.s).sum())
        assert result.gen_graph.nnz == cfg.c * n_valid

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_members_always_neighbors_of_generators(self, seed):
        g = random_graph(seed)
        cfg = ShinglingParams(c1=5, c2=3, seed=seed).pass_config(1)
        result = serial_shingle_pass(g.indptr, g.indices, cfg)
        for i in range(result.n_shingles):
            members = set(result.members[i].tolist())
            for gen in result.gen_graph.neighbors(i).tolist():
                assert members <= set(g.neighbors(gen).tolist())

    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_shingle_members_distinct(self, seed):
        g = random_graph(seed)
        cfg = ShinglingParams(s1=2, c1=5, c2=3, seed=seed).pass_config(1)
        result = serial_shingle_pass(g.indptr, g.indices, cfg)
        if result.n_shingles:
            assert np.all(result.members[:, 0] != result.members[:, 1])


class TestClusteringInvariants:
    @given(st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_labels_dense_and_canonical(self, seed):
        g = random_graph(seed)
        result = GpClust(ShinglingParams(c1=6, c2=3, seed=seed)).run(g)
        labels = result.labels
        assert labels.size == g.n_vertices
        # dense
        assert set(np.unique(labels)) == set(range(int(labels.max()) + 1))
        # canonical: first appearance order
        seen = []
        for lab in labels.tolist():
            if lab not in seen:
                seen.append(lab)
        assert seen == sorted(seen)

    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_clusters_partition_vertices(self, seed):
        g = random_graph(seed)
        result = GpClust(ShinglingParams(c1=6, c2=3, seed=seed)).run(g)
        clusters = result.clusters(min_size=1)
        combined = np.sort(np.concatenate(clusters))
        assert np.array_equal(combined, np.arange(g.n_vertices))

    @given(st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_merged_vertices_share_neighborhood_structure(self, seed):
        """Non-singleton clusters only contain vertices with degree >= 1:
        isolated vertices can never be recruited."""
        g = random_graph(seed)
        result = GpClust(ShinglingParams(c1=6, c2=3, seed=seed)).run(g)
        degrees = g.degrees()
        for cluster in result.clusters(min_size=2):
            assert np.all(degrees[cluster] >= 1)

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_timings_buckets_nonnegative(self, seed):
        g = random_graph(seed)
        result = GpClust(ShinglingParams(c1=4, c2=2, seed=seed)).run(g)
        for value in result.timings.measured.values():
            assert value >= 0.0
        assert result.timings.total >= 0.0


class TestSubsetMonotonicity:
    def test_adding_an_isolated_vertex_changes_nothing(self):
        g = random_graph(123)
        g_plus = CSRGraph(
            np.concatenate([g.indptr, [g.indptr[-1]]]), g.indices,
            validate=False)
        params = ShinglingParams(c1=8, c2=4, seed=3)
        a = GpClust(params).run(g)
        b = GpClust(params).run(g_plus)
        assert np.array_equal(a.labels, b.labels[:-1])
        assert b.labels[-1] == b.labels.max()
