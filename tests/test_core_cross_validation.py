"""Cross-validation: serial reference vs. device path.

This is the reproduction's central correctness property — the paper's GPU
port must compute exactly what the serial algorithm computes.  Both passes
and the final clustering are compared bit-for-bit, across batching regimes,
kernels, trial chunkings, and prefetch modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregate import StreamingAggregator, aggregate_pass
from repro.core.device_exec import device_shingle_pass
from repro.core.execplan import EXEC_MODES, ExecutionPlan
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, SerialPClust
from repro.core.serial import serial_shingle_pass
from repro.device.device import SimulatedDevice
from repro.device.timingmodels import DeviceSpec
from repro.graph.csr import CSRGraph
from tests.conftest import random_blocky_graph


def fresh_device(capacity=8 * 2**20):
    return SimulatedDevice(DeviceSpec(memory_capacity_bytes=capacity))


class TestPassEquivalence:
    @pytest.mark.parametrize("kernel", ["select", "sort", "fused"])
    def test_pass1_matches_serial(self, blocky_graph, small_params, kernel):
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), kernel=kernel)
        assert got == ref

    def test_pass2_matches_serial(self, blocky_graph, small_params):
        cfg1 = small_params.pass_config(1)
        cfg2 = small_params.pass_config(2)
        pass1 = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg1)
        indptr2, elems2 = pass1.next_pass_input()
        ref = serial_shingle_pass(indptr2, elems2, cfg2)
        got = device_shingle_pass(indptr2, elems2, cfg2, fresh_device())
        assert got == ref

    @pytest.mark.parametrize("max_elements", [7, 23, 64, 10_000])
    def test_batch_size_invariance(self, blocky_graph, small_params, max_elements):
        """Splitting lists across batches must not change the result."""
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), max_elements=max_elements)
        assert got == ref

    @pytest.mark.parametrize("trial_chunk", [1, 3, 100])
    def test_trial_chunk_invariance(self, blocky_graph, small_params, trial_chunk):
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), trial_chunk=trial_chunk)
        assert got == ref

    def test_trailing_isolated_vertices(self, small_params):
        """Regression: trailing empty adjacency lists once corrupted the
        segmented-min boundaries of the final non-empty segment."""
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], n_vertices=8)
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(g.indptr, g.indices, cfg)
        got = device_shingle_pass(g.indptr, g.indices, cfg, fresh_device())
        assert got == ref

    def test_prefetch_invariance(self, blocky_graph, small_params):
        cfg = small_params.pass_config(1)
        sync = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                   cfg, fresh_device(), max_elements=50)
        pref = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                   cfg, fresh_device(), max_elements=50,
                                   prefetch=True)
        assert sync == pref

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 40))
        m = int(rng.integers(0, 80))
        edges = rng.integers(0, n, size=(m, 2))
        g = CSRGraph.from_edges(edges, n_vertices=n)
        params = ShinglingParams(c1=6, c2=4, seed=seed)
        cfg = params.pass_config(1)
        ref = serial_shingle_pass(g.indptr, g.indices, cfg)
        got = device_shingle_pass(g.indptr, g.indices, cfg, fresh_device(),
                                  max_elements=int(rng.integers(3, 50)))
        assert got == ref


def _plan_for(mode: str) -> ExecutionPlan:
    if mode == "multistream":
        return ExecutionPlan(mode=mode, streams=3)
    return ExecutionPlan(mode=mode)


class TestExecModeEquivalence:
    """Every execution schedule must be bit-identical to the serial pass."""

    @pytest.mark.parametrize("kernel", ["select", "sort", "fused"])
    @pytest.mark.parametrize("mode", sorted(EXEC_MODES))
    def test_modes_match_serial(self, blocky_graph, small_params, mode, kernel):
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), kernel=kernel,
                                  trial_chunk=4, plan=_plan_for(mode))
        assert got == ref

    @pytest.mark.parametrize("max_elements", [7, 23, 10_000])
    @pytest.mark.parametrize("mode", sorted(EXEC_MODES))
    def test_modes_match_serial_across_batch_sizes(self, blocky_graph,
                                                   small_params, mode,
                                                   max_elements):
        """Split-forcing batch sizes × schedules: still bit-identical."""
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), trial_chunk=4,
                                  max_elements=max_elements,
                                  plan=_plan_for(mode))
        assert got == ref

    @pytest.mark.parametrize("mode", sorted(EXEC_MODES))
    def test_modes_with_trailing_empty_segments(self, small_params, mode):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], n_vertices=9)
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(g.indptr, g.indices, cfg)
        got = device_shingle_pass(g.indptr, g.indices, cfg, fresh_device(),
                                  trial_chunk=2, plan=_plan_for(mode))
        assert got == ref

    @pytest.mark.parametrize("streams", [1, 2, 5])
    def test_stream_count_invariance(self, blocky_graph, small_params, streams):
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(
            blocky_graph.indptr, blocky_graph.indices, cfg, fresh_device(),
            trial_chunk=3,
            plan=ExecutionPlan(mode="multistream", streams=streams))
        assert got == ref

    def test_pipeline_exec_modes_identical(self, small_params):
        g = random_blocky_graph(seed=21)
        runs = {
            mode: GpClust(small_params.with_overrides(
                exec_mode=mode, streams=3)).run(g)
            for mode in sorted(EXEC_MODES)
        }
        baseline = runs["sync"]
        for mode, result in runs.items():
            assert np.array_equal(result.labels, baseline.labels), mode

    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_pipeline_device_counts_identical(self, small_params, devices):
        """--devices N is bit-identical to the serial baseline for every N."""
        g = random_blocky_graph(seed=22)
        serial = SerialPClust(small_params).run(g)
        got = GpClust(small_params.with_overrides(devices=devices)).run(g)
        assert np.array_equal(got.labels, serial.labels)

    @pytest.mark.parametrize("mode", sorted(EXEC_MODES))
    def test_device_counts_cross_modes_identical(self, blocky_graph,
                                                 small_params, mode):
        """devices {2,4} x every exec mode: the multidevice schedule that
        params.execution_plan() forces must match each single-device mode."""
        from repro.device.group import DeviceGroup

        cfg = small_params.pass_config(1)
        ref = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), trial_chunk=4,
                                  plan=_plan_for(mode))
        for devices in (2, 4):
            plan = ExecutionPlan(mode="multidevice", devices=devices)
            got = device_shingle_pass(
                blocky_graph.indptr, blocky_graph.indices, cfg,
                DeviceGroup(devices), trial_chunk=4, plan=plan)
            assert got == ref, (mode, devices)

    def test_scratch_pool_zero_alloc_steady_state(self, blocky_graph,
                                                  small_params):
        """After warm-up, repeated same-geometry rounds allocate nothing new.

        The scratch-pool counters are the observable contract of the
        zero-alloc hot path: every take() after round one must be a reuse.
        """
        device = fresh_device()
        cfg = small_params.pass_config(1)
        device_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg,
                            device, trial_chunk=8)
        warm_allocs = device.scratch.n_allocations
        assert warm_allocs > 0  # the pool is actually in the hot path
        for _ in range(3):
            device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                cfg, device, trial_chunk=8)
        assert device.scratch.n_allocations == warm_allocs
        assert device.scratch.n_reuses > 0


class TestMultiBatchMatrix:
    """Adjacency lists split across >= 3 batches, every mode x kernel."""

    MAX_ELEMENTS = 97  # forces many small batches with split lists

    def _reference_and_graph(self, small_params):
        g = random_blocky_graph(seed=31)
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(g.indptr, g.indices, cfg)
        return g, cfg, ref

    def test_workload_actually_splits_across_three_batches(self, small_params):
        """Guard: the chosen budget really produces >= 3 batches with splits."""
        from repro.device.batching import plan_batches

        g, cfg, _ = self._reference_and_graph(small_params)
        lengths = np.diff(g.indptr)
        valid = lengths >= cfg.s
        compact_indptr = np.zeros(int(valid.sum()) + 1, dtype=np.int64)
        np.cumsum(lengths[valid], out=compact_indptr[1:])
        # multistream with 3 streams divides the budget by 3 — even then the
        # longest list must fit, so check the tightest budget the matrix uses
        plan = plan_batches(compact_indptr, self.MAX_ELEMENTS // 3)
        assert plan.n_batches >= 3
        assert any(batch.is_split.any() for batch in plan)

    @pytest.mark.parametrize("kernel", ["select", "sort", "fused"])
    @pytest.mark.parametrize("mode", sorted(EXEC_MODES))
    def test_three_batch_split_matches_serial(self, small_params, mode, kernel):
        g, cfg, ref = self._reference_and_graph(small_params)
        got = device_shingle_pass(g.indptr, g.indices, cfg, fresh_device(),
                                  kernel=kernel, trial_chunk=4,
                                  max_elements=self.MAX_ELEMENTS,
                                  plan=_plan_for(mode))
        assert got == ref

    @pytest.mark.parametrize("kernel", ["select", "sort", "fused"])
    def test_three_batch_full_pipeline_matches_serial(self, small_params, kernel):
        g = random_blocky_graph(seed=31)
        params = small_params.with_overrides(kernel=kernel)
        serial = SerialPClust(params).run(g)
        device = GpClust(params,
                         max_batch_elements=self.MAX_ELEMENTS).run(g)
        assert np.array_equal(serial.labels, device.labels)


def _aggregate_inputs(rng, c, n_rows, s):
    """Random (fps, top, lengths) occurrence arrays with repeated prints."""
    # Few distinct fingerprints so chunks share them (exercises the merge).
    fps = rng.integers(0, 6, size=(c, n_rows)).astype(np.uint64)
    ids = rng.integers(0, 50, size=(c, n_rows, s)).astype(np.uint64)
    hashes = rng.integers(0, 100, size=(c, n_rows, s)).astype(np.uint64)
    top = (hashes << np.uint64(32)) | ids
    top.sort(axis=2)
    lengths = rng.integers(s, s + 4, size=n_rows).astype(np.int64)
    return fps, top, lengths


class TestStreamingAggregation:
    @given(st.integers(0, 10_000), st.data())
    @settings(max_examples=30, deadline=None)
    def test_chunked_aggregation_matches_whole_array(self, seed, data):
        """Streaming merge over ANY contiguous trial partition is identical
        to one whole-array aggregate_pass."""
        rng = np.random.default_rng(seed)
        c = int(rng.integers(1, 12))
        n_rows = int(rng.integers(1, 10))
        s = int(rng.integers(1, 4))
        fps, top, lengths = _aggregate_inputs(rng, c, n_rows, s)

        whole = aggregate_pass(fps, top, lengths, s)

        cuts = data.draw(st.sets(st.integers(1, max(c - 1, 1)), max_size=c))
        bounds = [0] + sorted(b for b in cuts if b < c) + [c]
        agg = StreamingAggregator(s, n_rows)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            agg.add(lo, aggregate_pass(fps[lo:hi], top[lo:hi], lengths, s))
        assert agg.result() == whole

    def test_out_of_order_adds(self):
        rng = np.random.default_rng(7)
        fps, top, lengths = _aggregate_inputs(rng, 9, 6, 2)
        whole = aggregate_pass(fps, top, lengths, 2)
        agg = StreamingAggregator(2, 6)
        for lo, hi in [(6, 9), (0, 3), (3, 6)]:  # arrival order shuffled
            agg.add(lo, aggregate_pass(fps[lo:hi], top[lo:hi], lengths, 2))
        assert agg.result() == whole

    @given(st.integers(0, 10_000), st.data())
    @settings(max_examples=30, deadline=None)
    def test_any_completion_order_identical(self, seed, data):
        """The property multi-device sharding rests on: chunks may complete
        in ANY order (devices race), and the merged result must still equal
        the whole-array aggregate — for every partition x permutation."""
        rng = np.random.default_rng(seed)
        c = int(rng.integers(1, 12))
        n_rows = int(rng.integers(1, 10))
        s = int(rng.integers(1, 4))
        fps, top, lengths = _aggregate_inputs(rng, c, n_rows, s)

        whole = aggregate_pass(fps, top, lengths, s)

        cuts = data.draw(st.sets(st.integers(1, max(c - 1, 1)), max_size=c))
        bounds = [0] + sorted(b for b in cuts if b < c) + [c]
        chunks = list(zip(bounds[:-1], bounds[1:]))
        order = data.draw(st.permutations(range(len(chunks))))
        agg = StreamingAggregator(s, n_rows)
        for idx in order:
            lo, hi = chunks[idx]
            agg.add(lo, aggregate_pass(fps[lo:hi], top[lo:hi], lengths, s))
        assert agg.result() == whole


class TestPipelineEquivalence:
    def test_labels_identical(self, small_params):
        g = random_blocky_graph(seed=8)
        serial = SerialPClust(small_params).run(g)
        device = GpClust(small_params,
                         DeviceSpec(memory_capacity_bytes=2**20)).run(g)
        assert np.array_equal(serial.labels, device.labels)

    def test_union_backends_identical(self, small_params):
        g = random_blocky_graph(seed=12)
        a = GpClust(small_params.with_overrides(union_backend="vectorized")).run(g)
        b = GpClust(small_params.with_overrides(union_backend="unionfind")).run(g)
        assert np.array_equal(a.labels, b.labels)

    def test_kernels_identical(self, small_params):
        g = random_blocky_graph(seed=13)
        a = GpClust(small_params.with_overrides(kernel="select")).run(g)
        b = GpClust(small_params.with_overrides(kernel="sort")).run(g)
        c = GpClust(small_params.with_overrides(kernel="fused")).run(g)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.labels, c.labels)

    def test_include_generators_equivalence_across_backends(self, small_params):
        g = random_blocky_graph(seed=14)
        params = small_params.with_overrides(include_generators=True)
        serial = SerialPClust(params).run(g)
        device = GpClust(params).run(g)
        assert np.array_equal(serial.labels, device.labels)

    def test_determinism_across_runs(self, small_params):
        g = random_blocky_graph(seed=15)
        a = GpClust(small_params).run(g)
        b = GpClust(small_params).run(g)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_clustering_randomness(self, small_params):
        g = random_blocky_graph(seed=16)
        a = GpClust(small_params).run(g)
        b = GpClust(small_params.with_overrides(seed=small_params.seed + 1)).run(g)
        # Different hash families -> (almost surely) different shingle sets;
        # the cluster *labels* may or may not coincide, but the shingle
        # counts should differ.
        assert (a.n_first_level_shingles != b.n_first_level_shingles
                or not np.array_equal(a.labels, b.labels))
