"""Cross-validation: serial reference vs. device path.

This is the reproduction's central correctness property — the paper's GPU
port must compute exactly what the serial algorithm computes.  Both passes
and the final clustering are compared bit-for-bit, across batching regimes,
kernels, trial chunkings, and prefetch modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device_exec import device_shingle_pass
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, SerialPClust
from repro.core.serial import serial_shingle_pass
from repro.device.device import SimulatedDevice
from repro.device.timingmodels import DeviceSpec
from repro.graph.csr import CSRGraph
from tests.conftest import random_blocky_graph


def fresh_device(capacity=8 * 2**20):
    return SimulatedDevice(DeviceSpec(memory_capacity_bytes=capacity))


class TestPassEquivalence:
    @pytest.mark.parametrize("kernel", ["select", "sort"])
    def test_pass1_matches_serial(self, blocky_graph, small_params, kernel):
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), kernel=kernel)
        assert got == ref

    def test_pass2_matches_serial(self, blocky_graph, small_params):
        cfg1 = small_params.pass_config(1)
        cfg2 = small_params.pass_config(2)
        pass1 = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg1)
        indptr2, elems2 = pass1.next_pass_input()
        ref = serial_shingle_pass(indptr2, elems2, cfg2)
        got = device_shingle_pass(indptr2, elems2, cfg2, fresh_device())
        assert got == ref

    @pytest.mark.parametrize("max_elements", [7, 23, 64, 10_000])
    def test_batch_size_invariance(self, blocky_graph, small_params, max_elements):
        """Splitting lists across batches must not change the result."""
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), max_elements=max_elements)
        assert got == ref

    @pytest.mark.parametrize("trial_chunk", [1, 3, 100])
    def test_trial_chunk_invariance(self, blocky_graph, small_params, trial_chunk):
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, fresh_device(), trial_chunk=trial_chunk)
        assert got == ref

    def test_trailing_isolated_vertices(self, small_params):
        """Regression: trailing empty adjacency lists once corrupted the
        segmented-min boundaries of the final non-empty segment."""
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], n_vertices=8)
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(g.indptr, g.indices, cfg)
        got = device_shingle_pass(g.indptr, g.indices, cfg, fresh_device())
        assert got == ref

    def test_prefetch_invariance(self, blocky_graph, small_params):
        cfg = small_params.pass_config(1)
        sync = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                   cfg, fresh_device(), max_elements=50)
        pref = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                   cfg, fresh_device(), max_elements=50,
                                   prefetch=True)
        assert sync == pref

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 40))
        m = int(rng.integers(0, 80))
        edges = rng.integers(0, n, size=(m, 2))
        g = CSRGraph.from_edges(edges, n_vertices=n)
        params = ShinglingParams(c1=6, c2=4, seed=seed)
        cfg = params.pass_config(1)
        ref = serial_shingle_pass(g.indptr, g.indices, cfg)
        got = device_shingle_pass(g.indptr, g.indices, cfg, fresh_device(),
                                  max_elements=int(rng.integers(3, 50)))
        assert got == ref


class TestPipelineEquivalence:
    def test_labels_identical(self, small_params):
        g = random_blocky_graph(seed=8)
        serial = SerialPClust(small_params).run(g)
        device = GpClust(small_params,
                         DeviceSpec(memory_capacity_bytes=2**20)).run(g)
        assert np.array_equal(serial.labels, device.labels)

    def test_union_backends_identical(self, small_params):
        g = random_blocky_graph(seed=12)
        a = GpClust(small_params.with_overrides(union_backend="vectorized")).run(g)
        b = GpClust(small_params.with_overrides(union_backend="unionfind")).run(g)
        assert np.array_equal(a.labels, b.labels)

    def test_kernels_identical(self, small_params):
        g = random_blocky_graph(seed=13)
        a = GpClust(small_params.with_overrides(kernel="select")).run(g)
        b = GpClust(small_params.with_overrides(kernel="sort")).run(g)
        assert np.array_equal(a.labels, b.labels)

    def test_include_generators_equivalence_across_backends(self, small_params):
        g = random_blocky_graph(seed=14)
        params = small_params.with_overrides(include_generators=True)
        serial = SerialPClust(params).run(g)
        device = GpClust(params).run(g)
        assert np.array_equal(serial.labels, device.labels)

    def test_determinism_across_runs(self, small_params):
        g = random_blocky_graph(seed=15)
        a = GpClust(small_params).run(g)
        b = GpClust(small_params).run(g)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_clustering_randomness(self, small_params):
        g = random_blocky_graph(seed=16)
        a = GpClust(small_params).run(g)
        b = GpClust(small_params.with_overrides(seed=small_params.seed + 1)).run(g)
        # Different hash families -> (almost surely) different shingle sets;
        # the cluster *labels* may or may not coincide, but the shingle
        # counts should differ.
        assert (a.n_first_level_shingles != b.n_first_level_shingles
                or not np.array_equal(a.labels, b.labels))
