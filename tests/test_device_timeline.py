"""Tests for the modeled device execution timeline."""

import numpy as np
import pytest

from repro.core.device_exec import device_shingle_pass
from repro.core.params import ShinglingParams
from repro.device.device import SimulatedDevice
from repro.device.timeline import Timeline, TimelineEvent
from repro.device.timingmodels import DeviceSpec
from tests.conftest import random_blocky_graph


class TestTimeline:
    def test_sequential_recording(self):
        t = Timeline()
        t.record("data_c2g", "up", 1.0)
        t.record("gpu", "k", 2.0)
        t.record("data_g2c", "down", 0.5)
        assert t.makespan == pytest.approx(3.5)
        assert t.events[1].start == pytest.approx(1.0)
        assert t.lane_total("gpu") == pytest.approx(2.0)

    def test_validation(self):
        t = Timeline()
        with pytest.raises(ValueError):
            t.record("fpga", "x", 1.0)
        with pytest.raises(ValueError):
            t.record("gpu", "x", -1.0)

    def test_overlap_hides_uploads_under_compute(self):
        t = Timeline()
        # batch 1: upload, compute; batch 2: upload, compute
        t.record("data_c2g", "up1", 1.0)
        t.record("gpu", "k1", 2.0)
        t.record("data_c2g", "up2", 1.0)
        t.record("gpu", "k2", 2.0)
        sync_span = t.makespan
        overlapped = t.overlapped()
        assert overlapped.makespan < sync_span
        # up2 runs while k1 computes
        up2 = overlapped.events[2]
        k1 = overlapped.events[1]
        assert up2.start < k1.end

    def test_overlap_respects_dependencies(self):
        t = Timeline()
        t.record("gpu", "k", 2.0)
        t.record("data_g2c", "down", 1.0)
        overlapped = t.overlapped()
        down = overlapped.events[1]
        assert down.start >= 2.0  # result can't ship before it exists

    def test_render_contains_all_lanes(self):
        t = Timeline()
        t.record("cpu", "agg", 0.5)
        t.record("gpu", "k", 1.0)
        out = t.render(width=40)
        for lane in ("cpu", "gpu", "data_c2g", "data_g2c"):
            assert lane in out
        assert "#" in out

    def test_render_empty(self):
        assert "empty" in Timeline().render()


class TestDeviceRecordsTimeline:
    def test_pipeline_populates_timeline(self):
        g = random_blocky_graph(seed=41)
        timeline = Timeline()
        device = SimulatedDevice(
            DeviceSpec(memory_capacity_bytes=2**20), timeline=timeline)
        cfg = ShinglingParams(c1=8, c2=4, seed=1).pass_config(1)
        device_shingle_pass(g.indptr, g.indices, cfg, device)
        lanes = {e.lane for e in timeline.events}
        assert {"data_c2g", "gpu", "data_g2c"} <= lanes
        # modeled totals agree with the breakdown's modeled buckets
        assert timeline.lane_total("gpu") == pytest.approx(
            device.breakdown.get_modeled("gpu"))
        assert timeline.lane_total("data_c2g") == pytest.approx(
            device.breakdown.get_modeled("data_c2g"))

    def test_overlap_never_longer(self):
        g = random_blocky_graph(seed=42)
        timeline = Timeline()
        device = SimulatedDevice(
            DeviceSpec(memory_capacity_bytes=2**20), timeline=timeline)
        cfg = ShinglingParams(c1=6, c2=3, seed=2).pass_config(1)
        device_shingle_pass(g.indptr, g.indices, cfg, device)
        assert timeline.overlapped().makespan <= timeline.makespan + 1e-12

    def test_events_are_frozen(self):
        e = TimelineEvent("gpu", "k", 0.0, 1.0)
        with pytest.raises(AttributeError):
            e.start = 5.0
