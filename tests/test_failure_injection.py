"""Failure injection: the pipeline must fail loudly and cleanly.

Covers device OOM regimes, corrupt/malformed input files, and invalid
pipeline configurations — errors a downstream user will actually hit.
"""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, cluster_graph
from repro.device.device import SimulatedDevice
from repro.device.memory import DeviceMemoryError
from repro.device.timingmodels import DeviceSpec
from repro.graph.csr import CSRGraph
from repro.graph.io import load_edge_list, load_npz
from repro.sequence.fasta import read_fasta
from tests.conftest import random_blocky_graph


class TestDeviceOOM:
    def test_hopeless_capacity_raises_cleanly(self):
        g = random_blocky_graph(seed=1)
        # Capacity below one element's working set.
        with pytest.raises(ValueError):
            GpClust(ShinglingParams(c1=4, c2=2),
                    DeviceSpec(memory_capacity_bytes=256)).run(g)

    def test_tight_capacity_still_correct(self):
        """Just enough memory: many tiny batches, same answer."""
        g = random_blocky_graph(seed=2)
        params = ShinglingParams(c1=8, c2=4, seed=1, trial_chunk=2)
        tight = GpClust(params, DeviceSpec(memory_capacity_bytes=40_000)).run(g)
        roomy = GpClust(params, DeviceSpec()).run(g)
        assert np.array_equal(tight.labels, roomy.labels)

    def test_oversubscribed_manual_batch_raises(self):
        """A manual batch budget that exceeds device memory OOMs."""
        g = random_blocky_graph(seed=3)
        pipeline = GpClust(ShinglingParams(c1=8, c2=4, trial_chunk=8),
                           DeviceSpec(memory_capacity_bytes=50_000),
                           max_batch_elements=10_000)
        with pytest.raises(DeviceMemoryError):
            pipeline.run(g)

    def test_device_memory_clean_after_oom(self):
        device = SimulatedDevice(DeviceSpec(memory_capacity_bytes=1000))
        buf = device.upload(np.zeros(100, dtype=np.int8))
        with pytest.raises(DeviceMemoryError):
            device.upload(np.zeros(2000, dtype=np.int8))
        # The failed transfer must not leak reserved bytes.
        assert device.memory.used_bytes == buf.nbytes


class TestCorruptInputs:
    def test_missing_graph_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_npz(tmp_path / "nope.npz")

    def test_npz_without_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, wrong_key=np.arange(3))
        with pytest.raises(KeyError):
            load_npz(path)

    def test_malformed_edge_list(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2\nthree four\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_edge_list_with_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.edges"
        path.write_text("1 2 3\n4 5\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_inconsistent_npz_graph(self, tmp_path):
        path = tmp_path / "incoherent.npz"
        np.savez(path, indptr=np.array([0, 5]), indices=np.array([1, 2]))
        graph = load_npz(path)  # loads without validation...
        with pytest.raises(ValueError):
            CSRGraph(graph.indptr, graph.indices)  # ...but validation catches it

    def test_fasta_binary_garbage(self, tmp_path):
        path = tmp_path / "bin.fasta"
        path.write_bytes(b"\x00\x01\x02 not fasta")
        with pytest.raises((ValueError, UnicodeDecodeError)):
            read_fasta(path)

    def test_cluster_graph_propagates_load_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            cluster_graph(tmp_path / "missing.npz")


class TestDegenerateInputs:
    def test_empty_graph_clusters_to_nothing(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=0)
        result = GpClust(ShinglingParams(c1=4, c2=2)).run(g)
        assert result.labels.size == 0
        assert result.n_clusters() == 0

    def test_all_isolates(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=7)
        result = GpClust(ShinglingParams(c1=4, c2=2)).run(g)
        assert np.array_equal(result.labels, np.arange(7))

    def test_single_edge_graph(self):
        g = CSRGraph.from_edges([(0, 1)])
        result = GpClust(ShinglingParams(c1=8, c2=4)).run(g)
        # deg-1 vertices can't shingle at s=2: everything stays singleton
        assert result.n_clusters(min_size=2) == 0

    def test_star_graph(self):
        # Leaves share the hub as their only neighbor; the hub's shingles
        # are leaf pairs -> some leaves may merge, hub stays out (its own
        # neighborhood never contains itself).
        g = CSRGraph.from_edges([(0, i) for i in range(1, 12)])
        result = GpClust(ShinglingParams(c1=16, c2=8, seed=1)).run(g)
        labels = result.labels
        clusters = result.clusters(min_size=2)
        for cluster in clusters:
            assert 0 not in cluster.tolist()
        assert labels.size == 12

    def test_complete_graph_single_cluster(self):
        n = 12
        g = CSRGraph.from_edges([(i, j) for i in range(n)
                                 for j in range(i + 1, n)])
        result = GpClust(ShinglingParams(c1=20, c2=10, seed=2)).run(g)
        assert result.n_clusters(min_size=n) == 1

    def test_huge_degree_variance(self):
        # One hub adjacent to everyone plus a small clique: must not crash
        # and the clique must survive as a cluster.
        edges = [(0, i) for i in range(1, 80)]
        edges += [(i, j) for i in range(70, 78) for j in range(i + 1, 78)]
        g = CSRGraph.from_edges(edges)
        result = GpClust(ShinglingParams(c1=20, c2=10, seed=3)).run(g)
        clique_labels = result.labels[70:78]
        assert np.unique(clique_labels).size == 1
