"""Device-offloaded alignment: kernels, bin planner, aligner, scheduler.

The central contract is bit-identity: the device path (length-binned
packing + ramped row-scan kernels) must reproduce the host batched
Smith-Waterman scores exactly, for both gap models, every DP dtype the
escalation rule can pick, every execution plan, and any bin geometry.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execplan import EXEC_MODES, ExecutionPlan
from repro.device import DeviceAligner, SimulatedDevice
from repro.device.alignment import (
    _scan_blocked,
    pack_bin_blocks,
    rowscan_affine_binned,
    rowscan_linear_binned,
)
from repro.device.batching import plan_alignment_bins
from repro.device.memory import ScratchPool
from repro.sequence import homology as homology_mod
from repro.sequence.arena import flatten_sequences
from repro.sequence.homology import (
    HomologyConfig,
    build_homology_graph,
    choose_align_backend,
    observe_alignment_throughput,
)
from repro.sequence.scoring import BLOSUM62
from repro.sequence.smith_waterman import (
    batch_smith_waterman,
    batch_smith_waterman_affine,
    dp_dtype,
)


def random_seqs(rng, n, len_max=80, allow_empty=True):
    lo = 0 if allow_empty else 1
    return [rng.integers(0, 21, size=int(rng.integers(lo, len_max)),
                         ).astype(np.uint8) for _ in range(n)]


def random_pairs(rng, n_seqs, n_pairs):
    return rng.integers(0, n_seqs, size=(n_pairs, 2)).astype(np.int64)


# --------------------------------------------------------------------- #
# Bin planner
# --------------------------------------------------------------------- #

class TestBinPlanner:
    def dtype_for(self, gap=8):
        return lambda s, l: dp_dtype(s, l, BLOSUM62, (gap,))

    def test_partition_covers_all_pairs_in_order(self):
        rng = np.random.default_rng(0)
        short = rng.integers(1, 200, size=500)
        long_ = short + rng.integers(0, 100, size=500)
        plan = plan_alignment_bins(short, long_, self.dtype_for())
        assert plan.bins[0].order_lo == 0
        for prev, cur in zip(plan.bins, plan.bins[1:]):
            assert prev.order_hi == cur.order_lo
        assert plan.bins[-1].order_hi == 500
        assert sorted(plan.order.tolist()) == list(range(500))

    def test_bins_are_length_sorted_and_sized(self):
        rng = np.random.default_rng(1)
        short = rng.integers(1, 50, size=1000)
        long_ = short + rng.integers(0, 30, size=1000)
        plan = plan_alignment_bins(short, long_, self.dtype_for(),
                                   max_pairs=64)
        for b in plan.bins:
            assert b.n_pairs <= 64
            members = plan.order[b.order_lo:b.order_hi]
            assert short[members].max() == b.max_short
            assert long_[members].max() == b.max_long

    def test_dtype_homogeneous_bins(self):
        # Lengths straddling the int16 escalation boundary must be cut
        # into dtype-pure bins.
        short = np.array([10, 20, 3000, 4000])
        long_ = np.array([10, 20, 3000, 4000])
        plan = plan_alignment_bins(short, long_, self.dtype_for(),
                                   min_pairs=1)
        seen = set()
        for b in plan.bins:
            members = plan.order[b.order_lo:b.order_hi]
            for m in members:
                assert dp_dtype(int(short[m]), int(long_[m]), BLOSUM62,
                                (8,)) <= b.dtype
            seen.add(b.dtype.name)
        assert seen == {"int16", "int32"}

    def test_waste_bounded_beyond_min_pairs(self):
        # A pathological mix: many tiny pairs then one giant one.  With
        # min_pairs=1 the waste rule must keep every bin under the cap.
        short = np.array([4] * 200 + [400])
        long_ = np.array([5] * 200 + [500])
        plan = plan_alignment_bins(short, long_, self.dtype_for(),
                                   max_waste=0.25, min_pairs=1)
        for b in plan.bins:
            assert b.padding_waste <= 0.25 + 1e-9
        assert plan.padding_waste <= 0.25 + 1e-9

    def test_empty_input(self):
        plan = plan_alignment_bins(np.empty(0, dtype=np.int64),
                                   np.empty(0, dtype=np.int64),
                                   self.dtype_for())
        assert plan.n_bins == 0
        assert plan.padding_waste == 0.0

    def test_homogeneous_lengths_waste_free(self):
        short = np.full(100, 17)
        long_ = np.full(100, 23)
        plan = plan_alignment_bins(short, long_, self.dtype_for())
        assert plan.padding_waste == 0.0


# --------------------------------------------------------------------- #
# Pack + scan + rowscan kernels
# --------------------------------------------------------------------- #

class TestKernels:
    def test_pack_blocks_match_naive(self):
        rng = np.random.default_rng(2)
        seqs = random_seqs(rng, 20, len_max=30)
        residues, offsets = flatten_sequences(seqs)
        residues16 = residues.astype(np.int16)
        short_ids = np.array([0, 3, 7, 19])
        long_ids = np.array([1, 2, 7, 0])
        ms = max(seqs[i].size for i in short_ids)
        ml = max(seqs[i].size for i in long_ids)
        arow, bt = pack_bin_blocks(residues16, offsets, short_ids, long_ids,
                                   ms, ml)
        assert arow.shape == (max(ms, 1), 4)
        assert bt.shape == (max(ml, 1), 4)
        for col, (i, j) in enumerate(zip(short_ids, long_ids)):
            a, b = seqs[i], seqs[j]
            expect_a = np.full(max(ms, 1), 21, dtype=np.int16)
            expect_a[:a.size] = a
            assert np.array_equal(arow[:, col], expect_a * 22)
            expect_b = np.full(max(ml, 1), 21, dtype=np.int16)
            expect_b[:b.size] = b
            assert np.array_equal(bt[:, col], expect_b)

    def test_blocked_scan_equals_accumulate(self):
        rng = np.random.default_rng(3)
        for rows in (32, 64, 96, 320):
            x = rng.integers(-30000, 30000,
                             size=(rows, 17)).astype(np.int16)
            expect = np.maximum.accumulate(x, axis=0)
            nb = rows // 32
            carry = np.empty((nb, 17), dtype=np.int16)
            _scan_blocked(x.reshape(nb, 32, 17), carry)
            assert np.array_equal(x, expect)

    @pytest.mark.parametrize("gap", [0, 1, 8])
    def test_rowscan_linear_binned_matches_host(self, gap):
        rng = np.random.default_rng(4)
        seqs = random_seqs(rng, 40, len_max=70)
        pairs = random_pairs(rng, 40, 120)
        seqs_a = [seqs[i] for i in pairs[:, 0]]
        seqs_b = [seqs[j] for j in pairs[:, 1]]
        ref = batch_smith_waterman(seqs_a, seqs_b, gap=gap)
        al = DeviceAligner(SimulatedDevice())
        al.upload_sequences(seqs)
        got = al.batch_scores(pairs, gap_model="linear", gap=gap)
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("gap_open,gap_extend",
                             [(11, 1), (1, 11), (0, 0), (5, 5)])
    def test_rowscan_affine_binned_matches_host(self, gap_open, gap_extend):
        rng = np.random.default_rng(5)
        seqs = random_seqs(rng, 40, len_max=70)
        pairs = random_pairs(rng, 40, 120)
        seqs_a = [seqs[i] for i in pairs[:, 0]]
        seqs_b = [seqs[j] for j in pairs[:, 1]]
        ref = batch_smith_waterman_affine(seqs_a, seqs_b,
                                          gap_open=gap_open,
                                          gap_extend=gap_extend)
        al = DeviceAligner(SimulatedDevice())
        al.upload_sequences(seqs)
        got = al.batch_scores(pairs, gap_model="affine", gap_open=gap_open,
                              gap_extend=gap_extend)
        assert np.array_equal(ref, got)

    def test_int32_escalation_matches_host(self):
        # gap > 512 disqualifies int16 (the shared dp_dtype rule), so this
        # exercises the int32 kernels end to end.
        rng = np.random.default_rng(6)
        seqs = random_seqs(rng, 20, len_max=50, allow_empty=False)
        pairs = random_pairs(rng, 20, 60)
        seqs_a = [seqs[i] for i in pairs[:, 0]]
        seqs_b = [seqs[j] for j in pairs[:, 1]]
        ref = batch_smith_waterman(seqs_a, seqs_b, gap=600)
        al = DeviceAligner(SimulatedDevice())
        al.upload_sequences(seqs)
        got = al.batch_scores(pairs, gap_model="linear", gap=600)
        assert al.last_plan.bins[0].dtype == np.int32
        assert np.array_equal(ref, got)

    def test_direct_kernel_calls(self):
        # The kernel functions are usable standalone on a packed block.
        rng = np.random.default_rng(7)
        seqs = random_seqs(rng, 10, len_max=25, allow_empty=False)
        residues, offsets = flatten_sequences(seqs)
        ids = np.arange(10)
        lens = np.diff(offsets)
        order = np.argsort(lens, kind="stable")
        short_ids = long_ids = order
        ms = ml = int(lens.max())
        arow, bt = pack_bin_blocks(residues.astype(np.int16), offsets,
                                   short_ids, long_ids, ms, ml)
        pool = ScratchPool()
        lin = rowscan_linear_binned(arow, bt, BLOSUM62, 8,
                                    np.dtype(np.int16), pool)
        aff = rowscan_affine_binned(arow, bt, BLOSUM62, 11, 1,
                                    np.dtype(np.int16), pool)
        ref_l = batch_smith_waterman([seqs[i] for i in order],
                                     [seqs[i] for i in order])
        ref_a = batch_smith_waterman_affine([seqs[i] for i in order],
                                            [seqs[i] for i in order])
        assert np.array_equal(lin, ref_l)
        assert np.array_equal(aff, ref_a)


# --------------------------------------------------------------------- #
# DeviceAligner facade
# --------------------------------------------------------------------- #

class TestDeviceAligner:
    def make(self, **kw):
        al = DeviceAligner(SimulatedDevice(), **kw)
        rng = np.random.default_rng(8)
        seqs = random_seqs(rng, 50, len_max=60)
        pairs = random_pairs(rng, 50, 300)
        return al, seqs, pairs

    def test_requires_resident_sequences(self):
        al = DeviceAligner(SimulatedDevice())
        with pytest.raises(RuntimeError, match="resident"):
            al.batch_scores(np.array([[0, 1]]))

    def test_rejects_unknown_gap_model(self):
        al, seqs, pairs = self.make()
        al.upload_sequences(seqs)
        with pytest.raises(ValueError, match="gap_model"):
            al.batch_scores(pairs, gap_model="convex")

    def test_empty_pairs(self):
        al, seqs, _ = self.make()
        al.upload_sequences(seqs)
        out = al.batch_scores(np.empty((0, 2), dtype=np.int64))
        assert out.size == 0
        assert al.last_plan.n_bins == 0

    @pytest.mark.parametrize("mode", EXEC_MODES)
    def test_exec_modes_bit_identical(self, mode):
        al, seqs, pairs = self.make(plan=ExecutionPlan.from_mode(mode),
                                    max_pairs_per_bin=48)
        al.upload_sequences(seqs)
        got = al.batch_scores(pairs)
        ref = batch_smith_waterman([seqs[i] for i in pairs[:, 0]],
                                   [seqs[j] for j in pairs[:, 1]])
        assert np.array_equal(ref, got)
        assert al.last_plan.n_bins > 1    # the schedule had work to overlap

    def test_transfers_and_kernels_accounted(self):
        al, seqs, pairs = self.make()
        with al:
            al.upload_sequences(seqs)
            al.batch_scores(pairs)
            dev = al.device
            stats = dev.kernel_stats
            for name in ("sw_widen", "sw_pack", "sw_rowscan", "sw_scan"):
                assert stats[name]["launches"] >= 1
                assert stats[name]["modeled_s"] > 0
            assert dev.memory.bytes_to_device > 0   # residues + offsets + pairs
            assert dev.memory.bytes_to_host == pairs.shape[0] * 8  # scores
        assert dev.memory.used_bytes == 0           # release() freed all

    def test_padding_metrics_recorded(self):
        al, seqs, pairs = self.make()
        al.upload_sequences(seqs)
        al.batch_scores(pairs)
        snap = al.device.obs.metrics.snapshot()
        counters = snap["counters"]
        padded = counters["device.align.cells_padded"]
        actual = counters["device.align.cells_actual"]
        assert 0 < actual <= padded
        waste = snap["gauges"]["device.align.padding_waste"]
        assert waste == pytest.approx(1.0 - actual / padded, abs=1e-5)
        assert counters["device.align.pairs"] == pairs.shape[0]

    def test_scratch_pool_reused_across_calls(self):
        al, seqs, pairs = self.make()
        al.upload_sequences(seqs)
        al.batch_scores(pairs)
        allocs = al.device.scratch.n_allocations
        al.batch_scores(pairs)      # same geometry: zero fresh allocations
        assert al.device.scratch.n_allocations == allocs
        assert al.device.scratch.n_reuses > 0

    def test_waste_respects_planner_cap_on_family_data(self):
        from repro.sequence.generator import generate_protein_families

        ps = generate_protein_families(seed=11)
        al = DeviceAligner(SimulatedDevice())
        al.upload_sequences(ps.sequences)
        rng = np.random.default_rng(12)
        pairs = random_pairs(rng, len(ps.sequences), 2000)
        al.batch_scores(pairs)
        assert al.last_plan.padding_waste < 0.25


# --------------------------------------------------------------------- #
# Hybrid scheduler
# --------------------------------------------------------------------- #

@pytest.fixture
def fresh_cost_model(monkeypatch):
    """Scheduler tests run from priors, not other tests' measurements."""
    monkeypatch.setattr(homology_mod, "_measured_cells_per_s", {})


class TestScheduler:
    def test_explicit_backends_honored(self, fresh_cost_model):
        for be in ("host", "pool", "device"):
            assert choose_align_backend(be, 10, 100, 4) == be

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="align_backend"):
            choose_align_backend("gpu", 10, 100, 1)

    def test_auto_small_workload_never_spawns_pool(self, fresh_cost_model,
                                                   monkeypatch):
        # The small-workload parallel regression: --jobs 0 on a many-core
        # machine must not fork for a few hundred pairs.
        monkeypatch.setattr(homology_mod.os, "cpu_count", lambda: 8)
        choice = choose_align_backend("auto", 500, 500 * 40 * 40, 0)
        assert choice != "pool"

    def test_auto_large_workload_may_pool(self, fresh_cost_model,
                                          monkeypatch):
        monkeypatch.setattr(homology_mod.os, "cpu_count", lambda: 8)
        # Device deliberately measured slow so the pool's linear scaling
        # wins once every worker has enough pairs.
        observe_alignment_throughput("device", 10**6, 100.0)
        choice = choose_align_backend("auto", 100_000, 2 * 10**8, 0)
        assert choice == "pool"

    def test_auto_tiny_cells_prefers_host(self, fresh_cost_model):
        # Below the device's fixed setup cost the host path wins.
        assert choose_align_backend("auto", 50, 10_000, 1) == "host"

    def test_measured_throughput_feeds_back(self, fresh_cost_model):
        # Make the device look 100x faster than the host prior; auto must
        # follow the measurement even at modest scale.
        observe_alignment_throughput("device", 10**9, 0.05)
        assert choose_align_backend("auto", 10_000, 10**7, 1) == "device"
        # ...and an EMA, not a last-write-wins.
        before = homology_mod._measured_cells_per_s["device"]
        observe_alignment_throughput("device", 10**6, 100.0)
        after = homology_mod._measured_cells_per_s["device"]
        assert 1e4 < after < before

    def test_observe_ignores_degenerate_samples(self, fresh_cost_model):
        observe_alignment_throughput("host", 0, 1.0)
        observe_alignment_throughput("host", 100, 0.0)
        assert "host" not in homology_mod._measured_cells_per_s

    def test_auto_never_pools_below_spawn_amortization(self, fresh_cost_model,
                                                       monkeypatch):
        # The BENCH_PR6 regression pin: plenty of pairs but a sub-second
        # host estimate means the fork cost can never amortize, so the
        # pool must not even be a candidate.
        monkeypatch.setattr(homology_mod.os, "cpu_count", lambda: 8)
        small_cells = int(0.9 * 4 * homology_mod._POOL_SPAWN_S
                          * homology_mod._HOST_CELLS_PER_S)
        est = homology_mod._estimated_seconds(100_000, small_cells, 0)
        assert "pool" not in est

    def test_device_estimate_scales_with_device_count(self, fresh_cost_model):
        one = homology_mod._estimated_seconds(1000, 10**8, 1, n_devices=1)
        four = homology_mod._estimated_seconds(1000, 10**8, 1, n_devices=4)
        assert four["device"] < one["device"]
        # More devices shift auto toward the device backend.
        assert choose_align_backend("auto", 1000, 10**8, 1,
                                    n_devices=4) == "device"

    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="align_backend"):
            HomologyConfig(align_backend="gpu")

    def test_config_validates_devices(self):
        with pytest.raises(ValueError, match="devices"):
            HomologyConfig(devices=0)


class TestHomologyBackends:
    @pytest.fixture()
    def small_set(self):
        from repro.sequence.generator import generate_protein_families

        return generate_protein_families(seed=13).sequences

    @pytest.mark.parametrize("gap_model", ["linear", "affine"])
    def test_device_backend_bit_identical(self, small_set, gap_model):
        base = HomologyConfig(gap_model=gap_model)
        ref = build_homology_graph(
            small_set, dataclasses.replace(base, align_backend="host"))
        got = build_homology_graph(
            small_set, dataclasses.replace(base, align_backend="device"))
        assert got.align_backend == "device"
        assert ref.align_backend == "host"
        assert got.n_edges == ref.n_edges
        assert np.array_equal(got.graph.indptr, ref.graph.indptr)
        assert np.array_equal(got.graph.indices, ref.graph.indices)
        assert np.array_equal(got.normalized_scores, ref.normalized_scores)

    def test_device_backend_keep_scores_false(self, small_set):
        cfg = HomologyConfig(align_backend="device")
        ref = build_homology_graph(small_set, cfg)
        got = build_homology_graph(small_set, cfg, keep_scores=False)
        assert got.n_edges == ref.n_edges
        assert got.normalized_scores.size == 0
        assert got.pairs.size == 0

    def test_shared_device_accumulates(self, small_set):
        device = SimulatedDevice()
        cfg = HomologyConfig(align_backend="device")
        build_homology_graph(small_set, cfg, device=device)
        assert device.kernel_stats["sw_rowscan"]["launches"] >= 1
        assert device.memory.used_bytes == 0    # everything released

    def test_auto_small_scale_matches_serial_choice(self, small_set,
                                                    monkeypatch):
        # Regression pin for the satellite: auto with --jobs 0 on a small
        # workload must resolve to an in-process backend (host or device),
        # never the pool, and produce the serial result.
        monkeypatch.setattr(homology_mod.os, "cpu_count", lambda: 8)
        ref = build_homology_graph(
            small_set, HomologyConfig(align_backend="host"))
        got = build_homology_graph(
            small_set, HomologyConfig(align_backend="auto", n_jobs=0))
        assert got.align_backend in ("host", "device")
        assert got.n_edges == ref.n_edges
        assert np.array_equal(got.normalized_scores, ref.normalized_scores)


# --------------------------------------------------------------------- #
# Property test: backend x gap model x dtype x bin edges x keep_scores
# --------------------------------------------------------------------- #

class TestBackendIdentityProperties:
    @given(seed=st.integers(0, 10_000),
           gap_model=st.sampled_from(["linear", "affine"]),
           escalate=st.booleans(),
           max_pairs=st.sampled_from([3, 17, 64, 384]),
           keep_scores=st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_device_equals_host_everywhere(self, seed, gap_model, escalate,
                                           max_pairs, keep_scores):
        """Scores and edges are bit-identical between host and device for
        any gap model, DP dtype (``escalate`` drives penalties past the
        int16 bound), bin-edge choice, and score-retention mode."""
        rng = np.random.default_rng(seed)
        seqs = random_seqs(rng, int(rng.integers(3, 25)), len_max=50)
        if gap_model == "linear":
            penalties = {"gap": 700 if escalate else 8}
        else:
            penalties = {"gap_open": 700 if escalate else 11,
                         "gap_extend": 1}
        cfg = HomologyConfig(gap_model=gap_model, align_backend="host",
                             **penalties)
        ref = build_homology_graph(seqs, cfg, keep_scores=keep_scores)

        device_cfg = dataclasses.replace(cfg, align_backend="device")
        # Route the build through an aligner with the sampled bin edges.
        orig_init = DeviceAligner.__init__

        def patched_init(self, device=None, **kw):
            kw["max_pairs_per_bin"] = max_pairs
            kw["min_pairs_per_bin"] = min(2, max_pairs)
            orig_init(self, device, **kw)

        DeviceAligner.__init__ = patched_init
        try:
            got = build_homology_graph(seqs, device_cfg,
                                       keep_scores=keep_scores)
        finally:
            DeviceAligner.__init__ = orig_init
        assert got.n_edges == ref.n_edges
        assert np.array_equal(got.graph.indptr, ref.graph.indptr)
        assert np.array_equal(got.graph.indices, ref.graph.indices)
        assert np.array_equal(got.normalized_scores, ref.normalized_scores)
