"""Tests for graph statistics (Table II shape) and graph I/O."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.io import (
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
    timed_load,
)
from repro.graph.stats import compute_graph_stats, degree_histogram


class TestGraphStats:
    def test_two_cliques(self, two_cliques_graph):
        stats = compute_graph_stats(two_cliques_graph)
        assert stats.n_vertices == 10
        assert stats.n_singletons == 0
        assert stats.n_edges == 20
        assert stats.avg_degree == pytest.approx(4.0)
        assert stats.std_degree == pytest.approx(0.0)
        assert stats.largest_cc_size == 5
        assert stats.n_components == 2

    def test_singletons_excluded_from_degree_stats(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)], n_vertices=6)
        stats = compute_graph_stats(g)
        assert stats.n_vertices_total == 6
        assert stats.n_singletons == 3
        assert stats.n_vertices == 3
        assert stats.avg_degree == pytest.approx(2.0)

    def test_table_render(self, two_cliques_graph):
        out = compute_graph_stats(two_cliques_graph).render()
        assert "# Vertices" in out
        assert "Largest CC size" in out
        assert "20" in out

    def test_empty_graph(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=3)
        stats = compute_graph_stats(g)
        assert stats.n_vertices == 0
        assert stats.avg_degree == 0.0
        assert stats.largest_cc_size == 1  # three singleton components

    def test_degree_histogram(self, two_cliques_graph):
        hist = degree_histogram(two_cliques_graph)
        assert hist[4] == 10
        assert hist[:4].sum() == 0


class TestGraphIO:
    def test_edge_list_round_trip(self, tmp_path, blocky_graph):
        path = tmp_path / "g.edges"
        save_edge_list(blocky_graph, path, header="test graph")
        loaded = load_edge_list(path)
        assert loaded == blocky_graph

    def test_edge_list_preserves_isolates(self, tmp_path):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=5)
        path = tmp_path / "g.edges"
        save_edge_list(g, path)
        assert load_edge_list(path).n_vertices == 5

    def test_empty_edge_list(self, tmp_path):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=2)
        path = tmp_path / "empty.edges"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.n_vertices == 2
        assert loaded.n_edges == 0

    def test_npz_round_trip(self, tmp_path, blocky_graph):
        path = tmp_path / "g.npz"
        save_npz(blocky_graph, path)
        assert load_npz(path) == blocky_graph

    def test_timed_load_dispatches_on_suffix(self, tmp_path, triangle_graph):
        p1 = tmp_path / "g.npz"
        p2 = tmp_path / "g.edges"
        save_npz(triangle_graph, p1)
        save_edge_list(triangle_graph, p2)
        g1, t1 = timed_load(p1)
        g2, t2 = timed_load(p2)
        assert g1 == g2 == triangle_graph
        assert t1 >= 0 and t2 >= 0
