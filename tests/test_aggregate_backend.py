"""Device-backed inter-pass aggregation — bit-identity and fallbacks.

The ``aggregate_backend`` switch must never change a result: the sort-based
group-by kernels (``agg_sort``/``agg_boundaries``/``agg_invert``) and the
on-device Phase III must produce bit-identical :class:`PassResult`s and
cluster labels across backends, execution modes and device counts — and the
forced-``device`` backend must silently degrade to the host path whenever
its prerequisites (the on-device chunk reduction, a single batch, resident
fit) are missing.
"""

import numpy as np
import pytest

from repro.core.aggregate import StreamingAggregator
from repro.core.device_exec import device_shingle_pass
from repro.core.params import (
    AGGREGATE_BACKENDS,
    ShinglingParams,
)
from repro.core.pipeline import GpClust, SerialPClust
from repro.device.device import SimulatedDevice
from repro.device.group import DeviceGroup
from repro.obs import observe, use_obs
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph


@pytest.fixture(scope="module")
def planted():
    return planted_family_graph(PlantedFamilyConfig(n_families=8), seed=7)


BASE = ShinglingParams(s1=2, c1=8, s2=2, c2=6, trial_chunk=2)


def _run(planted, **overrides):
    return GpClust(BASE.with_overrides(**overrides)).run(planted.graph)


class TestBitIdentity:
    def test_host_backend_matches_serial(self, planted):
        serial = SerialPClust(BASE).run(planted.graph)
        host = _run(planted, aggregate_backend="host")
        assert np.array_equal(host.labels, serial.labels)

    @pytest.mark.parametrize("backend", ["auto", "device"])
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_labels_identical_across_backends_and_devices(
            self, planted, backend, devices):
        ref = _run(planted, aggregate_backend="host")
        got = _run(planted, aggregate_backend=backend, devices=devices)
        assert np.array_equal(got.labels, ref.labels)

    @pytest.mark.parametrize("exec_mode", ["sync", "prefetch", "multistream"])
    def test_labels_identical_across_exec_modes(self, planted, exec_mode):
        ref = _run(planted, aggregate_backend="host")
        got = _run(planted, aggregate_backend="device", exec_mode=exec_mode)
        assert np.array_equal(got.labels, ref.labels)

    @pytest.mark.parametrize("devices", [1, 2])
    def test_pass_result_identical(self, planted, devices):
        graph = planted.graph
        config = BASE.pass_config(1)
        ref = device_shingle_pass(
            graph.indptr, graph.indices, config, SimulatedDevice(),
            kernel="fused", trial_chunk=2)
        device = DeviceGroup(devices) if devices > 1 else SimulatedDevice()
        params = BASE.with_overrides(aggregate_backend="device",
                                     devices=devices)
        got = device_shingle_pass(
            graph.indptr, graph.indices, params.pass_config(1), device,
            kernel="fused", trial_chunk=2, plan=params.execution_plan())
        assert got == ref


class TestFallbacks:
    def test_select_kernel_degrades_to_host(self, planted):
        # The select kernel has no on-device reduction, so there are no
        # resident partials to merge; forced "device" must degrade, not
        # fail, and still match.
        ref = _run(planted, aggregate_backend="host", kernel="select")
        obs = observe()
        with use_obs(obs):
            got = _run(planted, aggregate_backend="device", kernel="select")
        assert np.array_equal(got.labels, ref.labels)
        agg_spans = [r for r in obs.tracer.records
                     if r.name == "device.aggregate"]
        assert agg_spans == []

    def test_multi_batch_degrades_to_host(self, planted):
        ref = _run(planted, aggregate_backend="host")
        obs = observe()
        with use_obs(obs):
            got = GpClust(BASE.with_overrides(aggregate_backend="device"),
                          max_batch_elements=64).run(planted.graph)
        assert np.array_equal(got.labels, ref.labels)
        assert not any(r.name == "device.aggregate"
                       for r in obs.tracer.records)

    def test_resident_too_large_degrades_to_host(self, planted):
        # 1 MB fits every transient batch of this workload but fails the
        # worst-case resident-partials gate, so forced "device" must fall
        # back to host aggregation rather than risk an OOM mid-pass.
        from repro.device.timingmodels import DeviceSpec
        spec = DeviceSpec(memory_capacity_bytes=1 << 20)
        ref = _run(planted, aggregate_backend="host")
        obs = observe()
        with use_obs(obs):
            got = GpClust(BASE.with_overrides(aggregate_backend="device"),
                          device_spec=spec).run(planted.graph)
        assert np.array_equal(got.labels, ref.labels)
        assert not any(r.name == "device.aggregate"
                       for r in obs.tracer.records)


class TestObservability:
    def test_device_spans_counters_and_kernel_stats(self, planted):
        obs = observe()
        with use_obs(obs):
            device = SimulatedDevice()
            GpClust(BASE.with_overrides(aggregate_backend="device")).run(
                planted.graph, device=device)
        names = {r.name for r in obs.tracer.records}
        assert "device.aggregate" in names
        assert "device.cc.solve" in names
        counters = obs.metrics.snapshot()["counters"]
        assert counters["device.cc.rounds"] >= 1
        assert counters["device.cc.edges"] >= 0
        assert counters.get("device.aggregate.bytes_saved", 0) >= 0
        stats = device.kernel_stats
        for name in ("agg_sort", "agg_boundaries", "agg_invert",
                     "cc_hook", "cc_jump"):
            assert stats[name]["launches"] >= 1, name

    def test_group_counters(self, planted):
        obs = observe()
        with use_obs(obs):
            _run(planted, aggregate_backend="device", devices=2)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["group.cc.rounds"] >= 1


class TestAggregatorGuards:
    def test_mixed_host_and_resident_rejected(self):
        agg = StreamingAggregator(2, 4, device=SimulatedDevice())
        agg.add(0, (np.zeros(0, np.uint64), np.zeros((0, 2), np.uint32),
                    np.zeros(0, np.uint32), np.zeros(0, np.uint32)))
        agg.add_resident(1, None, ())
        with pytest.raises(ValueError, match="mix"):
            agg.result()


class TestParams:
    def test_backends_enumerated(self):
        assert AGGREGATE_BACKENDS == ("auto", "host", "device")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="aggregate_backend"):
            ShinglingParams(aggregate_backend="gpu")

    def test_backend_threads_into_pass_config(self):
        params = ShinglingParams(aggregate_backend="device")
        assert params.pass_config(1).aggregate_backend == "device"
        assert params.pass_config(2).aggregate_backend == "device"
