"""Tests for Partition, pair confusion, and the Table III scores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.confusion import pair_confusion, quality_scores
from repro.eval.partition import Partition, partition_stats

labels_strategy = st.lists(st.integers(0, 6), min_size=2, max_size=40)


class TestPartition:
    def test_basic(self):
        p = Partition(np.array([0, 0, 1, 2]))
        assert p.n_vertices == 4
        assert list(p.group_sizes()) == [2, 1, 1]
        assert p.n_groups(min_size=2) == 1

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            Partition(np.array([0, -1]))

    def test_from_clusters(self):
        p = Partition.from_clusters([np.array([0, 2]), np.array([3])], 5)
        assert p.labels[0] == p.labels[2]
        assert p.labels[1] != p.labels[4]
        assert p.n_vertices == 5

    def test_from_clusters_rejects_overlap(self):
        with pytest.raises(ValueError):
            Partition.from_clusters([np.array([0, 1]), np.array([1, 2])], 3)

    def test_groups(self):
        p = Partition(np.array([1, 0, 1, 0, 2]))
        groups = p.groups(min_size=2)
        as_sets = [set(g.tolist()) for g in groups]
        assert {0, 2} in as_sets and {1, 3} in as_sets
        assert len(groups) == 2

    def test_filtered_dissolves_small_groups(self):
        p = Partition(np.array([0, 0, 0, 1, 1, 2]))
        f = p.filtered(min_size=3)
        assert f.group_sizes().max() == 3
        assert f.n_groups(min_size=2) == 1
        # dissolved vertices become distinct singletons
        assert f.labels[3] != f.labels[4]

    def test_filtered_noop_when_all_large(self):
        p = Partition(np.array([0, 0, 1, 1]))
        f = p.filtered(min_size=2)
        assert f.n_groups(min_size=2) == 2

    def test_n_clustered(self):
        p = Partition(np.array([0, 0, 1, 2, 3]))
        assert p.n_clustered(min_size=2) == 2


class TestPartitionStats:
    def test_table4_shape(self):
        sizes = [25] * 3 + [40] + [5] * 10
        labels = np.repeat(np.arange(len(sizes)), sizes)
        stats = partition_stats(Partition(labels), "test", min_size=20)
        assert stats.n_groups == 4
        assert stats.n_sequences == 115
        assert stats.largest_group == 40
        assert stats.avg_group == pytest.approx(115 / 4)

    def test_empty(self):
        stats = partition_stats(Partition(np.arange(5)), "empty", min_size=20)
        assert stats.n_groups == 0
        assert stats.table_row()[1] == "0"


class TestPairConfusion:
    def test_identical_partitions(self):
        p = Partition(np.array([0, 0, 1, 1, 2]))
        conf = pair_confusion(p, p)
        assert conf.fp == conf.fn == 0
        assert conf.tp == 2
        assert conf.total == 10

    def test_orthogonal_partitions(self):
        test = Partition(np.array([0, 0, 1, 1]))
        bench = Partition(np.array([0, 1, 0, 1]))
        conf = pair_confusion(test, bench)
        assert conf.tp == 0
        assert conf.fp == 2
        assert conf.fn == 2
        assert conf.tn == 2

    def test_sub_partition_has_no_fp(self):
        # test splits each benchmark group -> pure but insensitive
        bench = Partition(np.array([0, 0, 0, 0]))
        test = Partition(np.array([0, 0, 1, 1]))
        conf = pair_confusion(test, bench)
        assert conf.fp == 0
        assert conf.tp == 2
        assert conf.fn == 4

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pair_confusion(Partition(np.zeros(3, dtype=np.int64)),
                           Partition(np.zeros(4, dtype=np.int64)))

    def test_tiny_universe(self):
        conf = pair_confusion(Partition(np.array([0])),
                              Partition(np.array([0])))
        assert conf.total == 0

    @given(labels_strategy, labels_strategy)
    @settings(max_examples=100)
    def test_counts_sum_to_all_pairs(self, a, b):
        n = min(len(a), len(b))
        test = Partition(np.asarray(a[:n]))
        bench = Partition(np.asarray(b[:n]))
        conf = pair_confusion(test, bench)
        assert conf.total == n * (n - 1) // 2
        assert min(conf.tp, conf.fp, conf.fn, conf.tn) >= 0

    @given(labels_strategy)
    @settings(max_examples=50)
    def test_self_comparison_is_perfect(self, a):
        p = Partition(np.asarray(a))
        conf = pair_confusion(p, p)
        assert conf.fp == 0 and conf.fn == 0

    def test_matches_bruteforce_enumeration(self, rng):
        n = 30
        t = Partition(rng.integers(0, 4, size=n))
        b = Partition(rng.integers(0, 3, size=n))
        conf = pair_confusion(t, b)
        tp = fp = fn = tn = 0
        for i in range(n):
            for j in range(i + 1, n):
                same_t = t.labels[i] == t.labels[j]
                same_b = b.labels[i] == b.labels[j]
                tp += same_t and same_b
                fp += same_t and not same_b
                fn += (not same_t) and same_b
                tn += (not same_t) and (not same_b)
        assert (conf.tp, conf.fp, conf.fn, conf.tn) == (tp, fp, fn, tn)


class TestQualityScores:
    def test_equations_2_to_5(self):
        test = Partition(np.array([0, 0, 1, 1, 2, 3]))
        bench = Partition(np.array([0, 0, 0, 1, 1, 2]))
        qs = quality_scores(test, bench, min_size=None)
        c = qs.confusion
        assert qs.ppv == pytest.approx(c.tp / (c.tp + c.fp))
        assert qs.npv == pytest.approx(c.tn / (c.fn + c.tn))
        assert qs.specificity == pytest.approx(c.tn / (c.fp + c.tn))
        assert qs.sensitivity == pytest.approx(c.tp / (c.tp + c.fn))

    def test_min_size_filter_applied_to_test_only(self):
        # a pair inside a small test group disappears after filtering
        test = Partition(np.array([0, 0, 1, 1, 1]))
        bench = Partition(np.array([0, 0, 0, 0, 0]))
        qs = quality_scores(test, bench, min_size=3)
        assert qs.confusion.tp == 3  # only the size-3 group's pairs remain

    def test_degenerate_ratios_default_to_one(self):
        p = Partition(np.arange(4))
        qs = quality_scores(p, p, min_size=None)
        assert qs.ppv == 1.0  # no positive predictions at all
        assert qs.sensitivity == 1.0

    def test_table_row_format(self):
        p = Partition(np.array([0, 0, 1]))
        qs = quality_scores(p, p, min_size=None)
        row = qs.table_row("x")
        assert row[0] == "x"
        assert all(cell.endswith("%") for cell in row[1:])
