"""Tests for repro.util.timer and repro.util.tables."""

import time

import pytest

from repro.util.tables import (
    format_count,
    format_mean_std,
    format_percent,
    format_seconds,
    format_table,
)
from repro.util.timer import (
    BUCKET_CPU,
    BUCKET_GPU,
    TABLE1_BUCKETS,
    Stopwatch,
    TimeBreakdown,
)


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first >= 0.01

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running


class TestTimeBreakdown:
    def test_add_and_total(self):
        bd = TimeBreakdown()
        bd.add(BUCKET_CPU, 1.0)
        bd.add(BUCKET_CPU, 0.5)
        bd.add(BUCKET_GPU, 2.0)
        assert bd.get(BUCKET_CPU) == pytest.approx(1.5)
        assert bd.total == pytest.approx(3.5)

    def test_negative_rejected(self):
        bd = TimeBreakdown()
        with pytest.raises(ValueError):
            bd.add(BUCKET_CPU, -1.0)
        with pytest.raises(ValueError):
            bd.add_modeled(BUCKET_GPU, -0.1)

    def test_timing_context(self):
        bd = TimeBreakdown()
        with bd.timing("x"):
            time.sleep(0.005)
        assert bd.get("x") >= 0.004

    def test_modeled_separate_from_measured(self):
        bd = TimeBreakdown()
        bd.add_modeled(BUCKET_GPU, 5.0)
        assert bd.get(BUCKET_GPU) == 0.0
        assert bd.get_modeled(BUCKET_GPU) == 5.0
        assert bd.total == 0.0

    def test_merge(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add_modeled("y", 3.0)
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get_modeled("y") == pytest.approx(3.0)

    def test_as_row_covers_table1_buckets(self):
        bd = TimeBreakdown()
        row = bd.as_row()
        for bucket in TABLE1_BUCKETS:
            assert bucket in row
        assert row["total"] == 0.0


class TestTables:
    def test_format_seconds(self):
        assert format_seconds(1.234) == "1.23"
        assert format_seconds(23537.8) == "23,537.80"
        assert format_seconds(float("nan")) == "n/a"

    def test_format_count(self):
        assert format_count(1562984) == "1,562,984"

    def test_format_percent(self):
        assert format_percent(0.9717) == "97.17%"
        assert format_percent(1.0) == "100.00%"

    def test_format_mean_std(self):
        assert format_mean_std(73.0, 153.0) == "73 ± 153"
        assert format_mean_std(0.75, 0.28) == "0.75 ± 0.28"

    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(line.startswith(("+", "|")) for line in lines[1:])
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_table_custom_alignment_validated(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x"]], align=["l", "r"])
