"""Device Phase III (hooking + pointer-jumping CC kernels) — edge cases.

The offloaded connected-components solve must be bit-identical to the host
union-find on every shape Phase III can see: an empty G_II, singleton
components, components whose edges span trial-chunk boundaries, and (via
hypothesis) arbitrary random bipartite graphs — on a single device and on
2- and 4-member device groups.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, SerialPClust
from repro.device.device import SimulatedDevice
from repro.device.group import DeviceGroup
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph
from repro.graph.unionfind import UnionFind, union_edges
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph


def _devices():
    return [SimulatedDevice(), DeviceGroup(2), DeviceGroup(4)]


def _host_unionfind_labels(n, src, dst):
    uf = UnionFind(n)
    uf.union_many(src, dst)
    return uf.labels()


class TestEdgeCases:
    @pytest.mark.parametrize("n_members", [1, 2, 4])
    def test_empty_edge_list(self, n_members):
        device = DeviceGroup(n_members) if n_members > 1 else SimulatedDevice()
        empty = np.zeros(0, dtype=np.int64)
        got = union_edges(7, empty, empty, device=device)
        assert np.array_equal(got, np.arange(7))

    @pytest.mark.parametrize("n_members", [1, 2, 4])
    def test_zero_vertices(self, n_members):
        device = DeviceGroup(n_members) if n_members > 1 else SimulatedDevice()
        empty = np.zeros(0, dtype=np.int64)
        got = union_edges(0, empty, empty, device=device)
        assert got.size == 0

    @pytest.mark.parametrize("n_members", [1, 2, 4])
    def test_singleton_components_between_edges(self, n_members):
        # Vertices 2, 5 are isolated; components {0,1}, {3,4}, {6,7}.
        device = DeviceGroup(n_members) if n_members > 1 else SimulatedDevice()
        src = np.array([0, 3, 6], dtype=np.int64)
        dst = np.array([1, 4, 7], dtype=np.int64)
        got = union_edges(8, src, dst, device=device)
        host = union_edges(8, src, dst)
        assert np.array_equal(got, host)
        assert got[2] == 2 and got[5] == 5

    @pytest.mark.parametrize("n_members", [1, 2, 4])
    def test_single_chain_spanning_all_shards(self, n_members):
        # A path 0-1-2-...-63: with contiguous edge sharding every shard
        # holds a fragment of the same component, so only the per-round
        # label exchange can converge it to one label.
        device = DeviceGroup(n_members) if n_members > 1 else SimulatedDevice()
        n = 64
        src = np.arange(n - 1, dtype=np.int64)
        dst = src + 1
        got = union_edges(n, src, dst, device=device)
        assert np.array_equal(got, np.zeros(n, dtype=np.int64))

    def test_fewer_edges_than_members(self):
        # A 4-member group with 2 edges leaves shards empty.
        device = DeviceGroup(4)
        src = np.array([0, 5], dtype=np.int64)
        dst = np.array([1, 6], dtype=np.int64)
        got = union_edges(8, src, dst, device=device)
        assert np.array_equal(got, union_edges(8, src, dst))


class TestPipelineEdgeCases:
    def test_empty_g2_all_singletons(self):
        # Every vertex has degree 1 < s1, so no shingles are ever made,
        # G_II is empty, and every vertex is its own cluster.
        graph = CSRGraph.from_edges([(2 * i, 2 * i + 1) for i in range(10)])
        params = ShinglingParams(s1=2, c1=4, s2=2, c2=4,
                                 aggregate_backend="device")
        res = GpClust(params).run(graph)
        assert np.array_equal(res.labels, np.arange(graph.n_vertices))
        serial = SerialPClust(params.with_overrides(
            aggregate_backend="host")).run(graph)
        assert np.array_equal(res.labels, serial.labels)

    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_components_span_trial_chunk_boundaries(self, devices):
        # trial_chunk=1 maximizes cross-chunk (and, for a group,
        # cross-member) partials; labels must not depend on the chunking.
        pg = planted_family_graph(PlantedFamilyConfig(n_families=6), seed=3)
        base = ShinglingParams(s1=2, c1=6, s2=2, c2=4)
        ref = GpClust(base.with_overrides(
            aggregate_backend="host")).run(pg.graph)
        got = GpClust(base.with_overrides(
            aggregate_backend="device", trial_chunk=1,
            devices=devices)).run(pg.graph)
        assert np.array_equal(got.labels, ref.labels)


class TestHypothesisBipartite:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_device_cc_matches_host_on_random_bipartite(self, data):
        n_left = data.draw(st.integers(1, 12), label="n_left")
        n_right = data.draw(st.integers(1, 12), label="n_right")
        n = n_left + n_right
        n_edges = data.draw(st.integers(0, 40), label="n_edges")
        src = np.array(data.draw(st.lists(
            st.integers(0, n_left - 1),
            min_size=n_edges, max_size=n_edges)), dtype=np.int64)
        dst = np.array(data.draw(st.lists(
            st.integers(n_left, n - 1),
            min_size=n_edges, max_size=n_edges)), dtype=np.int64)
        host = union_edges(n, src, dst)
        uf_labels = _host_unionfind_labels(n, src, dst)
        for device in _devices():
            got = union_edges(n, src, dst, device=device)
            assert np.array_equal(got, host)
            # Canonicalized device labels match the scalar union-find.
            _, canon = np.unique(got, return_inverse=True)
            assert np.array_equal(canon, uf_labels)


class TestComponentsFacade:
    def test_connected_components_device_matches_host(self):
        graph = CSRGraph.from_edges(
            [(0, 1), (1, 2), (4, 5), (7, 8), (8, 9), (9, 7)])
        host = connected_components(graph)
        for device in _devices():
            got = connected_components(graph, device=device)
            assert np.array_equal(got, host)
