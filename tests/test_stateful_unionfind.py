"""Stateful property testing of UnionFind against a set-based model."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.graph.unionfind import UnionFind

N = 24


class UnionFindMachine(RuleBasedStateMachine):
    """Drive UnionFind with random operations; mirror them in a naive
    model of frozensets and check every observable after every step."""

    def __init__(self):
        super().__init__()
        self.uf = UnionFind(N)
        self.model = [{i} for i in range(N)]

    def _model_find_set(self, x: int) -> set:
        for group in self.model:
            if x in group:
                return group
        raise AssertionError("unreachable")

    @rule(x=st.integers(0, N - 1), y=st.integers(0, N - 1))
    def union(self, x, y):
        self.uf.union(x, y)
        gx, gy = self._model_find_set(x), self._model_find_set(y)
        if gx is not gy:
            gx |= gy
            self.model.remove(gy)

    @rule(members=st.lists(st.integers(0, N - 1), min_size=1, max_size=6))
    def union_group(self, members):
        self.uf.union_group(np.array(members, dtype=np.int64))
        first = members[0]
        for other in members[1:]:
            ga, gb = self._model_find_set(first), self._model_find_set(other)
            if ga is not gb:
                ga |= gb
                self.model.remove(gb)

    @rule(x=st.integers(0, N - 1), y=st.integers(0, N - 1))
    def check_connected(self, x, y):
        expected = self._model_find_set(x) is self._model_find_set(y)
        assert self.uf.connected(x, y) == expected

    @rule(x=st.integers(0, N - 1))
    def check_set_size(self, x):
        assert self.uf.set_size(x) == len(self._model_find_set(x))

    @invariant()
    def component_count_matches(self):
        assert self.uf.n_components == len(self.model)

    @invariant()
    def labels_describe_model_partition(self):
        labels = self.uf.labels()
        for group in self.model:
            group_list = sorted(group)
            first = group_list[0]
            for member in group_list[1:]:
                assert labels[member] == labels[first]
        # distinct groups get distinct labels
        reps = [sorted(g)[0] for g in self.model]
        assert len({int(labels[r]) for r in reps}) == len(self.model)


TestUnionFindStateful = UnionFindMachine.TestCase
TestUnionFindStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None)
