"""Tests for the device kernels.

The two top-s engines (full segmented sort vs. s-round segmented-min
selection) must be bit-identical; both must agree with a plain per-segment
reference computed with sorted().
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.kernels import (
    SENTINEL,
    affine_hash,
    count_kernel_elements,
    fold_fingerprints,
    pack_pairs,
    segmented_select_top_s,
    segmented_sort_top_s,
    unpack_pairs,
)
from repro.util.mixhash import fold_fingerprint

PRIME = 2_147_483_659


def reference_top_s(packed_row, indptr, s):
    """Per-segment sorted()-based reference."""
    n_seg = len(indptr) - 1
    out = np.full((n_seg, s), SENTINEL, dtype=np.uint64)
    for i in range(n_seg):
        seg = sorted(packed_row[indptr[i]:indptr[i + 1]].tolist())
        for r, v in enumerate(seg[:s]):
            out[i, r] = v
    return out


def random_csr(rng, n_seg=12, max_len=9):
    lengths = rng.integers(0, max_len, size=n_seg)
    indptr = np.zeros(n_seg + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(lengths)
    nnz = int(indptr[-1])
    # unique values per segment (adjacency lists are duplicate-free)
    values = np.concatenate([
        rng.choice(1000, size=l, replace=False) for l in lengths
    ]) if nnz else np.empty(0, dtype=np.int64)
    return indptr, values.astype(np.uint64)


class TestAffineHash:
    def test_matches_formula(self):
        values = np.arange(20, dtype=np.uint64)
        a = np.array([3, 7], dtype=np.uint64)
        b = np.array([1, 2], dtype=np.uint64)
        out = affine_hash(values, a, b, 101)
        expected = np.stack([(3 * values + 1) % 101, (7 * values + 2) % 101])
        assert np.array_equal(out, expected)

    def test_prime_bound_enforced(self):
        with pytest.raises(ValueError):
            affine_hash(np.array([1], dtype=np.uint64),
                        np.array([1], dtype=np.uint64),
                        np.array([0], dtype=np.uint64), 1 << 62)

    def test_no_overflow_near_prime(self):
        p = PRIME
        values = np.array([p - 1], dtype=np.uint64)
        a = np.array([p - 1], dtype=np.uint64)
        b = np.array([p - 1], dtype=np.uint64)
        out = int(affine_hash(values, a, b, p)[0, 0])
        assert out == ((p - 1) * (p - 1) + (p - 1)) % p


class TestPackUnpack:
    def test_round_trip(self):
        hashed = np.array([[0, 5, 2**31 - 1]], dtype=np.uint64)
        ids = np.array([7, 0, 2**32 - 1], dtype=np.uint64)
        packed = pack_pairs(hashed, ids)
        h, i = unpack_pairs(packed)
        assert np.array_equal(h, hashed)
        assert np.array_equal(i, np.broadcast_to(ids, h.shape))

    def test_order_by_hash_then_id(self):
        packed = pack_pairs(np.array([1, 1, 0], dtype=np.uint64),
                            np.array([5, 3, 9], dtype=np.uint64))
        order = np.argsort(packed)
        assert list(order) == [2, 1, 0]

    def test_large_id_rejected(self):
        with pytest.raises(ValueError):
            pack_pairs(np.array([0], dtype=np.uint64),
                       np.array([1 << 32], dtype=np.uint64))


class TestTopS:
    @pytest.mark.parametrize("s", [1, 2, 3, 5])
    def test_select_matches_reference(self, s, rng):
        for trial in range(5):
            indptr, values = random_csr(np.random.default_rng(trial))
            hashed = affine_hash(values, np.array([12345], dtype=np.uint64),
                                 np.array([67], dtype=np.uint64), PRIME)
            packed = pack_pairs(hashed, values)
            out = segmented_select_top_s(packed, indptr, s)
            ref = reference_top_s(packed[0], indptr, s)
            assert np.array_equal(out[0], ref)

    @pytest.mark.parametrize("s", [1, 2, 4])
    def test_sort_matches_select(self, s):
        rng = np.random.default_rng(99)
        indptr, values = random_csr(rng, n_seg=20, max_len=12)
        a = rng.integers(1, PRIME, size=6).astype(np.uint64)
        b = rng.integers(0, PRIME, size=6).astype(np.uint64)
        packed = pack_pairs(affine_hash(values, a, b, PRIME), values)
        assert np.array_equal(segmented_select_top_s(packed, indptr, s),
                              segmented_sort_top_s(packed, indptr, s))

    def test_short_segments_padded_with_sentinel(self):
        indptr = np.array([0, 1, 1, 3])
        packed = pack_pairs(np.array([[5, 1, 2]], dtype=np.uint64),
                            np.array([10, 11, 12], dtype=np.uint64))
        out = segmented_select_top_s(packed, indptr, 2)
        assert out[0, 0, 1] == SENTINEL          # segment of length 1
        assert np.all(out[0, 1] == SENTINEL)     # empty segment
        assert out[0, 2, 0] < out[0, 2, 1] != SENTINEL

    def test_select_does_not_mutate_input(self):
        indptr = np.array([0, 3])
        packed = pack_pairs(np.array([[3, 1, 2]], dtype=np.uint64),
                            np.array([0, 1, 2], dtype=np.uint64))
        before = packed.copy()
        segmented_select_top_s(packed, indptr, 2)
        assert np.array_equal(packed, before)

    def test_empty_input(self):
        out = segmented_select_top_s(np.zeros((2, 0), dtype=np.uint64),
                                     np.array([0, 0]), 2)
        assert out.shape == (2, 1, 2)
        assert np.all(out == SENTINEL)

    def test_invalid_indptr_rejected(self):
        packed = np.zeros((1, 3), dtype=np.uint64)
        with pytest.raises(ValueError):
            segmented_select_top_s(packed, np.array([0, 2]), 2)

    @given(st.integers(0, 1000), st.integers(1, 4))
    @settings(max_examples=60)
    def test_select_sort_agree_property(self, seed, s):
        rng = np.random.default_rng(seed)
        indptr, values = random_csr(rng, n_seg=8, max_len=7)
        a = rng.integers(1, PRIME, size=3).astype(np.uint64)
        b = rng.integers(0, PRIME, size=3).astype(np.uint64)
        packed = pack_pairs(affine_hash(values, a, b, PRIME), values)
        assert np.array_equal(segmented_select_top_s(packed, indptr, s),
                              segmented_sort_top_s(packed, indptr, s))


class TestFoldFingerprints:
    def test_matches_scalar(self):
        ids = np.array([[[3, 9], [1, 4]]], dtype=np.uint64)
        salts = np.array([17], dtype=np.uint64)
        out = fold_fingerprints(ids, salts)
        assert out[0, 0] == fold_fingerprint([3, 9], 17)
        assert out[0, 1] == fold_fingerprint([1, 4], 17)


class TestKernelElementCounts:
    def test_counts(self):
        assert count_kernel_elements("transform", 4, 100, 10, 2) == 400
        assert count_kernel_elements("select", 4, 100, 10, 2) == 800
        assert count_kernel_elements("reduce", 4, 100, 10, 2) == 80

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            count_kernel_elements("scan", 1, 1, 1, 1)
