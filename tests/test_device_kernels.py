"""Tests for the device kernels.

The two top-s engines (full segmented sort vs. s-round segmented-min
selection) must be bit-identical; both must agree with a plain per-segment
reference computed with sorted().
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.kernels import (
    SENTINEL,
    SENTINEL32,
    affine_hash,
    chunk_reduce,
    count_kernel_elements,
    fold_fingerprints,
    fused_hash,
    pack_pairs,
    recover_top_ids,
    reduce_keys_fit,
    segmented_select_top_s,
    segmented_sort_top_s,
    unpack_pairs,
)
from repro.util.mixhash import fold_fingerprint

PRIME = 2_147_483_659


def reference_top_s(packed_row, indptr, s):
    """Per-segment sorted()-based reference."""
    n_seg = len(indptr) - 1
    out = np.full((n_seg, s), SENTINEL, dtype=np.uint64)
    for i in range(n_seg):
        seg = sorted(packed_row[indptr[i]:indptr[i + 1]].tolist())
        for r, v in enumerate(seg[:s]):
            out[i, r] = v
    return out


def random_csr(rng, n_seg=12, max_len=9):
    lengths = rng.integers(0, max_len, size=n_seg)
    indptr = np.zeros(n_seg + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(lengths)
    nnz = int(indptr[-1])
    # unique values per segment (adjacency lists are duplicate-free)
    values = np.concatenate([
        rng.choice(1000, size=l, replace=False) for l in lengths
    ]) if nnz else np.empty(0, dtype=np.int64)
    return indptr, values.astype(np.uint64)


class TestAffineHash:
    def test_matches_formula(self):
        values = np.arange(20, dtype=np.uint64)
        a = np.array([3, 7], dtype=np.uint64)
        b = np.array([1, 2], dtype=np.uint64)
        out = affine_hash(values, a, b, 101)
        expected = np.stack([(3 * values + 1) % 101, (7 * values + 2) % 101])
        assert np.array_equal(out, expected)

    def test_prime_bound_enforced(self):
        with pytest.raises(ValueError):
            affine_hash(np.array([1], dtype=np.uint64),
                        np.array([1], dtype=np.uint64),
                        np.array([0], dtype=np.uint64), 1 << 62)

    def test_no_overflow_near_prime(self):
        p = PRIME
        values = np.array([p - 1], dtype=np.uint64)
        a = np.array([p - 1], dtype=np.uint64)
        b = np.array([p - 1], dtype=np.uint64)
        out = int(affine_hash(values, a, b, p)[0, 0])
        assert out == ((p - 1) * (p - 1) + (p - 1)) % p


class TestPackUnpack:
    def test_round_trip(self):
        hashed = np.array([[0, 5, 2**31 - 1]], dtype=np.uint64)
        ids = np.array([7, 0, 2**32 - 1], dtype=np.uint64)
        packed = pack_pairs(hashed, ids)
        h, i = unpack_pairs(packed)
        assert np.array_equal(h, hashed)
        assert np.array_equal(i, np.broadcast_to(ids, h.shape))

    def test_order_by_hash_then_id(self):
        packed = pack_pairs(np.array([1, 1, 0], dtype=np.uint64),
                            np.array([5, 3, 9], dtype=np.uint64))
        order = np.argsort(packed)
        assert list(order) == [2, 1, 0]

    def test_large_id_rejected(self):
        with pytest.raises(ValueError):
            pack_pairs(np.array([0], dtype=np.uint64),
                       np.array([1 << 32], dtype=np.uint64))


class TestTopS:
    @pytest.mark.parametrize("s", [1, 2, 3, 5])
    def test_select_matches_reference(self, s, rng):
        for trial in range(5):
            indptr, values = random_csr(np.random.default_rng(trial))
            hashed = affine_hash(values, np.array([12345], dtype=np.uint64),
                                 np.array([67], dtype=np.uint64), PRIME)
            packed = pack_pairs(hashed, values)
            out = segmented_select_top_s(packed, indptr, s)
            ref = reference_top_s(packed[0], indptr, s)
            assert np.array_equal(out[0], ref)

    @pytest.mark.parametrize("s", [1, 2, 4])
    def test_sort_matches_select(self, s):
        rng = np.random.default_rng(99)
        indptr, values = random_csr(rng, n_seg=20, max_len=12)
        a = rng.integers(1, PRIME, size=6).astype(np.uint64)
        b = rng.integers(0, PRIME, size=6).astype(np.uint64)
        packed = pack_pairs(affine_hash(values, a, b, PRIME), values)
        assert np.array_equal(segmented_select_top_s(packed, indptr, s),
                              segmented_sort_top_s(packed, indptr, s))

    def test_short_segments_padded_with_sentinel(self):
        indptr = np.array([0, 1, 1, 3])
        packed = pack_pairs(np.array([[5, 1, 2]], dtype=np.uint64),
                            np.array([10, 11, 12], dtype=np.uint64))
        out = segmented_select_top_s(packed, indptr, 2)
        assert out[0, 0, 1] == SENTINEL          # segment of length 1
        assert np.all(out[0, 1] == SENTINEL)     # empty segment
        assert out[0, 2, 0] < out[0, 2, 1] != SENTINEL

    def test_select_does_not_mutate_input(self):
        indptr = np.array([0, 3])
        packed = pack_pairs(np.array([[3, 1, 2]], dtype=np.uint64),
                            np.array([0, 1, 2], dtype=np.uint64))
        before = packed.copy()
        segmented_select_top_s(packed, indptr, 2)
        assert np.array_equal(packed, before)

    def test_empty_input(self):
        out = segmented_select_top_s(np.zeros((2, 0), dtype=np.uint64),
                                     np.array([0, 0]), 2)
        assert out.shape == (2, 1, 2)
        assert np.all(out == SENTINEL)

    def test_invalid_indptr_rejected(self):
        packed = np.zeros((1, 3), dtype=np.uint64)
        with pytest.raises(ValueError):
            segmented_select_top_s(packed, np.array([0, 2]), 2)

    @given(st.integers(0, 1000), st.integers(1, 4))
    @settings(max_examples=60)
    def test_select_sort_agree_property(self, seed, s):
        rng = np.random.default_rng(seed)
        indptr, values = random_csr(rng, n_seg=8, max_len=7)
        a = rng.integers(1, PRIME, size=3).astype(np.uint64)
        b = rng.integers(0, PRIME, size=3).astype(np.uint64)
        packed = pack_pairs(affine_hash(values, a, b, PRIME), values)
        assert np.array_equal(segmented_select_top_s(packed, indptr, s),
                              segmented_sort_top_s(packed, indptr, s))


class TestFoldFingerprints:
    def test_matches_scalar(self):
        ids = np.array([[[3, 9], [1, 4]]], dtype=np.uint64)
        salts = np.array([17], dtype=np.uint64)
        out = fold_fingerprints(ids, salts)
        assert out[0, 0] == fold_fingerprint([3, 9], 17)
        assert out[0, 1] == fold_fingerprint([1, 4], 17)


class TestKernelElementCounts:
    def test_counts(self):
        assert count_kernel_elements("transform", 4, 100, 10, 2) == 400
        assert count_kernel_elements("select", 4, 100, 10, 2) == 800
        assert count_kernel_elements("reduce", 4, 100, 10, 2) == 80

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            count_kernel_elements("scan", 1, 1, 1, 1)


class TestFusedHash:
    def _reference_keys(self, values, a, b):
        return affine_hash(values, a, b, PRIME).astype(np.uint32)

    @pytest.mark.parametrize("n_values", [None, 1000, 10_000])
    def test_matches_affine_hash(self, n_values):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1000, size=50).astype(np.int64)
        a = rng.integers(1, PRIME, size=4).astype(np.uint64)
        b = rng.integers(0, PRIME, size=4).astype(np.uint64)
        got = fused_hash(values, a, b, PRIME, n_values=n_values)
        assert got.dtype == np.uint32
        assert np.array_equal(got, self._reference_keys(values, a, b))

    def test_table_and_direct_paths_identical(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 30, size=200).astype(np.int64)
        a = rng.integers(1, PRIME, size=3).astype(np.uint64)
        b = rng.integers(0, PRIME, size=3).astype(np.uint64)
        table = fused_hash(values, a, b, PRIME, n_values=30)      # gather
        direct = fused_hash(values, a, b, PRIME, n_values=10**9)  # too big
        assert np.array_equal(table, direct)

    def test_prime_bound_enforced(self):
        with pytest.raises(ValueError):
            fused_hash(np.array([1], dtype=np.int64),
                       np.array([1], dtype=np.uint64),
                       np.array([0], dtype=np.uint64), 1 << 62)

    def test_ordering_equals_packed_pair_ordering(self):
        """Injectivity: within distinct ids, hash order == packed-pair order."""
        rng = np.random.default_rng(2)
        values = rng.choice(100_000, size=500, replace=False).astype(np.int64)
        a = rng.integers(1, PRIME, size=5).astype(np.uint64)
        b = rng.integers(0, PRIME, size=5).astype(np.uint64)
        keys = fused_hash(values, a, b, PRIME)
        packed = pack_pairs(affine_hash(values, a, b, PRIME),
                            values.astype(np.uint64))
        for t in range(5):
            assert np.array_equal(np.argsort(keys[t], kind="stable"),
                                  np.argsort(packed[t], kind="stable"))


class TestRecoverTopIds:
    def test_round_trip(self):
        rng = np.random.default_rng(3)
        values = rng.choice(10_000, size=(2, 6, 3), replace=False
                            ).astype(np.uint64)
        a = rng.integers(1, PRIME, size=2).astype(np.uint64)
        b = rng.integers(0, PRIME, size=2).astype(np.uint64)
        keys = np.empty(values.shape, dtype=np.uint32)
        for t in range(2):
            keys[t] = ((a[t] * values[t] + b[t]) % np.uint64(PRIME)
                       ).astype(np.uint32)
        ids, packed = recover_top_ids(
            keys, a, b, PRIME, out_packed=np.empty(keys.shape, dtype=np.uint64))
        assert np.array_equal(ids, values)
        expected_packed = pack_pairs(
            keys.astype(np.uint64).reshape(2, -1),
            values.reshape(2, -1)).reshape(values.shape)
        assert np.array_equal(packed, expected_packed)

    def test_sentinel_keys_become_sentinel_pairs(self):
        keys = np.full((1, 2, 2), SENTINEL32, dtype=np.uint32)
        keys[0, 0, 0] = 42
        a = np.array([1], dtype=np.uint64)
        b = np.array([0], dtype=np.uint64)
        ids, packed = recover_top_ids(
            keys, a, b, PRIME, out_packed=np.empty(keys.shape, dtype=np.uint64))
        assert ids[0, 0, 0] == 42
        assert ids[0, 0, 1] == 0xFFFFFFFF
        assert packed[0, 0, 1] == SENTINEL
        assert packed[0, 1, 0] == SENTINEL


class TestFusedSelectConsume:
    def test_uint32_select_matches_uint64(self):
        rng = np.random.default_rng(4)
        indptr, values = random_csr(rng, n_seg=10, max_len=8)
        a = rng.integers(1, PRIME, size=3).astype(np.uint64)
        b = rng.integers(0, PRIME, size=3).astype(np.uint64)
        keys = fused_hash(values, a, b, PRIME)
        packed = pack_pairs(affine_hash(values, a, b, PRIME), values)
        top32 = segmented_select_top_s(keys.copy(), indptr, 2, consume=True)
        top64 = segmented_select_top_s(packed, indptr, 2)
        # uint32 sentinel where uint64 is SENTINEL; hashes match elsewhere
        mask = top64 == SENTINEL
        assert np.array_equal(top32 == SENTINEL32, mask)
        assert np.array_equal(top32[~mask].astype(np.uint64),
                              top64[~mask] >> np.uint64(32))

    def test_consume_destroys_input_but_not_output(self):
        rng = np.random.default_rng(5)
        indptr, values = random_csr(rng, n_seg=6, max_len=6)
        a = rng.integers(1, PRIME, size=2).astype(np.uint64)
        b = rng.integers(0, PRIME, size=2).astype(np.uint64)
        keys = fused_hash(values, a, b, PRIME)
        expected = segmented_select_top_s(keys.copy(), indptr, 2)
        got = segmented_select_top_s(keys, indptr, 2, consume=True)
        assert np.array_equal(got, expected)


class TestReduceKeysFit:
    def test_fits_small(self):
        assert reduce_keys_fit(16, 1000, 2, 10_000)

    def test_rejects_huge(self):
        assert not reduce_keys_fit(16, 1000, 2, 1 << 40)

    def test_rejects_empty_value_range(self):
        assert not reduce_keys_fit(1, 1, 1, 0)

    def test_exact_boundary(self):
        # t * m^s * n == 2^63 must be rejected, one less accepted
        assert not reduce_keys_fit(1, 1 << 31, 1, 1 << 32)
        assert reduce_keys_fit(1, (1 << 31) - 1, 1, 1 << 32)


class TestChunkReduce:
    def _dense_chunk(self, rng, t=4, n_seg=9, max_len=8, s=2):
        """A chunk with every segment valid (length >= s), plus its dense
        fps/top arrays computed by the unfused pipeline."""
        lengths = rng.integers(s, max_len, size=n_seg)
        indptr = np.zeros(n_seg + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(lengths)
        values = np.concatenate([
            rng.choice(40, size=l, replace=False) for l in lengths
        ]).astype(np.uint64)
        a = rng.integers(1, PRIME, size=t).astype(np.uint64)
        b = rng.integers(0, PRIME, size=t).astype(np.uint64)
        salts = rng.integers(0, 1 << 60, size=t).astype(np.uint64)
        packed = pack_pairs(affine_hash(values, a, b, PRIME), values)
        top = segmented_select_top_s(packed, indptr, s)
        top_ids = top & np.uint64(0xFFFFFFFF)
        fps = fold_fingerprints(top_ids, salts)
        return top_ids, fps, top, salts, indptr

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_dense_aggregation(self, seed):
        from repro.core.aggregate import aggregate_pass

        rng = np.random.default_rng(seed)
        s = 2
        top_ids, fps, top, salts, indptr = self._dense_chunk(rng, s=s)
        n_seg = indptr.size - 1
        gen_ids = np.arange(n_seg, dtype=np.uint32)
        r_fps, r_members, r_counts, r_gens = chunk_reduce(
            top_ids, salts, gen_ids, n_values=40)

        ref = aggregate_pass(fps, top, np.diff(indptr), s)
        assert np.array_equal(r_fps, ref.fingerprints)
        assert np.array_equal(r_members.astype(np.int64), ref.members)
        assert np.array_equal(np.repeat(np.arange(r_counts.size), r_counts),
                              np.repeat(np.arange(ref.gen_graph.n_left),
                                        np.diff(ref.gen_graph.indptr)))
        assert np.array_equal(r_gens.astype(np.int64), ref.gen_graph.indices)

    def test_remapped_gen_ids(self):
        """gen_ids maps columns to original segment ids (driver compaction)."""
        from repro.core.aggregate import aggregate_pass

        rng = np.random.default_rng(7)
        s = 2
        top_ids, fps, top, salts, indptr = self._dense_chunk(rng, s=s)
        n_seg = indptr.size - 1
        valid_ids = (np.arange(n_seg) * 3 + 1).astype(np.uint32)  # sparse ids
        r_fps, r_members, r_counts, r_gens = chunk_reduce(
            top_ids, salts, valid_ids, n_values=40)
        ref = aggregate_pass(fps, top, np.diff(indptr), s,
                             segment_ids=valid_ids.astype(np.int64),
                             n_segments=3 * n_seg + 1)
        assert np.array_equal(r_fps, ref.fingerprints)
        assert np.array_equal(r_gens.astype(np.int64), ref.gen_graph.indices)

    def test_fingerprint_collision_fallback(self):
        """Equal salts across trials force cross-trial fp collisions; the
        merged output must still match the dense np.unique aggregation."""
        from repro.core.aggregate import aggregate_pass

        rng = np.random.default_rng(11)
        s = 2
        t, n_seg = 3, 6
        lengths = np.full(n_seg, 4)
        indptr = np.zeros(n_seg + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(lengths)
        values = np.concatenate([
            rng.choice(8, size=4, replace=False) for _ in range(n_seg)
        ]).astype(np.uint64)
        a = np.ones(t, dtype=np.uint64)  # identity-ish hashes: many dup tuples
        b = np.zeros(t, dtype=np.uint64)
        salts = np.zeros(t, dtype=np.uint64)  # same salt -> collisions certain
        packed = pack_pairs(affine_hash(values, a, b, PRIME), values)
        top = segmented_select_top_s(packed, indptr, s)
        top_ids = np.broadcast_to(top & np.uint64(0xFFFFFFFF),
                                  (t, n_seg, s)).copy()
        fps = fold_fingerprints(top_ids, salts)
        top_t = np.broadcast_to(top, (t, n_seg, s)).copy()
        r_fps, r_members, r_counts, r_gens = chunk_reduce(
            top_ids, salts, np.arange(n_seg, dtype=np.uint32), n_values=8)
        ref = aggregate_pass(fps, top_t, lengths, s)
        assert np.array_equal(r_fps, ref.fingerprints)
        assert np.array_equal(r_members.astype(np.int64), ref.members)
        assert np.array_equal(r_gens.astype(np.int64), ref.gen_graph.indices)

    def test_empty_chunk(self):
        fps, members, counts, gens = chunk_reduce(
            np.empty((0, 0, 2), dtype=np.uint64),
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=np.uint32), n_values=1)
        assert fps.size == 0 and members.shape == (0, 2)
        assert counts.size == 0 and gens.size == 0
