"""Robustness of the headline quality shape across seeds.

The Table III/IV orderings must not be an artifact of one lucky seed: this
module re-checks the critical inequalities on freshly generated benchmark
instances and clustering seeds.
"""

import numpy as np
import pytest

from repro.baselines.gos_kneighbor import gos_kneighbor_clustering
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.eval.confusion import quality_scores
from repro.eval.density import density_summary
from repro.eval.partition import Partition, partition_stats
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph


@pytest.mark.parametrize("graph_seed,cluster_seed", [(23, 1), (77, 4)])
def test_quality_shape_holds_across_seeds(graph_seed, cluster_seed):
    pg = planted_family_graph(PlantedFamilyConfig(n_families=30),
                              seed=graph_seed)
    bench = Partition(pg.family_labels)
    gp = Partition(GpClust(ShinglingParams(c1=100, c2=50,
                                           seed=cluster_seed)).run(pg.graph).labels)
    gos = Partition(gos_kneighbor_clustering(pg.gos_graph, k=10))

    qs_gp = quality_scores(gp, bench, min_size=20)
    qs_gos = quality_scores(gos, bench, min_size=20)
    d_gp, _ = density_summary(pg.graph, gp, min_size=20)
    d_gos, _ = density_summary(pg.graph, gos, min_size=20)
    st_gp = partition_stats(gp, "gp")
    st_gos = partition_stats(gos, "gos")

    # The headline orderings of Tables III/IV.  PPV/SE/recruitment are
    # structural and must hold strictly on every instance; the density gap's
    # magnitude depends on how many satellite-free cores an instance draws
    # (see EXPERIMENTS.md), so it gets a small tolerance here — the bench
    # instance itself (seed 11) holds it strictly.
    assert qs_gos.ppv > 0.999
    assert qs_gp.ppv > 0.9
    assert qs_gp.sensitivity > qs_gos.sensitivity, (
        f"SE ordering flipped at seeds ({graph_seed}, {cluster_seed})")
    assert d_gp > d_gos - 0.02, (
        f"density ordering broke at seeds ({graph_seed}, {cluster_seed})")
    assert st_gp.n_sequences > st_gos.n_sequences
    assert st_gp.n_groups > st_gos.n_groups


def test_gos_k_sensitivity():
    """The paper: "the choice of k could potentially influence the
    clustering results" — smaller k links more aggressively."""
    pg = planted_family_graph(PlantedFamilyConfig(n_families=20), seed=3)
    sizes = {}
    for k in (5, 10, 20):
        labels = gos_kneighbor_clustering(pg.gos_graph, k=k)
        part = Partition(labels)
        sizes[k] = part.n_clustered(min_size=2)
    assert sizes[5] >= sizes[10] >= sizes[20]


def test_clustering_insensitive_to_vertex_relabeling_statistics():
    """Permuting vertex ids changes hash values (ids feed the min-wise
    permutations) but must not change aggregate quality statistics much."""
    pg = planted_family_graph(PlantedFamilyConfig(n_families=20), seed=6)
    bench = Partition(pg.family_labels)
    params = ShinglingParams(c1=60, c2=30, seed=2)

    base = Partition(GpClust(params).run(pg.graph).labels)
    qs_base = quality_scores(base, bench, min_size=20)

    rng = np.random.default_rng(0)
    perm = rng.permutation(pg.graph.n_vertices)
    edges = pg.graph.edges()
    from repro.graph.csr import CSRGraph

    permuted_graph = CSRGraph.from_edges(perm[edges],
                                         n_vertices=pg.graph.n_vertices)
    permuted_labels = GpClust(params).run(permuted_graph).labels
    # Map back to original vertex order for comparison.
    back = np.empty_like(permuted_labels)
    back[np.arange(perm.size)] = permuted_labels[perm]
    qs_perm = quality_scores(Partition(back), bench, min_size=20)

    assert abs(qs_perm.ppv - qs_base.ppv) < 0.05
    assert abs(qs_perm.sensitivity - qs_base.sensitivity) < 0.05
