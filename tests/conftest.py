"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregate import set_debug_checks
from repro.core.params import ShinglingParams
from repro.graph.csr import CSRGraph
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph


@pytest.fixture(autouse=True)
def _force_debug_checks():
    """Debug-mode sanity checks are off by default; the suite always runs them."""
    previous = set_debug_checks(True)
    yield
    set_debug_checks(previous)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20130520)


@pytest.fixture
def triangle_graph() -> CSRGraph:
    """K3: the smallest graph where every vertex can shingle with s=2."""
    return CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def two_cliques_graph() -> CSRGraph:
    """Two disjoint K5s — two obvious dense subgraphs."""
    edges = []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j))
    return CSRGraph.from_edges(edges, n_vertices=10)


@pytest.fixture
def path_graph() -> CSRGraph:
    """P6: a path, no dense structure at all."""
    return CSRGraph.from_edges([(i, i + 1) for i in range(5)])


def random_blocky_graph(seed: int = 3, n: int = 150, n_blocks: int = 4,
                        block: int = 18, p: float = 0.8,
                        n_noise: int = 120) -> CSRGraph:
    """A graph with disjoint planted dense blocks plus random noise edges."""
    rng = np.random.default_rng(seed)
    edges = []
    perm = rng.permutation(n)
    for b in range(n_blocks):
        vs = perm[b * block:(b + 1) * block]
        for i in range(block):
            for j in range(i + 1, block):
                if rng.random() < p:
                    edges.append((int(vs[i]), int(vs[j])))
    noise = rng.integers(0, n, size=(n_noise, 2))
    edges += [(int(a), int(b)) for a, b in noise if a != b]
    return CSRGraph.from_edges(np.asarray(edges, dtype=np.int64), n_vertices=n)


@pytest.fixture
def blocky_graph() -> CSRGraph:
    return random_blocky_graph()


@pytest.fixture
def small_params() -> ShinglingParams:
    """Trial counts small enough for the pure-Python serial reference."""
    return ShinglingParams(c1=20, c2=10, seed=9)


@pytest.fixture(scope="session")
def planted_small():
    """A small calibrated planted-family instance (session-cached)."""
    return planted_family_graph(
        PlantedFamilyConfig(n_families=12, family_size_median=90.0), seed=5)
