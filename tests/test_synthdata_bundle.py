"""Tests for benchmark bundle persistence."""

import numpy as np
import pytest

from repro.synthdata.bundle import BenchmarkBundle, load_bundle, save_bundle
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph


@pytest.fixture(scope="module")
def planted():
    return planted_family_graph(
        PlantedFamilyConfig(n_families=6, family_size_median=70.0), seed=8)


class TestBundleRoundTrip:
    def test_save_load(self, planted, tmp_path):
        paths = save_bundle(planted, tmp_path / "bench")
        assert all(p.exists() for p in paths.values())
        bundle = load_bundle(tmp_path / "bench")
        assert bundle.graph == planted.graph
        assert bundle.gos_graph == planted.gos_graph
        assert np.array_equal(bundle.family_labels, planted.family_labels)
        assert np.array_equal(bundle.core_labels, planted.core_labels)
        assert bundle.seed == 8

    def test_cli_generated_bundle_loads(self, tmp_path):
        from repro.cli import main

        main(["generate", "--families", "4", "--seed", "1",
              "--out", str(tmp_path / "b")])
        bundle = load_bundle(tmp_path / "b")
        assert bundle.n_vertices == bundle.family_labels.size
        assert bundle.gos_graph.n_edges >= bundle.graph.n_edges

    def test_missing_gos_view_falls_back(self, planted, tmp_path):
        save_bundle(planted, tmp_path / "b")
        (tmp_path / "b.gos.npz").unlink()
        bundle = load_bundle(tmp_path / "b")
        assert bundle.gos_graph is bundle.graph

    def test_validation(self, planted):
        with pytest.raises(ValueError):
            BenchmarkBundle(planted.graph, planted.gos_graph,
                            np.zeros(3, dtype=np.int64))

    def test_bundle_usable_for_quality_eval(self, planted, tmp_path):
        from repro.baselines.gos_kneighbor import gos_kneighbor_clustering
        from repro.core.params import ShinglingParams
        from repro.core.pipeline import GpClust
        from repro.eval.partition import Partition
        from repro.eval.report import ComparisonReport

        save_bundle(planted, tmp_path / "b")
        bundle = load_bundle(tmp_path / "b")
        gp = Partition(GpClust(ShinglingParams(c1=15, c2=8, seed=1)).run(bundle.graph).labels)
        gos = Partition(gos_kneighbor_clustering(bundle.gos_graph, k=10))
        report = ComparisonReport.compute(
            bundle.graph, {"gp": gp, "gos": gos},
            Partition(bundle.family_labels), min_size=10)
        assert len(report.methods) == 2
