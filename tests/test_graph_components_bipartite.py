"""Tests for connected components (both engines) and BipartiteCSR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteCSR
from repro.graph.components import (
    bipartite_components,
    component_sizes,
    connected_components,
    largest_component_size,
)
from repro.graph.csr import CSRGraph


class TestConnectedComponents:
    def test_two_cliques(self, two_cliques_graph):
        labels = connected_components(two_cliques_graph)
        assert np.array_equal(labels, np.repeat([0, 1], 5))

    def test_path_is_one_component(self, path_graph):
        labels = connected_components(path_graph)
        assert np.unique(labels).size == 1

    def test_isolates_are_singletons(self):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=4)
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert len({labels[0], labels[2], labels[3]}) == 3

    def test_engines_agree(self, blocky_graph):
        lp = connected_components(blocky_graph, method="label_propagation")
        bfs = connected_components(blocky_graph, method="bfs")
        assert np.array_equal(lp, bfs)

    def test_unknown_method_rejected(self, path_graph):
        with pytest.raises(ValueError):
            connected_components(path_graph, method="magic")

    def test_labels_are_dense_and_canonical(self, blocky_graph):
        labels = connected_components(blocky_graph)
        seen = []
        for lab in labels:
            if lab not in seen:
                seen.append(lab)
        assert seen == list(range(len(seen)))

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)),
                    max_size=40))
    @settings(max_examples=60)
    def test_engines_agree_property(self, edges):
        g = CSRGraph.from_edges(
            np.asarray(edges, dtype=np.int64).reshape(-1, 2)
            if edges else np.empty((0, 2), dtype=np.int64), n_vertices=20)
        assert np.array_equal(connected_components(g, "label_propagation"),
                              connected_components(g, "bfs"))

    def test_component_sizes(self, two_cliques_graph):
        labels = connected_components(two_cliques_graph)
        assert list(component_sizes(labels)) == [5, 5]

    def test_largest_component_size(self, blocky_graph):
        labels = connected_components(blocky_graph)
        assert largest_component_size(blocky_graph) == int(component_sizes(labels).max())

    def test_empty_graph(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=0)
        assert connected_components(g).size == 0
        assert largest_component_size(g) == 0


class TestBipartiteComponents:
    def test_simple_bipartite(self):
        # left0 - right0 - left1; left2 - right1
        indptr = np.array([0, 1, 2, 3])
        indices = np.array([0, 0, 1])
        left, right = bipartite_components(indptr, indices, n_right=2)
        assert left[0] == left[1] == right[0]
        assert left[2] == right[1]
        assert left[0] != left[2]

    def test_isolated_right_nodes(self):
        indptr = np.array([0, 1])
        indices = np.array([0])
        left, right = bipartite_components(indptr, indices, n_right=3)
        assert left[0] == right[0]
        assert len({right[1], right[2], left[0]}) == 3


class TestBipartiteCSR:
    def test_from_lists(self):
        b = BipartiteCSR.from_lists([np.array([0, 2]), np.array([1])], n_right=3)
        assert b.n_left == 2
        assert b.n_right == 3
        assert b.nnz == 3
        assert list(b.neighbors(0)) == [0, 2]

    def test_degrees(self):
        b = BipartiteCSR.from_lists([np.array([0, 1]), np.array([], dtype=np.int64)],
                                    n_right=2)
        assert list(b.degrees()) == [2, 0]
        assert list(b.right_degrees()) == [1, 1]

    def test_transpose_round_trip(self):
        b = BipartiteCSR.from_lists(
            [np.array([0, 2]), np.array([1, 2]), np.array([0])], n_right=3)
        t = b.transpose()
        assert t.n_left == 3 and t.n_right == 3
        assert b.transpose().transpose() == b

    def test_transpose_contents(self):
        b = BipartiteCSR.from_lists([np.array([1]), np.array([1])], n_right=2)
        t = b.transpose()
        assert list(t.neighbors(0)) == []
        assert list(t.neighbors(1)) == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            BipartiteCSR(np.array([0, 2]), np.array([0, 5]), n_right=3)
        with pytest.raises(ValueError):
            BipartiteCSR(np.array([1, 2]), np.array([0]), n_right=3)
        with pytest.raises(ValueError):
            BipartiteCSR(np.array([0, 1]), np.array([0]), n_right=-1)

    def test_empty(self):
        b = BipartiteCSR.from_lists([], n_right=0)
        assert b.n_left == 0 and b.nnz == 0
