"""Launch-graph capture/replay: modes, bit-identity, and exact accounting.

The ``--launch-graph`` knob must never change a result: replayed chunks go
through capture-built tournament tables and permutation-carrying reductions,
so every PassResult and cluster labeling must be bit-identical to the eager
path across modes, execution modes, device counts and aggregate backends.
Accounting must stay reconciled too — same kernel launch/element counters,
modeled seconds differing only by the documented once-per-graph launch
latency rule.
"""

import numpy as np
import pytest

from repro.core import device_exec
from repro.core.device_exec import device_shingle_pass
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.device import launchgraph
from repro.device.device import SimulatedDevice
from repro.device.group import DeviceGroup
from repro.device.launchgraph import (
    ACTION_CAPTURE,
    ACTION_EAGER,
    ACTION_REPLAY,
    GRAPH_CACHE,
    LG_AUTO,
    LG_OFF,
    LG_ON,
    LaunchGraph,
    adopt_token,
    build_tournament_plan,
    content_token,
    run_tournament,
    run_tournament_ids,
)
from repro.device.memory import ScratchPool
from repro.obs import observe, use_obs
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Launch graphs and pass plans are process-wide; isolate every test."""
    GRAPH_CACHE.clear()
    device_exec.clear_pass_plan_cache()
    yield
    GRAPH_CACHE.clear()
    device_exec.clear_pass_plan_cache()


@pytest.fixture(scope="module")
def planted():
    return planted_family_graph(PlantedFamilyConfig(n_families=8), seed=11)


BASE = ShinglingParams(s1=2, c1=8, s2=2, c2=6, trial_chunk=2)


def _labels(graph, **overrides):
    return GpClust(BASE.with_overrides(**overrides)).run(graph).labels


# --------------------------------------------------------------------- #
# Cache state machine
# --------------------------------------------------------------------- #


class TestGraphCache:
    SIG = ("reduce", "fused", 4, 2, 13, 7, False, b"e", b"i", b"g")

    def _graph(self):
        return LaunchGraph(signature=self.SIG, kind="reduce", kernel="fused",
                           t=4, s=2, prime=13, n_values=7, n_seg=3, nnz=9,
                           nodes=(), modeled_s=0.0)

    def test_off_is_always_eager(self):
        for _ in range(3):
            assert GRAPH_CACHE.resolve(self.SIG, LG_OFF) == (ACTION_EAGER, None)
        assert GRAPH_CACHE.stats()["entries"] == 0

    def test_auto_captures_on_second_occurrence(self):
        assert GRAPH_CACHE.resolve(self.SIG, LG_AUTO)[0] == ACTION_EAGER
        assert GRAPH_CACHE.resolve(self.SIG, LG_AUTO)[0] == ACTION_CAPTURE
        # While capturing, concurrent matches stay eager.
        assert GRAPH_CACHE.resolve(self.SIG, LG_AUTO)[0] == ACTION_EAGER
        GRAPH_CACHE.commit(self._graph())
        action, graph = GRAPH_CACHE.resolve(self.SIG, LG_AUTO)
        assert action == ACTION_REPLAY
        assert graph.replays == 1

    def test_on_captures_immediately(self):
        assert GRAPH_CACHE.resolve(self.SIG, LG_ON)[0] == ACTION_CAPTURE

    def test_abort_allows_recapture(self):
        GRAPH_CACHE.resolve(self.SIG, LG_ON)
        GRAPH_CACHE.abort_capture(self.SIG)
        assert GRAPH_CACHE.resolve(self.SIG, LG_ON)[0] == ACTION_CAPTURE

    def test_eviction_bound(self):
        for i in range(launchgraph._MAX_GRAPHS + 5):
            GRAPH_CACHE.resolve(("sig", i), LG_ON)
        assert GRAPH_CACHE.stats()["entries"] <= launchgraph._MAX_GRAPHS


class TestContentTokens:
    def test_equal_content_equal_token(self):
        a = np.arange(10, dtype=np.int64)
        b = np.arange(10, dtype=np.int64)
        assert a is not b
        assert content_token(a) == content_token(b)

    def test_dtype_and_shape_matter(self):
        a = np.arange(10, dtype=np.int64)
        assert content_token(a) != content_token(a.astype(np.uint64))
        assert content_token(a) != content_token(a.reshape(2, 5))

    def test_adopted_copy_inherits_token(self):
        src = np.arange(64, dtype=np.uint64)
        dst = src.copy()
        adopt_token(dst, src)
        assert content_token(dst) == content_token(src)

    def test_adoption_survives_dead_source(self):
        src = np.arange(64, dtype=np.uint64)
        dst = src.copy()
        expected = content_token(src)
        adopt_token(dst, src)
        del src
        assert content_token(dst) == expected


# --------------------------------------------------------------------- #
# Tournament instantiation
# --------------------------------------------------------------------- #


def _eager_top_ids(elements, indptr, a, b, prime, s):
    """Brute-force per-segment ascending top-s hash keys, as member ids."""
    t = a.shape[0]
    n_seg = indptr.size - 1
    out = np.empty((t, n_seg, s), dtype=np.uint64)
    for i in range(t):
        for seg in range(n_seg):
            ids = elements[indptr[seg]:indptr[seg + 1]].astype(np.uint64)
            keys = (a[i] * ids + b[i]) % prime
            out[i, seg] = ids[np.argsort(keys)][:s]
    return out


class TestTournament:
    PRIME = 2147483647

    def _geometry(self, rng, n_seg=17, n_values=101, s=2):
        lengths = rng.integers(s, 9, n_seg)
        indptr = np.zeros(n_seg + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        elements = np.concatenate([
            rng.choice(n_values, size=L, replace=False) for L in lengths
        ]).astype(np.int64)
        return elements, indptr

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_both_executors_match_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        s, n_values = 2, 101
        elements, indptr = self._geometry(rng, n_values=n_values, s=s)
        plan = build_tournament_plan(elements, indptr, s, n_values)
        assert plan is not None
        t = 5
        a = rng.integers(1, self.PRIME, t).astype(np.uint64)
        b = rng.integers(0, self.PRIME, t).astype(np.uint64)
        expected = _eager_top_ids(elements, indptr, a, b, self.PRIME, s)
        pool = ScratchPool()
        n_seg = indptr.size - 1

        ids = np.empty((t, n_seg, s), dtype=np.uint64)
        run_tournament_ids(plan, pool, a, b, self.PRIME, s, out_ids=ids)
        assert np.array_equal(ids, expected[:, plan.perm, :])

        keys = np.empty((t, n_seg, s), dtype=np.uint32)
        run_tournament(plan, pool, a, b, self.PRIME, s, out32=keys)
        expected_keys = (a.reshape(-1, 1, 1) * expected[:, plan.perm, :]
                         + b.reshape(-1, 1, 1)) % self.PRIME
        assert np.array_equal(keys, expected_keys.astype(np.uint32))

    def test_plan_rejects_short_segments(self):
        indptr = np.array([0, 1, 4], dtype=np.int64)
        elements = np.array([3, 0, 1, 2], dtype=np.int64)
        assert build_tournament_plan(elements, indptr, 2, 10) is None

    def test_plan_rejects_duplicate_ids(self):
        indptr = np.array([0, 3], dtype=np.int64)
        elements = np.array([4, 4, 5], dtype=np.int64)
        assert build_tournament_plan(elements, indptr, 2, 10) is None

    def test_plan_rejects_empty(self):
        assert build_tournament_plan(
            np.empty(0, np.int64), np.zeros(1, np.int64), 2, 10) is None

    def test_rank_mode_uses_u16_when_n_values_fits(self):
        # Indirect check: n_values below the u16 bound must still agree
        # with brute force (the dtype switch is internal).
        rng = np.random.default_rng(7)
        elements, indptr = self._geometry(rng, n_values=70000, s=2)
        plan = build_tournament_plan(elements, indptr, 2, 70000)
        t = 3
        a = rng.integers(1, self.PRIME, t).astype(np.uint64)
        b = rng.integers(0, self.PRIME, t).astype(np.uint64)
        ids = np.empty((t, indptr.size - 1, 2), dtype=np.uint64)
        run_tournament_ids(plan, ScratchPool(), a, b, self.PRIME, 2,
                           out_ids=ids)
        expected = _eager_top_ids(elements, indptr, a, b, self.PRIME, 2)
        assert np.array_equal(ids, expected[:, plan.perm, :])


# --------------------------------------------------------------------- #
# Pipeline bit-identity
# --------------------------------------------------------------------- #


class TestPipelineBitIdentity:
    def test_modes_identical_labels(self, planted):
        ref = _labels(planted.graph, launch_graph="off")
        for mode in ("on", "auto"):
            GRAPH_CACHE.clear()
            device_exec.clear_pass_plan_cache()
            # Twice: the second run replays from the warm process cache.
            cold = _labels(planted.graph, launch_graph=mode)
            warm = _labels(planted.graph, launch_graph=mode)
            assert np.array_equal(cold, ref)
            assert np.array_equal(warm, ref)

    @pytest.mark.parametrize("exec_mode", ["sync", "prefetch", "multistream"])
    def test_exec_modes_identical(self, planted, exec_mode):
        ref = _labels(planted.graph, launch_graph="off", exec_mode=exec_mode)
        got = _labels(planted.graph, launch_graph="on", exec_mode=exec_mode)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("devices", [2, 4])
    def test_device_counts_identical(self, planted, devices):
        ref = _labels(planted.graph, launch_graph="off", devices=devices)
        got = _labels(planted.graph, launch_graph="on", devices=devices)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("backend", ["host", "device"])
    def test_aggregate_backends_identical(self, planted, backend):
        ref = _labels(planted.graph, launch_graph="off",
                      aggregate_backend=backend)
        got = _labels(planted.graph, launch_graph="on",
                      aggregate_backend=backend)
        assert np.array_equal(got, ref)

    def test_pass_result_identical_warm_replay(self, planted):
        graph = planted.graph
        config = BASE.pass_config(1)
        ref = device_shingle_pass(graph.indptr, graph.indices, config,
                                  SimulatedDevice(), kernel="fused",
                                  trial_chunk=2)
        plan = BASE.with_overrides(launch_graph="on").execution_plan()
        device = SimulatedDevice()
        for _ in range(2):  # capture run, then replay run
            got = device_shingle_pass(graph.indptr, graph.indices, config,
                                      device, kernel="fused", trial_chunk=2,
                                      plan=plan)
            assert got == ref
        assert device.launch_graph_stats["hits"] > 0


# --------------------------------------------------------------------- #
# Accounting
# --------------------------------------------------------------------- #


class TestAccounting:
    def _run(self, graph, mode, device=None):
        params = BASE.with_overrides(launch_graph=mode,
                                     aggregate_backend="device")
        device = device or SimulatedDevice()
        GpClust(params).run(graph, device=device)
        return device

    def test_counters_and_latency_rule(self, planted):
        """Replay keeps launch/element counters; modeled seconds differ by
        exactly one launch latency per non-leading node per replay."""
        off = self._run(planted.graph, "off")
        dev = SimulatedDevice()
        self._run(planted.graph, "on", device=dev)
        on = dev.kernel_stats
        stats_off = off.kernel_stats
        assert set(on) == set(stats_off)
        for name in stats_off:
            assert on[name]["launches"] == stats_off[name]["launches"]
            assert on[name]["elements"] == stats_off[name]["elements"]
        modeled_off = sum(v["modeled_s"] for v in stats_off.values())
        modeled_on = sum(v["modeled_s"] for v in on.values())
        hits = dev.launch_graph_stats["hits"]
        assert hits > 0
        # Every replayed reduce graph has 4 nodes -> 3 folded latencies.
        expected_saving = hits * 3 * dev.spec.kernels.launch_latency_s
        assert modeled_off - modeled_on == pytest.approx(expected_saving,
                                                         abs=1e-12)

    def test_replay_span_and_gauges(self, planted):
        params = BASE.with_overrides(launch_graph="on",
                                     aggregate_backend="device")
        ctx = observe()
        with use_obs(ctx):
            GpClust(params).run(planted.graph)
        names = {r.name for r in ctx.tracer.records}
        assert "device.graph_capture" in names
        assert "device.graph_replay" in names
        gauges = ctx.metrics.snapshot()["gauges"]
        hit_keys = [k for k in gauges if k.endswith(".graph.hits")]
        assert hit_keys and sum(gauges[k] for k in hit_keys) > 0
        assert any(k.endswith(".graph_hit_rate") for k in gauges)

    def test_group_fanout(self, planted):
        group = DeviceGroup(2)
        params = BASE.with_overrides(launch_graph="on", devices=2,
                                     exec_mode="multidevice")
        GpClust(params).run(planted.graph, device=group)
        assert all(m.launch_graph_stats["mode"] == "on"
                   for m in group.members)

    def test_pass_plan_cache_hits_on_second_run(self, planted):
        params = BASE.with_overrides(launch_graph="on")
        GpClust(params).run(planted.graph)
        before = device_exec.pass_plan_cache_stats()["hits"]
        GpClust(params).run(planted.graph)
        assert device_exec.pass_plan_cache_stats()["hits"] > before

    def test_off_mode_never_touches_cache(self, planted):
        self._run(planted.graph, "off")
        assert GRAPH_CACHE.stats()["entries"] == 0
        assert device_exec.pass_plan_cache_stats()["entries"] == 0


class TestParamsValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="launch_graph"):
            ShinglingParams(launch_graph="sometimes")

    def test_device_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="launch-graph"):
            SimulatedDevice().configure_launch_graph("sometimes")
