"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.graph.components import connected_components
from repro.synthdata.planted import PlantedFamilyConfig, planted_family_graph
from repro.synthdata.random_graphs import gnp_graph, rmat_graph


class TestPlantedFamilyGraph:
    @pytest.fixture(scope="class")
    def pg(self):
        return planted_family_graph(
            PlantedFamilyConfig(n_families=10, family_size_median=100.0), seed=3)

    def test_labels_cover_all_vertices(self, pg):
        assert pg.family_labels.size == pg.n_vertices
        assert pg.core_labels.size == pg.n_vertices
        assert np.unique(pg.family_labels).size == 10

    def test_family_sizes_respect_bounds(self, pg):
        sizes = pg.family_sizes()
        cfg = pg.config
        assert sizes.min() >= cfg.min_family_size
        assert sizes.max() <= cfg.max_family_size

    def test_cores_within_families(self, pg):
        for core_id in range(pg.n_cores):
            members = np.flatnonzero(pg.core_labels == core_id)
            fams = np.unique(pg.family_labels[members])
            assert fams.size == 1
            assert fams[0] == pg.core_family[core_id]

    def test_cores_are_dense(self, pg):
        g = pg.graph
        for core_id in range(min(pg.n_cores, 5)):
            members = np.flatnonzero(pg.core_labels == core_id)
            sub, _ = g.subgraph(members)
            density = sub.n_edges / (members.size * (members.size - 1) / 2)
            assert density > 0.7 * pg.config.p_core

    def test_gos_view_is_superset(self, pg):
        real = {tuple(e) for e in pg.graph.edges().tolist()}
        gos = {tuple(e) for e in pg.gos_graph.edges().tolist()}
        assert real <= gos
        assert len(gos) > len(real)

    def test_gos_extra_edges_within_families(self, pg):
        real = {tuple(e) for e in pg.graph.edges().tolist()}
        gos = {tuple(e) for e in pg.gos_graph.edges().tolist()}
        fam = pg.family_labels
        for u, v in gos - real:
            assert fam[u] == fam[v], "GOS-view extras must stay within family"

    def test_deterministic(self):
        cfg = PlantedFamilyConfig(n_families=5)
        a = planted_family_graph(cfg, seed=1)
        b = planted_family_graph(cfg, seed=1)
        assert a.graph == b.graph
        assert np.array_equal(a.family_labels, b.family_labels)

    def test_seed_sensitivity(self):
        cfg = PlantedFamilyConfig(n_families=5)
        a = planted_family_graph(cfg, seed=1)
        b = planted_family_graph(cfg, seed=2)
        assert a.graph != b.graph

    def test_noise_matching_keeps_families_apart(self, pg):
        """No single vertex should merge two families' cores into one
        component through noise alone: components of the real graph should
        be dominated by one family each (mis-attachment is rare)."""
        labels = connected_components(pg.graph)
        n_mixed = 0
        for comp in np.unique(labels):
            members = np.flatnonzero(labels == comp)
            if members.size < 5:
                continue
            fams, counts = np.unique(pg.family_labels[members],
                                     return_counts=True)
            if counts.max() < members.size * 0.8:
                n_mixed += 1
        assert n_mixed <= 2

    @pytest.mark.parametrize("kw", [
        {"n_families": 0}, {"core_fraction": 0.0}, {"p_core": 1.5},
        {"mis_attach_prob": -0.1}, {"min_family_size": 1},
        {"core_size": 2}, {"attach_edges": (3, 2)},
        {"attached_fraction": 0.8, "light_fraction": 0.3},
    ])
    def test_invalid_config_rejected(self, kw):
        with pytest.raises(ValueError):
            PlantedFamilyConfig(**kw)


class TestGnpGraph:
    def test_edge_count_close_to_expectation(self):
        g = gnp_graph(200, 0.1, seed=0)
        expected = 0.1 * 200 * 199 / 2
        assert 0.8 * expected < g.n_edges < 1.2 * expected

    def test_p_zero_and_one(self):
        assert gnp_graph(10, 0.0).n_edges == 0
        assert gnp_graph(10, 1.0).n_edges == 45

    def test_deterministic(self):
        assert gnp_graph(50, 0.2, seed=4) == gnp_graph(50, 0.2, seed=4)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gnp_graph(-1, 0.5)
        with pytest.raises(ValueError):
            gnp_graph(10, 1.5)

    def test_no_self_loops_or_duplicates(self):
        g = gnp_graph(60, 0.3, seed=1)
        edges = g.edges()
        assert np.all(edges[:, 0] < edges[:, 1])
        keys = edges[:, 0] * 60 + edges[:, 1]
        assert np.unique(keys).size == keys.size


class TestRmatGraph:
    def test_size(self):
        g = rmat_graph(scale=10, edge_factor=8, seed=0)
        assert g.n_vertices == 1024
        # dedup/self-loop removal shrinks the count somewhat
        assert 0.4 * 8 * 1024 < g.n_edges <= 8 * 1024

    def test_skewed_degrees(self):
        g = rmat_graph(scale=12, edge_factor=8, seed=0)
        degrees = g.degrees()
        assert degrees.max() > 8 * degrees[degrees > 0].mean()

    def test_deterministic(self):
        assert rmat_graph(8, 4, seed=3) == rmat_graph(8, 4, seed=3)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            rmat_graph(0)
        with pytest.raises(ValueError):
            rmat_graph(5, edge_factor=0)
        with pytest.raises(ValueError):
            rmat_graph(5, a=0.9, b=0.1, c=0.1)
