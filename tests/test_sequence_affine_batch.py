"""Tests for the batched affine-gap (Gotoh) aligner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import AMINO_ACIDS, encode
from repro.sequence.homology import HomologyConfig, build_homology_graph
from repro.sequence.smith_waterman import (
    batch_smith_waterman_affine,
    sw_score_affine,
)

seq_strategy = st.text(alphabet=AMINO_ACIDS, min_size=0, max_size=35)


class TestBatchAffine:
    @given(st.lists(st.tuples(seq_strategy, seq_strategy), min_size=1,
                    max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_gotoh(self, pairs):
        seqs_a = [encode(a) for a, _ in pairs]
        seqs_b = [encode(b) for _, b in pairs]
        batch = batch_smith_waterman_affine(seqs_a, seqs_b, chunk_size=4)
        scalar = [sw_score_affine(a, b) for a, b in zip(seqs_a, seqs_b)]
        assert list(batch) == scalar

    @given(st.lists(st.tuples(seq_strategy, seq_strategy), min_size=1,
                    max_size=6),
           st.integers(0, 14), st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_matches_scalar_for_any_penalties(self, pairs, gap_open, gap_extend):
        seqs_a = [encode(a) for a, _ in pairs]
        seqs_b = [encode(b) for _, b in pairs]
        batch = batch_smith_waterman_affine(
            seqs_a, seqs_b, gap_open=gap_open, gap_extend=gap_extend)
        scalar = [sw_score_affine(a, b, gap_open=gap_open,
                                  gap_extend=gap_extend)
                  for a, b in zip(seqs_a, seqs_b)]
        assert list(batch) == scalar

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_smith_waterman_affine([encode("A")], [])
        with pytest.raises(ValueError):
            batch_smith_waterman_affine([encode("A")], [encode("A")],
                                        gap_open=-1)


class TestAffineHomology:
    def test_affine_mode_builds_graph(self):
        from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families

        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=4), seed=2)
        linear = build_homology_graph(ps.sequences,
                                      HomologyConfig(gap_model="linear"))
        affine = build_homology_graph(ps.sequences,
                                      HomologyConfig(gap_model="affine"))
        # Both recover the core homology; affine is more permissive of
        # single long indels so typically keeps at least as many edges.
        shared = ({tuple(e) for e in linear.graph.edges().tolist()}
                  & {tuple(e) for e in affine.graph.edges().tolist()})
        assert len(shared) > 0.7 * linear.graph.n_edges

    def test_invalid_gap_model(self):
        with pytest.raises(ValueError):
            HomologyConfig(gap_model="convex")
