"""Parallel homology construction: determinism, arena, lazy self-scores.

The contract under test is pGraph's: distributing alignment work across
processes is purely an execution-strategy change, so
``build_homology_graph`` must produce bit-identical graphs and scores for
every ``n_jobs`` value, across both gap models and both pair filters.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.arena import SequenceArena
from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families
from repro.sequence.homology import (
    HomologyConfig,
    HomologyTimings,
    _shard_bounds,
    build_homology_graph,
)
from repro.sequence.smith_waterman import batch_self_scores, self_score


def random_sequences(seed: int, n_max: int = 30, len_max: int = 60):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, n_max))
    return [rng.integers(0, 21, size=int(rng.integers(0, len_max))).astype(np.uint8)
            for _ in range(n)]


def assert_results_identical(a, b):
    assert np.array_equal(a.graph.indptr, b.graph.indptr)
    assert np.array_equal(a.graph.indices, b.graph.indices)
    assert np.array_equal(a.normalized_scores, b.normalized_scores)
    assert np.array_equal(a.pairs, b.pairs)
    assert a.n_candidate_pairs == b.n_candidate_pairs
    assert a.n_edges == b.n_edges


class TestParallelDeterminism:
    @given(seed=st.integers(0, 10_000),
           gap_model=st.sampled_from(["linear", "affine"]),
           pair_filter=st.sampled_from(["kmer", "suffix"]),
           n_jobs=st.sampled_from([0, 2, 3]))
    @settings(max_examples=12, deadline=None)
    def test_parallel_bit_identical_to_serial(self, seed, gap_model,
                                              pair_filter, n_jobs):
        sequences = random_sequences(seed)
        # Tiny chunks force several shards even on small inputs, so the
        # pool path genuinely splits the work.
        base = HomologyConfig(pair_filter=pair_filter, gap_model=gap_model,
                              min_match_len=4, chunk_size=8)
        serial = build_homology_graph(sequences, base)
        parallel = build_homology_graph(
            sequences, dataclasses.replace(base, n_jobs=n_jobs,
                                           align_backend="pool"))
        assert_results_identical(serial, parallel)

    def test_family_workload_parallel_identical(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=6, family_size_median=10.0),
            seed=5)
        base = HomologyConfig(chunk_size=64)
        serial = build_homology_graph(ps.sequences, base)
        for jobs in (2, 4):
            parallel = build_homology_graph(
                ps.sequences, dataclasses.replace(base, n_jobs=jobs,
                                                  align_backend="pool"))
            assert_results_identical(serial, parallel)

    def test_streaming_mode_same_graph_no_scores(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=5, family_size_median=9.0),
            seed=8)
        base = HomologyConfig(chunk_size=64)
        full = build_homology_graph(ps.sequences, base)
        for jobs in (1, 2):
            backend = "pool" if jobs > 1 else "host"
            streamed = build_homology_graph(
                ps.sequences,
                dataclasses.replace(base, n_jobs=jobs,
                                    align_backend=backend),
                keep_scores=False)
            assert np.array_equal(full.graph.indptr, streamed.graph.indptr)
            assert np.array_equal(full.graph.indices, streamed.graph.indices)
            assert streamed.n_candidate_pairs == full.n_candidate_pairs
            assert streamed.normalized_scores.size == 0
            assert streamed.pairs.shape == (0, 2)

    def test_n_jobs_validation(self):
        with pytest.raises(ValueError):
            HomologyConfig(n_jobs=-1)

    def test_shard_bounds_cover_exactly(self):
        for n_pairs in (1, 7, 100, 1024, 1025):
            for jobs in (1, 2, 4):
                bounds = _shard_bounds(n_pairs, 8, jobs)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_pairs
                for (lo, hi), (lo2, _) in zip(bounds, bounds[1:]):
                    assert hi == lo2
                assert all(lo < hi for lo, hi in bounds)

    def test_shard_bounds_single_job_single_shard(self):
        # One worker gets one shard: no merge bookkeeping, no per-shard
        # dispatch overhead on the serial path.
        assert _shard_bounds(10_000, 8, 1) == [(0, 10_000)]
        assert _shard_bounds(10_000, 8, 0) == [(0, 10_000)]

    def test_shard_bounds_empty(self):
        assert _shard_bounds(0, 8, 1) == []
        assert _shard_bounds(0, 8, 4) == []


class TestSequenceArena:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        seqs = [rng.integers(0, 21, size=int(rng.integers(0, 40))).astype(np.uint8)
                for _ in range(17)]
        with SequenceArena.pack(seqs) as arena:
            attached = SequenceArena.attach(arena.name, len(seqs))
            try:
                assert attached.n_sequences == len(seqs)
                recovered = attached.sequences()
                assert all(np.array_equal(a, b)
                           for a, b in zip(seqs, recovered))
                # views, not copies
                assert all(r.base is not None for r in recovered if r.size)
            finally:
                attached.close()

    def test_empty_set(self):
        with SequenceArena.pack([]) as arena:
            assert arena.n_sequences == 0
            assert arena.sequences() == []

    def test_all_empty_sequences(self):
        seqs = [np.empty(0, dtype=np.uint8)] * 3
        with SequenceArena.pack(seqs) as arena:
            assert all(s.size == 0 for s in arena.sequences())


class TestLazySelfScores:
    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        seqs = [rng.integers(0, 21, size=int(rng.integers(0, 50))).astype(np.uint8)
                for _ in range(25)]
        batch = batch_self_scores(seqs)
        scalar = np.array([self_score(s) for s in seqs], dtype=np.int64)
        assert np.array_equal(batch, scalar)

    def test_scores_unchanged_by_lazy_restriction(self):
        """Self-scores only enter through candidate-pair denominators, so
        restricting them to referenced sequences must leave every
        normalized score exactly as the eager full-set computation."""
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=6, family_size_median=10.0),
            seed=12)
        result = build_homology_graph(ps.sequences, HomologyConfig())
        selfs = np.array([self_score(s) for s in ps.sequences],
                         dtype=np.int64)
        # Recompute normalization the eager way and compare bit for bit.
        pairs = result.pairs
        denom = np.minimum(selfs[pairs[:, 0]], selfs[pairs[:, 1]])
        from repro.sequence.smith_waterman import batch_smith_waterman

        scores = batch_smith_waterman(
            [ps.sequences[i] for i in pairs[:, 0]],
            [ps.sequences[j] for j in pairs[:, 1]])
        eager = scores / np.maximum(denom, 1)
        assert np.array_equal(result.normalized_scores, eager)

    def test_timings_populated(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=4, family_size_median=8.0),
            seed=2)
        result = build_homology_graph(ps.sequences, HomologyConfig())
        t = result.timings
        assert isinstance(t, HomologyTimings)
        assert t.total_s > 0
        d = t.as_dict()
        assert set(d) == {"seed_filter_s", "self_scores_s", "alignment_s",
                          "graph_build_s", "total_s"}
        assert d["total_s"] == pytest.approx(
            d["seed_filter_s"] + d["self_scores_s"] + d["alignment_s"]
            + d["graph_build_s"])
