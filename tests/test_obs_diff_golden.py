"""Golden-file test: ``repro obs diff`` on two committed mini-traces.

The renderers in :mod:`repro.obs.analysis` are deterministic functions of
their inputs, so the rendered diff of two committed trace files must be
byte-identical to the committed golden output.  A legitimate renderer
change regenerates the golden with::

    PYTHONPATH=src python -c "from repro.cli import main; main(
        ['obs', 'diff', 'tests/data/mini_trace_a.json',
         'tests/data/mini_trace_b.json'])" > tests/data/mini_diff_golden.txt
"""

import json
from pathlib import Path

from repro.cli import main

DATA = Path(__file__).parent / "data"
TRACE_A = DATA / "mini_trace_a.json"
TRACE_B = DATA / "mini_trace_b.json"
GOLDEN = DATA / "mini_diff_golden.txt"


def test_obs_diff_matches_golden(capsys):
    assert main(["obs", "diff", str(TRACE_A), str(TRACE_B)]) == 0
    out = capsys.readouterr().out
    assert out == GOLDEN.read_text()


def test_obs_diff_json_mode(capsys):
    assert main(["obs", "diff", str(TRACE_A), str(TRACE_B), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["wall"]["a_s"] == 1.0
    assert payload["wall"]["b_s"] == 1.2
    top = payload["spans"][0]
    assert top["name"] == "device.shingle_chunk_reduce"
    assert top["delta_s"] == 0.3
    rows = {r["name"]: r for r in payload["spans"]}
    assert rows["device.p2p_copy"]["a_count"] == 0  # new span in B
