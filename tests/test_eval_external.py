"""Tests for the external clustering indices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.external import (
    adjusted_rand_index,
    normalized_mutual_information,
    pair_f1,
    purity,
)
from repro.eval.partition import Partition

labels_strategy = st.lists(st.integers(0, 5), min_size=2, max_size=30)


def P(labels):
    return Partition(np.asarray(labels, dtype=np.int64))


class TestARI:
    def test_identical_is_one(self):
        p = P([0, 0, 1, 1, 2])
        assert adjusted_rand_index(p, p) == pytest.approx(1.0)

    def test_label_permutation_invariant(self):
        a = P([0, 0, 1, 1, 2, 2])
        b = P([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_orthogonal_partitions_low(self):
        a = P([0, 0, 1, 1])
        b = P([0, 1, 0, 1])
        assert adjusted_rand_index(a, b) < 0.01

    def test_known_value(self):
        # Classic example: matches sklearn's adjusted_rand_score.
        a = P([0, 0, 1, 1])
        b = P([0, 0, 1, 2])
        assert adjusted_rand_index(a, b) == pytest.approx(0.5714285714, abs=1e-9)

    @given(labels_strategy, labels_strategy)
    @settings(max_examples=100)
    def test_range_and_symmetry(self, a, b):
        n = min(len(a), len(b))
        pa, pb = P(a[:n]), P(b[:n])
        ari = adjusted_rand_index(pa, pb)
        assert -1.0 <= ari <= 1.0
        assert ari == pytest.approx(adjusted_rand_index(pb, pa))


class TestNMI:
    def test_identical_is_one(self):
        p = P([0, 0, 1, 2, 2])
        assert normalized_mutual_information(p, p) == pytest.approx(1.0)

    def test_constant_vs_varied(self):
        a = P([0, 0, 0, 0])
        b = P([0, 0, 1, 1])
        # One side has zero entropy but not the other: NMI defined via the
        # arithmetic mean, MI is 0.
        assert normalized_mutual_information(a, b) == pytest.approx(0.0)

    def test_both_trivial(self):
        a = P([0, 0, 0])
        assert normalized_mutual_information(a, a) == 1.0

    @given(labels_strategy, labels_strategy)
    @settings(max_examples=100)
    def test_range_and_symmetry(self, a, b):
        n = min(len(a), len(b))
        pa, pb = P(a[:n]), P(b[:n])
        nmi = normalized_mutual_information(pa, pb)
        assert 0.0 <= nmi <= 1.0
        assert nmi == pytest.approx(normalized_mutual_information(pb, pa),
                                    abs=1e-12)


class TestPurity:
    def test_pure_clusters(self):
        test = P([0, 0, 1, 1])
        bench = P([0, 0, 1, 1])
        assert purity(test, bench) == 1.0

    def test_mixed_cluster(self):
        test = P([0, 0, 0, 0])
        bench = P([0, 0, 0, 1])
        assert purity(test, bench) == pytest.approx(0.75)

    def test_singletons_always_pure(self):
        test = P([0, 1, 2, 3])
        bench = P([0, 0, 1, 1])
        assert purity(test, bench) == 1.0

    @given(labels_strategy, labels_strategy)
    @settings(max_examples=60)
    def test_range(self, a, b):
        n = min(len(a), len(b))
        assert 0.0 < purity(P(a[:n]), P(b[:n])) <= 1.0


class TestPairF1:
    def test_identical_is_one(self):
        p = P([0, 0, 1, 1])
        assert pair_f1(p, p) == 1.0

    def test_harmonic_mean_of_ppv_se(self):
        from repro.eval.confusion import quality_scores

        test = P([0, 0, 1, 1, 2])
        bench = P([0, 0, 0, 1, 1])
        qs = quality_scores(test, bench, min_size=None)
        prec, rec = qs.ppv, qs.sensitivity
        expected = 2 * prec * rec / (prec + rec)
        assert pair_f1(test, bench) == pytest.approx(expected)

    def test_all_singletons_vs_grouped(self):
        test = P([0, 1, 2, 3])
        bench = P([0, 0, 0, 0])
        assert pair_f1(test, bench) == 0.0

    def test_universe_mismatch(self):
        with pytest.raises(ValueError):
            pair_f1(P([0, 0]), P([0, 0, 0]))
