"""Tests for the MapReduce engine and the MR shingling pipeline."""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, SerialPClust
from repro.core.serial import serial_shingle_pass
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.shingle_mr import MapReducePClust, mr_shingle_pass
from tests.conftest import random_blocky_graph


@pytest.fixture
def engine(tmp_path):
    return MapReduceEngine(tmp_path / "mr", n_mappers=3, n_reducers=2)


class TestEngine:
    def test_word_count(self, engine):
        documents = ["a b a", "b c", "a"]

        def mapper(doc):
            for word in doc.split():
                yield word, 1

        def reducer(word, counts):
            yield word, sum(counts)

        outputs, stats = engine.run(documents, mapper, reducer)
        assert dict(outputs) == {"a": 3, "b": 2, "c": 1}
        assert stats.n_records == 6
        assert stats.bytes_spilled > 0
        assert stats.n_spill_files >= 1

    def test_empty_input(self, engine):
        outputs, stats = engine.run([], lambda x: [], lambda k, v: [])
        assert outputs == []
        assert stats.n_records == 0

    def test_reducer_sees_all_values_for_key(self, engine):
        inputs = list(range(50))

        def mapper(i):
            yield i % 5, i

        def reducer(key, values):
            yield key, sorted(values)

        outputs, _ = engine.run(inputs, mapper, reducer)
        as_dict = dict(outputs)
        assert as_dict[0] == list(range(0, 50, 5))
        assert len(as_dict) == 5

    def test_keys_sorted_within_partition(self, engine):
        """Reduce outputs appear in key order within each partition."""
        def mapper(i):
            yield i, i

        outputs, _ = engine.run(list(range(40)), mapper,
                                lambda k, v: [(k, v[0])])
        # All keys present exactly once.
        assert sorted(k for k, _ in outputs) == list(range(40))

    def test_spill_files_cleaned(self, tmp_path):
        engine = MapReduceEngine(tmp_path / "mr2", n_mappers=2, n_reducers=2)
        engine.run([1, 2, 3], lambda x: [(x, x)], lambda k, v: [k])
        leftovers = list((tmp_path / "mr2").rglob("*.spill"))
        assert leftovers == []

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            MapReduceEngine(tmp_path, n_mappers=0)


class TestMrShinglePass:
    def test_matches_serial_pass(self, engine, blocky_graph):
        cfg = ShinglingParams(c1=10, c2=5, seed=3).pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices, cfg)
        got, stats = mr_shingle_pass(engine, blocky_graph.indptr,
                                     blocky_graph.indices, cfg)
        assert got == ref
        assert stats.n_records == got.gen_graph.nnz

    def test_mapper_reducer_counts(self, engine, two_cliques_graph):
        cfg = ShinglingParams(c1=6, c2=3, seed=1).pass_config(1)
        result, stats = mr_shingle_pass(engine, two_cliques_graph.indptr,
                                        two_cliques_graph.indices, cfg)
        # every vertex qualifies (deg 4 >= 2): 10 * 6 records
        assert stats.n_records == 60
        assert result.n_input_segments == two_cliques_graph.n_vertices


class TestMapReducePClust:
    def test_identical_to_shared_memory(self, tmp_path):
        g = random_blocky_graph(seed=51)
        params = ShinglingParams(c1=12, c2=6, seed=2)
        mr = MapReducePClust(tmp_path / "mr", params).run(g)
        serial = SerialPClust(params).run(g)
        device = GpClust(params).run(g)
        assert np.array_equal(mr.labels, serial.labels)
        assert np.array_equal(mr.labels, device.labels)
        assert mr.backend == "mapreduce"

    def test_stats_recorded(self, tmp_path):
        g = random_blocky_graph(seed=52)
        result = MapReducePClust(tmp_path / "mr",
                                 ShinglingParams(c1=8, c2=4, seed=1)).run(g)
        stats = result.mr_stats
        assert stats.bytes_spilled > 0
        assert stats.map_seconds > 0
        assert result.timings.get("mr_shuffle") >= 0

    def test_disk_io_overhead_is_real(self, tmp_path):
        """The Rytsareva comparison the paper cites: the MR pipeline is
        substantially slower than shared memory on the same input."""
        import time

        g = random_blocky_graph(seed=53)
        params = ShinglingParams(c1=15, c2=8, seed=2)
        t0 = time.perf_counter()
        MapReducePClust(tmp_path / "mr", params).run(g)
        mr_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        GpClust(params).run(g)
        device_wall = time.perf_counter() - t0
        assert mr_wall > 2 * device_wall

    def test_rejects_overlapping_mode(self, tmp_path):
        g = random_blocky_graph(seed=54)
        params = ShinglingParams(c1=4, c2=2, report_mode="overlapping")
        with pytest.raises(ValueError):
            MapReducePClust(tmp_path / "mr", params).run(g)
