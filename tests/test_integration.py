"""Integration tests: the paper's qualitative claims must hold end-to-end.

These assert the *shape* of the paper's results on the calibrated synthetic
benchmark — the same assertions the quality benches print as tables.
"""

import numpy as np
import pytest

from repro.baselines.gos_kneighbor import gos_kneighbor_clustering
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.eval.confusion import quality_scores
from repro.eval.density import density_summary
from repro.eval.distribution import size_distribution
from repro.eval.partition import Partition, partition_stats
from repro.pipeline.end_to_end import run_end_to_end
from repro.pipeline.workloads import (
    WORKLOADS,
    make_quality_workload,
    make_runtime_workload,
    workload_params,
)
from repro.sequence.generator import SequenceFamilyConfig


@pytest.fixture(scope="module")
def quality_run():
    """One clustering comparison on the calibrated benchmark graph."""
    pg = make_quality_workload(scale="small", seed=11)
    res = GpClust(ShinglingParams(c1=100, c2=50, seed=5)).run(pg.graph)
    gp = Partition(res.labels)
    gos = Partition(gos_kneighbor_clustering(pg.gos_graph, k=10))
    bench = Partition(pg.family_labels)
    return pg, gp, gos, bench


class TestTable3Shape:
    def test_ppv_ordering(self, quality_run):
        _, gp, gos, bench = quality_run
        qs_gp = quality_scores(gp, bench, min_size=20)
        qs_gos = quality_scores(gos, bench, min_size=20)
        # Paper: GOS 100.00%, gpClust 97.17%
        assert qs_gos.ppv > 0.999
        assert 0.93 <= qs_gp.ppv < qs_gos.ppv

    def test_sensitivity_ordering(self, quality_run):
        _, gp, gos, bench = quality_run
        qs_gp = quality_scores(gp, bench, min_size=20)
        qs_gos = quality_scores(gos, bench, min_size=20)
        # Paper: gpClust 17.85% > GOS 13.92%
        assert qs_gp.sensitivity > qs_gos.sensitivity
        assert qs_gp.sensitivity < 0.5  # both are "core sets": low recall

    def test_specificity_high_for_both(self, quality_run):
        _, gp, gos, bench = quality_run
        for part in (gp, gos):
            qs = quality_scores(part, bench, min_size=20)
            assert qs.specificity > 0.99
            assert qs.npv > 0.9


class TestTable4Shape:
    def test_gpclust_reports_more_groups_and_sequences(self, quality_run):
        _, gp, gos, _ = quality_run
        st_gp = partition_stats(gp, "gpClust")
        st_gos = partition_stats(gos, "GOS")
        # Paper: 6,646 vs 6,152 groups; 1.41M vs 1.24M sequences
        assert st_gp.n_groups > st_gos.n_groups
        assert st_gp.n_sequences > st_gos.n_sequences

    def test_benchmark_families_largest(self, quality_run):
        pg, gp, _, bench = quality_run
        st_bench = partition_stats(bench, "benchmark", min_size=1)
        st_gp = partition_stats(gp, "gpClust")
        assert st_bench.largest_group >= st_gp.largest_group


class TestDensityShape:
    def test_density_ordering(self, quality_run):
        pg, gp, gos, bench = quality_run
        d_gp, _ = density_summary(pg.graph, gp, min_size=20)
        d_gos, _ = density_summary(pg.graph, gos, min_size=20)
        d_bench, _ = density_summary(pg.graph, bench, min_size=1)
        # Paper: gpClust 0.75 > GOS 0.40 > benchmark 0.09
        assert d_gp > d_gos > d_bench


class TestFig5Shape:
    def test_distributions_roughly_similar(self, quality_run):
        """"both partitions show roughly the same distribution" (Fig. 5)."""
        _, gp, gos, _ = quality_run
        dist_gp = size_distribution(gp)
        dist_gos = size_distribution(gos)
        # Peaks in the same (low) bins for both.
        assert dist_gp.group_counts.argmax() <= 1
        assert dist_gos.group_counts.argmax() <= 1

    def test_sequence_counts_consistent_with_group_counts(self, quality_run):
        _, gp, _, _ = quality_run
        dist = size_distribution(gp)
        for (lo, hi), groups, seqs in zip(dist.bins, dist.group_counts,
                                          dist.sequence_counts):
            if groups:
                assert seqs >= lo * groups
                if hi is not None:
                    assert seqs <= hi * groups


class TestEndToEnd:
    def test_full_pipeline_recovers_families(self):
        report = run_end_to_end(
            sequence_config=SequenceFamilyConfig(n_families=8), seed=6)
        assert report.quality.ppv > 0.95
        assert report.quality.sensitivity > 0.2
        assert report.clustering.n_clusters(min_size=3) >= 5

    def test_fragmented_reads_still_cluster(self):
        report = run_end_to_end(
            sequence_config=SequenceFamilyConfig(
                n_families=6, fragment=True,
                ancestor_length=(200, 300)),
            seed=9)
        assert report.quality.ppv > 0.9
        assert report.homology.n_edges > 0


class TestWorkloads:
    def test_registry_complete(self):
        assert set(WORKLOADS) == {"20k", "2m", "quality", "large"}

    def test_runtime_workloads_scale_ordering(self):
        small_20k = make_runtime_workload("20k", scale="small")
        small_2m = make_runtime_workload("2m", scale="small")
        assert small_2m.graph.n_edges > 2 * small_20k.graph.n_edges

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            make_runtime_workload("4b")

    def test_params_tiers(self):
        assert workload_params("paper").c1 == 200
        assert workload_params("small").c1 == 100

    def test_scale_env_validation(self, monkeypatch):
        from repro.pipeline.workloads import get_scale
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ValueError):
            get_scale()
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale() == "small"
