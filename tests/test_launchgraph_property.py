"""Property tests: launch-graph replay is invisible except in dispatch cost.

Hypothesis drives random chunk-shape sequences — ragged trial tails,
segments below the shingle threshold, duplicate members (which defeat the
tournament plan and force the kernels executor), and mid-run shape changes
across consecutive passes on one device.  For every sequence:

* the pass result is bit-identical between ``launch_graph`` off and on, and
* the device's kernel counters reconcile exactly — identical launches and
  element totals, with modeled seconds differing by precisely one folded
  launch latency per non-leading graph node per replay (the rule documented
  in :mod:`repro.device.timingmodels`).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import device_exec
from repro.core.device_exec import device_shingle_pass
from repro.core.execplan import ExecutionPlan
from repro.core.params import ShinglingParams
from repro.device import launchgraph
from repro.device.device import SimulatedDevice
from repro.device.launchgraph import GRAPH_CACHE

# Nodes per captured fused-reduce graph; replay folds the launch latency of
# all but the first node into the graph dispatch.
REDUCE_GRAPH_NODES = 4


def _random_pass(rng, n_seg, max_len, n_values):
    # Valid CSR adjacency: neighbor ids are unique within a segment (the
    # per-segment hash table relies on that, like real adjacency lists).
    lengths = rng.integers(0, min(max_len, n_values) + 1, n_seg)
    indptr = np.zeros(n_seg + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    elements = np.concatenate([
        rng.choice(n_values, size=length, replace=False)
        for length in lengths
    ] or [np.empty(0)]).astype(np.int64)
    return indptr, elements


@st.composite
def pass_sequences(draw):
    seed = draw(st.integers(0, 2**32 - 1))
    n_runs = draw(st.integers(1, 3))
    c = draw(st.integers(3, 10))
    trial_chunk = draw(st.integers(2, 4))
    shapes = [
        (draw(st.integers(3, 14)),   # n_seg
         draw(st.integers(0, 7)),    # max segment length (0 => empty pass)
         draw(st.integers(4, 60)))   # n_values
        for _ in range(n_runs)
    ]
    return seed, c, trial_chunk, shapes


@settings(max_examples=25, deadline=None)
@given(pass_sequences())
def test_replay_bit_identical_and_reconciled(seq):
    seed, c, trial_chunk, shapes = seq
    rng = np.random.default_rng(seed)
    passes = [_random_pass(rng, *shape) for shape in shapes]
    params = ShinglingParams(s1=2, c1=c, s2=2, c2=6, seed=int(seed % 997),
                             trial_chunk=trial_chunk)
    config = params.pass_config(1)

    GRAPH_CACHE.clear()
    device_exec.clear_pass_plan_cache()
    try:
        dev_off = SimulatedDevice()
        results_off = [
            device_shingle_pass(indptr, elements, config, dev_off,
                                kernel="fused", trial_chunk=trial_chunk)
            for indptr, elements in passes
        ]

        dev_on = SimulatedDevice()
        plan = ExecutionPlan(launch_graph="on")
        results_on = [
            device_shingle_pass(indptr, elements, config, dev_on,
                                kernel="fused", trial_chunk=trial_chunk,
                                plan=plan)
            for indptr, elements in passes
        ]

        for off, on in zip(results_off, results_on):
            assert on == off

        stats_off, stats_on = dev_off.kernel_stats, dev_on.kernel_stats
        assert set(stats_on) == set(stats_off)
        for name in stats_off:
            assert stats_on[name]["launches"] == stats_off[name]["launches"]
            assert stats_on[name]["elements"] == stats_off[name]["elements"]

        modeled_off = sum(v["modeled_s"] for v in stats_off.values())
        modeled_on = sum(v["modeled_s"] for v in stats_on.values())
        hits = dev_on.launch_graph_stats["hits"]
        saved = hits * (REDUCE_GRAPH_NODES - 1) \
            * dev_on.spec.kernels.launch_latency_s
        assert abs((modeled_off - modeled_on) - saved) < 1e-12
    finally:
        GRAPH_CACHE.clear()
        device_exec.clear_pass_plan_cache()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(2, 4))
def test_repeated_shape_replays_stay_identical(seed, trial_chunk):
    """Same shape re-run many times: one capture, then replays, all equal."""
    rng = np.random.default_rng(seed)
    indptr, elements = _random_pass(rng, 10, 6, 40)
    params = ShinglingParams(s1=2, c1=8, s2=2, c2=6, seed=int(seed % 997),
                             trial_chunk=trial_chunk)
    config = params.pass_config(1)

    GRAPH_CACHE.clear()
    device_exec.clear_pass_plan_cache()
    try:
        ref = device_shingle_pass(indptr, elements, config,
                                  SimulatedDevice(), kernel="fused",
                                  trial_chunk=trial_chunk)
        device = SimulatedDevice()
        plan = ExecutionPlan(launch_graph="auto")
        for _ in range(4):
            got = device_shingle_pass(indptr, elements, config, device,
                                      kernel="fused",
                                      trial_chunk=trial_chunk, plan=plan)
            assert got == ref
        stats = device.launch_graph_stats
        # auto: first sight eager, second captures, rest replay.
        assert stats["captures"] <= launchgraph._MAX_GRAPHS
        if stats["captures"] > 0:
            assert stats["hits"] > 0
    finally:
        GRAPH_CACHE.clear()
        device_exec.clear_pass_plan_cache()
