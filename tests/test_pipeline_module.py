"""Tests for repro.pipeline (workloads + end-to-end driver)."""

import numpy as np
import pytest

from repro.core.params import ShinglingParams
from repro.pipeline.end_to_end import run_end_to_end
from repro.pipeline.workloads import (
    WORKLOADS,
    make_large_workload,
    make_quality_workload,
    make_runtime_workload,
)
from repro.sequence.generator import SequenceFamilyConfig, generate_protein_families
from repro.sequence.homology import HomologyConfig


class TestEndToEnd:
    def test_custom_protein_set(self):
        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=5), seed=8)
        report = run_end_to_end(protein_set=ps)
        assert report.protein_set is ps
        assert report.clustering.n_vertices == ps.n_sequences

    def test_custom_homology_config(self):
        report = run_end_to_end(
            sequence_config=SequenceFamilyConfig(n_families=5),
            homology_config=HomologyConfig(min_normalized_score=0.3),
            seed=3)
        strict = run_end_to_end(
            sequence_config=SequenceFamilyConfig(n_families=5),
            homology_config=HomologyConfig(min_normalized_score=0.8),
            seed=3)
        assert report.homology.n_edges >= strict.homology.n_edges

    def test_custom_params(self):
        report = run_end_to_end(
            sequence_config=SequenceFamilyConfig(n_families=4),
            params=ShinglingParams(c1=10, c2=5, seed=1), seed=2)
        assert report.clustering.params.c1 == 10

    def test_suffix_filter_end_to_end(self):
        report = run_end_to_end(
            sequence_config=SequenceFamilyConfig(n_families=4),
            homology_config=HomologyConfig(pair_filter="suffix",
                                           min_match_len=8),
            seed=4)
        assert report.quality.ppv > 0.9

    def test_summary_keys(self):
        report = run_end_to_end(
            sequence_config=SequenceFamilyConfig(n_families=4), seed=5)
        summary = report.summary()
        for key in ("n_sequences", "n_edges", "ppv", "sensitivity",
                    "density", "seconds"):
            assert key in summary

    def test_min_cluster_size_filter(self):
        a = run_end_to_end(
            sequence_config=SequenceFamilyConfig(n_families=5),
            min_cluster_size=2, seed=6)
        b = run_end_to_end(
            sequence_config=SequenceFamilyConfig(n_families=5),
            min_cluster_size=10, seed=6)
        # stricter filter keeps fewer clustered pairs -> SE can only drop
        assert b.quality.sensitivity <= a.quality.sensitivity


class TestWorkloadRegistry:
    @pytest.mark.parametrize("name", ["20k", "2m", "quality"])
    def test_make_callable(self, name):
        obj = WORKLOADS[name].make("small")
        assert obj.graph.n_vertices > 0

    def test_large_workload(self):
        graph = make_large_workload("small")
        assert graph.n_vertices == 2**16
        assert WORKLOADS["large"].params("small").c1 == 16

    def test_paper_tier_larger(self):
        small = make_runtime_workload("2m", "small")
        paper = make_runtime_workload("2m", "paper")
        assert paper.graph.n_edges > 2 * small.graph.n_edges

    def test_quality_workload_deterministic(self):
        a = make_quality_workload("small", seed=11)
        b = make_quality_workload("small", seed=11)
        assert a.graph == b.graph

    def test_descriptions_present(self):
        for workload in WORKLOADS.values():
            assert workload.description
