"""Tests for alphabet, scoring, FASTA, and mutation models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequence.alphabet import (
    ALPHABET_SIZE,
    AMINO_ACIDS,
    decode,
    encode,
    random_sequence,
)
from repro.sequence.fasta import iter_fasta, read_fasta, write_fasta
from repro.sequence.mutate import diverge, indel, substitute
from repro.sequence.scoring import BLOSUM62

protein_strings = st.text(alphabet=AMINO_ACIDS, min_size=0, max_size=60)


class TestAlphabet:
    @given(protein_strings)
    @settings(max_examples=100)
    def test_encode_decode_round_trip(self, s):
        assert decode(encode(s)) == s

    def test_lowercase_accepted(self):
        assert decode(encode("acdy")) == "ACDY"

    def test_unknown_maps_to_x(self):
        assert decode(encode("A*B")) == "AXX"

    def test_random_sequence(self, rng):
        seq = random_sequence(100, rng)
        assert seq.size == 100
        assert seq.max() < len(AMINO_ACIDS)

    def test_random_sequence_frequencies(self, rng):
        freqs = np.zeros(len(AMINO_ACIDS))
        freqs[0] = 1.0
        seq = random_sequence(50, rng, frequencies=freqs)
        assert np.all(seq == 0)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            random_sequence(-1, rng)
        with pytest.raises(ValueError):
            random_sequence(5, rng, frequencies=np.ones(3))


class TestBlosum62:
    def test_shape_and_symmetry(self):
        assert BLOSUM62.shape == (ALPHABET_SIZE, ALPHABET_SIZE)
        assert np.array_equal(BLOSUM62, BLOSUM62.T)

    def test_known_values(self):
        aa = {ch: i for i, ch in enumerate(AMINO_ACIDS)}
        assert BLOSUM62[aa["W"], aa["W"]] == 11
        assert BLOSUM62[aa["A"], aa["A"]] == 4
        assert BLOSUM62[aa["W"], aa["P"]] == -4
        assert BLOSUM62[aa["I"], aa["L"]] == 2

    def test_diagonal_positive(self):
        diag = np.diag(BLOSUM62)[:len(AMINO_ACIDS)]
        assert np.all(diag > 0)

    def test_x_scores_negative(self):
        assert np.all(BLOSUM62[-1] == -1)

    def test_read_only(self):
        with pytest.raises(ValueError):
            BLOSUM62[0, 0] = 99


class TestFasta:
    def test_round_trip(self, tmp_path):
        records = [("seq1 desc", "ACDEFGHIKLMNPQRSTVWY" * 5), ("seq2", "WYV")]
        path = tmp_path / "t.fasta"
        write_fasta(records, path, width=30)
        assert read_fasta(path) == records

    def test_wrapping(self, tmp_path):
        path = tmp_path / "t.fasta"
        write_fasta([("s", "A" * 100)], path, width=10)
        lines = path.read_text().splitlines()
        assert len(lines) == 11
        assert all(len(l) <= 10 for l in lines[1:])

    def test_iter_matches_read(self, tmp_path):
        records = [("a", "ACD"), ("b", "WYV")]
        path = tmp_path / "t.fasta"
        write_fasta(records, path)
        assert list(iter_fasta(path)) == read_fasta(path) == records

    def test_headerless_file_rejected(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACDEF\n")
        with pytest.raises(ValueError):
            read_fasta(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.fasta"
        path.write_text(">s\n\nACD\n\nEFG\n")
        assert read_fasta(path) == [("s", "ACDEFG")]

    def test_invalid_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta([("s", "A")], tmp_path / "x.fasta", width=0)


class TestMutate:
    def test_substitute_rate_zero(self, rng):
        seq = random_sequence(100, rng)
        assert np.array_equal(substitute(seq, 0.0, rng), seq)

    def test_substitute_rate_one_changes_everything(self, rng):
        seq = random_sequence(200, rng)
        mutated = substitute(seq, 1.0, rng)
        assert np.all(mutated != seq)
        assert mutated.max() < len(AMINO_ACIDS)

    def test_substitute_rate_statistics(self):
        rng = np.random.default_rng(0)
        seq = random_sequence(5000, rng)
        mutated = substitute(seq, 0.2, rng)
        frac = np.mean(mutated != seq)
        assert 0.15 < frac < 0.25

    def test_substitute_does_not_mutate_input(self, rng):
        seq = random_sequence(50, rng)
        before = seq.copy()
        substitute(seq, 0.5, rng)
        assert np.array_equal(seq, before)

    def test_indel_changes_length(self):
        rng = np.random.default_rng(1)
        seq = random_sequence(200, rng)
        out = indel(seq, 0.1, rng)
        assert out.size != 200 or not np.array_equal(out, seq)

    def test_indel_rate_zero(self, rng):
        seq = random_sequence(30, rng)
        assert np.array_equal(indel(seq, 0.0, rng), seq)

    def test_invalid_rates(self, rng):
        seq = random_sequence(10, rng)
        with pytest.raises(ValueError):
            substitute(seq, 1.5, rng)
        with pytest.raises(ValueError):
            indel(seq, -0.1, rng)
        with pytest.raises(ValueError):
            indel(seq, 0.1, rng, max_len=0)

    def test_diverge_composes(self):
        rng = np.random.default_rng(2)
        seq = random_sequence(150, rng)
        out = diverge(seq, 0.1, 0.02, rng)
        assert out.dtype == np.uint8
        assert out.max() < len(AMINO_ACIDS)
