"""Tests for ShinglingParams / PassConfig."""

import numpy as np
import pytest

from repro.core.params import PassConfig, ShinglingParams


class TestShinglingParams:
    def test_paper_defaults(self):
        p = ShinglingParams()
        assert (p.s1, p.c1, p.s2, p.c2) == (2, 200, 2, 100)
        assert p.report_mode == "partition"

    @pytest.mark.parametrize("kw", [
        {"s1": 0}, {"s2": 0}, {"c1": 0}, {"c2": 0}, {"trial_chunk": 0},
        {"prime": 100}, {"prime": (1 << 40) + 1},
        {"kernel": "bubble"}, {"report_mode": "fuzzy"},
        {"union_backend": "quantum"},
    ])
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            ShinglingParams(**kw)

    def test_with_overrides(self):
        p = ShinglingParams().with_overrides(c1=10)
        assert p.c1 == 10
        assert p.c2 == 100

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ShinglingParams().s1 = 3


class TestPassConfig:
    def test_pass_sizes(self):
        p = ShinglingParams(s1=3, c1=7, s2=2, c2=5, seed=1)
        cfg1, cfg2 = p.pass_config(1), p.pass_config(2)
        assert (cfg1.s, cfg1.c) == (3, 7)
        assert (cfg2.s, cfg2.c) == (2, 5)
        assert len(cfg1.hash_pairs) == 7
        assert cfg1.salts.shape == (7,)

    def test_passes_use_independent_hash_families(self):
        p = ShinglingParams(c1=5, c2=5, seed=1)
        pairs1 = {(h.a, h.b) for h in p.pass_config(1).hash_pairs}
        pairs2 = {(h.a, h.b) for h in p.pass_config(2).hash_pairs}
        assert pairs1 != pairs2

    def test_deterministic_per_seed(self):
        a = ShinglingParams(seed=3, c1=4).pass_config(1)
        b = ShinglingParams(seed=3, c1=4).pass_config(1)
        assert a.hash_pairs == b.hash_pairs
        assert np.array_equal(a.salts, b.salts)

    def test_different_seeds_differ(self):
        a = ShinglingParams(seed=3, c1=4).pass_config(1)
        b = ShinglingParams(seed=4, c1=4).pass_config(1)
        assert a.hash_pairs != b.hash_pairs

    def test_invalid_pass_id(self):
        with pytest.raises(ValueError):
            ShinglingParams().pass_config(3)

    def test_coefficient_arrays(self):
        cfg = ShinglingParams(c1=3).pass_config(1)
        assert np.array_equal(cfg.a_array,
                              np.array([h.a for h in cfg.hash_pairs], dtype=np.uint64))
        assert np.array_equal(cfg.b_array,
                              np.array([h.b for h in cfg.hash_pairs], dtype=np.uint64))
