"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.io import load_npz


@pytest.fixture
def bench_files(tmp_path):
    """Generated benchmark graph + ground truth via the CLI itself."""
    stem = tmp_path / "bench"
    assert main(["generate", "--families", "6", "--seed", "3",
                 "--out", str(stem)]) == 0
    return stem


class TestGenerate:
    def test_graph_outputs(self, bench_files, tmp_path):
        graph = load_npz(bench_files.with_suffix(".npz"))
        gos = load_npz(bench_files.with_suffix(".gos.npz"))
        assert graph.n_vertices == gos.n_vertices
        assert gos.n_edges > graph.n_edges
        with np.load(bench_files.with_suffix(".labels.npz")) as data:
            assert data["labels"].size == graph.n_vertices

    def test_fasta_output(self, tmp_path):
        stem = tmp_path / "seqs"
        assert main(["generate", "--families", "4", "--fasta",
                     "--out", str(stem)]) == 0
        text = stem.with_suffix(".fasta").read_text()
        assert text.startswith(">")
        assert "family=0" in text


class TestCluster:
    def test_cluster_writes_labels(self, bench_files, tmp_path, capsys):
        out = tmp_path / "labels.npz"
        assert main(["cluster", str(bench_files.with_suffix(".npz")),
                     "--out", str(out), "--c1", "20", "--c2", "10"]) == 0
        with np.load(out) as data:
            labels = data["labels"]
        graph = load_npz(bench_files.with_suffix(".npz"))
        assert labels.size == graph.n_vertices
        captured = capsys.readouterr().out
        assert "clustering summary" in captured
        assert "component breakdown" in captured

    def test_serial_backend(self, bench_files, tmp_path):
        out_d = tmp_path / "d.npz"
        out_s = tmp_path / "s.npz"
        graph_path = str(bench_files.with_suffix(".npz"))
        main(["cluster", graph_path, "--out", str(out_d),
              "--c1", "10", "--c2", "5"])
        main(["cluster", graph_path, "--out", str(out_s),
              "--c1", "10", "--c2", "5", "--backend", "serial"])
        with np.load(out_d) as a, np.load(out_s) as b:
            assert np.array_equal(a["labels"], b["labels"])


class TestStats:
    def test_prints_table(self, bench_files, capsys):
        assert main(["stats", str(bench_files.with_suffix(".npz"))]) == 0
        out = capsys.readouterr().out
        assert "# Vertices" in out
        assert "singleton vertices excluded" in out


class TestCompare:
    def test_compare_with_clustering(self, bench_files, capsys):
        assert main(["compare", str(bench_files.with_suffix(".npz")),
                     "--benchmark", str(bench_files.with_suffix(".labels.npz")),
                     "--c1", "20", "--c2", "10", "--min-size", "10"]) == 0
        out = capsys.readouterr().out
        assert "PPV" in out and "Sensitivity" in out

    def test_compare_with_precomputed_labels(self, bench_files, tmp_path, capsys):
        labels_path = tmp_path / "labels.npz"
        main(["cluster", str(bench_files.with_suffix(".npz")),
              "--out", str(labels_path), "--c1", "20", "--c2", "10"])
        capsys.readouterr()
        assert main(["compare", str(bench_files.with_suffix(".npz")),
                     "--benchmark", str(bench_files.with_suffix(".labels.npz")),
                     "--labels", str(labels_path), "--min-size", "10"]) == 0
        assert "Density" in capsys.readouterr().out


class TestPipeline:
    def test_fasta_to_clusters(self, tmp_path, capsys):
        stem = tmp_path / "seqs"
        main(["generate", "--families", "4", "--fasta", "--seed", "2",
              "--out", str(stem)])
        capsys.readouterr()
        out_labels = tmp_path / "labels.npz"
        assert main(["pipeline", str(stem.with_suffix(".fasta")),
                     "--c1", "15", "--c2", "8",
                     "--out", str(out_labels)]) == 0
        out = capsys.readouterr().out
        assert "homology:" in out
        assert "clusters of size" in out
        assert out_labels.exists()

    def test_suffix_filter_mode(self, tmp_path, capsys):
        stem = tmp_path / "seqs"
        main(["generate", "--families", "3", "--fasta", "--seed", "4",
              "--out", str(stem)])
        capsys.readouterr()
        assert main(["pipeline", str(stem.with_suffix(".fasta")),
                     "--pair-filter", "suffix", "--c1", "10", "--c2",
                     "5"]) == 0
        assert "clusters" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_kernel_choice_validated(self, bench_files):
        with pytest.raises(SystemExit):
            main(["cluster", str(bench_files.with_suffix(".npz")),
                  "--kernel", "bubble"])


class TestProfileFlag:
    def test_profile_to_stdout(self, bench_files, capsys):
        import json

        assert main(["cluster", str(bench_files.with_suffix(".npz")),
                     "--c1", "10", "--c2", "5", "--profile"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")
        end = out.rindex("}") + 1
        prof = json.loads(out[start:end])
        assert "kernels" in prof and "transfers" in prof
        assert "scratch_pool" in prof
        assert any(v["launches"] > 0 for v in prof["kernels"].values())

    def test_profile_to_file(self, bench_files, tmp_path):
        import json

        path = tmp_path / "profile.json"
        assert main(["cluster", str(bench_files.with_suffix(".npz")),
                     "--c1", "10", "--c2", "5", "--profile", str(path)]) == 0
        prof = json.loads(path.read_text())
        assert prof["transfers"]["bytes_to_host"] > 0

    def test_kernel_fused_accepted(self, bench_files, tmp_path):
        out_f = tmp_path / "f.npz"
        out_s = tmp_path / "s.npz"
        graph_path = str(bench_files.with_suffix(".npz"))
        assert main(["cluster", graph_path, "--out", str(out_f),
                     "--c1", "10", "--c2", "5", "--kernel", "fused"]) == 0
        assert main(["cluster", graph_path, "--out", str(out_s),
                     "--c1", "10", "--c2", "5", "--kernel", "select"]) == 0
        with np.load(out_f) as a, np.load(out_s) as b:
            assert np.array_equal(a["labels"], b["labels"])
