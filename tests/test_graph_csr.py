"""Tests for repro.graph.csr."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph


def edges_strategy(max_n=30, max_m=80):
    return st.lists(
        st.tuples(st.integers(0, max_n - 1), st.integers(0, max_n - 1)),
        min_size=0, max_size=max_m)


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert g.n_vertices == 3
        assert g.n_edges == 2
        assert list(g.neighbors(1)) == [0, 2]

    def test_symmetrization(self):
        g = CSRGraph.from_edges([(0, 1)])
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_deduplication(self):
        g = CSRGraph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.n_edges == 1

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges([(0, 0), (0, 1)])
        assert g.n_edges == 1
        assert not g.has_edge(0, 0)

    def test_explicit_vertex_count_preserves_isolates(self):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=5)
        assert g.n_vertices == 5
        assert g.degree(4) == 0

    def test_vertex_count_too_small_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(0, 5)], n_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges([(-1, 2)])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(np.zeros((3, 3), dtype=np.int64))

    def test_empty_graph(self):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=4)
        assert g.n_vertices == 4
        assert g.n_edges == 0

    def test_from_adjacency(self):
        g = CSRGraph.from_adjacency([[1, 2], [0], [0]])
        assert g.n_vertices == 3
        assert list(g.neighbors(0)) == [1, 2]


class TestValidation:
    def test_unsorted_neighbors_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([2, 1]))

    def test_duplicate_neighbors_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2]), np.array([1, 1]), validate=True)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0]))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_indptr_must_cover_indices(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([0, 1]))

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([1, 2, 0]))

    def test_neighbor_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_asymmetric_adjacency_caught_with_check(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1])
        with pytest.raises(ValueError):
            CSRGraph(indptr, indices, check_symmetry=True)

    def test_symmetric_adjacency_passes_check(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2)])
        CSRGraph(g.indptr, g.indices, check_symmetry=True)


class TestAccessors:
    def test_degrees(self, two_cliques_graph):
        assert np.array_equal(two_cliques_graph.degrees(), np.full(10, 4))

    def test_edges_round_trip(self, blocky_graph):
        edges = blocky_graph.edges()
        rebuilt = CSRGraph.from_edges(edges, n_vertices=blocky_graph.n_vertices)
        assert rebuilt == blocky_graph

    def test_edges_are_canonical(self, blocky_graph):
        edges = blocky_graph.edges()
        assert np.all(edges[:, 0] < edges[:, 1])
        assert edges.shape[0] == blocky_graph.n_edges

    def test_non_singleton_vertices(self):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=4)
        assert list(g.non_singleton_vertices()) == [0, 1]

    def test_nnz_is_twice_edges(self, blocky_graph):
        assert blocky_graph.nnz == 2 * blocky_graph.n_edges

    def test_iteration_yields_all_lists(self, triangle_graph):
        lists = [list(a) for a in triangle_graph]
        assert lists == [[1, 2], [0, 2], [0, 1]]

    def test_has_edge(self, path_graph):
        assert path_graph.has_edge(2, 3)
        assert not path_graph.has_edge(0, 3)

    def test_repr(self, triangle_graph):
        assert "n_vertices=3" in repr(triangle_graph)


class TestSubgraph:
    def test_induced_subgraph(self, two_cliques_graph):
        sub, old_ids = two_cliques_graph.subgraph(np.arange(5))
        assert sub.n_vertices == 5
        assert sub.n_edges == 10  # K5
        assert np.array_equal(old_ids, np.arange(5))

    def test_subgraph_drops_cross_edges(self):
        g = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        sub, _ = g.subgraph(np.array([0, 1, 3]))
        assert sub.n_edges == 1  # only (0,1) survives


class TestProperties:
    @given(edges_strategy())
    @settings(max_examples=100)
    def test_from_edges_invariants(self, edges):
        g = CSRGraph.from_edges(np.asarray(edges, dtype=np.int64).reshape(-1, 2)
                                if edges else np.empty((0, 2), dtype=np.int64))
        # validated construction + symmetric by construction
        CSRGraph(g.indptr, g.indices, check_symmetry=True)
        assert int(g.degrees().sum()) == 2 * g.n_edges

    @given(edges_strategy())
    @settings(max_examples=60)
    def test_edges_round_trip_property(self, edges):
        g = CSRGraph.from_edges(np.asarray(edges, dtype=np.int64).reshape(-1, 2)
                                if edges else np.empty((0, 2), dtype=np.int64))
        assert CSRGraph.from_edges(g.edges(), n_vertices=g.n_vertices) == g
