"""Tests for the out-of-core binary edge format."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.io import build_csr_from_binary, save_binary_edges
from repro.synthdata.random_graphs import rmat_graph
from tests.conftest import random_blocky_graph


class TestBinaryEdgeIO:
    def test_round_trip(self, tmp_path, blocky_graph):
        path = tmp_path / "g.bedg"
        save_binary_edges(blocky_graph, path)
        assert build_csr_from_binary(path) == blocky_graph

    @pytest.mark.parametrize("chunk_edges", [1, 7, 1000])
    def test_chunk_size_invariance(self, tmp_path, chunk_edges):
        g = random_blocky_graph(seed=61, n=80, n_blocks=3, block=12)
        path = tmp_path / "g.bedg"
        save_binary_edges(g, path, chunk_edges=chunk_edges)
        rebuilt = build_csr_from_binary(path, chunk_edges=chunk_edges)
        assert rebuilt == g

    def test_empty_graph(self, tmp_path):
        g = CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=5)
        path = tmp_path / "empty.bedg"
        save_binary_edges(g, path)
        rebuilt = build_csr_from_binary(path)
        assert rebuilt.n_vertices == 5
        assert rebuilt.n_edges == 0

    def test_isolates_preserved(self, tmp_path):
        g = CSRGraph.from_edges([(0, 1)], n_vertices=7)
        path = tmp_path / "g.bedg"
        save_binary_edges(g, path)
        assert build_csr_from_binary(path).n_vertices == 7

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bedg"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 8)
        with pytest.raises(ValueError):
            build_csr_from_binary(path)

    def test_large_rmat_round_trip(self, tmp_path):
        g = rmat_graph(scale=12, edge_factor=8, seed=2)
        path = tmp_path / "rmat.bedg"
        save_binary_edges(g, path, chunk_edges=4096)
        rebuilt = build_csr_from_binary(path, chunk_edges=4096)
        assert rebuilt == g

    def test_valid_csr_output(self, tmp_path, blocky_graph):
        path = tmp_path / "g.bedg"
        save_binary_edges(blocky_graph, path)
        rebuilt = build_csr_from_binary(path)
        # full validation including symmetry
        CSRGraph(rebuilt.indptr, rebuilt.indices, check_symmetry=True)
