"""Unit tests for the metrics registry and its disabled mode."""

from repro.obs import NULL_METRICS, MetricsRegistry, peak_rss_bytes
from repro.obs.metrics import NULL_INSTRUMENT


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits").add()
        reg.counter("hits").add(4)
        assert reg.counter("hits").value == 5

    def test_gauge_set_and_set_max(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("peak")
        gauge.set(10)
        gauge.set_max(3)       # smaller: ignored
        gauge.set_max(20)
        assert gauge.value == 20

    def test_histogram_statistics(self):
        reg = MetricsRegistry()
        hist = reg.histogram("sizes")
        for value in (4, 1, 7):
            hist.observe(value)
        stats = hist.as_dict()
        assert stats["count"] == 3
        assert stats["total"] == 12
        assert stats["mean"] == 4.0
        assert stats["min"] == 1 and stats["max"] == 7

    def test_create_on_use_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_counter_thread_safety(self):
        import threading

        reg = MetricsRegistry()
        counter = reg.counter("shared")

        def bump():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestSnapshot:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a.count").add(2)
        reg.gauge("b.level").set(1.5)
        reg.histogram("c.sizes").observe(3)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.count": 2}
        assert snap["gauges"] == {"b.level": 1.5}
        assert snap["histograms"]["c.sizes"]["count"] == 1

    def test_snapshot_sorted_keys(self):
        reg = MetricsRegistry()
        for name in ("z", "a", "m"):
            reg.counter(name).add()
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]

    def test_empty_snapshot(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}


class TestNullMetrics:
    def test_lookups_return_shared_singleton(self):
        """Disabled metrics allocate nothing: every instrument lookup hands
        back the same no-op object."""
        assert NULL_METRICS.counter("a") is NULL_INSTRUMENT
        assert NULL_METRICS.gauge("b") is NULL_INSTRUMENT
        assert NULL_METRICS.histogram("c") is NULL_INSTRUMENT
        assert not NULL_METRICS.enabled

    def test_noop_operations(self):
        NULL_METRICS.counter("a").add(5)
        NULL_METRICS.gauge("b").set_max(10)
        NULL_METRICS.histogram("c").observe(1)
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert NULL_INSTRUMENT.value == 0


class TestPeakRss:
    def test_reports_positive_on_posix(self):
        peak = peak_rss_bytes()
        # A running CPython interpreter occupies at least a few MB.
        assert peak > 1 << 20
