"""Tests for the performance ledger: store, fingerprints, drift, notes."""

import json

import pytest

from repro.obs import (
    append_ledger,
    compare_rows,
    config_fingerprint,
    detect_drift,
    ledger_report,
    load_ledger,
    parse_metric_spec,
    render_ledger_report,
    skipped_wall_note,
)
from repro.obs.ledger import EWMA_ALPHA, ewma, is_wall_metric


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = config_fingerprint({"scale": "small", "devices": 2})
        b = config_fingerprint({"devices": 2, "scale": "small"})
        assert a == b
        assert len(a) == 12

    def test_differs_on_config_change(self):
        a = config_fingerprint({"devices": 1})
        b = config_fingerprint({"devices": 2})
        assert a != b


class TestAppendLoad:
    def test_round_trip(self, tmp_path):
        rows = {"2m": {"total_s": 1.25, "n_edges": 82663},
                "8m": {"total_s": 4.0}}
        written = append_ledger(tmp_path, "table1", rows,
                                config={"scale": "small"}, host_cores=4,
                                ts=100.0)
        assert len(written) == 2
        entries = load_ledger(tmp_path)
        assert [e["row"] for e in entries] == ["2m", "8m"]
        assert entries[0]["metrics"] == {"total_s": 1.25, "n_edges": 82663}
        assert entries[0]["host_cores"] == 4
        assert entries[0]["bench"] == "table1"

    def test_append_only(self, tmp_path):
        for ts in (1.0, 2.0):
            append_ledger(tmp_path, "b", {"r": {"total_s": ts}},
                          config={}, ts=ts)
        entries = load_ledger(tmp_path, "b")
        assert [e["metrics"]["total_s"] for e in entries] == [1.0, 2.0]

    def test_row_host_cores_tag_wins(self, tmp_path):
        append_ledger(tmp_path, "b", {"r": {"total_s": 1.0, "host_cores": 8}},
                      config={}, host_cores=4, ts=1.0)
        (entry,) = load_ledger(tmp_path)
        assert entry["host_cores"] == 8
        # Tags never become metrics.
        assert "host_cores" not in entry["metrics"]

    def test_non_numeric_and_empty_rows_skipped(self, tmp_path):
        written = append_ledger(
            tmp_path, "b",
            {"named": {"label": "fast"}, "real": {"total_s": 1.0}},
            config={}, ts=1.0)
        assert [e["row"] for e in written] == ["real"]

    def test_corrupt_lines_skipped(self, tmp_path):
        append_ledger(tmp_path, "b", {"r": {"total_s": 1.0}}, config={},
                      ts=1.0)
        path = tmp_path / "b.jsonl"
        path.write_text(path.read_text() + "{truncated\n")
        append_ledger(tmp_path, "b", {"r": {"total_s": 2.0}}, config={},
                      ts=2.0)
        assert len(load_ledger(tmp_path)) == 2

    def test_missing_dir_is_empty(self, tmp_path):
        assert load_ledger(tmp_path / "nope") == []


class TestDrift:
    def test_ewma_weights_recent(self):
        assert ewma([1.0]) == 1.0
        v = ewma([1.0, 2.0], alpha=0.5)
        assert v == 1.5

    def test_new_with_single_point(self):
        assert detect_drift([1.0], 0.15)["verdict"] == "NEW"
        assert detect_drift([], 0.15)["verdict"] == "NEW"

    def test_stable_series_ok(self):
        assert detect_drift([1.0, 1.01, 0.99, 1.02], 0.15)["verdict"] == "OK"

    def test_step_regression_flagged(self):
        d = detect_drift([1.0, 1.0, 1.0, 1.5], 0.15)
        assert d["verdict"] == "DRIFT"
        assert d["delta_frac"] == pytest.approx(0.5)

    def test_symmetric_improvement_also_drift(self):
        assert detect_drift([1.0, 1.0, 0.5], 0.15)["verdict"] == "DRIFT"

    def test_slow_creep_caught(self):
        # Five +8% steps: every pairwise check under 15% passes, but the
        # cumulative move leaves the EWMA band.
        series = [1.0]
        for _ in range(5):
            series.append(series[-1] * 1.08)
        assert detect_drift(series, 0.15)["verdict"] == "DRIFT"


class TestLedgerReport:
    def _seed(self, tmp_path, values, host_cores=4, metric="total_s",
              config=None):
        for i, v in enumerate(values):
            append_ledger(tmp_path, "bench", {"row": {metric: v}},
                          config=config or {"scale": "small"},
                          host_cores=host_cores, ts=float(i))

    def test_trajectory_and_drift(self, tmp_path):
        self._seed(tmp_path, [1.0, 1.0, 1.6])
        (row,) = ledger_report(load_ledger(tmp_path), tolerance=0.15)
        assert row["n"] == 3
        assert row["verdict"] == "DRIFT"
        assert row["first"] == 1.0
        assert row["latest"] == 1.6

    def test_wall_metrics_partition_by_host_cores(self, tmp_path):
        # Two observations from an 8-core machine, then one from 4-core:
        # the wall series must restrict to the latest machine (n == 1).
        self._seed(tmp_path, [1.0, 1.0], host_cores=8)
        append_ledger(tmp_path, "bench", {"row": {"total_s": 9.9}},
                      config={"scale": "small"}, host_cores=4, ts=10.0)
        (row,) = ledger_report(load_ledger(tmp_path), tolerance=0.15)
        assert row["n"] == 1
        assert row["verdict"] == "NEW"

    def test_modeled_metrics_chain_across_machines(self, tmp_path):
        self._seed(tmp_path, [5.0, 5.0], host_cores=8, metric="modeled_s")
        append_ledger(tmp_path, "bench", {"row": {"modeled_s": 9.9}},
                      config={"scale": "small"}, host_cores=4, ts=10.0)
        (row,) = ledger_report(load_ledger(tmp_path), tolerance=0.15)
        assert row["n"] == 3
        assert row["verdict"] == "DRIFT"

    def test_fingerprints_keep_series_apart(self, tmp_path):
        self._seed(tmp_path, [1.0, 1.0], config={"devices": 1})
        self._seed(tmp_path, [9.0, 9.0], config={"devices": 2})
        report = ledger_report(load_ledger(tmp_path), tolerance=0.15)
        assert len(report) == 2
        assert all(r["verdict"] == "OK" for r in report)

    def test_render(self, tmp_path):
        self._seed(tmp_path, [1.0, 1.0, 1.6])
        report = ledger_report(load_ledger(tmp_path), tolerance=0.15)
        text = render_ledger_report(report, tolerance=0.15)
        assert "performance ledger trajectories" in text
        assert "DRIFT" in text
        assert "1 drifted" in text
        assert render_ledger_report(report, drift_only=True).count("OK") == 0


class TestSharedComparison:
    def test_wall_metric_classification(self):
        assert is_wall_metric("total_s")
        assert is_wall_metric("traced_on_s")
        assert is_wall_metric("wall_anything")
        assert not is_wall_metric("modeled_s")
        assert not is_wall_metric("padding_waste")

    def test_parse_metric_spec(self):
        assert parse_metric_spec("total_s") == ("total_s", "lower")
        assert parse_metric_spec("speedup:higher") == ("speedup", "higher")
        with pytest.raises(ValueError):
            parse_metric_spec("total_s:sideways")

    def test_skipped_wall_note_names_cores(self):
        ref = {"2m": {"total_s": 1.0, "host_cores": 8}}
        got = {"2m": {"total_s": 2.0, "host_cores": 4}}
        deltas, failures = compare_rows(ref, got, 0.15)
        assert not failures
        note = skipped_wall_note(ref, got, deltas)
        assert "skipped 1 wall metric(s)" in note
        assert "host_cores differ (8 vs 4)" in note

    def test_no_note_when_same_machine(self):
        ref = {"2m": {"total_s": 1.0, "host_cores": 4}}
        got = {"2m": {"total_s": 1.0, "host_cores": 4}}
        deltas, _ = compare_rows(ref, got, 0.15)
        assert skipped_wall_note(ref, got, deltas) is None
