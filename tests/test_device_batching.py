"""Tests for the batch planner (Section III-C's split-list machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.batching import max_batch_elements, plan_batches


def indptr_from_lengths(lengths):
    indptr = np.zeros(len(lengths) + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(lengths)
    return indptr


class TestPlanBatches:
    def test_single_batch_when_everything_fits(self):
        plan = plan_batches(indptr_from_lengths([3, 4, 2]), max_elements=100)
        assert plan.n_batches == 1
        batch = plan.batches[0]
        assert batch.n_elements == 9
        assert list(batch.segment_ids) == [0, 1, 2]
        assert not batch.is_split.any()
        assert plan.n_split_segments == 0

    def test_splits_oversized_segment(self):
        plan = plan_batches(indptr_from_lengths([25]), max_elements=10)
        assert plan.n_batches == 3
        assert plan.n_split_segments == 1
        assert all(b.is_split.all() for b in plan.batches)
        assert sum(b.n_elements for b in plan.batches) == 25

    def test_small_segment_starts_new_batch_instead_of_splitting(self):
        # 8 fits in a fresh batch of 10; with 7 already used (3 free) it
        # should NOT be split (3 < max/2) but moved to the next batch.
        plan = plan_batches(indptr_from_lengths([7, 8]), max_elements=10)
        assert plan.n_batches == 2
        assert plan.n_split_segments == 0

    def test_large_segment_fills_remaining_space(self):
        # 15 > max_elements, so it must split; first piece fills the batch.
        plan = plan_batches(indptr_from_lengths([4, 15]), max_elements=10)
        assert plan.n_split_segments == 1
        assert plan.batches[0].n_elements == 10

    def test_empty_segments_skipped(self):
        plan = plan_batches(indptr_from_lengths([0, 3, 0, 2, 0]), max_elements=10)
        ids = np.concatenate([b.segment_ids for b in plan.batches])
        assert list(ids) == [1, 3]

    def test_local_indptr_consistency(self):
        plan = plan_batches(indptr_from_lengths([5, 6, 7]), max_elements=9)
        for batch in plan.batches:
            lengths = np.diff(batch.local_indptr)
            assert lengths.sum() == batch.n_elements
            assert (lengths > 0).all()

    def test_slice_elements(self):
        flat = np.arange(12)
        plan = plan_batches(indptr_from_lengths([6, 6]), max_elements=6)
        assert np.array_equal(plan.batches[0].slice_elements(flat), np.arange(6))
        assert np.array_equal(plan.batches[1].slice_elements(flat), np.arange(6, 12))

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            plan_batches(indptr_from_lengths([1]), max_elements=0)

    def test_empty_graph(self):
        plan = plan_batches(indptr_from_lengths([]), max_elements=10)
        assert plan.n_batches == 0

    @given(st.lists(st.integers(0, 30), max_size=25),
           st.integers(1, 17))
    @settings(max_examples=150)
    def test_coverage_property(self, lengths, max_elements):
        """Every element covered exactly once, in order, within budget, and
        chunk lengths per source segment sum to the source length."""
        indptr = indptr_from_lengths(lengths)
        plan = plan_batches(indptr, max_elements)  # _validate_plan runs inside
        per_segment = {}
        for batch in plan.batches:
            chunk_lengths = np.diff(batch.local_indptr)
            for seg, ln, split in zip(batch.segment_ids, chunk_lengths,
                                      batch.is_split):
                per_segment.setdefault(int(seg), []).append((int(ln), bool(split)))
        for seg, ln in enumerate(lengths):
            if ln == 0:
                assert seg not in per_segment
                continue
            chunks = per_segment[seg]
            assert sum(c for c, _ in chunks) == ln
            if len(chunks) > 1:
                assert all(split for _, split in chunks)
            else:
                assert not chunks[0][1]


class TestMaxBatchElements:
    def test_scales_with_capacity(self):
        small = max_batch_elements(2**20, n_trials_chunk=16, s=2)
        big = max_batch_elements(2**24, n_trials_chunk=16, s=2)
        # Linear up to floor rounding.
        assert 16 * small <= big < 16 * (small + 1)

    def test_too_small_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_batch_elements(8, n_trials_chunk=16, s=2)
