"""Multi-device group: topology, dispatcher, bit-identity, observability.

The DeviceGroup contract: N independent members behind one facade, with a
shared breakdown/obs context, a host link whose modeled seconds stretch
under concurrent sibling transfers, a cheaper peer path for device-device
exchange, and a deterministic least-loaded dispatcher — and, above all,
output bit-identical to the single-device and serial paths for every
member count.
"""

import threading

import numpy as np
import pytest

from repro.core.device_exec import device_shingle_pass
from repro.core.execplan import EXEC_MULTIDEVICE, ExecutionPlan
from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, SerialPClust
from repro.core.serial import serial_shingle_pass
from repro.device.alignment import DeviceAligner
from repro.device.device import SimulatedDevice
from repro.device.group import (
    DeviceGroup,
    GroupTopology,
    HostLink,
    least_loaded_assignment,
)
from repro.device.timingmodels import TransferModel
from repro.obs import observe, use_obs
from repro.util.timer import BUCKET_C2G, BUCKET_P2P, TimeBreakdown
from tests.conftest import random_blocky_graph


class TestLeastLoadedAssignment:
    def test_deterministic_and_balanced(self):
        costs = [16, 16, 16, 16, 16, 16, 4]
        owners = least_loaded_assignment(costs, 2)
        assert owners == least_loaded_assignment(costs, 2)  # pure function
        loads = [0, 0]
        for cost, owner in zip(costs, owners):
            loads[owner] += cost
        assert max(loads) - min(loads) <= max(costs)

    def test_ties_go_to_lowest_index(self):
        assert least_loaded_assignment([1, 1, 1], 3) == [0, 1, 2]

    def test_single_member(self):
        assert least_loaded_assignment([5, 2, 9], 1) == [0, 0, 0]

    def test_rejects_zero_members(self):
        with pytest.raises(ValueError):
            least_loaded_assignment([1], 0)


class TestHostLink:
    def test_uncontended_charge_is_identity(self):
        link = HostLink(lanes=1)
        assert link.charge(0.5, 1) == 0.5
        assert link.contended_s == 0.0

    def test_oversubscription_stretches_modeled_seconds(self):
        link = HostLink(lanes=1)
        assert link.charge(1.0, 3) == pytest.approx(3.0)
        assert link.contended_s == pytest.approx(2.0)
        # Two lanes halve the factor.
        link2 = HostLink(lanes=2)
        assert link2.charge(1.0, 3) == pytest.approx(1.5)

    def test_concurrent_transfers_observed(self):
        """Modeled contention fires when sibling devices really overlap:
        a barrier holds every thread inside begin()/end() simultaneously."""
        group = DeviceGroup(3)
        barrier = threading.Barrier(3)
        data = np.arange(64, dtype=np.int64)

        def transfer(i):
            link = group.host_link
            active = link.begin()
            try:
                barrier.wait(timeout=5)
                link.charge(1.0, active)
            finally:
                link.end()

        threads = [threading.Thread(target=transfer, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert group.host_link.peak_active == 3
        # The last to arrive saw all 3 in flight; total surplus is at least
        # one transfer's worth even if arrivals staggered.
        assert group.host_link.contended_s >= 1.0
        del data

    def test_validation(self):
        with pytest.raises(ValueError):
            HostLink(lanes=0)
        with pytest.raises(ValueError):
            GroupTopology(host_lanes=0)


class TestDeviceGroupBasics:
    def test_members_are_independent(self):
        group = DeviceGroup(3)
        assert group.n_devices == 3
        a = group.members[0].upload(np.arange(100, dtype=np.int64))
        assert group.members[0].memory.used_bytes > 0
        assert group.members[1].memory.used_bytes == 0
        assert group.members[2].memory.used_bytes == 0
        a.free()

    def test_rejects_zero_devices(self):
        with pytest.raises(ValueError):
            DeviceGroup(0)

    def test_shared_breakdown(self):
        bd = TimeBreakdown()
        group = DeviceGroup(2, breakdown=bd)
        buf = group.members[1].upload(np.arange(10, dtype=np.int64))
        assert bd.get(BUCKET_C2G) > 0.0
        assert bd.get_modeled(BUCKET_C2G) > 0.0
        buf.free()

    def test_set_breakdown_repoints_every_member(self):
        group = DeviceGroup(2)
        fresh = TimeBreakdown()
        group.set_breakdown(fresh)
        assert all(m.breakdown is fresh for m in group.members)
        buf = group.members[0].upload(np.arange(4, dtype=np.int64))
        assert fresh.get(BUCKET_C2G) > 0.0
        buf.free()


class TestBroadcastAndPeerCopy:
    def test_broadcast_reaches_every_member(self):
        group = DeviceGroup(3)
        data = np.arange(1000, dtype=np.int64)
        buffers = group.broadcast(data)
        assert len(buffers) == 3
        for buf in buffers:
            assert np.array_equal(buf.device_view(), data)
        group.free(*buffers)
        assert all(m.memory.used_bytes == 0 for m in group.members)

    def test_peer_copies_skip_the_host_link(self):
        """Broadcast crosses PCIe once: sibling bytes ride the peer fabric,
        so only member 0's h2d counter moves and data_p2p gets charged."""
        bd = TimeBreakdown()
        group = DeviceGroup(3, breakdown=bd)
        data = np.arange(1000, dtype=np.int64)
        buffers = group.broadcast(data)
        assert group.members[0].memory.bytes_to_device == data.nbytes
        assert group.members[1].memory.bytes_to_device == 0
        assert group.members[2].memory.bytes_to_device == 0
        assert group.p2p_bytes == 2 * data.nbytes
        assert bd.get(BUCKET_P2P) > 0.0
        assert bd.get_modeled(BUCKET_P2P) > 0.0
        group.free(*buffers)

    def test_p2p_model_is_cheaper_than_host_bounce(self):
        """The default peer model must undercut download + re-upload."""
        group = DeviceGroup(2)
        nbytes = 10 * 2**20
        host = group.spec.transfer.seconds_for(nbytes)
        peer = group.topology.p2p.seconds_for(nbytes)
        assert peer < 2 * host

    def test_custom_topology(self):
        slow = TransferModel(latency_s=1.0, bandwidth_bytes_per_s=1.0)
        group = DeviceGroup(
            2, topology=GroupTopology(host_lanes=4, p2p=slow))
        assert group.host_link.lanes == 4
        bd = group.breakdown
        buffers = group.broadcast(np.arange(8, dtype=np.int64))
        assert bd.get_modeled(BUCKET_P2P) >= 1.0  # the slow peer latency
        group.free(*buffers)


class TestGroupObservability:
    def test_per_device_metric_prefixes(self):
        ctx = observe(trace=False)
        with use_obs(ctx):
            group = DeviceGroup(2)
            g = random_blocky_graph(seed=40)
            params = ShinglingParams(c1=12, c2=6, trial_chunk=4, devices=2)
            GpClust(params).run(g, device=group)
            group.sync_metrics()
        counters = ctx.metrics.snapshot()["counters"]
        gauges = ctx.metrics.snapshot()["gauges"]
        for i in range(2):
            assert any(k.startswith(f"device{i}.kernel.") for k in counters), i
            assert f"device{i}.h2d_bytes" in gauges, i
        assert gauges["group.n_devices"] == 2
        assert gauges["group.p2p_bytes"] > 0

    def test_per_device_trace_procs(self):
        ctx = observe(trace=True)
        with use_obs(ctx):
            group = DeviceGroup(2)
            g = random_blocky_graph(seed=41)
            params = ShinglingParams(c1=12, c2=6, trial_chunk=4, devices=2)
            GpClust(params).run(g, device=group)
        procs = {r.proc for r in ctx.tracer.records}
        assert {"device0", "device1"} <= procs

    def test_profile_shape(self):
        group = DeviceGroup(2)
        buffers = group.broadcast(np.arange(100, dtype=np.int64))
        group.free(*buffers)
        prof = group.profile()
        assert prof["n_devices"] == 2
        assert len(prof["members"]) == 2
        assert prof["p2p_bytes"] > 0
        assert prof["host_link"]["lanes"] == 1
        # The single-device alias keys every profile consumer relies on.
        for key in ("kernels", "transfers", "scratch_pool",
                    "measured_buckets_s"):
            assert key in prof, key
        assert prof["transfers"]["bytes_to_device"] > 0

    def test_modeled_kernel_seconds_per_member(self):
        group = DeviceGroup(2)
        g = random_blocky_graph(seed=42)
        params = ShinglingParams(c1=12, c2=6, trial_chunk=4, devices=2)
        GpClust(params).run(g, device=group)
        modeled = group.modeled_kernel_seconds()
        assert len(modeled) == 2
        assert all(s > 0.0 for s in modeled)  # both members did kernel work


class TestShinglePassBitIdentity:
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_matches_serial(self, blocky_graph, small_params, devices):
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg)
        plan = ExecutionPlan(mode=EXEC_MULTIDEVICE, devices=devices)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, DeviceGroup(devices), trial_chunk=3,
                                  plan=plan)
        assert got == ref

    @pytest.mark.parametrize("devices", [2, 4])
    def test_multi_batch_matches_serial(self, small_params, devices):
        """Batches split across the element budget x chunks sharded across
        members: the out-of-order merge must still be exact."""
        g = random_blocky_graph(seed=31)
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(g.indptr, g.indices, cfg)
        plan = ExecutionPlan(mode=EXEC_MULTIDEVICE, devices=devices)
        got = device_shingle_pass(g.indptr, g.indices, cfg,
                                  DeviceGroup(devices), trial_chunk=4,
                                  max_elements=97, plan=plan)
        assert got == ref

    def test_plain_device_degrades_to_sync(self, blocky_graph, small_params):
        """A multidevice plan over a plain SimulatedDevice must still work
        (serial schedule) — the single-device degradation path."""
        cfg = small_params.pass_config(1)
        ref = serial_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg)
        plan = ExecutionPlan(mode=EXEC_MULTIDEVICE, devices=2)
        got = device_shingle_pass(blocky_graph.indptr, blocky_graph.indices,
                                  cfg, SimulatedDevice(), trial_chunk=3,
                                  plan=plan)
        assert got == ref

    def test_full_pipeline_across_device_counts(self, small_params):
        g = random_blocky_graph(seed=23)
        serial = SerialPClust(small_params).run(g)
        for devices in (1, 2, 4):
            params = small_params.with_overrides(devices=devices)
            result = GpClust(params).run(g)
            assert np.array_equal(result.labels, serial.labels), devices

    def test_work_actually_distributes(self, small_params):
        """More than one member must receive kernel launches (the
        dispatcher is not secretly serial)."""
        group = DeviceGroup(2)
        g = random_blocky_graph(seed=24)
        GpClust(small_params.with_overrides(devices=2)).run(g, device=group)
        launches = [sum(s["launches"] for s in m.kernel_stats.values())
                    for m in group.members]
        assert all(n > 0 for n in launches)


class TestAlignerOnGroup:
    def _pairs(self, n, count, seed=5):
        rng = np.random.default_rng(seed)
        return np.stack([rng.integers(0, n, count),
                         rng.integers(0, n, count)], axis=1)

    def test_scores_bit_identical_across_device_counts(self):
        from repro.sequence.generator import generate_protein_families

        ps = generate_protein_families(seed=13)
        pairs = self._pairs(len(ps.sequences), 400)
        ref = None
        for devices in (1, 2, 4):
            device = (DeviceGroup(devices) if devices > 1
                      else SimulatedDevice())
            aligner = DeviceAligner(device)
            aligner.upload_sequences(ps.sequences)
            scores = aligner.batch_scores(pairs)
            aligner.release()
            if ref is None:
                ref = scores
            else:
                assert np.array_equal(scores, ref), devices

    def test_bins_distribute_across_members(self):
        from repro.sequence.generator import generate_protein_families

        ps = generate_protein_families(seed=13)
        group = DeviceGroup(2)
        aligner = DeviceAligner(group)
        aligner.upload_sequences(ps.sequences)
        aligner.batch_scores(self._pairs(len(ps.sequences), 600))
        aligner.release()
        work = [sum(s["launches"] for s in m.kernel_stats.values())
                for m in group.members]
        assert all(n > 0 for n in work)
        assert all(m.memory.used_bytes == 0 for m in group.members)

    def test_homology_graph_identical_across_device_counts(self):
        import dataclasses

        from repro.sequence.generator import generate_protein_families
        from repro.sequence.homology import HomologyConfig, build_homology_graph

        ps = generate_protein_families(seed=13)
        base = HomologyConfig(align_backend="device")
        ref = build_homology_graph(ps.sequences, base)
        for devices in (2, 4):
            got = build_homology_graph(
                ps.sequences, dataclasses.replace(base, devices=devices))
            assert np.array_equal(got.graph.indptr, ref.graph.indptr)
            assert np.array_equal(got.graph.indices, ref.graph.indices)
            assert np.array_equal(got.normalized_scores,
                                  ref.normalized_scores)


class TestParamsWiring:
    def test_devices_forces_multidevice_plan(self):
        plan = ShinglingParams(devices=3).execution_plan()
        assert plan.mode == EXEC_MULTIDEVICE
        assert plan.devices == 3
        assert plan.n_workers == 3
        assert plan.resident_factor == 1  # batch replicated, not divided

    def test_single_device_keeps_exec_mode(self):
        plan = ShinglingParams(exec_mode="prefetch", devices=1).execution_plan()
        assert plan.mode == "prefetch"

    def test_devices_validation(self):
        with pytest.raises(ValueError):
            ShinglingParams(devices=0)
        with pytest.raises(ValueError):
            ExecutionPlan(mode=EXEC_MULTIDEVICE, devices=0)

    def test_cli_accepts_devices(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["cluster", "g.npz", "--devices", "2",
             "--exec-mode", "multidevice"])
        assert args.devices == 2
        assert args.exec_mode == "multidevice"

    def test_end_to_end_devices_override(self):
        from repro.pipeline.end_to_end import run_end_to_end
        from repro.sequence.generator import (SequenceFamilyConfig,
                                              generate_protein_families)

        ps = generate_protein_families(
            SequenceFamilyConfig(n_families=4, family_size_median=8.0),
            seed=2)
        ref = run_end_to_end(protein_set=ps, seed=3)
        got = run_end_to_end(protein_set=ps, seed=3, devices=2)
        assert np.array_equal(ref.clustering.labels, got.clustering.labels)
        assert np.array_equal(ref.homology.graph.indices,
                              got.homology.graph.indices)
