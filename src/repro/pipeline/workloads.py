"""Named, scale-controlled workloads for the benchmark harness.

The paper's datasets:

* **20K** — 17,079 non-singleton vertices, 374,928 edges (an arbitrary
  subset of the 2M set);
* **2M** — 1,562,984 non-singleton vertices, 56,919,738 edges (Table II);
* **large** — 11M vertices, 640M edges (Pacific Ocean survey; the 94-minute
  demo run).

A pure-Python serial baseline cannot chew through the originals, so each
workload here is a scaled analogue whose *relative* sizes mirror the paper's
(the 2M analogue is ~10x the 20K analogue; the large analogue is ~8x the 2M
analogue in edges).  ``REPRO_SCALE=paper`` selects a larger tier for longer
runs; the default ``small`` tier keeps the full benchmark suite in minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.core.params import ShinglingParams
from repro.graph.csr import CSRGraph
from repro.synthdata.planted import PlantedFamilyConfig, PlantedGraph, planted_family_graph
from repro.synthdata.random_graphs import rmat_graph

SCALE_SMALL = "small"
SCALE_PAPER = "paper"
_VALID_SCALES = (SCALE_SMALL, SCALE_PAPER)


def get_scale() -> str:
    """The benchmark scale tier from ``REPRO_SCALE`` (default: small)."""
    scale = os.environ.get("REPRO_SCALE", SCALE_SMALL).lower()
    if scale not in _VALID_SCALES:
        raise ValueError(
            f"REPRO_SCALE must be one of {_VALID_SCALES}, got {scale!r}")
    return scale


@dataclass(frozen=True)
class Workload:
    """A named dataset recipe: how to build the graph and default params."""

    name: str
    description: str
    make: Callable[[str, int], CSRGraph | PlantedGraph]
    params: Callable[[str], ShinglingParams]


def workload_params(scale: str | None = None) -> ShinglingParams:
    """Shingling parameters per tier.

    The paper's defaults are ``s1=2, c1=200, s2=2, c2=100``; the small tier
    halves the trial counts to keep the pure-Python serial baseline (which
    exists only to be measured against) within seconds.
    """
    scale = scale or get_scale()
    if scale == SCALE_PAPER:
        return ShinglingParams(s1=2, c1=200, s2=2, c2=100)
    return ShinglingParams(s1=2, c1=100, s2=2, c2=50)


def make_runtime_workload(name: str, scale: str | None = None,
                          seed: int = 20130520) -> PlantedGraph:
    """The Table-I runtime graphs: "20k" and "2m" analogues."""
    scale = scale or get_scale()
    # The paper tier is bounded by the pure-Python serial baseline Table I
    # must run: its pass-2 cost grows with c1 * n * c2, so the 2M analogue
    # is capped near ~30K vertices (about ten minutes of serial runtime at
    # the paper's c1=200/c2=100).
    tiers = {
        # name -> scale -> (n_families, family size median)
        "20k": {"small": (10, 90.0), "paper": (30, 110.0)},
        "2m": {"small": (36, 130.0), "paper": (120, 150.0)},
    }
    if name not in tiers:
        raise ValueError(f"unknown runtime workload {name!r}")
    n_families, median = tiers[name][scale]
    config = PlantedFamilyConfig(
        n_families=n_families,
        family_size_median=median,
    )
    return planted_family_graph(config, seed=seed)


def make_quality_workload(scale: str | None = None,
                          seed: int = 11) -> PlantedGraph:
    """The Table III/IV + Figure 5 benchmark graph.

    Uses the calibrated default :class:`PlantedFamilyConfig` (see
    ``repro.synthdata.planted``), scaled up under the paper tier.
    """
    scale = scale or get_scale()
    n_families = 40 if scale == SCALE_SMALL else 160
    return planted_family_graph(
        PlantedFamilyConfig(n_families=n_families), seed=seed)


def make_homology_workload(scale: str | None = None, seed: int = 101,
                           n_jobs: int = 1):
    """Sequence set + config for the homology-graph-construction benchmark.

    This is the pGraph-stage analogue of the runtime workloads above: a
    synthetic protein set sized so the alignment stage dominates (as it
    does in pGraph), with the worker count threaded into the config.

    Returns ``(protein_set, homology_config)``.
    """
    from repro.sequence.generator import (SequenceFamilyConfig,
                                          generate_protein_families)
    from repro.sequence.homology import HomologyConfig

    scale = scale or get_scale()
    if scale == SCALE_PAPER:
        seq_config = SequenceFamilyConfig(n_families=48,
                                          family_size_median=20.0)
    else:
        seq_config = SequenceFamilyConfig(n_families=24,
                                          family_size_median=16.0)
    protein_set = generate_protein_families(seq_config, seed=seed)
    return protein_set, HomologyConfig(n_jobs=n_jobs)


def make_large_workload(scale: str | None = None, seed: int = 7) -> CSRGraph:
    """The large-scale demo graph (the 11M/640M analogue), R-MAT."""
    scale = scale or get_scale()
    rmat_scale = 16 if scale == SCALE_SMALL else 19
    return rmat_graph(scale=rmat_scale, edge_factor=16, seed=seed)


WORKLOADS: dict[str, Workload] = {
    "20k": Workload(
        name="20k",
        description="Analogue of the paper's 20K-sequence graph (Table I row 1)",
        make=lambda scale, seed=20130520: make_runtime_workload("20k", scale, seed),
        params=workload_params,
    ),
    "2m": Workload(
        name="2m",
        description="Analogue of the paper's 2M-sequence graph (Tables I/II)",
        make=lambda scale, seed=20130520: make_runtime_workload("2m", scale, seed),
        params=workload_params,
    ),
    "quality": Workload(
        name="quality",
        description="Calibrated benchmark graph for Tables III/IV and Figure 5",
        make=lambda scale, seed=11: make_quality_workload(scale, seed),
        params=workload_params,
    ),
    "large": Workload(
        name="large",
        description="R-MAT analogue of the 11M-vertex Pacific Ocean graph",
        make=lambda scale, seed=7: make_large_workload(scale, seed),
        params=lambda scale: ShinglingParams(s1=2, c1=16, s2=2, c2=8),
    ),
}
