"""Experiment pipeline: named workloads and the end-to-end driver.

The benchmarks regenerate the paper's tables from named workloads whose
sizes scale with the ``REPRO_SCALE`` environment variable (``small`` by
default; ``paper`` for the closest laptop-feasible analogue of the paper's
dataset sizes).
"""

from repro.pipeline.end_to_end import EndToEndReport, run_end_to_end
from repro.pipeline.workloads import (
    WORKLOADS,
    Workload,
    get_scale,
    make_quality_workload,
    make_runtime_workload,
    workload_params,
)

__all__ = [
    "EndToEndReport",
    "WORKLOADS",
    "Workload",
    "get_scale",
    "make_quality_workload",
    "make_runtime_workload",
    "run_end_to_end",
    "workload_params",
]
