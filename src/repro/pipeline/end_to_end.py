"""End-to-end pipeline: sequences -> homology graph -> clusters -> quality.

This is the full pGraph-pClust analogue in one call, used by the examples
and the integration tests: generate (or accept) a protein set, build the
similarity graph with the sequence substrate, cluster it with gpClust, and
score the result against the family ground truth.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust
from repro.core.result import ClusterResult
from repro.device.timingmodels import DeviceSpec
from repro.eval.confusion import QualityScores, quality_scores
from repro.eval.density import density_summary
from repro.eval.partition import Partition
from repro.obs import get_obs, peak_rss_bytes
from repro.sequence.generator import SequenceFamilyConfig, SyntheticProteinSet, generate_protein_families
from repro.sequence.homology import HomologyConfig, HomologyResult, build_homology_graph


@dataclass
class EndToEndReport:
    """Everything one pipeline run produced."""

    protein_set: SyntheticProteinSet
    homology: HomologyResult
    clustering: ClusterResult
    quality: QualityScores
    density_mean: float
    density_std: float

    def summary(self) -> dict:
        out = {
            "n_sequences": self.protein_set.n_sequences,
            "n_candidate_pairs": self.homology.n_candidate_pairs,
            "n_edges": self.homology.n_edges,
            "n_clusters(>=2)": self.clustering.n_clusters(min_size=2),
            "ppv": self.quality.ppv,
            "sensitivity": self.quality.sensitivity,
            "density": self.density_mean,
            "seconds": self.clustering.timings.total,
        }
        if self.homology.timings is not None:
            out["homology_seconds"] = self.homology.timings.total_s
        return out


def run_end_to_end(
    protein_set: SyntheticProteinSet | None = None,
    sequence_config: SequenceFamilyConfig | None = None,
    homology_config: HomologyConfig | None = None,
    params: ShinglingParams | None = None,
    device_spec: DeviceSpec | None = None,
    min_cluster_size: int = 3,
    seed: int = 0,
    n_jobs: int | None = None,
    align_backend: str | None = None,
    devices: int | None = None,
) -> EndToEndReport:
    """Run the full pipeline; every stage is replaceable via its config.

    ``min_cluster_size`` is the reporting filter for quality scoring — the
    paper uses 20 on its 2M-sequence data; synthetic sets here are smaller,
    so the default is 3.  ``n_jobs`` / ``align_backend`` / ``devices``
    (when given) override the homology config's alignment worker count,
    scoring backend, and simulated device count — ``devices`` also applies
    to the clustering params, so both stages run on a group of that size;
    the result is identical either way.
    """
    if protein_set is None:
        protein_set = generate_protein_families(sequence_config, seed=seed)
    if params is None:
        params = ShinglingParams(c1=60, c2=30, seed=seed)
    if devices is not None:
        params = dataclasses.replace(params, devices=devices)
    overrides = {}
    if n_jobs is not None:
        overrides["n_jobs"] = n_jobs
    if align_backend is not None:
        overrides["align_backend"] = align_backend
    if devices is not None:
        overrides["devices"] = devices
    if overrides:
        homology_config = dataclasses.replace(
            homology_config or HomologyConfig(), **overrides)

    obs = get_obs()
    tracer = obs.tracer
    t_start = tracer.clock() if tracer.enabled else 0.0

    with tracer.span("e2e.homology"):
        homology = build_homology_graph(protein_set.sequences,
                                        homology_config)
    with tracer.span("e2e.clustering"):
        clustering = GpClust(params, device_spec).run(homology.graph)

    with tracer.span("e2e.quality"):
        test = Partition(clustering.labels)
        benchmark = Partition(protein_set.family_labels)
        quality = quality_scores(test, benchmark, min_size=min_cluster_size)
        dens_mean, dens_std = density_summary(homology.graph, test,
                                              min_size=min_cluster_size)

    obs.metrics.gauge("process.peak_rss_bytes").set_max(peak_rss_bytes())
    if tracer.enabled:
        tracer.record("e2e.run", t_start, tracer.clock(),
                      attrs={"n_sequences": protein_set.n_sequences,
                             "n_edges": homology.n_edges})

    return EndToEndReport(
        protein_set=protein_set,
        homology=homology,
        clustering=clustering,
        quality=quality,
        density_mean=dens_mean,
        density_std=dens_std,
    )
