"""Planted-family similarity-graph generator.

See the package docstring for the high-level model.  The generator is fully
deterministic for a given seed and returns:

* ``graph`` — the pGraph-analog similarity graph on which gpClust runs and
  on which *all* density evaluation happens (Equation 6 is computed against
  this edge set for every method, as the paper computes density of the GOS
  partition's clusters against its own graph's notion of connectivity);
* ``gos_graph`` — the *GOS-pipeline view*: the same graph plus extra
  within-family edges modeling the GOS project's independent BLAST-based
  homology detection.  In the paper, the GOS partition was produced by a
  different pipeline than the evaluation graph; clusters it reports are
  therefore loosely connected when measured on the pGraph graph (GOS density
  0.40 vs. gpClust 0.75).  The extra edges are of two kinds:

  - **cross-core fill** between cores of the same family (weak homologies a
    more sensitive search reports), which push shared-neighbor counts of
    cross-core pairs above the fixed ``k`` — this is what makes the GOS
    linkage "group some highly-connected clusters into a relatively
    loosely-connected cluster";
  - **satellite hits**: loose periphery sequences that BLAST relates to many
    core members; the k-neighbor linkage recruits them, but they contribute
    almost no edges in the evaluation graph, diluting GOS cluster density.

* ``family_labels`` — the benchmark partition (ground truth families);
* ``core_labels`` — per-vertex core id (or -1), for diagnostics.

All extra GOS-view edges stay *within* families, so the GOS partition's PPV
remains 100% (as in Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.util.rng import spawn_rng


@dataclass(frozen=True)
class PlantedFamilyConfig:
    """Knobs of the planted-family model.

    Attributes
    ----------
    n_families:
        Number of ground-truth families (benchmark groups).
    family_size_median / family_size_sigma:
        Family sizes are lognormal (heavy-tailed, like the paper's benchmark
        with avg 2,465 ± 4,372), clipped to
        [min_family_size, max_family_size].
    core_fraction:
        Fraction of each family's vertices placed into dense cores.
    major_core_fraction:
        Share of the core budget given to the family's single *major* core;
        the remainder is split into *minor* cores of ~``core_size``.  Pair
        counts (and hence sensitivity) are dominated by major cores, while
        cluster counts are dominated by minors — which is where the GOS-only
        fusion and satellites act, letting the model hit the paper's density
        ordering without flipping the sensitivity ordering.
    core_size:
        Target size of one minor core.
    p_core:
        Within-core edge probability (gpClust cluster density driver).
    attached_fraction / attach_edges:
        Share of periphery that is *well-attached*: ``attach_edges[0]`` to
        ``attach_edges[1]`` edges into one core.  Below the GOS k in shared
        neighbors, but easily recruited by shingling — these drive gpClust's
        recruitment and sensitivity edge.
    light_fraction / light_edges:
        Share of periphery that is *lightly attached* (a couple of edges);
        shingling recruits those with >= 2 edges, GOS never does.
    mis_attach_prob:
        Probability that an attached/light periphery vertex lands in a
        *foreign* family's core (spurious homology) — the false positives
        that pull gpClust's PPV just below 100%.
    p_cross_gos:
        GOS-view-only edge probability between consecutive core pairs of the
        same family (the cross-core fill described in the module docstring).
    gos_fusion_fraction:
        Fraction of multi-core families whose consecutive core pairs receive
        the cross-core fill.
    gos_fusion_pairs:
        Maximum number of consecutive core pairs per family to fill; keeps
        huge families from fusing into one giant chain.
    gos_satellite_ratio / gos_satellite_edges:
        Loose periphery vertices given GOS-view-only edges into a core
        (``gos_satellite_edges`` each), recruiting them into the GOS
        partition while leaving them near-isolated in the evaluation graph.
        Every core receives ``round(ratio * core_size)`` satellites (pool
        permitting): proportional coverage keeps the GOS partition's density
        uniformly diluted — a fixed per-core count would leave the largest
        cores satellite-free on some instances and let them pull the GOS
        density average up past gpClust's.
    loose_edge_prob:
        Probability that a loose periphery vertex has one real edge into a
        core (degree-1: in the graph, but recruitable by neither method).
    noise_edge_fraction:
        Spurious-homology edges as a fraction of planted edges.  Each noise
        edge is *pendant*: one endpoint is an otherwise-isolated loose
        sequence (each used at most once).  Pendant noise models random
        low-complexity hits without merging connected components — the
        paper's 2M graph is highly fragmented (largest CC 10,707 of 1.56M
        vertices), which only holds if spurious edges do not chain families.
    """

    n_families: int = 40
    family_size_median: float = 120.0
    family_size_sigma: float = 0.9
    min_family_size: int = 60
    max_family_size: int = 4000
    core_fraction: float = 0.45
    major_core_fraction: float = 0.5
    core_size: int = 22
    p_core: float = 0.97
    attached_fraction: float = 0.40
    attach_edges: tuple[int, int] = (6, 9)
    light_fraction: float = 0.08
    light_edges: tuple[int, int] = (2, 3)
    mis_attach_prob: float = 0.04
    p_cross_gos: float = 0.40
    gos_fusion_fraction: float = 0.85
    gos_fusion_pairs: int = 2
    gos_satellite_ratio: float = 0.36
    gos_satellite_edges: int = 13
    loose_edge_prob: float = 0.35
    noise_edge_fraction: float = 0.005

    def __post_init__(self) -> None:
        if self.n_families < 1:
            raise ValueError("n_families must be >= 1")
        if not 0.0 < self.core_fraction <= 1.0:
            raise ValueError("core_fraction must be in (0, 1]")
        for name in ("p_core", "p_cross_gos", "mis_attach_prob",
                     "gos_fusion_fraction", "loose_edge_prob",
                     "noise_edge_fraction", "gos_satellite_ratio"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.attached_fraction + self.light_fraction > 1.0:
            raise ValueError("attached_fraction + light_fraction must be <= 1")
        if self.min_family_size < 2 or self.max_family_size < self.min_family_size:
            raise ValueError("invalid family size bounds")
        if self.core_size < 4:
            raise ValueError("core_size must be >= 4")
        if self.attach_edges[0] < 1 or self.attach_edges[1] < self.attach_edges[0]:
            raise ValueError("invalid attach_edges range")
        if self.light_edges[0] < 1 or self.light_edges[1] < self.light_edges[0]:
            raise ValueError("invalid light_edges range")


@dataclass
class PlantedGraph:
    """A planted-family graph plus its ground truth and the GOS view."""

    graph: CSRGraph
    gos_graph: CSRGraph
    family_labels: np.ndarray
    core_labels: np.ndarray
    config: PlantedFamilyConfig
    seed: int
    n_cores: int = 0
    core_family: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices

    def family_sizes(self) -> np.ndarray:
        return np.bincount(self.family_labels)


def _dense_block_edges(members: np.ndarray, p: float, rng: np.random.Generator) -> np.ndarray:
    """Edges of an Erdos-Renyi block over ``members`` with probability ``p``."""
    k = members.size
    if k < 2:
        return np.empty((0, 2), dtype=np.int64)
    iu, ju = np.triu_indices(k, k=1)
    keep = rng.random(iu.size) < p
    return np.stack([members[iu[keep]], members[ju[keep]]], axis=1)


def _bipartite_block_edges(left: np.ndarray, right: np.ndarray, p: float,
                           rng: np.random.Generator) -> np.ndarray:
    """Random bipartite edges between two disjoint vertex sets."""
    if left.size == 0 or right.size == 0 or p <= 0.0:
        return np.empty((0, 2), dtype=np.int64)
    mask = rng.random((left.size, right.size)) < p
    li, ri = np.nonzero(mask)
    return np.stack([left[li], right[ri]], axis=1)


def _star_edges(center: int, targets: np.ndarray) -> np.ndarray:
    return np.stack(
        [np.full(targets.size, center, dtype=np.int64), targets], axis=1)


def planted_family_graph(config: PlantedFamilyConfig | None = None,
                         seed: int = 0) -> PlantedGraph:
    """Generate a planted-family similarity graph (see module docstring)."""
    config = config or PlantedFamilyConfig()
    rng = spawn_rng(seed, "planted")

    # ---------------------------------------------------------------- #
    # Family sizes (heavy-tailed benchmark partition)
    # ---------------------------------------------------------------- #
    sizes = np.exp(rng.normal(np.log(config.family_size_median),
                              config.family_size_sigma,
                              size=config.n_families))
    sizes = np.clip(np.round(sizes).astype(np.int64),
                    config.min_family_size, config.max_family_size)
    n = int(sizes.sum())
    family_labels = np.repeat(np.arange(config.n_families, dtype=np.int64), sizes)
    starts = np.zeros(config.n_families + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])

    core_labels = np.full(n, -1, dtype=np.int64)
    real_edges: list[np.ndarray] = []     # pGraph-analog edges
    gos_extra: list[np.ndarray] = []      # GOS-view-only edges
    core_family: list[int] = []
    next_core = 0

    # Phase 1 — role assignment for every family (cores / periphery splits).
    all_core_chunks: list[list[np.ndarray]] = []
    all_attached: list[np.ndarray] = []
    all_light: list[np.ndarray] = []
    all_loose: list[np.ndarray] = []
    for fam in range(config.n_families):
        members = np.arange(starts[fam], starts[fam + 1], dtype=np.int64)
        rng.shuffle(members)
        core_budget = max(int(round(config.core_fraction * members.size)),
                          min(members.size, 8))
        major_size = max(int(round(config.major_core_fraction * core_budget)), 4)
        minor_budget = core_budget - major_size
        n_minor = max(0, int(round(minor_budget / config.core_size)))
        if n_minor == 0:
            minor_budget = 0  # leftover joins the periphery instead
        core_chunks = [members[:major_size]]
        if n_minor > 0:
            core_chunks += [
                c for c in np.array_split(
                    members[major_size:major_size + minor_budget], n_minor)
                if c.size >= 2
            ]
        periphery = members[major_size + minor_budget:]
        n_attached = int(round(config.attached_fraction * periphery.size))
        n_light = int(round(config.light_fraction * periphery.size))
        all_core_chunks.append(core_chunks)
        all_attached.append(periphery[:n_attached])
        all_light.append(periphery[n_attached:n_attached + n_light])
        all_loose.append(periphery[n_attached + n_light:])
        for chunk in core_chunks:
            core_labels[chunk] = next_core
            core_family.append(fam)
            next_core += 1

    # Phase 2 — dense cores (real) and cross-core fill (GOS view).
    for fam in range(config.n_families):
        core_chunks = all_core_chunks[fam]
        for chunk in core_chunks:
            real_edges.append(_dense_block_edges(chunk, config.p_core, rng))
        if len(core_chunks) >= 3 and rng.random() < config.gos_fusion_fraction:
            # Fuse consecutive MINOR core pairs only (chunk 0 is the major
            # core): big clusters keep carrying sensitivity, small ones get
            # the loose fusions that drag GOS's average density down.
            minors = core_chunks[1:]
            pairs = list(zip(minors[:-1], minors[1:]))[::2]
            for left, right in pairs[:config.gos_fusion_pairs]:
                gos_extra.append(
                    _bipartite_block_edges(left, right, config.p_cross_gos, rng))

    # Phase 3 — periphery attachment (real edges).
    def _core_probs(chunks: list[np.ndarray]) -> np.ndarray:
        sizes_ = np.array([c.size for c in chunks], dtype=np.float64)
        return sizes_ / sizes_.sum()

    def _attach(vertices: np.ndarray, fam: int, edge_range: tuple[int, int]) -> None:
        core_chunks = all_core_chunks[fam]
        if vertices.size == 0 or not core_chunks:
            return
        # Periphery lands on cores proportionally to core size (a bigger
        # core presents more homologous surface), mirroring the satellite
        # allocation so the two methods' member streams scale together.
        probs = _core_probs(core_chunks)
        for v in vertices.tolist():
            if (config.n_families > 1
                    and rng.random() < config.mis_attach_prob):
                other = int(rng.integers(config.n_families - 1))
                if other >= fam:
                    other += 1
                foreign = all_core_chunks[other]
                if not foreign:
                    continue
                # One foreign core only: edges into two cores would fuse
                # them when the vertex is recruited.
                target = foreign[int(rng.integers(len(foreign)))]
            else:
                target = core_chunks[int(rng.choice(len(core_chunks), p=probs))]
            d = min(int(rng.integers(edge_range[0], edge_range[1] + 1)),
                    target.size)
            real_edges.append(_star_edges(v, rng.choice(target, size=d, replace=False)))

    isolated_loose: list[np.ndarray] = []
    for fam in range(config.n_families):
        _attach(all_attached[fam], fam, config.attach_edges)
        _attach(all_light[fam], fam, config.light_edges)
        # Loose periphery: at most one real edge (recruitable by neither);
        # the edgeless remainder feeds the pendant-noise pool of Phase 5.
        loose = all_loose[fam]
        core_chunks = all_core_chunks[fam]
        if loose.size and core_chunks:
            has_edge = rng.random(loose.size) < config.loose_edge_prob
            for v in loose[has_edge].tolist():
                target = core_chunks[int(rng.integers(len(core_chunks)))]
                real_edges.append(_star_edges(
                    v, rng.choice(target, size=1)))
            isolated_loose.append(loose[~has_edge])
        elif loose.size:
            isolated_loose.append(loose)

    # Phase 4 — GOS satellites: loose periphery that the GOS pipeline's own
    # (more sensitive) homology search relates to many core members.
    for fam in range(config.n_families):
        loose = all_loose[fam]
        cursor = 0
        # Proportional satellite coverage over EVERY core (see
        # gos_satellite_ratio's docstring).
        for chunk in all_core_chunks[fam]:
            want = int(round(config.gos_satellite_ratio * chunk.size))
            take = min(want, loose.size - cursor)
            if take <= 0:
                continue
            for v in loose[cursor:cursor + take].tolist():
                d = min(config.gos_satellite_edges, chunk.size)
                gos_extra.append(_star_edges(
                    v, rng.choice(chunk, size=d, replace=False)))
            cursor += take

    planted = (np.concatenate(real_edges, axis=0) if real_edges
               else np.empty((0, 2), dtype=np.int64))

    # Phase 5 — pendant noise edges: one endpoint a (previously isolated)
    # loose sequence, each used at most once, so noise never chains
    # connected components.
    n_noise = int(round(config.noise_edge_fraction * planted.shape[0]))
    pool = (np.concatenate(isolated_loose) if isolated_loose
            else np.empty(0, dtype=np.int64))
    if n_noise and pool.size and n >= 2:
        n_noise = min(n_noise, pool.size)
        pendants = rng.choice(pool, size=n_noise, replace=False)
        partners = rng.integers(0, n, size=n_noise, dtype=np.int64)
        keep = pendants != partners
        noise = np.stack([pendants[keep], partners[keep]], axis=1)
        planted = np.concatenate([planted, noise], axis=0)

    graph = CSRGraph.from_edges(planted, n_vertices=n)
    extra = (np.concatenate(gos_extra, axis=0) if gos_extra
             else np.empty((0, 2), dtype=np.int64))
    gos_graph = CSRGraph.from_edges(
        np.concatenate([planted, extra], axis=0), n_vertices=n)

    return PlantedGraph(
        graph=graph,
        gos_graph=gos_graph,
        family_labels=family_labels,
        core_labels=core_labels,
        config=config,
        seed=seed,
        n_cores=next_core,
        core_family=np.asarray(core_family, dtype=np.int64),
    )
