"""Generic random graphs for scale and robustness testing.

* :func:`gnp_graph` — Erdos-Renyi G(n, p), exact-sample implementation that
  never materializes the full n^2 pair space (geometric skipping).
* :func:`rmat_graph` — R-MAT power-law graph, the standard synthetic stand-in
  for large skewed real-world graphs; used by the large-scale demo bench
  (the paper's 11M-vertex / 640M-edge Pacific Ocean graph, scaled down).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.util.rng import spawn_rng


def gnp_graph(n: int, p: float, seed: int = 0) -> CSRGraph:
    """Erdos-Renyi G(n, p) via geometric edge skipping (O(m) time/memory)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = spawn_rng(seed, "gnp")
    if n < 2 or p == 0.0:
        return CSRGraph.from_edges(np.empty((0, 2), dtype=np.int64), n_vertices=n)
    total_pairs = n * (n - 1) // 2
    if p == 1.0:
        iu, ju = np.triu_indices(n, k=1)
        return CSRGraph.from_edges(np.stack([iu, ju], axis=1), n_vertices=n)

    # Sample pair indices by geometric gaps, then decode to (i, j).
    expected = int(total_pairs * p)
    gaps = rng.geometric(p, size=max(int(expected * 1.2) + 16, 16))
    positions = np.cumsum(gaps) - 1
    while positions.size and positions[-1] < total_pairs:
        extra = rng.geometric(p, size=max(expected // 4, 16))
        positions = np.concatenate(
            [positions, positions[-1] + np.cumsum(extra)])
    positions = positions[positions < total_pairs]

    # Decode linear upper-triangle index k -> (i, j), i < j.  Pairs before
    # row i: i*(n-1) - i*(i-1)/2; the closed form below inverts that.
    k = positions.astype(np.float64)
    i = (n - 2 - np.floor(np.sqrt(-8 * k + 4 * n * (n - 1) - 7) / 2.0 - 0.5)).astype(np.int64)
    j = (positions - (i * (n - 1) - i * (i - 1) // 2) + i + 1).astype(np.int64)
    edges = np.stack([i, j], axis=1)
    return CSRGraph.from_edges(edges, n_vertices=n)


def rmat_graph(scale: int, edge_factor: int = 16, seed: int = 0,
               a: float = 0.57, b: float = 0.19, c: float = 0.19) -> CSRGraph:
    """R-MAT graph with ``2**scale`` vertices and ``edge_factor * n`` arcs.

    Standard Graph500 parameters by default.  Self-loops and duplicates are
    dropped during CSR construction, so the final edge count is slightly
    below ``edge_factor * n``.
    """
    if scale < 1 or scale > 26:
        raise ValueError("scale must be in [1, 26]")
    if edge_factor < 1:
        raise ValueError("edge_factor must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    rng = spawn_rng(seed, "rmat")
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant choice: P(top-left)=a, P(top-right)=b, P(bottom-left)=c.
        right = (r >= a) & (r < a + b) | (r >= a + b + c)
        down = r >= a + b
        src |= down.astype(np.int64) << bit
        dst |= right.astype(np.int64) << bit
    edges = np.stack([src, dst], axis=1)
    return CSRGraph.from_edges(edges, n_vertices=n)
