"""Synthetic benchmark data: planted protein-family similarity graphs.

The paper's quality study uses ~2M GOS sequences with predicted protein
families as the benchmark; neither the sequences nor the families are
available.  This package generates similarity graphs with the same
*structure* and a known ground truth:

* heavy-tailed **families** (the benchmark partition: few huge, many small);
* each family contains one or more dense **cores** (what sequence-sequence
  methods can recover — the "core sets" of protein families) plus a loose
  **periphery** only profile-level methods would relate (modeled as sparse
  or absent edges), reproducing the paper's high-PPV / low-SE regime;
* multi-core families bridged by **hub** vertices, the structure that makes
  the fixed-k GOS linkage "group some highly-connected clusters into a
  relatively loosely-connected cluster";
* occasional **mis-attached periphery** (spurious-homology edges into a
  foreign family's core), the recruitment-vs-precision trade-off that keeps
  gpClust's PPV just under 100%.

Also provides generic random graphs (G(n,p), R-MAT) for scale testing.
"""

from repro.synthdata.bundle import BenchmarkBundle, load_bundle, save_bundle
from repro.synthdata.planted import (
    PlantedFamilyConfig,
    PlantedGraph,
    planted_family_graph,
)
from repro.synthdata.random_graphs import gnp_graph, rmat_graph

__all__ = [
    "BenchmarkBundle",
    "PlantedFamilyConfig",
    "PlantedGraph",
    "gnp_graph",
    "load_bundle",
    "planted_family_graph",
    "rmat_graph",
    "save_bundle",
]
