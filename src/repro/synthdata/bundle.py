"""Benchmark bundle persistence: a planted instance as files on disk.

A bundle is the on-disk form of one :class:`PlantedGraph` — the evaluation
graph, the GOS-pipeline view, and the ground-truth labels — under a common
path stem, matching what ``python -m repro generate`` writes:

    <stem>.npz          the pGraph-analog similarity graph (CSR)
    <stem>.gos.npz      the GOS-pipeline edge view
    <stem>.labels.npz   ground-truth family labels

Lets experiments be generated once and reused across runs/processes.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import load_npz, save_npz
from repro.synthdata.planted import PlantedGraph


def save_bundle(planted: PlantedGraph, stem: str | Path) -> dict[str, Path]:
    """Write a planted instance's three files; returns the paths."""
    stem = Path(stem)
    paths = {
        "graph": stem.with_suffix(".npz"),
        "gos_graph": stem.with_suffix(".gos.npz"),
        "labels": stem.with_suffix(".labels.npz"),
    }
    save_npz(planted.graph, paths["graph"])
    save_npz(planted.gos_graph, paths["gos_graph"])
    np.savez_compressed(paths["labels"],
                        labels=planted.family_labels,
                        core_labels=planted.core_labels,
                        seed=np.array([planted.seed]))
    return paths


class BenchmarkBundle:
    """A loaded benchmark instance (graphs + ground truth)."""

    def __init__(self, graph: CSRGraph, gos_graph: CSRGraph,
                 family_labels: np.ndarray,
                 core_labels: np.ndarray | None = None,
                 seed: int | None = None) -> None:
        if family_labels.size != graph.n_vertices:
            raise ValueError("labels must cover every vertex")
        if gos_graph.n_vertices != graph.n_vertices:
            raise ValueError("graph views must share the vertex universe")
        self.graph = graph
        self.gos_graph = gos_graph
        self.family_labels = family_labels
        self.core_labels = core_labels
        self.seed = seed

    @property
    def n_vertices(self) -> int:
        return self.graph.n_vertices


def load_bundle(stem: str | Path) -> BenchmarkBundle:
    """Load a bundle written by :func:`save_bundle` (or the CLI)."""
    stem = Path(stem)
    graph = load_npz(stem.with_suffix(".npz"))
    gos_path = stem.with_suffix(".gos.npz")
    gos_graph = load_npz(gos_path) if gos_path.exists() else graph
    with np.load(stem.with_suffix(".labels.npz")) as data:
        labels = data["labels"]
        core_labels = data["core_labels"] if "core_labels" in data else None
        seed = int(data["seed"][0]) if "seed" in data else None
    return BenchmarkBundle(graph, gos_graph, labels, core_labels, seed)
