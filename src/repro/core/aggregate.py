"""Vectorized CPU-side aggregation: shingle occurrences -> shingle graph.

"CPU is extremely efficient to handle the sophisticated programming logics,
therefore the task of the CPU is to aggregate the data for the GPU." (Section
III-C.)  After the device streams back per-(trial, segment) shingle
fingerprints, the CPU must gather, for every distinct shingle ``s_j``, the
set ``L(s_j)`` of generators — the paper implements this as a sort; we use
``np.unique``'s sort-based grouping, the whole-array equivalent.

Also home to the split-list merge: when an adjacency list was split across
batches, the true top-``s`` minima are recovered by merging the per-chunk
top-``s`` candidate pairs (a correct merge because the global top-``s`` is
always contained in the union of per-chunk top-``s`` sets).
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.core.passresult import PassResult
from repro.device.kernels import SENTINEL, unpack_pairs
from repro.graph.bipartite import BipartiteCSR
from repro.obs import get_obs
from repro.util.mixhash import fold_fingerprint_array
from repro.util.timer import BUCKET_CPU

_U32_MAX = np.uint64(0xFFFFFFFF)
_U32_BITS = np.uint64(32)

# Expensive sanity scans (for example the O(k*s) sentinel-member check after
# every aggregation) only run when debug checks are on.  Default comes from
# the environment so a production run never pays for them; the test suite
# force-enables them via set_debug_checks().
_DEBUG_CHECKS = os.environ.get("REPRO_DEBUG_CHECKS", "").lower() not in (
    "", "0", "false", "off")


def set_debug_checks(enabled: bool) -> bool:
    """Toggle debug-mode sanity checks; returns the previous setting."""
    global _DEBUG_CHECKS
    previous = _DEBUG_CHECKS
    _DEBUG_CHECKS = bool(enabled)
    return previous


def debug_checks_enabled() -> bool:
    """Whether debug-mode sanity checks are currently on."""
    return _DEBUG_CHECKS


def merge_candidate_pairs(block: np.ndarray, s: int) -> np.ndarray:
    """Sort-and-truncate merge of top-``s`` candidate pairs, in place.

    The global top-``s`` of a list is always contained in the union of its
    chunks' top-``s`` sets, so sorting the SENTINEL-padded candidate block
    along its last axis and keeping the first ``s`` recovers it exactly.
    Shared by every split-list merge call site; ``block`` is sorted in place
    and the returned array is a view of its leading ``s`` lanes.
    """
    block.sort(axis=-1)
    return block[..., :s]


def merge_split_pairs(chunk_pairs: list[np.ndarray], s: int) -> np.ndarray:
    """Merge per-chunk top-``s`` packed pairs into the true top-``s``.

    Parameters
    ----------
    chunk_pairs:
        Per-chunk arrays, each ``(c, n_split, s)`` packed pairs padded with
        ``SENTINEL``; all chunks aligned on the same split-segment axis.
    s:
        Shingle size.

    Returns
    -------
    np.ndarray
        ``(c, n_split, s)`` merged top-``s`` packed pairs (SENTINEL-padded
        where the combined list is still shorter than ``s``).
    """
    if not chunk_pairs:
        raise ValueError("need at least one chunk")
    stacked = np.concatenate(chunk_pairs, axis=2)
    return merge_candidate_pairs(stacked, s)


def merge_splits_into(
    fps_all: np.ndarray,
    top_all: np.ndarray,
    split_chunks: dict[int, list[np.ndarray]],
    s: int,
    salts: np.ndarray,
) -> None:
    """Merge per-chunk top-s candidates of split lists; fix fps in place.

    This is the paper's CPU aggregation step that "will remember this case
    and merge the different copies of shingles into one correct copy for the
    split adjacency list".  The candidate block is built with a single
    vectorized scatter: all pieces stack into one ``(c, total_pieces, s)``
    array and land at their ``(column, piece)`` coordinates in one indexing
    operation, then :func:`merge_candidate_pairs` recovers the true top-s.

    Parameters
    ----------
    fps_all, top_all:
        ``(c, n_rows)`` / ``(c, n_rows, s)`` pass-level accumulators,
        updated in place at the split columns.
    split_chunks:
        Compact row id -> list of ``(c, s)`` packed top-s arrays, one per
        batch chunk the list was split across.
    s, salts:
        Shingle size and per-trial fingerprint salts.
    """
    split_ids = np.array(sorted(split_chunks), dtype=np.int64)
    c = fps_all.shape[0]
    pieces_per = np.array([len(split_chunks[src]) for src in split_ids.tolist()],
                          dtype=np.int64)
    max_pieces = int(pieces_per.max())
    stacked = np.stack([pairs
                        for src in split_ids.tolist()
                        for pairs in split_chunks[src]], axis=1)
    col_idx = np.repeat(np.arange(split_ids.size, dtype=np.int64), pieces_per)
    piece_starts = np.cumsum(pieces_per) - pieces_per
    piece_idx = np.arange(col_idx.size, dtype=np.int64) - np.repeat(piece_starts, pieces_per)
    block = np.full((c, split_ids.size, max_pieces, s), SENTINEL, dtype=np.uint64)
    block[:, col_idx, piece_idx, :] = stacked
    block = block.reshape(c, split_ids.size, max_pieces * s)
    merged = merge_candidate_pairs(block, s)
    top_all[:, split_ids, :] = merged
    fps_all[:, split_ids] = fingerprints_from_pairs(merged, salts)


def fingerprints_from_pairs(pairs: np.ndarray, salts: np.ndarray) -> np.ndarray:
    """Fingerprint packed top-``s`` pairs: ``(c, n, s)`` -> ``(c, n)``.

    Used to (re)compute fingerprints of merged split segments on the CPU,
    matching bit-for-bit what the device computes for unsplit segments.
    """
    _, ids = unpack_pairs(pairs)
    return fold_fingerprint_array(ids, np.asarray(salts, dtype=np.uint64).reshape(-1, 1))


def aggregate_pass(fps_all: np.ndarray, top_all: np.ndarray, lengths: np.ndarray,
                   s: int, segment_ids: np.ndarray | None = None,
                   n_segments: int | None = None) -> PassResult:
    """Build the distinct-shingle graph from per-occurrence arrays.

    Parameters
    ----------
    fps_all:
        ``(c, n_rows)`` fingerprints; column ``i`` are the ``c`` shingle
        fingerprints of row ``i``'s segment (garbage where it is too short).
    top_all:
        ``(c, n_rows, s)`` packed top-``s`` pairs for member extraction.
    lengths:
        ``(n_rows,)`` source segment lengths; only segments with
        ``length >= s`` generate shingles (Section III-B).
    s:
        Shingle size.
    segment_ids:
        Original segment id of each row; identity when None.  Set when the
        caller pre-compacted the input to valid segments only.
    n_segments:
        Total segment count in the original input (defaults to ``n_rows``).

    Returns
    -------
    PassResult
        Canonical (fingerprint-sorted) shingle graph; identical to what the
        serial reference produces for the same inputs.
    """
    fps_all = np.asarray(fps_all, dtype=np.uint64)
    top_all = np.asarray(top_all, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    c, n_rows = fps_all.shape
    if top_all.shape != (c, n_rows, s):
        raise ValueError(f"top_all shape {top_all.shape} != {(c, n_rows, s)}")
    if lengths.shape != (n_rows,):
        raise ValueError("lengths shape mismatch")
    if segment_ids is None:
        segment_ids = np.arange(n_rows, dtype=np.int64)
    else:
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        if segment_ids.shape != (n_rows,):
            raise ValueError("segment_ids shape mismatch")
    n_seg = n_rows if n_segments is None else int(n_segments)

    valid_rows = np.flatnonzero(lengths >= s)
    if valid_rows.size == 0:
        return PassResult(
            fingerprints=np.empty(0, dtype=np.uint64),
            members=np.empty((0, s), dtype=np.int64),
            gen_graph=BipartiteCSR.from_lists([], n_right=n_seg),
            n_input_segments=n_seg,
        )

    if valid_rows.size == n_rows:
        # Fast path for pre-compacted input (the device driver drops short
        # segments before upload): the flattened views are free, no gather.
        fp_flat = fps_all.reshape(-1)
        top_rows = top_all.reshape(c * n_rows, s)
        gen_src = segment_ids
    else:
        fp_flat = fps_all[:, valid_rows].ravel()
        top_rows = top_all[:, valid_rows, :].reshape(-1, s)
        gen_src = segment_ids[valid_rows]

    uniq, first_idx, inverse = np.unique(fp_flat, return_index=True, return_inverse=True)
    # Only the first occurrence of each distinct fingerprint contributes
    # members: gather those rows first, then unpack — O(k*s) instead of a
    # full O(c*n*s) unpack + int64 conversion.
    members = (top_rows[first_idx] & _U32_MAX).astype(np.int64)

    gen_flat = np.tile(gen_src, c)
    gen_graph = _gen_graph_from_pairs(inverse, gen_flat, uniq.size, n_seg)

    result = PassResult(fingerprints=uniq, members=members,
                        gen_graph=gen_graph, n_input_segments=n_seg)
    if _DEBUG_CHECKS:
        _check_no_sentinel_members(result, s)
    return result


def _gen_graph_from_pairs(groups: np.ndarray, gens: np.ndarray,
                          n_groups: int, n_right: int) -> BipartiteCSR:
    """CSR of sorted, deduplicated generator lists per shingle group.

    Equivalent to ``np.lexsort((gens, groups))`` + adjacent dedup, but packs
    both keys into one uint64 so a single in-place sort replaces the two
    stable argsorts and the fancy gathers.  Valid whenever both key ranges
    fit in 32 bits (guaranteed here: occurrence counts and segment ids are
    far below 2**32); duplicate (group, gen) pairs are interchangeable, so
    sort stability is irrelevant to the deduplicated output.
    """
    if n_groups - 1 > int(_U32_MAX) or n_right - 1 > int(_U32_MAX):
        raise ValueError("group/generator ids exceed 32-bit packing range")
    keys = _pack_u32_keys(groups, gens)
    keys.sort()
    return _gen_graph_from_sorted_keys(keys, n_groups, n_right)


def _pack_u32_keys(high: np.ndarray, low: np.ndarray) -> np.ndarray:
    """``high << 32 | low`` as uint64, one allocation.

    Both inputs are non-negative int64, so a bit-level ``view`` reinterprets
    them as uint64 for free (no ``astype`` copies).
    """
    high = np.ascontiguousarray(high, dtype=np.int64)
    low = np.ascontiguousarray(low, dtype=np.int64)
    keys = np.empty(high.size, dtype=np.uint64)
    np.left_shift(high.view(np.uint64), _U32_BITS, out=keys)
    np.bitwise_or(keys, low.view(np.uint64), out=keys)
    return keys


def _gen_graph_from_sorted_keys(keys: np.ndarray, n_groups: int,
                                n_right: int) -> BipartiteCSR:
    """Build the generator CSR from sorted ``group << 32 | gen`` keys."""
    if keys.size:
        keep = np.empty(keys.size, dtype=bool)
        keep[0] = True
        np.not_equal(keys[1:], keys[:-1], out=keep[1:])
        kept = keys[keep]
    else:
        kept = keys
    inv_dedup = (kept >> _U32_BITS).astype(np.int64)
    gen_dedup = (kept & _U32_MAX).astype(np.int64)
    counts = np.bincount(inv_dedup, minlength=n_groups)
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return BipartiteCSR(indptr, gen_dedup, n_right=n_right, validate=False)


class StreamingAggregator:
    """Incremental aggregation of per-trial-chunk partial results.

    The multi-stream engine aggregates each trial chunk's ``(t, n, s)``
    shingle block into a partial :class:`PassResult` as soon as the chunk's
    kernels finish, then discards the block — so the full ``(c, n, s)``
    occurrence arrays are never materialized and peak host memory drops from
    O(c*n*s) to O(chunk*n*s).

    Merging is deterministic and bit-identical to whole-array
    :func:`aggregate_pass`: partials are ordered by their trial offset
    (reconstructing the trial-major flattened order), so the first partial
    containing a fingerprint holds its globally-first occurrence — exactly
    the row ``np.unique(..., return_index=True)`` would have picked — and
    generator lists merge as sorted unions.  ``add`` is thread-safe.

    With a ``device``, the aggregator additionally accepts *device-resident*
    partials (:meth:`add_resident`): the 4-tuple of buffers
    ``shingle_chunk_reduce(..., resident=True)`` leaves on the device.  The
    merge then runs as the device's ``agg_sort``/``agg_boundaries``/
    ``agg_invert`` group-by kernels and only the final merged bipartite CSR
    crosses the PCIe link — bit-identical output to the host merge, without
    the per-chunk host round-trip.  A single aggregator uses one mode or the
    other per pass (the driver decides up front).
    """

    def __init__(self, s: int, n_segments: int, device=None) -> None:
        self.s = int(s)
        self.n_segments = int(n_segments)
        self._device = device
        self._parts: list[tuple[int, PassResult]] = []
        self._resident_parts: list[tuple[int, object, tuple]] = []
        self._lock = threading.Lock()

    def add(self, trial_lo: int, partial: PassResult) -> None:
        """Record the partial result for the trial chunk starting at ``trial_lo``."""
        with self._lock:
            self._parts.append((int(trial_lo), partial))

    def add_resident(self, trial_lo: int, owner, buffers: tuple) -> None:
        """Record a device-resident chunk partial.

        ``owner`` is the device (group member) holding ``buffers`` — the
        4-tuple of ``chunk_reduce`` wire buffers.  Thread-safe, like
        :meth:`add`.
        """
        with self._lock:
            self._resident_parts.append((int(trial_lo), owner, buffers))

    @property
    def n_partials(self) -> int:
        with self._lock:
            return len(self._parts) + len(self._resident_parts)

    def result(self) -> PassResult:
        """Merge all partials into the whole-pass result."""
        with self._lock:
            parts = [p for _, p in sorted(self._parts, key=lambda kv: kv[0])]
            resident = sorted(self._resident_parts, key=lambda kv: kv[0])
        if resident:
            if parts:
                raise ValueError(
                    "cannot mix host and device-resident partials")
            return self._merge_device(resident)
        if not parts:
            raise ValueError("no partial results to merge")
        if len(parts) == 1:
            return parts[0]
        with get_obs().tracer.span("aggregate.merge_partials",
                                   n_partials=len(parts)):
            return self._merge(parts)

    def _merge_device(self, resident: list[tuple[int, object, tuple]]
                      ) -> PassResult:
        """Merge resident partials on the device; download only the result.

        The device merge replicates the host :meth:`_merge` operation
        sequence exactly (stable sorted-run merge, first-occurrence member
        rows, packed-key generator union), so the returned
        :class:`PassResult` is bit-identical; only the final
        ``PassResult``/CSR assembly from the downloaded wire arrays is host
        work, charged to the cpu bucket.
        """
        device = self._device
        parts = [(owner, bufs) for _, owner, bufs in resident]
        with get_obs().tracer.span("aggregate.merge_partials",
                                   n_partials=len(parts), backend="device"):
            fps, members, gen_counts, gens = device.aggregate_merge(
                parts, s=self.s)
            with device.breakdown.timing(BUCKET_CPU):
                gen_indptr = np.zeros(fps.size + 1, dtype=np.int64)
                np.cumsum(gen_counts, out=gen_indptr[1:])
                return PassResult(
                    fingerprints=fps,
                    members=members.astype(np.int64),
                    gen_graph=BipartiteCSR(gen_indptr, gens,
                                           n_right=self.n_segments,
                                           validate=False),
                    n_input_segments=self.n_segments)

    def _merge(self, parts: list[PassResult]) -> PassResult:

        fp_cat = np.concatenate([p.fingerprints for p in parts])
        if fp_cat.size == 0:
            return PassResult(
                fingerprints=np.empty(0, dtype=np.uint64),
                members=np.empty((0, self.s), dtype=np.int64),
                gen_graph=BipartiteCSR.from_lists([], n_right=self.n_segments),
                n_input_segments=self.n_segments,
            )
        members_cat = np.concatenate([p.members for p in parts], axis=0)
        # Every partial's fingerprints are already sorted (PassResult
        # invariant), so fp_cat is a handful of ascending runs: a stable
        # (timsort) argsort merges them in near-linear time instead of
        # re-sorting from scratch.  Stability also makes the first entry of
        # each equal-fingerprint run the globally-first occurrence (partials
        # are ordered by trial offset) — exactly the row
        # ``np.unique(..., return_index=True)`` would have picked.
        order = np.argsort(fp_cat, kind="stable")
        fp_sorted = fp_cat[order]
        is_start = np.empty(fp_sorted.size, dtype=bool)
        is_start[0] = True
        np.not_equal(fp_sorted[1:], fp_sorted[:-1], out=is_start[1:])
        run_starts = np.flatnonzero(is_start)
        uniq = fp_sorted[run_starts]
        members = members_cat[order[run_starts]]
        # Global group id of every concatenated occurrence (the np.unique
        # ``inverse``), recovered by scattering the sorted group ranks back.
        inverse = np.empty(fp_cat.size, dtype=np.int64)
        inverse[order] = np.cumsum(is_start) - 1

        # Union the per-partial generator lists: re-key every CSR entry by
        # its global group id, then one sort + dedup over all entries.
        keys_parts = []
        offset = 0
        for p in parts:
            k = p.fingerprints.size
            graph = p.gen_graph
            if graph.nnz:
                entry_groups = np.repeat(inverse[offset:offset + k],
                                         np.diff(graph.indptr))
                keys_parts.append(_pack_u32_keys(entry_groups, graph.indices))
            offset += k
        if keys_parts:
            keys = np.concatenate(keys_parts)
            # Within each partial the re-keyed entries are already sorted
            # (group ids rise with the partial's fingerprint order, gens are
            # sorted per group), so this is again a merge of sorted runs.
            keys.sort(kind="stable")
        else:
            keys = np.empty(0, dtype=np.uint64)
        gen_graph = _gen_graph_from_sorted_keys(keys, uniq.size, self.n_segments)

        return PassResult(fingerprints=uniq, members=members,
                          gen_graph=gen_graph,
                          n_input_segments=self.n_segments)


def _check_no_sentinel_members(result: PassResult, s: int) -> None:
    """Sanity check: valid segments must never yield SENTINEL-padded members."""
    if result.members.size:
        if np.any(result.members.astype(np.uint64) == (SENTINEL & np.uint64(0xFFFFFFFF))):
            raise AssertionError(
                "sentinel id leaked into shingle members — a segment shorter "
                "than s was treated as valid"
            )
