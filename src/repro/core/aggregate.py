"""Vectorized CPU-side aggregation: shingle occurrences -> shingle graph.

"CPU is extremely efficient to handle the sophisticated programming logics,
therefore the task of the CPU is to aggregate the data for the GPU." (Section
III-C.)  After the device streams back per-(trial, segment) shingle
fingerprints, the CPU must gather, for every distinct shingle ``s_j``, the
set ``L(s_j)`` of generators — the paper implements this as a sort; we use
``np.unique``'s sort-based grouping, the whole-array equivalent.

Also home to the split-list merge: when an adjacency list was split across
batches, the true top-``s`` minima are recovered by merging the per-chunk
top-``s`` candidate pairs (a correct merge because the global top-``s`` is
always contained in the union of per-chunk top-``s`` sets).
"""

from __future__ import annotations

import numpy as np

from repro.core.passresult import PassResult
from repro.device.kernels import SENTINEL, unpack_pairs
from repro.graph.bipartite import BipartiteCSR
from repro.util.mixhash import fold_fingerprint_array


def merge_split_pairs(chunk_pairs: list[np.ndarray], s: int) -> np.ndarray:
    """Merge per-chunk top-``s`` packed pairs into the true top-``s``.

    Parameters
    ----------
    chunk_pairs:
        Per-chunk arrays, each ``(c, n_split, s)`` packed pairs padded with
        ``SENTINEL``; all chunks aligned on the same split-segment axis.
    s:
        Shingle size.

    Returns
    -------
    np.ndarray
        ``(c, n_split, s)`` merged top-``s`` packed pairs (SENTINEL-padded
        where the combined list is still shorter than ``s``).
    """
    if not chunk_pairs:
        raise ValueError("need at least one chunk")
    stacked = np.concatenate(chunk_pairs, axis=2)
    stacked = np.sort(stacked, axis=2)
    return stacked[:, :, :s]


def fingerprints_from_pairs(pairs: np.ndarray, salts: np.ndarray) -> np.ndarray:
    """Fingerprint packed top-``s`` pairs: ``(c, n, s)`` -> ``(c, n)``.

    Used to (re)compute fingerprints of merged split segments on the CPU,
    matching bit-for-bit what the device computes for unsplit segments.
    """
    _, ids = unpack_pairs(pairs)
    return fold_fingerprint_array(ids, np.asarray(salts, dtype=np.uint64).reshape(-1, 1))


def aggregate_pass(fps_all: np.ndarray, top_all: np.ndarray, lengths: np.ndarray,
                   s: int, segment_ids: np.ndarray | None = None,
                   n_segments: int | None = None) -> PassResult:
    """Build the distinct-shingle graph from per-occurrence arrays.

    Parameters
    ----------
    fps_all:
        ``(c, n_rows)`` fingerprints; column ``i`` are the ``c`` shingle
        fingerprints of row ``i``'s segment (garbage where it is too short).
    top_all:
        ``(c, n_rows, s)`` packed top-``s`` pairs for member extraction.
    lengths:
        ``(n_rows,)`` source segment lengths; only segments with
        ``length >= s`` generate shingles (Section III-B).
    s:
        Shingle size.
    segment_ids:
        Original segment id of each row; identity when None.  Set when the
        caller pre-compacted the input to valid segments only.
    n_segments:
        Total segment count in the original input (defaults to ``n_rows``).

    Returns
    -------
    PassResult
        Canonical (fingerprint-sorted) shingle graph; identical to what the
        serial reference produces for the same inputs.
    """
    fps_all = np.asarray(fps_all, dtype=np.uint64)
    top_all = np.asarray(top_all, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    c, n_rows = fps_all.shape
    if top_all.shape != (c, n_rows, s):
        raise ValueError(f"top_all shape {top_all.shape} != {(c, n_rows, s)}")
    if lengths.shape != (n_rows,):
        raise ValueError("lengths shape mismatch")
    if segment_ids is None:
        segment_ids = np.arange(n_rows, dtype=np.int64)
    else:
        segment_ids = np.asarray(segment_ids, dtype=np.int64)
        if segment_ids.shape != (n_rows,):
            raise ValueError("segment_ids shape mismatch")
    n_seg = n_rows if n_segments is None else int(n_segments)

    valid_rows = np.flatnonzero(lengths >= s)
    if valid_rows.size == 0:
        return PassResult(
            fingerprints=np.empty(0, dtype=np.uint64),
            members=np.empty((0, s), dtype=np.int64),
            gen_graph=BipartiteCSR.from_lists([], n_right=n_seg),
            n_input_segments=n_seg,
        )

    fp_flat = fps_all[:, valid_rows].ravel()
    _, ids = unpack_pairs(top_all[:, valid_rows, :])
    members_flat = ids.reshape(-1, s).astype(np.int64)
    gen_flat = np.tile(segment_ids[valid_rows], c)

    uniq, first_idx, inverse = np.unique(fp_flat, return_index=True, return_inverse=True)
    members = members_flat[first_idx]

    # Gather sorted, deduplicated generator lists per distinct shingle.
    order = np.lexsort((gen_flat, inverse))
    inv_sorted = inverse[order]
    gen_sorted = gen_flat[order]
    keep = np.ones(inv_sorted.size, dtype=bool)
    keep[1:] = (inv_sorted[1:] != inv_sorted[:-1]) | (gen_sorted[1:] != gen_sorted[:-1])
    inv_dedup = inv_sorted[keep]
    gen_dedup = gen_sorted[keep]
    counts = np.bincount(inv_dedup, minlength=uniq.size)
    indptr = np.zeros(uniq.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    gen_graph = BipartiteCSR(indptr, gen_dedup, n_right=n_seg, validate=False)

    result = PassResult(fingerprints=uniq, members=members,
                        gen_graph=gen_graph, n_input_segments=n_seg)
    _check_no_sentinel_members(result, s)
    return result


def _check_no_sentinel_members(result: PassResult, s: int) -> None:
    """Sanity check: valid segments must never yield SENTINEL-padded members."""
    if result.members.size:
        if np.any(result.members.astype(np.uint64) == (SENTINEL & np.uint64(0xFFFFFFFF))):
            raise AssertionError(
                "sentinel id leaked into shingle members — a segment shorter "
                "than s was treated as valid"
            )
