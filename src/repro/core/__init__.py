"""The paper's primary contribution: two-pass Shingling clustering.

Public entry points:

* :func:`cluster_graph` — one-call clustering of a similarity graph;
* :class:`GpClust` / :class:`SerialPClust` — the device-backed and serial
  pipeline drivers;
* :class:`ShinglingParams` — algorithm parameters (paper defaults).
"""

from repro.core.decompose import canonicalize_labels, cluster_by_components
from repro.core.minhash import (
    estimate_jaccard,
    estimate_jaccard_matrix,
    exact_jaccard,
    minhash_signatures,
)
from repro.core.params import PassConfig, ShinglingParams
from repro.core.passresult import PassResult
from repro.core.pipeline import GpClust, SerialPClust, cluster_graph
from repro.core.report import overlapping_clusters, partition_labels, report_clusters
from repro.core.result import ClusterResult
from repro.core.serial import serial_shingle_pass
from repro.core.device_exec import device_shingle_pass

__all__ = [
    "ClusterResult",
    "GpClust",
    "PassConfig",
    "PassResult",
    "SerialPClust",
    "ShinglingParams",
    "canonicalize_labels",
    "cluster_by_components",
    "cluster_graph",
    "device_shingle_pass",
    "estimate_jaccard",
    "estimate_jaccard_matrix",
    "exact_jaccard",
    "minhash_signatures",
    "overlapping_clusters",
    "partition_labels",
    "report_clusters",
    "serial_shingle_pass",
]
