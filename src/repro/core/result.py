"""Clustering result container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.params import REPORT_OVERLAPPING, REPORT_PARTITION, ShinglingParams
from repro.util.timer import TimeBreakdown


@dataclass
class ClusterResult:
    """Output of one clustering run (serial or device-backed).

    Exactly one of ``labels`` (partition mode) / ``overlapping`` (overlapping
    mode) is set, matching ``params.report_mode``.
    """

    n_vertices: int
    params: ShinglingParams
    backend: str                                  # "serial" or "device"
    labels: np.ndarray | None = None
    overlapping: list[np.ndarray] | None = None
    timings: TimeBreakdown = field(default_factory=TimeBreakdown)
    n_first_level_shingles: int = 0
    n_second_level_shingles: int = 0

    def __post_init__(self) -> None:
        if self.params.report_mode == REPORT_PARTITION:
            if self.labels is None or self.overlapping is not None:
                raise ValueError("partition mode requires labels only")
            if self.labels.shape != (self.n_vertices,):
                raise ValueError("labels must have one entry per vertex")
        elif self.params.report_mode == REPORT_OVERLAPPING:
            if self.overlapping is None or self.labels is not None:
                raise ValueError("overlapping mode requires cluster list only")

    # ------------------------------------------------------------------ #
    # Cluster accessors
    # ------------------------------------------------------------------ #

    def clusters(self, min_size: int = 1) -> list[np.ndarray]:
        """Clusters as vertex-id arrays, filtered to ``size >= min_size``.

        The paper's quality study uses ``min_size=20`` ("only clusters of
        size >= 20 ... for the qualitative assessment").
        """
        if self.overlapping is not None:
            return [c for c in self.overlapping if c.size >= min_size]
        assert self.labels is not None
        order = np.argsort(self.labels, kind="stable")
        sorted_labels = self.labels[order]
        boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
        groups = np.split(order, boundaries)
        return [np.sort(g) for g in groups if g.size >= min_size]

    def cluster_sizes(self, min_size: int = 1) -> np.ndarray:
        """Sizes of clusters with ``size >= min_size``, descending."""
        if self.overlapping is not None:
            sizes = np.array([c.size for c in self.overlapping], dtype=np.int64)
        else:
            assert self.labels is not None
            sizes = np.bincount(self.labels)
        sizes = sizes[sizes >= min_size]
        return np.sort(sizes)[::-1]

    def n_clusters(self, min_size: int = 1) -> int:
        return int(self.cluster_sizes(min_size=min_size).size)

    def n_clustered_vertices(self, min_size: int = 2) -> int:
        """Vertices recruited into clusters of at least ``min_size``."""
        if self.overlapping is not None:
            members = [c for c in self.overlapping if c.size >= min_size]
            if not members:
                return 0
            return int(np.unique(np.concatenate(members)).size)
        assert self.labels is not None
        sizes = np.bincount(self.labels)
        return int(sizes[sizes >= min_size].sum())

    def summary(self) -> dict:
        """Headline numbers for logs and benchmark reports."""
        sizes = self.cluster_sizes(min_size=2)
        return {
            "backend": self.backend,
            "n_vertices": self.n_vertices,
            "n_clusters(>=2)": int(sizes.size),
            "largest_cluster": int(sizes[0]) if sizes.size else 0,
            "n_first_level_shingles": self.n_first_level_shingles,
            "n_second_level_shingles": self.n_second_level_shingles,
            "total_seconds": self.timings.total,
        }
