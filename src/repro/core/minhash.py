"""Min-wise hashing theory support: Jaccard estimation from signatures.

The Shingling heuristic rests on the min-wise independence property (Broder
et al. [4]): under a random permutation ``h``, ``P[min h(A) == min h(B)] =
J(A, B)`` — so the fraction of trials on which two vertices' neighborhoods
share their minimum element is an unbiased estimator of their neighborhood
Jaccard index (Equation 1).  The s-element shingle generalizes this to
bottom-s sketches.

This module makes that machinery directly usable (and testable): compute
min-hash signatures of all vertex neighborhoods, estimate pairwise Jaccard
from signature agreement, and compare with the exact index.  It is both the
theoretical backbone of the reproduction's correctness argument and a handy
standalone tool for sketch-based similarity search over graphs.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import PassConfig
from repro.device.kernels import SENTINEL, affine_hash, pack_pairs, segmented_select_top_s
from repro.graph.csr import CSRGraph


def minhash_signatures(graph: CSRGraph, config: PassConfig,
                       trial_chunk: int = 16) -> np.ndarray:
    """Per-vertex min-hash signatures over the neighborhood sets.

    Parameters
    ----------
    graph:
        Input graph; the sketched sets are the neighborhoods ``Γ(v)``.
    config:
        Supplies the ``c`` hash pairs; ``config.s`` is ignored (signatures
        are bottom-1 sketches).
    trial_chunk:
        Trials per vectorized round.

    Returns
    -------
    np.ndarray
        ``(c, n)`` uint64 matrix of minimum *hash values*; ``SENTINEL``
        where the neighborhood is empty.
    """
    n = graph.n_vertices
    c = config.c
    a, b = config.a_array, config.b_array
    out = np.full((c, n), SENTINEL, dtype=np.uint64)
    elements = graph.indices.astype(np.uint64)
    for lo in range(0, c, trial_chunk):
        hi = min(lo + trial_chunk, c)
        hashed = affine_hash(elements, a[lo:hi], b[lo:hi], config.prime)
        packed = pack_pairs(hashed, elements)
        top = segmented_select_top_s(packed, graph.indptr, 1)
        out[lo:hi] = top[:, :, 0]
    return out


def estimate_jaccard(signatures: np.ndarray, u: int, v: int) -> float:
    """Estimated Jaccard of ``Γ(u)`` and ``Γ(v)`` from signature agreement.

    Empty-neighborhood vertices estimate 0 against everything (matching the
    convention of :func:`exact_jaccard`).
    """
    su, sv = signatures[:, u], signatures[:, v]
    if bool(np.all(su == SENTINEL)) or bool(np.all(sv == SENTINEL)):
        return 0.0
    return float(np.mean(su == sv))


def estimate_jaccard_matrix(signatures: np.ndarray,
                            vertices: np.ndarray) -> np.ndarray:
    """Pairwise Jaccard estimates among ``vertices`` (small sets only)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    sub = signatures[:, vertices]                       # (c, k)
    agree = (sub[:, :, None] == sub[:, None, :]).mean(axis=0)
    empty = np.all(sub == SENTINEL, axis=0)
    agree[empty, :] = 0.0
    agree[:, empty] = 0.0
    np.fill_diagonal(agree, 1.0)
    agree[empty, empty] = 0.0
    return agree


def exact_jaccard(graph: CSRGraph, u: int, v: int) -> float:
    """Exact neighborhood Jaccard (Equation 1); 0 when both sets empty."""
    nu, nv = graph.neighbors(u), graph.neighbors(v)
    if nu.size == 0 and nv.size == 0:
        return 0.0
    inter = np.intersect1d(nu, nv, assume_unique=True).size
    union = nu.size + nv.size - inter
    return inter / union if union else 0.0


def estimation_error_bound(c: int, confidence: float = 0.95) -> float:
    """Half-width of the (normal-approximation) confidence interval of the
    Jaccard estimate at ``c`` trials — worst case ``p = 1/2``.

    Useful for choosing ``c``: the paper's ``c1=200`` bounds the estimation
    error at ~±0.07 with 95% confidence.
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    # two-sided normal quantile via the probit of (1+confidence)/2
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    return z * 0.5 / np.sqrt(c)
