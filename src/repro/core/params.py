"""Shingling algorithm parameters.

Defaults follow Section III-D of the paper: ``s1=2, c1=200`` for the
first-level shingling and ``s2=2, c2=100`` for the second level, with a fixed
big prime ``P`` for the min-wise hash family.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.execplan import (EXEC_MODES, EXEC_MULTIDEVICE, EXEC_SYNC,
                                 ExecutionPlan)
from repro.util.mixhash import trial_salt
from repro.util.primes import DEFAULT_PRIME, is_probable_prime
from repro.util.rng import HashPair, make_hash_pairs, spawn_rng

REPORT_PARTITION = "partition"
REPORT_OVERLAPPING = "overlapping"

GROUPING_TWO_LEVEL = "two_level"
GROUPING_ONE_SHINGLE = "one_shingle"

KERNEL_SELECT = "select"
KERNEL_SORT = "sort"
KERNEL_FUSED = "fused"

KERNELS = (KERNEL_SELECT, KERNEL_SORT, KERNEL_FUSED)

UNION_VECTORIZED = "vectorized"
UNION_UNIONFIND = "unionfind"

AGG_AUTO = "auto"
AGG_HOST = "host"
AGG_DEVICE = "device"

AGGREGATE_BACKENDS = (AGG_AUTO, AGG_HOST, AGG_DEVICE)

LAUNCH_GRAPH_AUTO = "auto"
LAUNCH_GRAPH_ON = "on"
LAUNCH_GRAPH_OFF = "off"

LAUNCH_GRAPH_MODES = (LAUNCH_GRAPH_AUTO, LAUNCH_GRAPH_ON, LAUNCH_GRAPH_OFF)


@dataclass(frozen=True)
class ShinglingParams:
    """Parameters of the two-pass Shingling heuristic.

    Attributes
    ----------
    s1, c1:
        Shingle size and trial count for the first-level pass.
    s2, c2:
        Shingle size and trial count for the second-level pass.
    prime:
        Modulus ``P`` of the min-wise hash family; must be prime and exceed
        every element id, and stay below ~2**31 so products fit in uint64.
    seed:
        Experiment seed; hash pairs for the two passes are drawn from
        independent streams derived from it.
    kernel:
        Device selection kernel: ``"fused"`` (single-launch fused hash+pack
        over uint32 keys, with on-device dedup reduction where applicable —
        the default), ``"select"`` (s-round segmented min) or ``"sort"``
        (Thrust-faithful full segmented sort).  All bit-identical.
    trial_chunk:
        Trials per device kernel round (bounds device working memory).
    exec_mode:
        Device-path schedule: ``"sync"`` (paper-faithful synchronous),
        ``"prefetch"`` (double-buffered batch uploads), ``"multistream"``
        (concurrent trial-chunk streams) or ``"multidevice"`` (trial chunks
        sharded across a simulated device group).  All modes are
        bit-identical.
    streams:
        Worker count for ``"multistream"`` (ignored otherwise).
    devices:
        Simulated device count.  ``devices > 1`` selects the
        ``"multidevice"`` schedule (overriding ``exec_mode``) and shards
        each pass's trial chunks across a
        :class:`repro.device.group.DeviceGroup` of this size; output is
        bit-identical for every count.
    report_mode:
        Phase III output: ``"partition"`` (union-find, the paper's choice —
        no vertex in two clusters) or ``"overlapping"`` (per-component
        clusters that may overlap).
    include_generators:
        Extension: additionally recruit the generator vertices ``L(s_j)`` of
        each first-level shingle into its cluster (off by default; the
        faithful mode recruits only shingle-constituent vertices).
    union_backend:
        Phase III engine: ``"vectorized"`` label propagation or the scalar
        ``"unionfind"`` reference.  Identical results.
    aggregate_backend:
        Where inter-pass aggregation and Phase III connected components
        run: ``"auto"`` (the default — offload to the device whenever the
        fused kernel's resident partials fit device memory and the
        vectorized Phase III engine is selected, host otherwise),
        ``"host"`` (always the host paths) or ``"device"`` (prefer the
        device offloads; still degrades to host where a prerequisite — the
        fused reduction, resident capacity, the vectorized union backend —
        is missing).  All backends produce bit-identical results.
    launch_graph:
        Kernel launch-graph capture/replay for the shingle hot path
        (:mod:`repro.device.launchgraph`): ``"auto"`` (the default —
        capture a shape class after its first matching chunk, so one-off
        ragged shapes never pay capture cost), ``"on"`` (capture on first
        sight) or ``"off"`` (always launch eagerly).  Replay is
        bit-identical to eager execution across every kernel, exec mode,
        device count and backend.
    grouping:
        Vertex-grouping strategy.  ``"two_level"`` is the paper's middle
        ground (merge via shared *second-level* shingles).  ``"one_shingle"``
        is the alternative Section III-B discusses and rejects — "group two
        vertices into the same cluster if they share at least one shingle,
        and this one shingle based approach can be too aggressive" — kept
        selectable for the ablation that demonstrates exactly that.
    """

    s1: int = 2
    c1: int = 200
    s2: int = 2
    c2: int = 100
    prime: int = DEFAULT_PRIME
    seed: int = 0
    kernel: str = KERNEL_FUSED
    trial_chunk: int = 16
    exec_mode: str = EXEC_SYNC
    streams: int = 2
    devices: int = 1
    report_mode: str = REPORT_PARTITION
    include_generators: bool = False
    union_backend: str = UNION_VECTORIZED
    grouping: str = GROUPING_TWO_LEVEL
    aggregate_backend: str = AGG_AUTO
    launch_graph: str = LAUNCH_GRAPH_AUTO

    def __post_init__(self) -> None:
        for name in ("s1", "s2"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        for name in ("c1", "c2", "trial_chunk"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if not is_probable_prime(self.prime):
            raise ValueError(f"prime={self.prime} is not prime")
        if self.prime > (1 << 31) + (1 << 20):
            raise ValueError("prime too large: products must fit in uint64")
        if self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if self.exec_mode not in EXEC_MODES:
            raise ValueError(f"unknown exec_mode {self.exec_mode!r}")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if self.report_mode not in (REPORT_PARTITION, REPORT_OVERLAPPING):
            raise ValueError(f"unknown report_mode {self.report_mode!r}")
        if self.union_backend not in (UNION_VECTORIZED, UNION_UNIONFIND):
            raise ValueError(f"unknown union_backend {self.union_backend!r}")
        if self.grouping not in (GROUPING_TWO_LEVEL, GROUPING_ONE_SHINGLE):
            raise ValueError(f"unknown grouping {self.grouping!r}")
        if self.aggregate_backend not in AGGREGATE_BACKENDS:
            raise ValueError(
                f"unknown aggregate_backend {self.aggregate_backend!r}")
        if self.launch_graph not in LAUNCH_GRAPH_MODES:
            raise ValueError(f"unknown launch_graph {self.launch_graph!r}")
        if self.grouping == GROUPING_ONE_SHINGLE and self.report_mode != REPORT_PARTITION:
            raise ValueError("one_shingle grouping supports partition mode only")

    def with_overrides(self, **kwargs) -> "ShinglingParams":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)

    def execution_plan(self) -> ExecutionPlan:
        """The :class:`ExecutionPlan` these parameters select.

        ``devices > 1`` always selects the multidevice schedule — the other
        modes have no way to use more than one device.
        """
        mode = EXEC_MULTIDEVICE if self.devices > 1 else self.exec_mode
        return ExecutionPlan(mode=mode, streams=self.streams,
                             devices=self.devices,
                             launch_graph=self.launch_graph)

    # ------------------------------------------------------------------ #
    # Derived per-pass configuration
    # ------------------------------------------------------------------ #

    def pass_config(self, pass_id: int) -> "PassConfig":
        """Hash pairs, salts, and sizes for pass 1 or pass 2."""
        if pass_id == 1:
            s, c, stream = self.s1, self.c1, "pass1"
        elif pass_id == 2:
            s, c, stream = self.s2, self.c2, "pass2"
        else:
            raise ValueError(f"pass_id must be 1 or 2, got {pass_id}")
        rng = spawn_rng(self.seed, stream)
        pairs = make_hash_pairs(c, rng, prime=self.prime)
        salts = np.array([trial_salt(pass_id, j) for j in range(c)], dtype=np.uint64)
        return PassConfig(pass_id=pass_id, s=s, c=c, prime=self.prime,
                          hash_pairs=pairs, salts=salts,
                          aggregate_backend=self.aggregate_backend)


@dataclass(frozen=True)
class PassConfig:
    """Concrete configuration of one shingling pass."""

    pass_id: int
    s: int
    c: int
    prime: int
    hash_pairs: list[HashPair] = field(repr=False)
    salts: np.ndarray = field(repr=False)
    aggregate_backend: str = AGG_AUTO

    @property
    def a_array(self) -> np.ndarray:
        return np.array([p.a for p in self.hash_pairs], dtype=np.uint64)

    @property
    def b_array(self) -> np.ndarray:
        return np.array([p.b for p in self.hash_pairs], dtype=np.uint64)
