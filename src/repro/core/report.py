"""Phase III — reporting dense subgraphs from the second-level shingle graph.

Section III-B gives two formulations:

1. **Overlapping**: enumerate connected components of ``G_II``; for each,
   report the vertices of ``G`` constituting its first-level shingles.  The
   same vertex may appear in several clusters.
2. **Partition** (the paper's choice): union-find over all ``n`` vertices;
   per component, union the vertices constituting the first- and second-level
   shingles.  "The clusters reported in this way represent a partition of the
   input vertices, and no vertex belongs to two different clusters."

Both are implemented, each with two engines producing identical labels: the
scalar :class:`~repro.graph.unionfind.UnionFind` reference and a vectorized
label-propagation bulk union.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import (
    REPORT_OVERLAPPING,
    REPORT_PARTITION,
    UNION_UNIONFIND,
    UNION_VECTORIZED,
)
from repro.core.passresult import PassResult
from repro.graph.components import bipartite_components
from repro.graph.unionfind import UnionFind, union_edges, union_groups
from repro.obs import get_obs
from repro.util.timer import BUCKET_CPU


def _phase3_groups(pass1: PassResult, pass2: PassResult,
                   include_generators: bool) -> tuple[np.ndarray, np.ndarray]:
    """Vertex groups to union, as segmented flat arrays (offsets, members).

    One group per second-level shingle ``t``: its own ``s2`` constituent
    vertices plus the ``s1`` constituents of every first-level shingle in
    ``L'(t)``.  Transitive merging across groups sharing a first-level
    shingle reproduces exactly the connected components of ``G_II``.

    With ``include_generators`` (extension), one extra group per first-level
    shingle in ``S1'``: the shingle's constituents plus its generator
    vertices ``L(s_j)`` — this recruits generator vertices into the cluster.
    """
    members1 = pass1.members                       # (k1, s1) vertex ids
    members2 = pass2.members                       # (k2, s2) vertex ids
    gens2 = pass2.gen_graph                        # t -> first-level shingles
    s1 = pass1.s
    s2 = pass2.s
    k2 = pass2.n_shingles

    deg = gens2.degrees()
    counts = s2 + deg * s1
    offsets = np.zeros(k2 + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    flat = np.empty(int(offsets[-1]), dtype=np.int64)

    if k2:
        # Part A: each t's own constituent vertices.
        pos_a = (offsets[:-1][:, None] + np.arange(s2, dtype=np.int64)).ravel()
        flat[pos_a] = members2.ravel()
        # Part B: constituents of every first-level shingle f in L'(t).
        if gens2.nnz:
            rank_in_t = np.arange(gens2.nnz, dtype=np.int64) - np.repeat(
                gens2.indptr[:-1], deg)
            base = np.repeat(offsets[:-1], deg) + s2 + rank_in_t * s1
            pos_b = (base[:, None] + np.arange(s1, dtype=np.int64)).ravel()
            flat[pos_b] = members1[gens2.indices].ravel()

    if include_generators:
        in_gii = np.zeros(pass1.n_shingles, dtype=bool)
        if gens2.nnz:
            in_gii[gens2.indices] = True
        f_ids = np.flatnonzero(in_gii)
        gens1 = pass1.gen_graph
        extra_counts = 1 + (gens1.indptr[f_ids + 1] - gens1.indptr[f_ids])
        extra_offsets = offsets[-1] + np.concatenate(
            [[0], np.cumsum(extra_counts)])
        extra_flat = np.empty(int(extra_counts.sum()), dtype=np.int64)
        cursor = 0
        for f, cnt in zip(f_ids.tolist(), extra_counts.tolist()):
            extra_flat[cursor] = members1[f, 0]
            extra_flat[cursor + 1:cursor + cnt] = gens1.neighbors(f)
            cursor += cnt
        offsets = np.concatenate([offsets, extra_offsets[1:]])
        flat = np.concatenate([flat, extra_flat])

    return offsets, flat


def _phase3_edges(pass1: PassResult, pass2: PassResult,
                  include_generators: bool) -> tuple[np.ndarray, np.ndarray]:
    """The star edges of :func:`_phase3_groups`, built directly.

    Each group's star links its leader (first member — ``members2[t, 0]``,
    since ``s2 >= 1``) to every member, so the edges can be emitted without
    materializing the interleaved segmented flat array at all: one
    ``np.repeat`` per part instead of scatter-position arithmetic over
    millions of entries.  Connectivity (and therefore the canonical labels,
    which depend only on the partition) is identical to running
    :func:`~repro.graph.unionfind.union_groups` on the grouped form.
    """
    members1 = pass1.members
    members2 = pass2.members
    gens2 = pass2.gen_graph
    s1 = pass1.s
    s2 = pass2.s

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    if pass2.n_shingles:
        leaders = members2[:, 0]
        # Part A: each t's own constituent vertices (the leader IS column 0,
        # so only the remaining columns need edges).
        if s2 > 1:
            src_parts.append(np.repeat(leaders, s2 - 1))
            dst_parts.append(members2[:, 1:].ravel())
        if gens2.nnz:
            # Part B: one edge per (t, f) entry to f's *representative*
            # vertex, plus one chain per referenced f linking its other
            # constituents to that representative — transitively equivalent
            # to linking every constituent to every referencing leader, with
            # |entries| + s1*|referenced| edges instead of s1*|entries|.
            src_parts.append(np.repeat(leaders, gens2.degrees()))
            dst_parts.append(members1[gens2.indices, 0])
            if s1 > 1:
                referenced = np.zeros(pass1.n_shingles, dtype=bool)
                referenced[gens2.indices] = True
                f_ids = np.flatnonzero(referenced)
                src_parts.append(np.repeat(members1[f_ids, 0], s1 - 1))
                dst_parts.append(members1[f_ids, 1:].ravel())

    if include_generators:
        in_gii = np.zeros(pass1.n_shingles, dtype=bool)
        if gens2.nnz:
            in_gii[gens2.indices] = True
        f_ids = np.flatnonzero(in_gii)
        if f_ids.size:
            gens1 = pass1.gen_graph
            deg1 = gens1.degrees()
            src_parts.append(np.repeat(members1[f_ids, 0], deg1[f_ids]))
            dst_parts.append(gens1.indices[np.repeat(in_gii, deg1)])

    if not src_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(src_parts), np.concatenate(dst_parts)


def partition_labels(pass1: PassResult, pass2: PassResult, n_vertices: int,
                     backend: str = UNION_VECTORIZED,
                     include_generators: bool = False,
                     device=None) -> np.ndarray:
    """Phase III partition mode: dense per-vertex cluster labels.

    Unclustered vertices end up in singleton clusters.  Labels are canonical
    (sets ordered by their smallest vertex id == order of first appearance),
    so both backends return identical arrays.

    With a ``device`` and the vectorized backend, the union fixpoint runs
    as the device's hooking + pointer-jumping kernels (bit-identical
    labels); edge construction and canonicalization stay host work, charged
    to the cpu bucket so the Table-I accounting still reconciles.
    """
    tracer = get_obs().tracer
    if backend == UNION_VECTORIZED:
        if device is not None:
            with device.breakdown.timing(BUCKET_CPU):
                src, dst = _phase3_edges(pass1, pass2, include_generators)
            with tracer.span("phase3.union", backend=backend,
                             n_vertices=n_vertices,
                             n_union_edges=int(src.size)):
                roots = union_edges(n_vertices, src, dst, device=device)
            with device.breakdown.timing(BUCKET_CPU):
                _, labels = np.unique(roots, return_inverse=True)
                return labels.astype(np.int64)
        src, dst = _phase3_edges(pass1, pass2, include_generators)
        with tracer.span("phase3.union", backend=backend,
                         n_vertices=n_vertices, n_union_edges=int(src.size)):
            roots = union_edges(n_vertices, src, dst)
        # roots[i] is the min vertex id of i's set, so np.unique's sorted
        # order equals order of first appearance — inverse is canonical.
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)
    offsets, flat = _phase3_groups(pass1, pass2, include_generators)
    if backend == UNION_UNIONFIND:
        with tracer.span("phase3.union", backend=backend,
                         n_vertices=n_vertices,
                         n_groups=int(offsets.size - 1)):
            uf = UnionFind(n_vertices)
            flat_list = flat.tolist()
            bounds = offsets.tolist()
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                uf.union_group(flat_list[lo:hi])
            return uf.labels()
    raise ValueError(f"unknown union backend {backend!r}")


def overlapping_clusters(pass1: PassResult, pass2: PassResult,
                         include_generators: bool = False) -> list[np.ndarray]:
    """Phase III overlapping mode: one vertex set per component of ``G_II``.

    "This formulation could produce potential overlaps between the output
    clusters, as the same input vertex can be part of two entirely different
    shingles and different connected components."

    Returns clusters as sorted vertex-id arrays, ordered deterministically
    by their smallest component label.
    """
    gens2 = pass2.gen_graph
    k1, k2 = pass1.n_shingles, pass2.n_shingles
    left_labels, right_labels = bipartite_components(
        gens2.indptr, gens2.indices, n_right=k1)

    clusters: dict[int, list[np.ndarray]] = {}
    for t in range(k2):
        clusters.setdefault(int(left_labels[t]), []).append(pass2.members[t])
    referenced = np.zeros(k1, dtype=bool)
    if gens2.nnz:
        referenced[gens2.indices] = True
    for f in np.flatnonzero(referenced).tolist():
        entry = clusters.setdefault(int(right_labels[f]), [])
        entry.append(pass1.members[f])
        if include_generators:
            entry.append(pass1.gen_graph.neighbors(f))

    out = []
    for label in sorted(clusters):
        vertices = np.unique(np.concatenate(clusters[label]))
        out.append(vertices.astype(np.int64))
    return out


def one_shingle_labels(pass1: PassResult, n_vertices: int,
                       backend: str = UNION_VECTORIZED) -> np.ndarray:
    """The aggressive single-level grouping Section III-B rejects.

    "Group two vertices into the same cluster if they share at least one
    shingle" — i.e. union the generator set ``L(f)`` of every first-level
    shingle with at least two generators.  No second pass, no second-level
    shingles.  Kept for the ablation demonstrating why the paper chooses
    the two-level middle ground instead.
    """
    gens = pass1.gen_graph
    sizes = gens.degrees()
    keep = sizes >= 2
    counts = sizes[keep]
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    mask = np.repeat(keep, sizes)
    flat = gens.indices[mask]

    if backend == UNION_VECTORIZED:
        roots = union_groups(n_vertices, offsets, flat)
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)
    if backend == UNION_UNIONFIND:
        uf = UnionFind(n_vertices)
        flat_list = flat.tolist()
        bounds = offsets.tolist()
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            uf.union_group(flat_list[lo:hi])
        return uf.labels()
    raise ValueError(f"unknown union backend {backend!r}")


def report_clusters(pass1: PassResult, pass2: PassResult, n_vertices: int, *,
                    mode: str = REPORT_PARTITION,
                    backend: str = UNION_VECTORIZED,
                    include_generators: bool = False,
                    device=None):
    """Dispatch to the requested Phase III formulation.

    Returns a label array (partition mode) or a list of vertex-id arrays
    (overlapping mode).  ``device`` offloads the partition-mode union (see
    :func:`partition_labels`); overlapping mode always runs on the host.
    """
    if mode == REPORT_PARTITION:
        return partition_labels(pass1, pass2, n_vertices,
                                backend=backend,
                                include_generators=include_generators,
                                device=device)
    if mode == REPORT_OVERLAPPING:
        return overlapping_clusters(pass1, pass2,
                                    include_generators=include_generators)
    raise ValueError(f"unknown report mode {mode!r}")
