"""Top-level clustering drivers: serial pClust and device-backed gpClust.

``SerialPClust`` is the paper's serial baseline (Section III-B): pure-Python
shingling with insertion-sort minimum buffers, dict aggregation, and a scalar
union-find Phase III.  ``GpClust`` is Algorithm 2: batches stream through the
simulated device for both shingling levels while the CPU aggregates the
shingle graph in between and reports dense subgraphs at the end.

Both produce identical clusterings for identical parameters — the test suite
asserts this — differing only in where the time goes, which is the subject of
Table I.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.core.device_exec import device_shingle_pass
from repro.core.execplan import (EXEC_MULTIDEVICE, EXEC_PREFETCH, EXEC_SYNC,
                                 ExecutionPlan)
from repro.core.params import (
    AGG_HOST,
    GROUPING_ONE_SHINGLE,
    REPORT_PARTITION,
    UNION_UNIONFIND,
    UNION_VECTORIZED,
    ShinglingParams,
)
from repro.core.report import one_shingle_labels, report_clusters
from repro.core.result import ClusterResult
from repro.core.serial import serial_shingle_pass
from repro.device.device import SimulatedDevice
from repro.device.group import DeviceGroup
from repro.device.timingmodels import DeviceSpec
from repro.graph.csr import CSRGraph
from repro.graph.io import timed_load
from repro.obs import get_obs
from repro.util.timer import BUCKET_CPU, BUCKET_IO, TimeBreakdown

#: Extra measured bucket recording time spent in the two shingling passes of
#: the serial baseline — the part the GPU accelerates (the paper profiles it
#: at ~80% of serial runtime).
BUCKET_SERIAL_SHINGLING = "serial_shingling"


class SerialPClust:
    """The serial Shingling clustering baseline."""

    def __init__(self, params: ShinglingParams | None = None) -> None:
        self.params = params or ShinglingParams()

    def run(self, graph: CSRGraph, io_seconds: float = 0.0) -> ClusterResult:
        """Cluster ``graph``; all compute lands in the ``cpu`` bucket, with
        the shingling share additionally recorded under
        ``serial_shingling``."""
        params = self.params
        breakdown = TimeBreakdown()
        if io_seconds:
            breakdown.add(BUCKET_IO, io_seconds)
        tracer = get_obs().tracer

        t_start = time.perf_counter()

        t0 = time.perf_counter()
        pass1 = serial_shingle_pass(graph.indptr, graph.indices, params.pass_config(1))
        if params.grouping == GROUPING_ONE_SHINGLE:
            pass2 = None
        else:
            indptr2, elements2 = pass1.next_pass_input()
            pass2 = serial_shingle_pass(indptr2, elements2, params.pass_config(2))
        shingle_seconds = time.perf_counter() - t0
        breakdown.add(BUCKET_SERIAL_SHINGLING, shingle_seconds)

        with tracer.span("phase3.report", backend="unionfind"):
            if params.grouping == GROUPING_ONE_SHINGLE:
                output = one_shingle_labels(pass1, graph.n_vertices,
                                            backend=UNION_UNIONFIND)
            else:
                output = report_clusters(
                    pass1, pass2, graph.n_vertices,
                    mode=params.report_mode,
                    backend=UNION_UNIONFIND,
                    include_generators=params.include_generators)
        # The cpu bucket holds the NON-shingling remainder (Phase III etc.),
        # so buckets sum to wall time without double-counting the shingling
        # share recorded above.
        t_end = time.perf_counter()
        breakdown.add(BUCKET_CPU, t_end - t_start - shingle_seconds)
        if tracer.enabled:
            tracer.record("serial_pclust.run", t_start, t_end,
                          attrs={"n_vertices": graph.n_vertices})

        return _make_result(graph.n_vertices, params, "serial", output,
                            breakdown, pass1.n_shingles,
                            pass2.n_shingles if pass2 is not None else 0)


class GpClust:
    """The CPU-GPU clustering pipeline of Algorithm 2."""

    def __init__(self, params: ShinglingParams | None = None,
                 device_spec: DeviceSpec | None = None,
                 max_batch_elements: int | None = None,
                 prefetch: bool = False) -> None:
        self.params = params or ShinglingParams()
        self.device_spec = device_spec or DeviceSpec()
        self.max_batch_elements = max_batch_elements
        # Schedule comes from params.exec_mode; the legacy ``prefetch`` flag
        # upgrades a sync plan to double buffering (the paper's future work —
        # off by default to match the synchronous Thrust 1.5 implementation).
        plan = self.params.execution_plan()
        if prefetch and plan.mode == EXEC_SYNC:
            plan = ExecutionPlan(mode=EXEC_PREFETCH)
        self.plan = plan
        self.prefetch = plan.mode == EXEC_PREFETCH

    def run(self, graph: CSRGraph, io_seconds: float = 0.0,
            device: SimulatedDevice | DeviceGroup | None = None
            ) -> ClusterResult:
        """Cluster ``graph`` through the simulated device (or device group).

        A fresh device (and fresh component breakdown) is created per run
        unless one is supplied; a ``multidevice`` plan with more than one
        device builds a :class:`DeviceGroup` instead.
        """
        params = self.params
        breakdown = TimeBreakdown()
        if io_seconds:
            breakdown.add(BUCKET_IO, io_seconds)
        if device is None:
            if self.plan.mode == EXEC_MULTIDEVICE and self.plan.devices > 1:
                device = DeviceGroup(self.plan.devices, self.device_spec,
                                     breakdown)
            else:
                device = SimulatedDevice(self.device_spec, breakdown)
        else:
            device.set_breakdown(breakdown)
        tracer = device.obs.tracer
        t_start = time.perf_counter()

        with tracer.span("gpclust.pass1"):
            pass1 = device_shingle_pass(
                graph.indptr, graph.indices, params.pass_config(1), device,
                kernel=params.kernel, trial_chunk=params.trial_chunk,
                max_elements=self.max_batch_elements, plan=self.plan)
        if params.grouping == GROUPING_ONE_SHINGLE:
            with breakdown.timing(BUCKET_CPU), \
                    tracer.span("phase3.report"):
                output = one_shingle_labels(pass1, graph.n_vertices,
                                            backend=params.union_backend)
            device.sync_metrics()
            self._record_run(tracer, t_start, graph)
            return _make_result(graph.n_vertices, params, "device", output,
                                breakdown, pass1.n_shingles, 0)

        with breakdown.timing(BUCKET_CPU), \
                tracer.span("gpclust.pass2_input"):
            indptr2, elements2 = pass1.next_pass_input()
        with tracer.span("gpclust.pass2"):
            pass2 = device_shingle_pass(
                indptr2, elements2, params.pass_config(2), device,
                kernel=params.kernel, trial_chunk=params.trial_chunk,
                max_elements=self.max_batch_elements, plan=self.plan)

        # Phase III on the device: vectorized partition-mode union runs as
        # the hooking/pointer-jumping kernels (bit-identical labels).  The
        # scalar union-find backend and overlapping mode stay the host
        # fallback.  No blanket cpu timing around the device path — it
        # charges its own cpu/gpu/transfer buckets internally.
        use_device_cc = (params.aggregate_backend != AGG_HOST
                         and params.report_mode == REPORT_PARTITION
                         and params.union_backend == UNION_VECTORIZED)
        if use_device_cc:
            with tracer.span("phase3.report"):
                output = report_clusters(
                    pass1, pass2, graph.n_vertices,
                    mode=params.report_mode,
                    backend=params.union_backend,
                    include_generators=params.include_generators,
                    device=device)
        else:
            with breakdown.timing(BUCKET_CPU), tracer.span("phase3.report"):
                output = report_clusters(
                    pass1, pass2, graph.n_vertices,
                    mode=params.report_mode,
                    backend=params.union_backend,
                    include_generators=params.include_generators)

        # Flush gauge-backed device accounting (transfer bytes, scratch
        # pool, launch-graph hit rate) so a traced run's embedded metrics
        # snapshot carries the whole device picture.
        device.sync_metrics()
        self._record_run(tracer, t_start, graph)
        return _make_result(graph.n_vertices, params, "device", output,
                            breakdown, pass1.n_shingles, pass2.n_shingles)

    @staticmethod
    def _record_run(tracer, t_start: float, graph: CSRGraph) -> None:
        """Close the root ``gpclust.run`` span over the whole clustering."""
        if tracer.enabled:
            tracer.record("gpclust.run", t_start, time.perf_counter(),
                          attrs={"n_vertices": graph.n_vertices,
                                 "n_edges": graph.n_edges})


def _make_result(n_vertices: int, params: ShinglingParams, backend: str,
                 output, breakdown: TimeBreakdown,
                 k1: int, k2: int) -> ClusterResult:
    if params.report_mode == REPORT_PARTITION:
        return ClusterResult(
            n_vertices=n_vertices, params=params, backend=backend,
            labels=np.asarray(output, dtype=np.int64), timings=breakdown,
            n_first_level_shingles=k1, n_second_level_shingles=k2)
    return ClusterResult(
        n_vertices=n_vertices, params=params, backend=backend,
        overlapping=list(output), timings=breakdown,
        n_first_level_shingles=k1, n_second_level_shingles=k2)


def cluster_graph(graph: CSRGraph | str | Path,
                  params: ShinglingParams | None = None,
                  backend: str = "device",
                  device_spec: DeviceSpec | None = None) -> ClusterResult:
    """One-call convenience API: cluster a graph (or graph file).

    Parameters
    ----------
    graph:
        A :class:`CSRGraph`, or a path to a graph file (``.npz`` or edge
        list) — file loads are timed into the ``disk_io`` bucket, matching
        Algorithm 2's "CPU loads graph from disk I/O" step.
    params:
        Shingling parameters; paper defaults when omitted.
    backend:
        ``"device"`` (gpClust) or ``"serial"`` (the baseline).
    device_spec:
        Device description for the ``"device"`` backend.
    """
    io_seconds = 0.0
    if isinstance(graph, (str, Path)):
        graph, io_seconds = timed_load(graph)
    if backend == "device":
        return GpClust(params, device_spec).run(graph, io_seconds=io_seconds)
    if backend == "serial":
        return SerialPClust(params).run(graph, io_seconds=io_seconds)
    raise ValueError(f"unknown backend {backend!r}")
