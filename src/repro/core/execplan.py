"""Execution plans for the device-backed shingling hot path.

The paper's pipeline is fully synchronous ("the data movement operations are
implemented using synchronous mechanism, and the overhead of transferring
data between CPU and GPU is unavoidable") and names asynchronous operation as
future work (§V).  This module makes the schedule pluggable so the driver in
:mod:`repro.core.device_exec` can run the same batch/trial-chunk work units
under three plans:

``sync``
    The paper-faithful baseline: upload, launch, download, aggregate — one
    operation at a time.
``prefetch``
    Double-buffered transfers: while batch *i* computes, a single copy
    thread uploads batch *i+1*.  The element budget is halved because two
    batches are resident.
``multistream``
    Trial-chunk streams: each pass's ``c`` trials split into independent
    chunks executed concurrently on a small worker pool.  NumPy kernels
    release the GIL, so streams overlap with each other and with CPU-side
    scatter/aggregation — the analogue of issuing kernel rounds on separate
    CUDA streams.  The element budget is divided by the stream count because
    each stream holds its own working set on the device.

``multidevice``
    Chunk sharding across a :class:`~repro.device.group.DeviceGroup`.  When
    device-backed aggregation is active, each member's chunk partials stay
    resident and are gathered onto member 0 over the p2p fabric before the
    on-device merge.

All plans produce bit-identical :class:`~repro.core.passresult.PassResult`s;
only the schedule (and therefore the wall-clock overlap) differs.  Table-I
buckets stay faithful under concurrency: each component accumulates its own
busy seconds.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, TypeVar

_T = TypeVar("_T")
_P = TypeVar("_P")

EXEC_SYNC = "sync"
EXEC_PREFETCH = "prefetch"
EXEC_MULTISTREAM = "multistream"
EXEC_MULTIDEVICE = "multidevice"

EXEC_MODES = (EXEC_SYNC, EXEC_PREFETCH, EXEC_MULTISTREAM, EXEC_MULTIDEVICE)


def trial_chunks(c: int, trial_chunk: int) -> list[tuple[int, int]]:
    """Split ``c`` trials into ``[lo, hi)`` chunks of at most ``trial_chunk``.

    The unit of work every execution plan schedules; shared by the driver
    and by anything that needs to reason about per-chunk shapes (for
    example the on-device reduction's key-packing bound).
    """
    if trial_chunk < 1:
        raise ValueError("trial_chunk must be >= 1")
    return [(lo, min(lo + trial_chunk, c)) for lo in range(0, c, trial_chunk)]


def double_buffer(items: Iterable[_T],
                  prepare: Callable[[_T], _P]) -> Iterator[tuple[_T, _P]]:
    """Yield ``(item, prepare(item))`` with the next item prepared early.

    The generic schedule behind the ``prefetch`` execution mode: while the
    consumer processes item *i*, a single worker thread runs ``prepare`` on
    item *i+1* (NumPy-heavy prepare work releases the GIL, so it genuinely
    overlaps the consumer's kernels).  Results come back strictly in order,
    so downstream output is bit-identical to the sequential schedule.  The
    device aligner runs its bin loop through this to pack alignment bin
    *i+1* while bin *i* scores; the shingling driver in
    :mod:`repro.core.device_exec` keeps its own equivalent inline schedule
    because its prepare step (batch upload) must interleave with explicit
    ``device.free`` calls.
    """
    it = iter(items)
    try:
        head = next(it)
    except StopIteration:
        return
    with ThreadPoolExecutor(max_workers=1) as pool:
        pending = pool.submit(prepare, head)
        for nxt in it:
            prepared = pending.result()
            next_pending = pool.submit(prepare, nxt)
            yield head, prepared
            head, pending = nxt, next_pending
        yield head, pending.result()


@dataclass(frozen=True)
class ExecutionPlan:
    """How one shingling pass schedules its batches and trial chunks.

    Attributes
    ----------
    mode:
        One of :data:`EXEC_MODES`.
    streams:
        Worker count for ``multistream`` (ignored by the other modes).
    devices:
        Member count for ``multidevice``: trial chunks shard across a
        :class:`repro.device.group.DeviceGroup` of this size, one driver
        thread per member.  Ignored by the other modes; ``multidevice``
        with one device degrades to the synchronous schedule.
    launch_graph:
        Launch-graph capture/replay mode (``"auto"``/``"on"``/``"off"``,
        see :mod:`repro.device.launchgraph`).  Orthogonal to the schedule:
        every plan runs the same chunk units, and with replay enabled the
        driver also caches its per-pass shape planning (batch plan, trial
        chunks, compaction) keyed by the batch geometry, so steady-state
        chunks re-derive nothing on the host.  Defaults to ``"off"`` at
        this layer; :class:`repro.core.params.ShinglingParams` defaults the
        pipeline to ``"auto"``.
    """

    mode: str = EXEC_SYNC
    streams: int = 2
    devices: int = 1
    launch_graph: str = "off"

    def __post_init__(self) -> None:
        if self.mode not in EXEC_MODES:
            raise ValueError(
                f"unknown exec mode {self.mode!r}; expected one of {EXEC_MODES}")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if self.launch_graph not in ("auto", "on", "off"):
            raise ValueError(
                f"unknown launch-graph mode {self.launch_graph!r}")

    @property
    def n_workers(self) -> int:
        """Concurrent kernel streams this plan keeps in flight."""
        if self.mode == EXEC_MULTISTREAM:
            return self.streams
        if self.mode == EXEC_MULTIDEVICE:
            return self.devices
        return 1

    @property
    def resident_factor(self) -> int:
        """How many working sets are device-resident at once.

        The batch element budget is divided by this: prefetch keeps two
        batches resident (double buffering); multistream keeps one batch
        but ``streams`` kernel working sets.  ``multidevice`` replicates
        the batch across members, so each device holds one batch plus one
        kernel working set — the per-device budget is undivided.
        """
        if self.mode == EXEC_PREFETCH:
            return 2
        if self.mode == EXEC_MULTISTREAM:
            return self.streams
        return 1

    @classmethod
    def from_mode(cls, mode: str, streams: int = 2, devices: int = 1,
                  launch_graph: str = "off") -> "ExecutionPlan":
        return cls(mode=mode, streams=streams, devices=devices,
                   launch_graph=launch_graph)
