"""Weighted Shingling: the paper's out-of-scope extension, implemented.

The paper notes that edge weights (degrees of pairwise relationship, e.g.
alignment scores) are "sometimes available" but scopes itself to unweighted
inputs.  This module extends the first shingling pass to weighted graphs via
**exponential-race min-hashing** (probability-proportional sampling, the
P-minhash construction): for trial ``j``, the key of arc ``(u, v)`` is

    key_j(u, v) = -ln(U_j(v)) / w(u, v)

where ``U_j(v)`` in (0, 1) derives deterministically from ``(j, v)``.  The
arc with the minimum key wins with probability proportional to its weight,
so heavily-weighted neighbors dominate a vertex's shingles, and two vertices
share shingles in proportion to a weight-sensitive similarity of their
neighborhoods.  With equal weights the winner distribution reduces to the
uniform min-wise sampling of the unweighted algorithm.

The second pass and Phase III are unchanged (generator lists carry no
weights).  Keys are ordered through a coarse 32-bit monotone quantization of
the IEEE-754 bit pattern with the element id as a deterministic tiebreaker,
which makes the serial and vectorized paths bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.core.aggregate import aggregate_pass
from repro.core.params import PassConfig, ShinglingParams
from repro.core.report import report_clusters
from repro.core.result import ClusterResult
from repro.core.passresult import PassResult
from repro.device.kernels import SENTINEL, segmented_select_top_s
from repro.graph.weighted import WeightedCSRGraph
from repro.util.mixhash import fold_fingerprint_array, mix64, mix64_array
from repro.util.timer import BUCKET_CPU, TimeBreakdown

_INV_2_53 = np.float64(2.0 ** -53)


def _uniforms(ids: np.ndarray, salt: np.uint64) -> np.ndarray:
    """Deterministic uniforms in (0, 1): 53 mixed bits of ``(salt, id)``."""
    mixed = mix64_array(ids.astype(np.uint64) ^ np.uint64(salt))
    # Top 53 bits -> (0, 1]; add half-ulp to exclude exact zero.
    return (mixed >> np.uint64(11)).astype(np.float64) * _INV_2_53 + _INV_2_53


def weighted_keys(ids: np.ndarray, weights: np.ndarray,
                  salt: int) -> np.ndarray:
    """Exponential-race keys of a flat arc buffer for one trial."""
    u = _uniforms(np.asarray(ids), np.uint64(salt))
    return -np.log(u) / np.asarray(weights, dtype=np.float64)


def _pack_weighted(keys: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Pack float keys + ids into order-preserving uint64 pairs.

    Positive IEEE doubles order like their bit patterns; the top 32 bits
    give a monotone coarse key, the low 32 bits hold the element id as the
    tiebreaker.  Quantization collisions (~2^-20 relative) only ever fall
    back to id order — deterministic on every path.
    """
    bits = keys.astype(np.float64).view(np.uint64) >> np.uint64(32)
    ids = np.asarray(ids, dtype=np.uint64)
    if ids.size and int(ids.max()) >> 32:
        raise ValueError("element ids must fit in 32 bits")
    return (bits << np.uint64(32)) | ids


def weighted_shingle_pass(wgraph: WeightedCSRGraph, config: PassConfig,
                          backend: str = "vectorized") -> PassResult:
    """One weighted shingling pass over all vertex neighborhoods.

    Both backends produce identical results; ``"serial"`` is the loop-based
    reference, ``"vectorized"`` the production whole-array path.
    """
    indptr = wgraph.indptr
    elements = wgraph.indices
    weights = wgraph.weights
    lengths = np.diff(indptr)
    s, c = config.s, config.c
    salts = config.salts

    if backend == "vectorized":
        n_seg = lengths.size
        fps_all = np.zeros((c, n_seg), dtype=np.uint64)
        top_all = np.full((c, n_seg, s), SENTINEL, dtype=np.uint64)
        for j in range(c):
            keys = weighted_keys(elements, weights, int(salts[j]))
            packed = _pack_weighted(keys, elements)
            top = segmented_select_top_s(packed[None, :], indptr, s)[0]
            top_all[j] = top
            ids = (top & np.uint64(0xFFFFFFFF))
            fps_all[j] = fold_fingerprint_array(
                ids, np.uint64(salts[j]))
        return aggregate_pass(fps_all, top_all, lengths, s)

    if backend == "serial":
        from repro.core.serial import _table_to_passresult
        from repro.util.mixhash import fold_fingerprint

        table: dict[int, tuple[tuple[int, ...], list[int]]] = {}
        for seg in range(lengths.size):
            lo, hi = int(indptr[seg]), int(indptr[seg + 1])
            if hi - lo < s:
                continue
            seg_ids = elements[lo:hi]
            seg_w = weights[lo:hi]
            for j in range(c):
                keys = weighted_keys(seg_ids, seg_w, int(salts[j]))
                packed = _pack_weighted(keys, seg_ids)
                order = np.argsort(packed)[:s]
                members = tuple(int(v) for v in seg_ids[order])
                fp = fold_fingerprint(members, int(salts[j]))
                entry = table.get(fp)
                if entry is None:
                    table[fp] = (members, [seg])
                else:
                    entry[1].append(seg)
        return _table_to_passresult(table, s, lengths.size)

    raise ValueError(f"unknown backend {backend!r}")


class WeightedGpClust:
    """Weighted variant of the clustering pipeline.

    Pass 1 samples neighbors proportionally to edge weight; pass 2 and
    Phase III run the standard unweighted machinery on the shingle graph.
    """

    def __init__(self, params: ShinglingParams | None = None) -> None:
        self.params = params or ShinglingParams()

    def run(self, wgraph: WeightedCSRGraph) -> ClusterResult:
        from repro.core.device_exec import device_shingle_pass
        from repro.device.device import SimulatedDevice

        params = self.params
        breakdown = TimeBreakdown()
        with breakdown.timing(BUCKET_CPU):
            pass1 = weighted_shingle_pass(wgraph, params.pass_config(1))
            indptr2, elements2 = pass1.next_pass_input()
            pass2 = device_shingle_pass(
                indptr2, elements2, params.pass_config(2),
                SimulatedDevice(),
                kernel=params.kernel, trial_chunk=params.trial_chunk)
            output = report_clusters(
                pass1, pass2, wgraph.n_vertices,
                mode=params.report_mode,
                backend=params.union_backend,
                include_generators=params.include_generators)
        if params.report_mode == "partition":
            return ClusterResult(
                n_vertices=wgraph.n_vertices, params=params,
                backend="weighted", labels=np.asarray(output, dtype=np.int64),
                timings=breakdown,
                n_first_level_shingles=pass1.n_shingles,
                n_second_level_shingles=pass2.n_shingles)
        return ClusterResult(
            n_vertices=wgraph.n_vertices, params=params, backend="weighted",
            overlapping=list(output), timings=breakdown,
            n_first_level_shingles=pass1.n_shingles,
            n_second_level_shingles=pass2.n_shingles)


def winner_probabilities(weights: np.ndarray, salt_count: int = 20_000,
                         seed: int = 0) -> np.ndarray:
    """Monte-Carlo winner frequencies of one weighted neighborhood.

    Diagnostic used by tests to verify the exponential-race property
    ``P(v wins) = w_v / sum(w)``: runs many independent trials over a single
    list and counts which element takes the minimum key.
    """
    weights = np.asarray(weights, dtype=np.float64)
    ids = np.arange(weights.size)
    counts = np.zeros(weights.size, dtype=np.int64)
    base = mix64(seed)
    for j in range(salt_count):
        keys = weighted_keys(ids, weights, mix64(base ^ j))
        counts[int(keys.argmin())] += 1
    return counts / salt_count
