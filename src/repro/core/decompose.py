"""pClust's divide-and-conquer driver: cluster per connected component.

"In order to process the large scale input graph, connected component
detection is applied to the input graph to break down the large problem
instance into subproblems of much smaller size.  For each connected
component, we developed an approach based on ... Shingling ... to report
clusters." (Section I-A.)

Because every shingle of a vertex is a subset of its neighborhood, shingles
never span connected components, so clustering each component independently
yields *exactly* the same partition as one global run — provided components
keep their original vertex ids (the min-wise hashes are functions of the
ids).  This module exploits that: components are packed into balanced
buckets and clustered concurrently on a thread pool, one simulated device
per worker — the shared-memory parallel pClust of Rytsareva et al. [18],
which the paper cites as its CPU-parallel predecessor.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.params import ShinglingParams
from repro.core.pipeline import GpClust, SerialPClust
from repro.core.result import ClusterResult
from repro.device.timingmodels import DeviceSpec
from repro.graph.components import connected_components
from repro.graph.csr import CSRGraph
from repro.util.timer import TimeBreakdown


def canonicalize_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel a partition so groups are numbered by their smallest member.

    Two label arrays describe the same partition iff their canonical forms
    are equal; all pipeline drivers return this form.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size == 0:
        return labels.copy()
    # Map each group label to the smallest vertex carrying it.
    min_vertex = np.full(int(labels.max()) + 1, labels.size, dtype=np.int64)
    np.minimum.at(min_vertex, labels, np.arange(labels.size, dtype=np.int64))
    group_min = min_vertex[labels]
    _, canonical = np.unique(group_min, return_inverse=True)
    return canonical.astype(np.int64)


def _component_buckets(component_labels: np.ndarray, graph: CSRGraph,
                       n_buckets: int) -> list[np.ndarray]:
    """Pack components into ``n_buckets`` groups balanced by edge count.

    Greedy longest-processing-time assignment over per-component edge
    weights; returns, per bucket, the vertex ids it owns.
    """
    degrees = graph.degrees()
    n_comp = int(component_labels.max()) + 1 if component_labels.size else 0
    comp_weight = np.bincount(component_labels, weights=degrees,
                              minlength=n_comp)
    order = np.argsort(comp_weight)[::-1]
    loads = np.zeros(n_buckets, dtype=np.float64)
    assignment = np.zeros(n_comp, dtype=np.int64)
    for comp in order.tolist():
        bucket = int(loads.argmin())
        assignment[comp] = bucket
        loads[bucket] += comp_weight[comp]
    vertex_bucket = assignment[component_labels]
    return [np.flatnonzero(vertex_bucket == b) for b in range(n_buckets)]


def _masked_graph(graph: CSRGraph, vertices: np.ndarray) -> CSRGraph:
    """The graph restricted to ``vertices`` WITHOUT relabeling.

    Other vertices keep empty adjacency lists, so vertex ids — and hence
    min-wise hash values and shingle fingerprints — are unchanged.
    """
    keep = np.zeros(graph.n_vertices, dtype=bool)
    keep[vertices] = True
    mask = keep[np.repeat(np.arange(graph.n_vertices), graph.degrees())]
    lengths = np.diff(graph.indptr) * keep
    indptr = np.zeros(graph.n_vertices + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    return CSRGraph(indptr, graph.indices[mask], validate=False)


def cluster_by_components(
    graph: CSRGraph,
    params: ShinglingParams | None = None,
    backend: str = "device",
    device_spec: DeviceSpec | None = None,
    n_workers: int = 1,
) -> ClusterResult:
    """Cluster each connected component independently; merge the results.

    Parameters
    ----------
    graph:
        The input similarity graph.
    params:
        Shingling parameters (partition report mode required — per-component
        merging of overlapping clusters is ambiguous and not supported).
    backend:
        ``"device"`` or ``"serial"`` per-bucket pipeline.
    device_spec:
        Device description for the device backend (one device per worker).
    n_workers:
        Concurrent buckets; components are balanced over workers by edge
        count and clustered on a thread pool (NumPy kernels release the
        GIL, so buckets genuinely overlap).

    Returns
    -------
    ClusterResult
        Identical partition to a single global run with the same params.
    """
    params = params or ShinglingParams()
    if params.report_mode != "partition":
        raise ValueError("cluster_by_components requires partition mode")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")

    component_labels = connected_components(graph)
    buckets = [v for v in _component_buckets(component_labels, graph,
                                             n_workers) if v.size]

    def run_bucket(vertices: np.ndarray) -> ClusterResult:
        sub = _masked_graph(graph, vertices)
        if backend == "device":
            return GpClust(params, device_spec).run(sub)
        if backend == "serial":
            return SerialPClust(params).run(sub)
        raise ValueError(f"unknown backend {backend!r}")

    if len(buckets) <= 1 or n_workers == 1:
        results = [run_bucket(v) for v in buckets]
    else:
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            results = list(pool.map(run_bucket, buckets))

    # Merge: bucket partitions have disjoint non-singleton support, so a
    # per-bucket label offset keeps groups distinct; canonicalization then
    # matches the global run's labeling exactly.
    merged = np.arange(graph.n_vertices, dtype=np.int64)
    offset = graph.n_vertices
    timings = TimeBreakdown()
    k1 = k2 = 0
    for vertices, result in zip(buckets, results):
        assert result.labels is not None
        merged[vertices] = result.labels[vertices] + offset
        offset += int(result.labels.max()) + 1
        timings.merge(result.timings)
        k1 += result.n_first_level_shingles
        k2 += result.n_second_level_shingles

    return ClusterResult(
        n_vertices=graph.n_vertices,
        params=params,
        backend=f"{backend}+components",
        labels=canonicalize_labels(merged),
        timings=timings,
        n_first_level_shingles=k1,
        n_second_level_shingles=k2,
    )
