"""Result of one shingling pass: the bipartite shingle graph.

A pass converts an adjacency structure (left nodes with element lists) into
the next-level bipartite graph: distinct shingles on the left, each with

* its **members** — the ``s`` elements constituting the shingle (for pass 1
  and pass 2 alike these are vertex ids of the input graph ``G``, because
  pass 2 shingles the generator lists ``L(s_j)``, which contain vertices);
* its **generators** — the left nodes of the pass input whose lists produced
  it (vertices for pass 1; first-level shingle indices for pass 2).

This is exactly ``G_I(S1, V')`` / ``G_II(S2, S1')`` from Figure 2 in
adjacency-list form, plus the member tuples Phase III needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteCSR


@dataclass(frozen=True)
class PassResult:
    """Distinct shingles produced by one pass.

    Attributes
    ----------
    fingerprints:
        ``(k,)`` uint64, sorted ascending — the distinct shingle identities.
    members:
        ``(k, s)`` int64 — constituent element ids in min-hash order.
    gen_graph:
        BipartiteCSR with ``n_left == k``; ``gen_graph.neighbors(i)`` is the
        sorted list of generator ids of shingle ``i`` (the set ``L(s_i)``).
    n_input_segments:
        Number of left nodes in the pass input (for bookkeeping).
    """

    fingerprints: np.ndarray
    members: np.ndarray
    gen_graph: BipartiteCSR
    n_input_segments: int

    def __post_init__(self) -> None:
        k = self.fingerprints.size
        if self.members.shape[0] != k:
            raise ValueError("members row count must equal fingerprint count")
        if self.gen_graph.n_left != k:
            raise ValueError("gen_graph left size must equal fingerprint count")
        if k > 1 and not np.all(np.diff(self.fingerprints.astype(np.uint64)) > 0):
            raise ValueError("fingerprints must be sorted ascending and distinct")

    @property
    def n_shingles(self) -> int:
        return int(self.fingerprints.size)

    @property
    def s(self) -> int:
        return int(self.members.shape[1]) if self.members.ndim == 2 else 0

    def generator_lists(self) -> BipartiteCSR:
        """Alias emphasizing that gen_graph's lists are the ``L(s_j)`` sets."""
        return self.gen_graph

    def next_pass_input(self) -> tuple[np.ndarray, np.ndarray]:
        """The adjacency structure the next pass shingles: ``(indptr, elements)``.

        Pass 2's input lists are the generator lists of pass 1 ("Using G_I as
        the new input", Section III-B).
        """
        return self.gen_graph.indptr, self.gen_graph.indices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PassResult):
            return NotImplemented
        return (
            np.array_equal(self.fingerprints, other.fingerprints)
            and np.array_equal(self.members, other.members)
            and self.gen_graph == other.gen_graph
        )

    def __repr__(self) -> str:
        return (f"PassResult(n_shingles={self.n_shingles}, s={self.s}, "
                f"generators_nnz={self.gen_graph.nnz})")
