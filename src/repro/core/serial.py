"""The serial Shingling reference (pClust's algorithm, Section III-B).

This is the faithful pure-Python rendition of the paper's serial
implementation: per-vertex, per-trial enumeration of the adjacency list with
an s-sized insertion-sorted minimum buffer ("the small values of s expected
to be used in practice justify a simple insertion sort-based approach"),
followed by fingerprint-keyed aggregation into the shingle graph.

It is deliberately *not* vectorized: it plays the role of the paper's serial
baseline in Table I, and it is the ground truth the device path is validated
against — both must produce identical :class:`PassResult` objects for the
same hash pairs.  The ``aggregate_backend`` switch never applies here: the
serial path always aggregates and unions on the host, which is precisely
what makes it the reference the device aggregation/Phase-III offloads are
checked against for bit-identity.
"""

from __future__ import annotations

from bisect import insort

import numpy as np

from repro.core.params import PassConfig
from repro.core.passresult import PassResult
from repro.graph.bipartite import BipartiteCSR
from repro.obs import get_obs
from repro.util.mixhash import fold_fingerprint


def serial_top_s(neighbors, a: int, b: int, prime: int, s: int) -> list[tuple[int, int]]:
    """Top-``s`` (hash, id) pairs of one adjacency list under one trial.

    Returns pairs sorted by hash ascending; fewer than ``s`` pairs when the
    list is shorter than ``s``.  Ties cannot occur: the affine map is a
    bijection mod P and neighbor lists are duplicate-free.
    """
    top: list[tuple[int, int]] = []
    worst = -1
    for v in neighbors:
        hv = (a * v + b) % prime
        if len(top) < s:
            insort(top, (hv, v))
            worst = top[-1][0]
        elif hv < worst:
            insort(top, (hv, v))
            top.pop()
            worst = top[-1][0]
    return top


def serial_shingle_pass(indptr: np.ndarray, elements: np.ndarray,
                        config: PassConfig) -> PassResult:
    """Run one full shingling pass serially; returns the shingle graph.

    Parameters
    ----------
    indptr, elements:
        The input adjacency structure in CSR form (left-node lists).
    config:
        Pass configuration (s, c, hash pairs, salts).

    Notes
    -----
    Aggregation ("gather all vertices that generated each shingle") is done
    with a fingerprint-keyed dict, the serial equivalent of the sort-based
    gather the paper describes.
    """
    s, prime = config.s, config.prime
    coeffs = [(p.a, p.b) for p in config.hash_pairs]
    salts = [int(x) for x in config.salts.tolist()]

    tracer = get_obs().tracer
    t0 = tracer.clock() if tracer.enabled else 0.0

    indptr_l = np.asarray(indptr, dtype=np.int64).tolist()
    elements_l = np.asarray(elements, dtype=np.int64).tolist()
    n_seg = len(indptr_l) - 1

    # fingerprint -> (members tuple, [generator ids])
    table: dict[int, tuple[tuple[int, ...], list[int]]] = {}

    for seg in range(n_seg):
        lo, hi = indptr_l[seg], indptr_l[seg + 1]
        if hi - lo < s:
            continue  # only vertices with at least s links generate shingles
        neighbors = elements_l[lo:hi]
        for (a, b), salt in zip(coeffs, salts):
            top = serial_top_s(neighbors, a, b, prime, s)
            members = tuple(v for _, v in top)
            fp = fold_fingerprint(members, salt)
            entry = table.get(fp)
            if entry is None:
                table[fp] = (members, [seg])
            else:
                entry[1].append(seg)

    result = _table_to_passresult(table, s, n_seg)
    if tracer.enabled:
        tracer.record("serial.shingle_pass", t0, tracer.clock(),
                      attrs={"n_segments": n_seg, "c": len(coeffs), "s": s,
                             "n_shingles": int(result.n_shingles)})
    return result


def _table_to_passresult(table: dict[int, tuple[tuple[int, ...], list[int]]],
                         s: int, n_seg: int) -> PassResult:
    """Convert the aggregation dict into a canonical PassResult."""
    fps = sorted(table)
    k = len(fps)
    fingerprints = np.array(fps, dtype=np.uint64)
    members = np.zeros((k, s), dtype=np.int64)
    gen_lists: list[np.ndarray] = []
    for i, fp in enumerate(fps):
        mem, gens = table[fp]
        members[i] = mem
        gen_lists.append(np.array(sorted(set(gens)), dtype=np.int64))
    gen_graph = BipartiteCSR.from_lists(gen_lists, n_right=n_seg)
    return PassResult(fingerprints=fingerprints, members=members,
                      gen_graph=gen_graph, n_input_segments=n_seg)
