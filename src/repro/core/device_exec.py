"""Device-path execution of one shingling pass (Algorithm 2's inner loops).

The driver here is the CPU side of the paper's computing framework
(Figure 3): it partitions the input adjacency structure into device-sized
batches, uploads them, launches the shingle-extraction kernels, and
aggregates the downloaded shingles — including the merge of adjacency lists
that were split across batches.

Every step is charged to the right Table-I bucket: batch planning and
aggregation to ``cpu``, kernel work to ``gpu`` (inside the device facade),
transfers to ``data_c2g``/``data_g2c``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.aggregate import aggregate_pass, fingerprints_from_pairs
from repro.core.params import PassConfig
from repro.core.passresult import PassResult
from repro.device.batching import max_batch_elements, plan_batches
from repro.device.device import SimulatedDevice
from repro.device.kernels import SENTINEL
from repro.util.timer import BUCKET_CPU


def device_shingle_pass(
    indptr: np.ndarray,
    elements: np.ndarray,
    config: PassConfig,
    device: SimulatedDevice,
    *,
    kernel: str = "select",
    trial_chunk: int = 16,
    max_elements: int | None = None,
    prefetch: bool = False,
) -> PassResult:
    """Run one full shingling pass through the simulated device.

    Parameters
    ----------
    indptr, elements:
        Input adjacency structure in CSR form.
    config:
        Pass configuration (s, c, hash pairs, salts).
    device:
        The simulated device; its breakdown accumulates component times.
    kernel, trial_chunk:
        Kernel selection and trials-per-round (see :class:`SimulatedDevice`).
    max_elements:
        Batch element budget override; by default derived from the device's
        memory capacity.
    prefetch:
        Asynchronous double-buffered transfers — the paper's stated future
        work ("better performance could be achieved through asynchronous
        operations provided in CUDA C/C++").  The next batch's upload runs
        on a copy thread while the current batch computes; the element
        budget is halved because double buffering keeps two batches resident.

    Returns
    -------
    PassResult
        Identical to :func:`repro.core.serial.serial_shingle_pass` on the
        same inputs and configuration.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    elements = np.asarray(elements, dtype=np.int64)
    breakdown = device.breakdown
    s, c = config.s, config.c
    a, b, salts = config.a_array, config.b_array, config.salts

    with breakdown.timing(BUCKET_CPU):
        if max_elements is None:
            max_elements = max_batch_elements(
                device.spec.memory_capacity_bytes, trial_chunk, s)
        if prefetch:
            max_elements = max(max_elements // 2, 1)  # double buffering
        all_lengths = np.diff(indptr)
        n_seg = all_lengths.size
        # CPU-side compaction: segments shorter than s generate no shingles
        # (Section III-B: shingles exist only for "any vertex ... that has
        # at least s links"), so they never ship to the device.  The serial
        # reference skips them the same way.
        valid = all_lengths >= s
        valid_ids = np.flatnonzero(valid)
        lengths = all_lengths[valid_ids]
        elements = elements[np.repeat(valid, all_lengths)]
        compact_indptr = np.zeros(valid_ids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=compact_indptr[1:])

        plan = plan_batches(compact_indptr, max_elements)
        n_rows = valid_ids.size
        fps_all = np.zeros((c, n_rows), dtype=np.uint64)
        top_all = np.full((c, n_rows, s), SENTINEL, dtype=np.uint64)
        # compact row id -> list of (c, s) packed top-s arrays, one per chunk
        split_chunks: dict[int, list[np.ndarray]] = {}

    def _upload(batch):
        return (device.upload(batch.slice_elements(elements)),
                device.upload(batch.local_indptr))

    executor = ThreadPoolExecutor(max_workers=1) if prefetch else None
    pending = None
    try:
        for bi, batch in enumerate(plan):
            if executor is None:
                d_elem, d_indptr = _upload(batch)
            else:
                # Double buffering: this batch was prefetched during the
                # previous batch's kernels; kick off the next one now.
                d_elem, d_indptr = (pending.result() if pending is not None
                                    else _upload(batch))
                pending = (executor.submit(_upload, plan.batches[bi + 1])
                           if bi + 1 < plan.n_batches else None)
            fps_b, top_b = device.shingle_batch(
                d_elem, d_indptr, a=a, b=b, prime=config.prime, s=s,
                salts=salts, kernel=kernel, trial_chunk=trial_chunk)
            device.free(d_elem, d_indptr)

            with breakdown.timing(BUCKET_CPU):
                whole = ~batch.is_split
                if whole.any():
                    seg_ids = batch.segment_ids[whole]
                    fps_all[:, seg_ids] = fps_b[:, whole]
                    top_all[:, seg_ids, :] = top_b[:, whole, :]
                for local_idx in np.flatnonzero(batch.is_split):
                    src = int(batch.segment_ids[local_idx])
                    split_chunks.setdefault(src, []).append(top_b[:, local_idx, :])
    finally:
        if executor is not None:
            executor.shutdown(wait=True)

    with breakdown.timing(BUCKET_CPU):
        if split_chunks:
            _merge_splits_into(fps_all, top_all, split_chunks, s, salts)
        result = aggregate_pass(fps_all, top_all, lengths, s,
                                segment_ids=valid_ids, n_segments=n_seg)
    return result


def _merge_splits_into(
    fps_all: np.ndarray,
    top_all: np.ndarray,
    split_chunks: dict[int, list[np.ndarray]],
    s: int,
    salts: np.ndarray,
) -> None:
    """Merge per-chunk top-s candidates of split lists; fix fps in place.

    This is the paper's CPU aggregation step that "will remember this case
    and merge the different copies of shingles into one correct copy for the
    split adjacency list".  The global top-``s`` of a list is always
    contained in the union of its chunks' top-``s`` sets, so sorting the
    padded candidate block and keeping the first ``s`` recovers it exactly.
    """
    split_ids = np.array(sorted(split_chunks), dtype=np.int64)
    c = fps_all.shape[0]
    max_pieces = max(len(v) for v in split_chunks.values())
    block = np.full((c, split_ids.size, max_pieces * s), SENTINEL, dtype=np.uint64)
    for col, src in enumerate(split_ids.tolist()):
        for piece, pairs in enumerate(split_chunks[src]):
            block[:, col, piece * s:(piece + 1) * s] = pairs
    block.sort(axis=2)
    merged = block[:, :, :s]
    top_all[:, split_ids, :] = merged
    fps_all[:, split_ids] = fingerprints_from_pairs(merged, salts)
