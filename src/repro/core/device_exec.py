"""Device-path execution of one shingling pass (Algorithm 2's inner loops).

The driver here is the CPU side of the paper's computing framework
(Figure 3): it partitions the input adjacency structure into device-sized
batches, uploads them, launches the shingle-extraction kernels, and
aggregates the downloaded shingles — including the merge of adjacency lists
that were split across batches.

The schedule is pluggable via :class:`repro.core.execplan.ExecutionPlan`:

* ``sync`` — the paper-faithful synchronous pipeline;
* ``prefetch`` — double-buffered uploads (next batch's transfer overlaps the
  current batch's kernels on a copy thread);
* ``multistream`` — trial-chunk streams: each pass's ``c`` trials split into
  independent chunks executed concurrently on a worker pool.  NumPy kernels
  release the GIL, so streams overlap with each other and with CPU-side
  aggregation.

In the dominant single-batch regime every mode aggregates **streamingly**:
each trial chunk's ``(t, n, s)`` block is folded into a partial result and
dropped as soon as its kernels finish (see
:class:`repro.core.aggregate.StreamingAggregator`), so peak host memory is
O(chunk * n * s) instead of O(c * n * s).  When the graph needs several
batches, per-batch scatter requires the full accumulators (bounded by the
same device-capacity math as before); the streaming path resumes once a
batch covers the input.

Every step is charged to the right Table-I bucket: batch planning and
aggregation to ``cpu``, kernel work to ``gpu`` (inside the device facade),
transfers to ``data_c2g``/``data_g2c``.  All modes produce results
bit-identical to :func:`repro.core.serial.serial_shingle_pass`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.aggregate import (StreamingAggregator, aggregate_pass,
                                  merge_splits_into)
from repro.core.execplan import (EXEC_MULTIDEVICE, EXEC_PREFETCH, EXEC_SYNC,
                                 ExecutionPlan, trial_chunks)
from repro.core.params import AGG_AUTO, AGG_HOST, KERNEL_FUSED, PassConfig
from repro.core.passresult import PassResult
from repro.device import launchgraph
from repro.device.batching import max_batch_elements, plan_batches
from repro.device.device import SimulatedDevice
from repro.device.group import DeviceGroup, least_loaded_assignment
from repro.device.kernels import (SENTINEL, reduce_keys_fit,
                                  segment_element_ids)
from repro.device.memory import ScratchPool
from repro.graph.bipartite import BipartiteCSR
from repro.util.timer import BUCKET_CPU


@dataclass
class _PassPlan:
    """Cached host-side shape planning for one (input, geometry) pair.

    Everything the preamble of :func:`device_shingle_pass` derives from the
    CSR input and the pass geometry — compaction, batch plan, trial chunks,
    and (single-batch case) the per-element segment-id table.  With launch
    graphs enabled the driver keys this by content tokens of the input
    arrays, so steady-state passes skip the whole O(nnz) replanning; all
    arrays are treated as read-only downstream.
    """

    n_seg: int
    valid_ids: np.ndarray
    lengths: np.ndarray
    elements: np.ndarray
    compact_indptr: np.ndarray
    n_values: int
    batch_plan: object
    chunks: list[tuple[int, int]]
    seg_ids_table: np.ndarray | None


_PASS_PLAN_CACHE: "OrderedDict[tuple, _PassPlan]" = OrderedDict()
_PASS_PLAN_LOCK = threading.Lock()
_PASS_PLAN_MAX = 8
_PASS_PLAN_STATS = {"hits": 0, "misses": 0}


def _pass_plan_lookup(key: tuple) -> _PassPlan | None:
    with _PASS_PLAN_LOCK:
        plan = _PASS_PLAN_CACHE.get(key)
        if plan is None:
            _PASS_PLAN_STATS["misses"] += 1
        else:
            _PASS_PLAN_STATS["hits"] += 1
            _PASS_PLAN_CACHE.move_to_end(key)
        return plan


def _pass_plan_store(key: tuple, plan: _PassPlan) -> None:
    with _PASS_PLAN_LOCK:
        _PASS_PLAN_CACHE[key] = plan
        while len(_PASS_PLAN_CACHE) > _PASS_PLAN_MAX:
            _PASS_PLAN_CACHE.popitem(last=False)


def pass_plan_cache_stats() -> dict:
    """Hit/miss counters of the driver's pass-plan cache (for tests/bench)."""
    with _PASS_PLAN_LOCK:
        return {"entries": len(_PASS_PLAN_CACHE), **_PASS_PLAN_STATS}


def clear_pass_plan_cache() -> None:
    with _PASS_PLAN_LOCK:
        _PASS_PLAN_CACHE.clear()
        _PASS_PLAN_STATS.update(hits=0, misses=0)


def device_shingle_pass(
    indptr: np.ndarray,
    elements: np.ndarray,
    config: PassConfig,
    device: SimulatedDevice | DeviceGroup,
    *,
    kernel: str = "select",
    trial_chunk: int = 16,
    max_elements: int | None = None,
    prefetch: bool = False,
    plan: ExecutionPlan | None = None,
) -> PassResult:
    """Run one full shingling pass through the simulated device.

    Parameters
    ----------
    indptr, elements:
        Input adjacency structure in CSR form.
    config:
        Pass configuration (s, c, hash pairs, salts).
    device:
        The simulated device — or a :class:`DeviceGroup`, whose members the
        ``multidevice`` plan shards trial chunks across (shared inputs are
        broadcast once over PCIe and fanned out peer-to-peer); the
        breakdown accumulates component times either way.
    kernel, trial_chunk:
        Kernel selection and trials-per-round (see :class:`SimulatedDevice`).
    max_elements:
        Batch element budget override; by default derived from the device's
        memory capacity and divided by the plan's resident factor (double
        buffering keeps two batches resident; ``k`` streams keep ``k``
        kernel working sets resident).
    prefetch:
        Back-compat alias for ``plan=ExecutionPlan("prefetch")``; ignored
        when ``plan`` is given.
    plan:
        The execution schedule (defaults to synchronous).

    Returns
    -------
    PassResult
        Identical to :func:`repro.core.serial.serial_shingle_pass` on the
        same inputs and configuration, in every mode.
    """
    if plan is None:
        plan = ExecutionPlan(EXEC_PREFETCH if prefetch else EXEC_SYNC)
    indptr = np.asarray(indptr, dtype=np.int64)
    elements = np.asarray(elements, dtype=np.int64)
    device.configure_launch_graph(plan.launch_graph)
    breakdown = device.breakdown
    s, c = config.s, config.c
    t_start = time.perf_counter()

    with breakdown.timing(BUCKET_CPU):
        if max_elements is None:
            max_elements = max_batch_elements(
                device.spec.memory_capacity_bytes, trial_chunk, s)
        max_elements = max(max_elements // plan.resident_factor, 1)
        pp = None
        cache_key = None
        if plan.launch_graph != launchgraph.LG_OFF:
            cache_key = (launchgraph.content_token(indptr),
                         launchgraph.content_token(elements),
                         s, c, trial_chunk, max_elements)
            pp = _pass_plan_lookup(cache_key)
        if pp is None:
            all_lengths = np.diff(indptr)
            n_seg = all_lengths.size
            # CPU-side compaction: segments shorter than s generate no
            # shingles (Section III-B: shingles exist only for "any vertex
            # ... that has at least s links"), so they never ship to the
            # device.  The serial reference skips them the same way.
            valid = all_lengths >= s
            valid_ids = np.flatnonzero(valid)
            lengths = all_lengths[valid_ids]
            elements = elements[np.repeat(valid, all_lengths)]
            compact_indptr = np.zeros(valid_ids.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=compact_indptr[1:])
            # Exclusive element-id bound; sizes the fused kernel's hash
            # table and the on-device reduction's packed keys.
            n_values = int(elements.max()) + 1 if elements.size else 1

            batch_plan = plan_batches(compact_indptr, max_elements)
            chunks = trial_chunks(c, trial_chunk)
            pp = _PassPlan(
                n_seg=n_seg, valid_ids=valid_ids, lengths=lengths,
                elements=elements, compact_indptr=compact_indptr,
                n_values=n_values, batch_plan=batch_plan, chunks=chunks,
                seg_ids_table=(
                    segment_element_ids(batch_plan.batches[0].local_indptr)
                    if batch_plan.n_batches == 1 else None))
            if cache_key is not None:
                _pass_plan_store(cache_key, pp)
        else:
            n_seg, valid_ids, lengths = pp.n_seg, pp.valid_ids, pp.lengths
            elements, n_values = pp.elements, pp.n_values
            batch_plan, chunks = pp.batch_plan, pp.chunks

    if batch_plan.n_batches == 1:
        result = _single_batch_streaming(
            device, elements, batch_plan.batches[0], chunks, config, kernel,
            plan, lengths, valid_ids, n_seg, n_values,
            seg_ids_table=pp.seg_ids_table)
    else:
        result = _multi_batch_accumulate(
            device, elements, batch_plan, chunks, config, kernel, plan,
            lengths, valid_ids, n_seg, n_values)

    # Dedup accounting: how many (trial, segment) shingle occurrence slots
    # collapsed into distinct fingerprints this pass (the shingle dedup
    # ratio the bench JSONs report).
    metrics = device.obs.metrics
    metrics.counter("shingle.occurrence_slots").add(int(c) * valid_ids.size)
    metrics.counter("shingle.distinct_fps").add(int(result.n_shingles))
    tracer = device.obs.tracer
    if tracer.enabled:
        tracer.record("exec.shingle_pass", t_start, time.perf_counter(),
                      attrs={"mode": plan.mode, "kernel": kernel, "c": c,
                             "s": s, "n_segments": n_seg,
                             "n_batches": batch_plan.n_batches,
                             "n_shingles": int(result.n_shingles)})
    return result


def _members_of(device) -> list[SimulatedDevice]:
    return device.members if isinstance(device, DeviceGroup) else [device]


def _broadcast(device, members, multi: bool, host_array: np.ndarray):
    """Input residency per member: group broadcast, or one plain upload."""
    if multi:
        return device.broadcast(host_array)
    return [members[0].upload(host_array)]


def _run_chunks(plan: ExecutionPlan, chunks, work,
                members: list[SimulatedDevice] | None = None) -> None:
    """Execute ``work(lo, hi, dev)`` for every trial chunk under the plan.

    ``multidevice`` with several members statically assigns chunks to the
    least-loaded member by trial count (nnz is constant within a batch, so
    trials are proportional to modeled kernel cost) and runs one driver
    thread per member — named ``dev{i}`` so each device's kernel rounds
    render as their own trace track.  Static-by-cost assignment keeps every
    member's kernel stream deterministic; the out-of-order-tolerant
    aggregation downstream makes completion order immaterial.
    """
    if (plan.mode == EXEC_MULTIDEVICE and members is not None
            and len(members) > 1):
        owners = least_loaded_assignment([hi - lo for lo, hi in chunks],
                                         len(members))
        per_dev: list[list[tuple[int, int]]] = [[] for _ in members]
        for chunk, owner in zip(chunks, owners):
            per_dev[owner].append(chunk)
        errors: list[BaseException] = []

        def runner(idx: int) -> None:
            try:
                for lo, hi in per_dev[idx]:
                    work(lo, hi, idx)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=runner, args=(i,), name=f"dev{i}")
                   for i in range(len(members)) if per_dev[i]]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return
    if (plan.n_workers == 1 or len(chunks) <= 1
            or plan.mode == EXEC_MULTIDEVICE):
        for lo, hi in chunks:
            work(lo, hi, 0)
        return
    # The prefix names each worker's spans' track ("stream_0", "stream_1",
    # ...) so concurrent kernel rounds render as separate trace tracks.
    with ThreadPoolExecutor(max_workers=plan.n_workers,
                            thread_name_prefix="stream") as executor:
        futures = [executor.submit(work, lo, hi, 0) for lo, hi in chunks]
        for future in futures:
            future.result()


def _single_batch_streaming(
    device: SimulatedDevice | DeviceGroup,
    elements: np.ndarray,
    batch,
    chunks,
    config: PassConfig,
    kernel: str,
    plan: ExecutionPlan,
    lengths: np.ndarray,
    valid_ids: np.ndarray,
    n_seg: int,
    n_values: int,
    seg_ids_table: np.ndarray | None = None,
) -> PassResult:
    """The streaming hot path: one resident batch, per-chunk aggregation.

    A single batch cannot contain split lists, so every trial chunk's block
    aggregates independently the moment its kernels finish; the full
    ``(c, n, s)`` arrays are never materialized.

    With the ``fused`` kernel (and whenever the packed reduction keys fit in
    63 bits) the device additionally runs :func:`chunk_reduce` before the
    transfer: each chunk downloads a compacted distinct-shingle partial —
    already a :class:`PassResult` in wire form — instead of the raw
    ``(t, n, s)`` occurrence block, so both the g2c bytes and the CPU
    aggregation shrink from O(t*n*s) to O(k_chunk*s).
    """
    breakdown = device.breakdown
    group_members = _members_of(device)
    multi = plan.mode == EXEC_MULTIDEVICE and len(group_members) > 1
    s = config.s
    a, b, salts = config.a_array, config.b_array, config.salts
    n_rows = batch.n_segments
    t_max = max((hi - lo for lo, hi in chunks), default=0)
    # The single batch is pre-compacted (every row has length >= s, no
    # sentinel padding), which is exactly what the on-device reduction
    # requires; the only other gate is the 63-bit key-packing bound.
    use_reduce = (kernel == KERNEL_FUSED
                  and reduce_keys_fit(t_max, n_rows, s, n_values))
    # Device-backed aggregation: keep every chunk's compacted partial
    # resident and merge on-device (group-by kernels), downloading only the
    # final bipartite CSR.  Requires the on-device reduction (the partials
    # must exist on the device in wire form) and that the worst-case
    # resident partial volume — every chunk fully distinct — fits device
    # memory with headroom for the merge working set.  Both "auto" and a
    # forced "device" degrade to the host merge when a prerequisite is
    # missing; results are bit-identical either way.
    agg_backend = getattr(config, "aggregate_backend", AGG_AUTO)
    c_total = sum(hi - lo for lo, hi in chunks)
    resident_fits = (3 * c_total * n_rows * (16 + 4 * s)
                     < device.spec.memory_capacity_bytes)
    use_dev_agg = (use_reduce and agg_backend != AGG_HOST and resident_fits)

    with breakdown.timing(BUCKET_CPU):
        if seg_ids_table is None:
            seg_ids_table = segment_element_ids(batch.local_indptr)
        aggregator = StreamingAggregator(
            s, n_seg, device=device if use_dev_agg else None)
        host_pool = ScratchPool()  # reused download staging across chunks

    d_elems = _broadcast(device, group_members, multi,
                         batch.slice_elements(elements))
    d_indptrs = _broadcast(device, group_members, multi, batch.local_indptr)
    d_gens = (_broadcast(device, group_members, multi,
                         valid_ids.astype(np.uint32))
              if use_reduce else [])

    tracer = device.obs.tracer

    def run_chunk_reduce(lo: int, hi: int, dev: int) -> None:
        member = group_members[dev]
        out = member.shingle_chunk_reduce(
            d_elems[dev], d_indptrs[dev], d_gens[dev],
            a=a[lo:hi], b=b[lo:hi], prime=config.prime, s=s,
            salts=salts[lo:hi], seg_ids=seg_ids_table, n_values=n_values,
            resident=use_dev_agg, label=f"trials {lo}-{hi - 1}")
        if use_dev_agg:
            # The partial never leaves the device: record the resident
            # buffers and move on (no per-chunk host aggregation at all).
            aggregator.add_resident(lo, member, out)
            return
        fps, members, gen_counts, gens = out
        with breakdown.timing(BUCKET_CPU), \
                tracer.span("exec.chunk_aggregate"):
            gen_indptr = np.zeros(gen_counts.size + 1, dtype=np.int64)
            np.cumsum(gen_counts, out=gen_indptr[1:])
            partial = PassResult(
                fingerprints=fps,
                members=members.astype(np.int64),
                gen_graph=BipartiteCSR(gen_indptr, gens, n_right=n_seg,
                                       validate=False),
                n_input_segments=n_seg)
            aggregator.add(lo, partial)

    def run_chunk(lo: int, hi: int, dev: int) -> None:
        t = hi - lo
        fps_buf = host_pool.take((t, n_rows), np.uint64)
        top_buf = host_pool.take((t, n_rows, s), np.uint64)
        group_members[dev].shingle_chunk(
            d_elems[dev], d_indptrs[dev],
            a=a[lo:hi], b=b[lo:hi], prime=config.prime, s=s,
            salts=salts[lo:hi], kernel=kernel, seg_ids=seg_ids_table,
            n_values=n_values,
            out_fps=fps_buf, out_top=top_buf, label=f"trials {lo}-{hi - 1}")
        with breakdown.timing(BUCKET_CPU), \
                tracer.span("exec.chunk_aggregate"):
            partial = aggregate_pass(fps_buf, top_buf, lengths, s,
                                     segment_ids=valid_ids, n_segments=n_seg)
            aggregator.add(lo, partial)
        host_pool.give(fps_buf, top_buf)

    try:
        _run_chunks(plan, chunks,
                    run_chunk_reduce if use_reduce else run_chunk,
                    members=group_members)
    finally:
        device.free(*(d_elems + d_indptrs + d_gens))

    if use_dev_agg and aggregator.n_partials:
        # The device merge charges its own gpu/g2c/cpu buckets internally —
        # no blanket cpu timing here, or those seconds would double-count.
        with tracer.span("exec.merge_partials"):
            return aggregator.result()

    with breakdown.timing(BUCKET_CPU), tracer.span("exec.merge_partials"):
        if aggregator.n_partials == 0:
            # c == 0 degenerate case: an empty pass over n_seg segments.
            return aggregate_pass(np.empty((0, n_rows), dtype=np.uint64),
                                  np.empty((0, n_rows, s), dtype=np.uint64),
                                  lengths, s, segment_ids=valid_ids,
                                  n_segments=n_seg)
        return aggregator.result()


def _multi_batch_accumulate(
    device: SimulatedDevice | DeviceGroup,
    elements: np.ndarray,
    batch_plan,
    chunks,
    config: PassConfig,
    kernel: str,
    plan: ExecutionPlan,
    lengths: np.ndarray,
    valid_ids: np.ndarray,
    n_seg: int,
    n_values: int,
) -> PassResult:
    """General path: several batches, scatter into pass-level accumulators.

    Batch uploads may double-buffer (``prefetch``), each batch's trial
    chunks may run on concurrent streams (``multistream``) or shard across
    a device group (``multidevice``, batches broadcast member-to-member);
    the final aggregation happens once, after split lists are merged.
    """
    breakdown = device.breakdown
    group_members = _members_of(device)
    multi = plan.mode == EXEC_MULTIDEVICE and len(group_members) > 1
    s, c = config.s, config.c
    a, b, salts = config.a_array, config.b_array, config.salts

    with breakdown.timing(BUCKET_CPU):
        n_rows = valid_ids.size
        fps_all = np.zeros((c, n_rows), dtype=np.uint64)
        top_all = np.full((c, n_rows, s), SENTINEL, dtype=np.uint64)
        # compact row id -> list of (c, s) packed top-s arrays, one per chunk
        split_chunks: dict[int, list[np.ndarray]] = {}

    def _upload(batch):
        return (_broadcast(device, group_members, multi,
                           batch.slice_elements(elements)),
                _broadcast(device, group_members, multi, batch.local_indptr))

    tracer = device.obs.tracer
    uploader = (ThreadPoolExecutor(max_workers=1, thread_name_prefix="copy")
                if plan.mode == EXEC_PREFETCH else None)
    pending = None
    try:
        for bi, batch in enumerate(batch_plan):
            if uploader is None:
                d_elems, d_indptrs = _upload(batch)
            else:
                # Double buffering: this batch was prefetched during the
                # previous batch's kernels; kick off the next one now.
                d_elems, d_indptrs = (pending.result() if pending is not None
                                      else _upload(batch))
                pending = (uploader.submit(_upload, batch_plan.batches[bi + 1])
                           if bi + 1 < batch_plan.n_batches else None)

            n_b = batch.n_segments
            with breakdown.timing(BUCKET_CPU):
                seg_ids_table = segment_element_ids(batch.local_indptr)
                fps_b = np.empty((c, n_b), dtype=np.uint64)
                top_b = np.empty((c, n_b, s), dtype=np.uint64)

            def run_chunk(lo: int, hi: int, dev: int) -> None:
                group_members[dev].shingle_chunk(
                    d_elems[dev], d_indptrs[dev],
                    a=a[lo:hi], b=b[lo:hi], prime=config.prime, s=s,
                    salts=salts[lo:hi], kernel=kernel, seg_ids=seg_ids_table,
                    n_values=n_values,
                    out_fps=fps_b[lo:hi], out_top=top_b[lo:hi],
                    label=f"batch {bi} trials {lo}-{hi - 1}")

            _run_chunks(plan, chunks, run_chunk, members=group_members)
            device.free(*(d_elems + d_indptrs))

            with breakdown.timing(BUCKET_CPU):
                whole = ~batch.is_split
                if whole.any():
                    seg_ids = batch.segment_ids[whole]
                    fps_all[:, seg_ids] = fps_b[:, whole]
                    top_all[:, seg_ids, :] = top_b[:, whole, :]
                for local_idx in np.flatnonzero(batch.is_split):
                    src = int(batch.segment_ids[local_idx])
                    split_chunks.setdefault(src, []).append(top_b[:, local_idx, :])
    finally:
        if uploader is not None:
            uploader.shutdown(wait=True)

    with breakdown.timing(BUCKET_CPU), \
            tracer.span("exec.aggregate", n_splits=len(split_chunks)):
        if split_chunks:
            merge_splits_into(fps_all, top_all, split_chunks, s, salts)
        result = aggregate_pass(fps_all, top_all, lengths, s,
                                segment_ids=valid_ids, n_segments=n_seg)
    return result
