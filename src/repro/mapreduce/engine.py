"""A single-machine MapReduce engine with Hadoop-faithful data movement.

Every job runs three phases, and the intermediate data genuinely goes
through the filesystem, because that disk round trip is the phenomenon the
paper's citation [18] measured:

1. **map** — inputs are split across mappers; each mapper's emitted
   ``(key, value)`` records are partitioned by key hash and *spilled to one
   file per (mapper, reducer) pair* (pickle serialization, like Hadoop's
   writables);
2. **shuffle** — each reducer reads its partition files back from disk and
   sorts the records by key;
3. **reduce** — per-key groups are fed to the reducer; outputs collect in
   memory.

:class:`JobStats` reports wall time per phase and spill volume, the numbers
the benchmark tables show next to the shared-memory pipeline.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.util.mixhash import mix64


@dataclass
class JobStats:
    """Observability of one MR job."""

    map_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    reduce_seconds: float = 0.0
    bytes_spilled: int = 0
    n_spill_files: int = 0
    n_records: int = 0

    @property
    def total_seconds(self) -> float:
        return self.map_seconds + self.shuffle_seconds + self.reduce_seconds


class MapReduceEngine:
    """Run mapper/reducer callables over a working directory on disk."""

    def __init__(self, workdir: str | Path, n_mappers: int = 4,
                 n_reducers: int = 4) -> None:
        if n_mappers < 1 or n_reducers < 1:
            raise ValueError("n_mappers and n_reducers must be >= 1")
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.n_mappers = n_mappers
        self.n_reducers = n_reducers
        self._job_counter = 0

    def _partition(self, key) -> int:
        return mix64(hash(key) & ((1 << 64) - 1)) % self.n_reducers

    def run(self, inputs: Sequence, mapper: Callable[[object], Iterable[tuple]],
            reducer: Callable[[object, list], Iterable]) -> tuple[list, JobStats]:
        """Execute one job; returns (outputs, stats).

        ``mapper(item)`` yields ``(key, value)`` records; ``reducer(key,
        values)`` yields output records.  Keys must be hashable and
        totally ordered within a reducer's partition.
        """
        stats = JobStats()
        self._job_counter += 1
        job_dir = self.workdir / f"job{self._job_counter:04d}"
        job_dir.mkdir(exist_ok=True)

        # ---------------- map + spill ---------------- #
        t0 = time.perf_counter()
        chunk = max(1, -(-len(inputs) // self.n_mappers))  # ceil division
        spill_files: list[list[Path]] = [[] for _ in range(self.n_reducers)]
        for m in range(self.n_mappers):
            items = inputs[m * chunk:(m + 1) * chunk]
            if not items:
                continue
            buffers: list[list[tuple]] = [[] for _ in range(self.n_reducers)]
            for item in items:
                for key, value in mapper(item):
                    buffers[self._partition(key)].append((key, value))
                    stats.n_records += 1
            for r, records in enumerate(buffers):
                if not records:
                    continue
                path = job_dir / f"map{m:04d}_part{r:04d}.spill"
                with path.open("wb") as fh:
                    pickle.dump(records, fh, protocol=pickle.HIGHEST_PROTOCOL)
                stats.bytes_spilled += path.stat().st_size
                stats.n_spill_files += 1
                spill_files[r].append(path)
        stats.map_seconds = time.perf_counter() - t0

        # ---------------- shuffle (read back + sort) ---------------- #
        t0 = time.perf_counter()
        partitions: list[list[tuple]] = []
        for r in range(self.n_reducers):
            records: list[tuple] = []
            for path in spill_files[r]:
                with path.open("rb") as fh:
                    records.extend(pickle.load(fh))
            records.sort(key=lambda kv: kv[0])
            partitions.append(records)
        stats.shuffle_seconds = time.perf_counter() - t0

        # ---------------- reduce ---------------- #
        t0 = time.perf_counter()
        outputs: list = []
        for records in partitions:
            i = 0
            while i < len(records):
                key = records[i][0]
                j = i
                values = []
                while j < len(records) and records[j][0] == key:
                    values.append(records[j][1])
                    j += 1
                outputs.extend(reducer(key, values))
                i = j
        stats.reduce_seconds = time.perf_counter() - t0

        # Clean the job's spill files (Hadoop does after success).
        for paths in spill_files:
            for path in paths:
                path.unlink(missing_ok=True)
        return outputs, stats
