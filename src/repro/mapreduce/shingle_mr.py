"""Shingling expressed as MapReduce jobs (the Hadoop-pClust analogue).

One MR job per shingling pass:

* **map** — input records are ``(left_id, element_list)`` adjacency items;
  the mapper runs the per-list serial shingle extraction (c trials of the
  insertion-sort minimum buffer) and emits
  ``(fingerprint, (left_id, members))`` — the ``<s_j, L(s_j)>`` tuples of
  the paper in key-value form;
* **reduce** — per distinct fingerprint, gather the generator set and keep
  one members tuple, emitting the shingle records the next stage needs.

The reduce-side sort IS the paper's "a sorting is done to gather all
vertices that generated each shingle".  Phase III reuses the standard
reporting code, so the MR pipeline's clustering is bit-identical to the
shared-memory pipelines — only (much) slower, which is the point.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.params import ShinglingParams, PassConfig
from repro.core.report import report_clusters
from repro.core.result import ClusterResult
from repro.core.serial import serial_top_s
from repro.core.passresult import PassResult
from repro.graph.bipartite import BipartiteCSR
from repro.graph.csr import CSRGraph
from repro.mapreduce.engine import JobStats, MapReduceEngine
from repro.util.mixhash import fold_fingerprint
from repro.util.timer import TimeBreakdown

BUCKET_MAP = "mr_map"
BUCKET_SHUFFLE = "mr_shuffle"
BUCKET_REDUCE = "mr_reduce"


def _adjacency_items(indptr: np.ndarray, elements: np.ndarray,
                     s: int) -> list[tuple[int, list[int]]]:
    """The job's input split: one record per qualifying adjacency list."""
    items = []
    indptr_l = np.asarray(indptr, dtype=np.int64).tolist()
    elements_l = np.asarray(elements, dtype=np.int64).tolist()
    for seg in range(len(indptr_l) - 1):
        lo, hi = indptr_l[seg], indptr_l[seg + 1]
        if hi - lo >= s:
            items.append((seg, elements_l[lo:hi]))
    return items


def mr_shingle_pass(engine: MapReduceEngine, indptr: np.ndarray,
                    elements: np.ndarray,
                    config: PassConfig) -> tuple[PassResult, JobStats]:
    """One shingling pass as a MapReduce job."""
    s, prime = config.s, config.prime
    coeffs = [(p.a, p.b) for p in config.hash_pairs]
    salts = [int(x) for x in config.salts.tolist()]
    n_seg = int(np.asarray(indptr).size - 1)

    def mapper(item):
        seg, neighbors = item
        for (a, b), salt in zip(coeffs, salts):
            top = serial_top_s(neighbors, a, b, prime, s)
            members = tuple(v for _, v in top)
            yield fold_fingerprint(members, salt), (seg, members)

    def reducer(fingerprint, values):
        gens = sorted({seg for seg, _ in values})
        members = values[0][1]
        yield fingerprint, members, gens

    items = _adjacency_items(indptr, elements, s)
    outputs, stats = engine.run(items, mapper, reducer)

    outputs.sort(key=lambda rec: rec[0])
    k = len(outputs)
    fingerprints = np.array([rec[0] for rec in outputs], dtype=np.uint64)
    members = np.array([rec[1] for rec in outputs],
                       dtype=np.int64).reshape(k, s)
    gen_graph = BipartiteCSR.from_lists(
        [np.asarray(rec[2], dtype=np.int64) for rec in outputs],
        n_right=n_seg)
    result = PassResult(fingerprints=fingerprints, members=members,
                        gen_graph=gen_graph, n_input_segments=n_seg)
    return result, stats


class MapReducePClust:
    """The full two-pass clustering as MapReduce jobs (+ local Phase III)."""

    def __init__(self, workdir, params: ShinglingParams | None = None,
                 n_mappers: int = 4, n_reducers: int = 4) -> None:
        self.params = params or ShinglingParams()
        self.engine = MapReduceEngine(workdir, n_mappers=n_mappers,
                                      n_reducers=n_reducers)

    def run(self, graph: CSRGraph) -> ClusterResult:
        params = self.params
        if params.report_mode != "partition":
            raise ValueError("MapReducePClust supports partition mode only")
        breakdown = TimeBreakdown()
        stats_total = JobStats()

        t0 = time.perf_counter()
        pass1, stats1 = mr_shingle_pass(
            self.engine, graph.indptr, graph.indices, params.pass_config(1))
        indptr2, elements2 = pass1.next_pass_input()
        pass2, stats2 = mr_shingle_pass(
            self.engine, indptr2, elements2, params.pass_config(2))
        for st in (stats1, stats2):
            stats_total.map_seconds += st.map_seconds
            stats_total.shuffle_seconds += st.shuffle_seconds
            stats_total.reduce_seconds += st.reduce_seconds
            stats_total.bytes_spilled += st.bytes_spilled
            stats_total.n_spill_files += st.n_spill_files
            stats_total.n_records += st.n_records

        output = report_clusters(
            pass1, pass2, graph.n_vertices,
            mode=params.report_mode,
            backend=params.union_backend,
            include_generators=params.include_generators)
        wall = time.perf_counter() - t0

        breakdown.add(BUCKET_MAP, stats_total.map_seconds)
        breakdown.add(BUCKET_SHUFFLE, stats_total.shuffle_seconds)
        breakdown.add(BUCKET_REDUCE, stats_total.reduce_seconds)
        breakdown.add("cpu", max(wall - stats_total.total_seconds, 0.0))

        result = ClusterResult(
            n_vertices=graph.n_vertices, params=params, backend="mapreduce",
            labels=np.asarray(output, dtype=np.int64), timings=breakdown,
            n_first_level_shingles=pass1.n_shingles,
            n_second_level_shingles=pass2.n_shingles)
        result.mr_stats = stats_total  # type: ignore[attr-defined]
        return result
