"""A miniature MapReduce engine and Shingling expressed as MR jobs.

The paper's lineage includes a distributed pClust: "In Rytsareva et al.
[18], we report two very different approaches to parallelize pClust — one
using shared memory OpenMP parallelization and another using the Hadoop
MapReduce model ... The OpenMP implementation was significantly faster than
the Hadoop implementation due to the expensive disk I/O operations involved
in the Hadoop platform." (Section I-A.)

This package reproduces that comparison point: :class:`MapReduceEngine` is a
single-machine engine that faithfully models Hadoop's data movement — map
outputs spill to disk, the shuffle reads/sorts/partitions them through disk
again, reducers read their partitions — and :mod:`repro.mapreduce.shingle_mr`
expresses the two shingling passes as MR jobs over it.  The MR pipeline
produces bit-identical clusterings to :class:`repro.core.pipeline.GpClust`,
while its per-record serialization and spill I/O make it dramatically
slower, exactly the effect the paper cites.
"""

from repro.mapreduce.engine import JobStats, MapReduceEngine
from repro.mapreduce.shingle_mr import MapReducePClust, mr_shingle_pass

__all__ = [
    "JobStats",
    "MapReduceEngine",
    "MapReducePClust",
    "mr_shingle_pass",
]
