"""Simulated GPU device substrate.

The paper runs its hot loops (min-wise hashing and segmented sorting of
batched adjacency lists) on a Tesla K20 through CUDA Thrust.  No GPU exists
in this environment, so this package provides the closest synthetic
equivalent that exercises the same code paths:

* a capacity-limited **device memory** that host code cannot read directly —
  data must move through explicit host<->device transfers, which are both
  wall-clock measured and costed by a PCIe transfer model (Table I's
  ``Data c->g`` / ``Data g->c`` columns);
* **data-parallel kernels** (elementwise transform, segmented sort, segmented
  top-s selection) implemented as whole-array vectorized NumPy over flat CSR
  buffers — bulk SIMD-style execution standing in for SIMT warps, contrasted
  against the faithful pure-Python serial reference the paper compares to;
* a **batch planner** that splits the input adjacency lists into batches that
  fit device memory, including the split-list bookkeeping of Section III-C;
* synchronous (Thrust-style) and asynchronous (double-buffered, the paper's
  stated future work) execution streams.
"""

from repro.device.alignment import DeviceAligner
from repro.device.batching import (
    AlignmentBin,
    AlignmentBinPlan,
    Batch,
    BatchPlan,
    plan_alignment_bins,
    plan_batches,
)
from repro.device.device import SimulatedDevice
from repro.device.group import (
    DeviceGroup,
    GroupTopology,
    HostLink,
    least_loaded_assignment,
)
from repro.device.memory import DeviceBuffer, DeviceMemory, DeviceMemoryError
from repro.device.timingmodels import DeviceSpec, KernelCostModel, TransferModel

__all__ = [
    "AlignmentBin",
    "AlignmentBinPlan",
    "Batch",
    "BatchPlan",
    "DeviceAligner",
    "DeviceBuffer",
    "DeviceGroup",
    "DeviceMemory",
    "DeviceMemoryError",
    "DeviceSpec",
    "GroupTopology",
    "HostLink",
    "KernelCostModel",
    "SimulatedDevice",
    "TransferModel",
    "least_loaded_assignment",
    "plan_alignment_bins",
    "plan_batches",
]
