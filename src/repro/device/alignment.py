"""Device-offloaded batched Smith-Waterman.

pGraph keeps "the optimality-guaranteeing Smith-Waterman alignment
algorithm" on the CPU side and parallelizes it across processors; this
module moves the same batched row-scan DP onto the simulated device, the
way the shingling hot loop already runs there.  The structure mirrors the
shingling offload end to end:

* the sequence set is uploaded **once** as a flat CSR residue buffer
  (:func:`repro.sequence.arena.flatten_sequences`) — the exact wire layout
  the process-pool arena uses, so host and device paths share one
  representation;
* candidate pairs are grouped into dtype- and length-homogeneous bins
  (:func:`repro.device.batching.plan_alignment_bins`) so the padded DP
  rectangle wastes a bounded fraction of cells (``padding_waste``);
* each bin runs *pack* (a CSR gather into padded transposed blocks) then
  *rowscan* kernels whose state lives in the device
  :class:`~repro.device.memory.ScratchPool` — zero fresh allocations in
  the steady state — with every launch costed through the
  :class:`~repro.device.timingmodels.KernelCostModel` and every transfer
  through the PCIe model;
* bins are scheduled by an :class:`~repro.core.execplan.ExecutionPlan`:
  ``sync`` (one bin at a time), ``prefetch`` (pack bin *i+1* on a copy
  thread while bin *i* scores, via
  :func:`~repro.core.execplan.double_buffer`) or ``multistream``
  (concurrent bins on disjoint output slices).  All plans are
  bit-identical.

The kernels themselves are a *ramped-domain* reformulation of the host
row scan (:mod:`repro.sequence.smith_waterman`): keeping
``H'[j] = H[j] + step * j`` bakes the left-gap ramp into the score matrix,
so the per-row ramp-add / ramp-subtract / shift passes disappear and the
left-gap chain is a plain prefix max — computed by a work-efficient
two-level blocked scan (the standard GPU scan shape: intra-block upsweep,
sequential block carry, carry application).  Scores are bit-identical to
:func:`~repro.sequence.smith_waterman.batch_smith_waterman` /
:func:`~repro.sequence.smith_waterman.batch_smith_waterman_affine` for
both gap models: the per-cell candidates are the same integers shifted by
an invertible per-column offset, and the bin planner keys its dtype cuts
on the shared :func:`~repro.sequence.smith_waterman.dp_dtype` rule.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.execplan import (
    EXEC_MULTISTREAM,
    EXEC_PREFETCH,
    ExecutionPlan,
    double_buffer,
)
from repro.device.batching import AlignmentBin, AlignmentBinPlan, plan_alignment_bins
from repro.device.device import SimulatedDevice
from repro.device.group import DeviceGroup, least_loaded_assignment
from repro.device.memory import ScratchPool
from repro.sequence.alphabet import ALPHABET_SIZE
from repro.sequence.arena import flatten_sequences
from repro.sequence.scoring import BLOSUM62
# The pad/negative-floor constants and the padded score matrix are shared
# with the host kernels on purpose: bit-identity across backends depends on
# both paths saturating at the same values.
from repro.sequence.smith_waterman import (
    _I16_NEG,
    _score_matrix,
    dp_dtype,
    orient_pair_lengths,
)
from repro.util.timer import BUCKET_GPU

_PAD = ALPHABET_SIZE
_MAT_DIM = ALPHABET_SIZE + 1

#: Rows per scan block of the two-level prefix max (one "thread block").
BLK = 32


def _neg_floor(dtype: np.dtype):
    return dtype.type(_I16_NEG if dtype == np.int16 else -(1 << 26))


def ramped_score_matrix(matrix: np.ndarray, dtype: np.dtype,
                        step: int) -> np.ndarray:
    """Flattened padded score matrix with the scan step baked in.

    In the ramped domain every diagonal candidate picks up exactly ``+step``
    relative to its predecessor column, so adding ``step`` to every matrix
    entry (pad entries included — they stay hugely negative) turns the
    per-row ramp bookkeeping into a no-op.
    """
    m = _score_matrix(matrix, dtype)
    m += dtype.type(step)
    return m.ravel()


def pack_bin_blocks(residues: np.ndarray, offsets: np.ndarray,
                    short_ids: np.ndarray, long_ids: np.ndarray,
                    max_short: int, max_long: int
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Gather one bin's pairs from flat CSR into padded transposed blocks.

    Returns ``(arow, bt)``: ``arow`` is ``(max_short, B)`` holding the
    short sequences' symbols pre-scaled to score-matrix row offsets, ``bt``
    the long block transposed to ``(max_long, B)``.  ``residues`` must be
    the int16-widened device buffer (see :meth:`DeviceAligner.
    upload_sequences`): row ``i``'s substitution scores are then one
    ``bt + arow[i]`` add plus one flat ``take`` — the composite index never
    exceeds ``22 * 22``, so the whole gather stays in int16 lanes.  Pure
    array ops (one strided gather per block), no per-pair Python loop.
    """
    arow = _gather_padded(residues, offsets, short_ids, max(max_short, 1))
    arow *= np.int16(_MAT_DIM)
    bt = _gather_padded(residues, offsets, long_ids, max(max_long, 1))
    return arow, bt


def _gather_padded(residues: np.ndarray, offsets: np.ndarray,
                   ids: np.ndarray, width: int) -> np.ndarray:
    """``(width, B)`` int16 column-per-sequence block, PAD-filled."""
    starts = offsets[ids]
    lens = offsets[ids + 1] - starts
    col = np.arange(width, dtype=np.int64)[:, None]
    mask = col < lens[None, :]
    idx = starts[None, :] + np.where(mask, col, 0)
    block = np.empty(idx.shape, dtype=residues.dtype)
    if residues.size:
        # mode="clip" skips the bounds check; masked-out lanes are
        # overwritten below, so their clipped reads are immaterial.
        np.take(residues, idx, out=block, mode="clip")
    block[~mask] = _PAD
    return block


def _scan_blocked(v: np.ndarray, carry: np.ndarray) -> None:
    """Two-level blocked prefix max down the row axis, in place.

    ``v`` is the DP row reshaped ``(nb, BLK, B)``; ``carry`` is ``(nb, B)``
    scratch.  Level 1 runs the doubling scan inside each block
    (``log2(BLK)`` whole-array passes); level 2 accumulates block totals
    sequentially and applies ``carry[i-1]`` to block ``i`` — exactly
    ``np.maximum.accumulate`` down axis 0 of the flat view, but every pass
    is a contiguous SIMD maximum instead of a strided scalar scan.
    Padding rows live only in the final block (the caller pads to a BLK
    multiple), and a prefix max only flows forward, so their garbage never
    reaches real rows.
    """
    k = 1
    while k < BLK:
        np.maximum(v[:, k:], v[:, :-k], out=v[:, k:])
        k <<= 1
    np.copyto(carry, v[:, -1])
    for i in range(1, carry.shape[0]):
        np.maximum(carry[i], carry[i - 1], out=carry[i])
    np.maximum(v[1:], carry[:-1, None, :], out=v[1:])


def rowscan_linear_binned(arow: np.ndarray, bt: np.ndarray,
                          matrix: np.ndarray, gap: int, dtype: np.dtype,
                          pool: ScratchPool) -> np.ndarray:
    """Ramped-domain linear-gap row scan over one packed bin.

    State is ``H'[j] = H[j] + gap * j`` transposed to ``(pad_lb, B)``:

    * diagonal candidate: ``H'[i-1][j-1] + (sub[j] + gap)`` — the ``+gap``
      is baked into the matrix (:func:`ramped_score_matrix`);
    * up candidate: ``H'[i-1][j] - gap``;
    * zero candidate: the ramp itself;
    * left chain: a plain prefix max (:func:`_scan_blocked`).

    ``hmax`` tracks the pre-scan candidates only — sound because an optimal
    local alignment never ends in a gap — and the final scores are
    ``max_j (hmax'[j] - gap * j)``.  Bit-identical to
    :func:`repro.sequence.smith_waterman._rowscan_linear`.
    """
    la, n_pairs = arow.shape
    lb = bt.shape[0]
    nb = -(-lb // BLK)
    pad_lb = nb * BLK
    g = dtype.type(gap)
    neg = _neg_floor(dtype)
    mat_flat = ramped_score_matrix(matrix, dtype, gap)
    ramp = (np.arange(pad_lb) * gap).astype(dtype)[:, None]

    h_prev = pool.take((pad_lb, n_pairs), dtype)
    hmax = pool.take((pad_lb, n_pairs), dtype)
    tmp = pool.take((pad_lb, n_pairs), dtype)
    carry = pool.take((nb, n_pairs), dtype)
    idx16 = pool.take((lb, n_pairs), np.int16)
    sub = pool.take((lb, n_pairs), dtype)

    h_prev[:lb] = ramp[:lb]
    h_prev[lb:] = neg
    np.copyto(hmax, h_prev)
    for i in range(la):
        np.add(bt, arow[i][None, :], out=idx16)
        np.take(mat_flat, idx16, out=sub, mode="clip")
        np.add(h_prev[:lb - 1], sub[1:], out=tmp[1:lb])   # diagonal'
        np.subtract(sub[0], g, out=tmp[0])                # j=0: prev H is 0
        np.subtract(h_prev[:lb], g, out=sub)              # up' (sub reused)
        np.maximum(tmp[:lb], sub, out=tmp[:lb])
        np.maximum(tmp[:lb], ramp[:lb], out=tmp[:lb])     # zero candidate
        tmp[lb:] = neg
        np.maximum(hmax, tmp, out=hmax)
        _scan_blocked(tmp.reshape(nb, BLK, n_pairs), carry)
        h_prev, tmp = tmp, h_prev
    np.subtract(hmax[:lb], ramp[:lb], out=hmax[:lb])
    scores = hmax[:lb].max(axis=0).astype(np.int64) if la else \
        np.zeros(n_pairs, dtype=np.int64)
    pool.give(h_prev, hmax, tmp, carry, idx16, sub)
    return scores


def rowscan_affine_binned(arow: np.ndarray, bt: np.ndarray,
                          matrix: np.ndarray, gap_open: int, gap_extend: int,
                          dtype: np.dtype, pool: ScratchPool) -> np.ndarray:
    """Ramped-domain Gotoh row scan over one packed bin.

    Same ramp trick with ``step = min(gap_open, gap_extend)`` (the F-chain
    decay rate, see :func:`repro.sequence.smith_waterman._rowscan_affine`):
    ``E`` stays elementwise per row in the ramped domain, the F chain is
    ``F'[j] = scan'[j-1] - (gap_open - step)`` off the same blocked prefix
    max.  Bit-identical to the host affine kernel.
    """
    la, n_pairs = arow.shape
    lb = bt.shape[0]
    nb = -(-lb // BLK)
    pad_lb = nb * BLK
    step = min(gap_open, gap_extend)
    o = dtype.type(gap_open)
    e = dtype.type(gap_extend)
    st = dtype.type(step)
    fo = dtype.type(gap_open - step)
    neg = _neg_floor(dtype)
    mat_flat = ramped_score_matrix(matrix, dtype, step)
    ramp = (np.arange(pad_lb) * step).astype(dtype)[:, None]

    h_prev = pool.take((pad_lb, n_pairs), dtype)
    hmax = pool.take((pad_lb, n_pairs), dtype)
    tmp = pool.take((pad_lb, n_pairs), dtype)
    scratch = pool.take((pad_lb, n_pairs), dtype)
    e_row = pool.take((pad_lb, n_pairs), dtype)
    carry = pool.take((nb, n_pairs), dtype)
    idx16 = pool.take((lb, n_pairs), np.int16)
    sub = pool.take((lb, n_pairs), dtype)

    h_prev[:lb] = ramp[:lb]
    h_prev[lb:] = neg
    np.copyto(hmax, h_prev)
    e_row[:] = neg
    for i in range(la):
        np.add(bt, arow[i][None, :], out=idx16)
        np.take(mat_flat, idx16, out=sub, mode="clip")
        # E'[i] = max(E'[i-1] - extend, H'[i-1] - open)
        np.subtract(e_row[:lb], e, out=e_row[:lb])
        np.subtract(h_prev[:lb], o, out=scratch[:lb])
        np.maximum(e_row[:lb], scratch[:lb], out=e_row[:lb])
        np.add(h_prev[:lb - 1], sub[1:], out=tmp[1:lb])   # diagonal'
        np.subtract(sub[0], st, out=tmp[0])
        np.maximum(tmp[:lb], e_row[:lb], out=tmp[:lb])
        np.maximum(tmp[:lb], ramp[:lb], out=tmp[:lb])     # T'[i]
        tmp[lb:] = neg
        np.maximum(hmax, tmp, out=hmax)
        np.copyto(scratch, tmp)
        _scan_blocked(scratch.reshape(nb, BLK, n_pairs), carry)
        h_prev, tmp = tmp, h_prev
        # H' = max(T', F');  F'[j] = scan'[j-1] - (open - step).
        np.subtract(scratch[:lb - 1], fo, out=scratch[:lb - 1])
        np.maximum(h_prev[1:lb], scratch[:lb - 1], out=h_prev[1:lb])
    np.subtract(hmax[:lb], ramp[:lb], out=hmax[:lb])
    scores = hmax[:lb].max(axis=0).astype(np.int64) if la else \
        np.zeros(n_pairs, dtype=np.int64)
    pool.give(h_prev, hmax, tmp, scratch, e_row, carry, idx16, sub)
    return scores


class DeviceAligner:
    """Batched Smith-Waterman scoring on a :class:`SimulatedDevice`.

    Usage mirrors the shingling driver: :meth:`upload_sequences` moves the
    flat residue buffer across the link once, then :meth:`batch_scores`
    bins, packs and scores any number of pair sets against it.  Every
    launch/transfer is accounted on the device (wall + modeled buckets,
    kernel counters, tracer spans), and ``device.obs.metrics`` accumulates
    the alignment-specific series (``device.align.*``) the benchmarks and
    the Chrome trace read.
    """

    def __init__(self, device: SimulatedDevice | DeviceGroup | None = None, *,
                 matrix: np.ndarray = BLOSUM62,
                 plan: ExecutionPlan | None = None,
                 max_pairs_per_bin: int = 384,
                 max_waste: float = 0.25,
                 min_pairs_per_bin: int = 32) -> None:
        # A DeviceGroup distributes bins across its members (bins write
        # disjoint output slices, so they are already independent units of
        # work); ``self.device`` stays a plain SimulatedDevice — member 0 —
        # so single-device callers see the historical surface.
        if isinstance(device, DeviceGroup):
            self.group: DeviceGroup | None = device
            self.device = device.members[0]
        else:
            self.group = None
            self.device = device if device is not None else SimulatedDevice()
        self.matrix = matrix
        self.plan = plan if plan is not None else ExecutionPlan()
        self.max_pairs_per_bin = max_pairs_per_bin
        self.max_waste = max_waste
        self.min_pairs_per_bin = min_pairs_per_bin
        # Per-member device buffers (one entry per group member; a single
        # device is the one-member degenerate case).
        self._d_residues: list = []
        self._d_offsets: list = []
        self._d_residues16: list = []
        self._lengths: np.ndarray | None = None
        #: Bin plan of the most recent :meth:`batch_scores` call.
        self.last_plan: AlignmentBinPlan | None = None

    @property
    def _members(self) -> list[SimulatedDevice]:
        return self.group.members if self.group is not None else [self.device]

    # ------------------------------------------------------------------ #
    # Sequence residency
    # ------------------------------------------------------------------ #

    def upload_sequences(self, sequences: list[np.ndarray]) -> None:
        """Upload the sequence set as flat CSR (h2d-accounted), replacing
        any previously resident set.

        With a group the flat buffers cross the PCIe link once and fan out
        peer-to-peer (:meth:`DeviceGroup.broadcast`); every member then
        widens its own copy.  The uint8 wire buffer is widened on-device to
        int16 (one transform launch per member) so every subsequent bin
        pack gathers directly into the int16 index lanes the kernels
        consume.
        """
        residues, offsets = flatten_sequences(
            [np.asarray(s, dtype=np.uint8) for s in sequences])
        self.release()
        self._lengths = np.diff(offsets)
        if self.group is not None and self.group.n_devices > 1:
            self._d_residues = self.group.broadcast(residues)
            self._d_offsets = self.group.broadcast(offsets)
        else:
            self._d_residues = [self.device.upload(residues)]
            self._d_offsets = [self.device.upload(offsets)]
        for member, d_res in zip(self._members, self._d_residues):
            t0 = time.perf_counter()
            wide = d_res.device_view().astype(np.int16)
            self._d_residues16.append(member.memory.adopt(wide))
            t1 = time.perf_counter()
            member.breakdown.add(BUCKET_GPU, t1 - t0)
            modeled = member.spec.kernels.seconds_for("transform", wide.size)
            member._record_kernel("sw_widen", wide.size, modeled)
            member.breakdown.add_modeled(BUCKET_GPU, modeled)

    def release(self) -> None:
        """Free the device-resident sequence buffers."""
        for buf in self._d_residues + self._d_offsets + self._d_residues16:
            buf.free()
        self._d_residues = []
        self._d_offsets = []
        self._d_residues16 = []
        self._lengths = None

    def __enter__(self) -> "DeviceAligner":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #

    def batch_scores(self, pairs: np.ndarray, *, gap_model: str = "linear",
                     gap: int = 8, gap_open: int = 11,
                     gap_extend: int = 1) -> np.ndarray:
        """Smith-Waterman scores of ``pairs`` rows against the resident set.

        ``pairs`` is ``(n, 2)`` sequence ids.  Returns ``(n,)`` int64
        scores, bit-identical to the host batched kernels under the same
        gap model.  Bins run under :attr:`plan`'s schedule on one device;
        on a group they are statically assigned to the member with the
        least accumulated padded-cell load and scored by one driver thread
        per device — bins write disjoint ``out`` slices, so distribution
        cannot reorder anything observable.
        """
        if not self._d_residues:
            raise RuntimeError("no sequences resident; call upload_sequences")
        if gap_model not in ("linear", "affine"):
            raise ValueError(f"unknown gap_model {gap_model!r}")
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        n = pairs.shape[0]
        out = np.zeros(n, dtype=np.int64)
        if n == 0:
            self.last_plan = AlignmentBinPlan(
                bins=[], order=np.empty(0, dtype=np.int64))
            return out

        penalties = (gap,) if gap_model == "linear" else (gap_open, gap_extend)
        lengths = self._lengths
        short_lens, long_lens = orient_pair_lengths(pairs, lengths)
        swap = lengths[pairs[:, 0]] > lengths[pairs[:, 1]]
        short_ids = np.where(swap, pairs[:, 1], pairs[:, 0])
        long_ids = np.where(swap, pairs[:, 0], pairs[:, 1])
        plan = plan_alignment_bins(
            short_lens, long_lens,
            lambda s, l: dp_dtype(s, l, self.matrix, penalties),
            max_pairs=self.max_pairs_per_bin, max_waste=self.max_waste,
            min_pairs=self.min_pairs_per_bin)
        self.last_plan = plan

        members = self._members
        multi = len(members) > 1

        # The pair table rides to the device like any other kernel input
        # (peer-fanned on a group: every member scores against it).
        d_pairs = (self.group.broadcast(pairs) if multi
                   else [self.device.upload(pairs)])

        def pack(bin_: AlignmentBin, dev: int = 0):
            return self._pack_bin(bin_, plan.order, short_ids, long_ids, dev)

        def score(bin_: AlignmentBin, packed, dev: int = 0) -> None:
            self._score_bin(bin_, packed, plan, gap_model, gap, gap_open,
                            gap_extend, out, dev)

        try:
            if multi:
                owners = least_loaded_assignment(
                    [bin_.padded_cells for bin_ in plan.bins], len(members))
                per_dev: list[list[AlignmentBin]] = [[] for _ in members]
                for bin_, owner in zip(plan.bins, owners):
                    per_dev[owner].append(bin_)
                errors: list[BaseException] = []

                def runner(dev: int) -> None:
                    try:
                        for bin_ in per_dev[dev]:
                            score(bin_, pack(bin_, dev), dev)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                threads = [threading.Thread(target=runner, args=(i,),
                                            name=f"dev{i}")
                           for i in range(len(members)) if per_dev[i]]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                if errors:
                    raise errors[0]
            elif self.plan.mode == EXEC_PREFETCH and plan.n_bins > 1:
                for bin_, packed in double_buffer(plan.bins, pack):
                    score(bin_, packed)
            elif self.plan.mode == EXEC_MULTISTREAM and plan.n_bins > 1:
                # Bins write disjoint slices of ``out``; concurrent
                # execution cannot reorder anything observable.
                def run(bin_: AlignmentBin) -> None:
                    score(bin_, pack(bin_))

                with ThreadPoolExecutor(
                        max_workers=self.plan.streams) as streams:
                    futures = [streams.submit(run, bin_)
                               for bin_ in plan.bins]
                    for f in futures:
                        f.result()
            else:
                for bin_ in plan.bins:
                    score(bin_, pack(bin_))
        finally:
            for buf in d_pairs:
                buf.free()

        self._record_plan_metrics(plan)
        return out

    # ------------------------------------------------------------------ #
    # Per-bin stages
    # ------------------------------------------------------------------ #

    def _pack_bin(self, bin_: AlignmentBin, order: np.ndarray,
                  short_ids: np.ndarray, long_ids: np.ndarray,
                  dev: int = 0):
        device = self._members[dev]
        t0 = time.perf_counter()
        members = order[bin_.order_lo:bin_.order_hi]
        residues = self._d_residues16[dev].device_view()
        offsets = self._d_offsets[dev].device_view()
        arow, bt = pack_bin_blocks(residues, offsets, short_ids[members],
                                   long_ids[members], bin_.max_short,
                                   bin_.max_long)
        t1 = time.perf_counter()
        device.breakdown.add(BUCKET_GPU, t1 - t0)
        n_el = arow.size + bt.size
        modeled = device.spec.kernels.seconds_for("transform", n_el)
        device._record_kernel("sw_pack", n_el, modeled)
        device.breakdown.add_modeled(BUCKET_GPU, modeled)
        return arow, bt

    def _score_bin(self, bin_: AlignmentBin, packed,
                   plan: AlignmentBinPlan, gap_model: str, gap: int,
                   gap_open: int, gap_extend: int, out: np.ndarray,
                   dev: int = 0) -> None:
        device = self._members[dev]
        arow, bt = packed
        t0 = time.perf_counter()
        d_work = device.memory.adopt(bt)      # bin working set, device-resident
        if gap_model == "affine":
            scores = rowscan_affine_binned(arow, bt, self.matrix, gap_open,
                                           gap_extend, bin_.dtype,
                                           device.scratch)
        else:
            scores = rowscan_linear_binned(arow, bt, self.matrix, gap,
                                           bin_.dtype, device.scratch)
        d_scores = device.memory.adopt(scores)
        t1 = time.perf_counter()
        device.breakdown.add(BUCKET_GPU, t1 - t0)
        cells = bin_.padded_cells
        rowscan_s = device.spec.kernels.seconds_for("transform", cells)
        scan_s = device.spec.kernels.seconds_for("scan", cells)
        device._record_kernel("sw_rowscan", cells, rowscan_s)
        device._record_kernel("sw_scan", cells, scan_s)
        device.breakdown.add_modeled(BUCKET_GPU, rowscan_s + scan_s)
        tracer = device.obs.tracer
        if tracer.enabled:
            tracer.record(
                "device.align_bin", t0, t1, proc=device.proc,
                attrs={"n_pairs": bin_.n_pairs, "la": bin_.max_short,
                       "lb": bin_.max_long, "dtype": bin_.dtype.name,
                       "padding_waste": round(bin_.padding_waste, 4)})
        host_scores = device.download(d_scores)
        device.free(d_work, d_scores)
        out[plan.order[bin_.order_lo:bin_.order_hi]] = host_scores

    def _record_plan_metrics(self, plan: AlignmentBinPlan) -> None:
        metrics = self.device.obs.metrics
        padded = metrics.counter("device.align.cells_padded")
        actual = metrics.counter("device.align.cells_actual")
        padded.add(plan.padded_cells)
        actual.add(plan.actual_cells)
        metrics.counter("device.align.pairs").add(int(plan.order.size))
        metrics.counter("device.align.bins").add(plan.n_bins)
        # Cumulative wasted-cell fraction across every plan so far.
        if padded.value:
            metrics.gauge("device.align.padding_waste").set(
                round(1.0 - actual.value / padded.value, 6))
        if self.group is not None:
            self.group.sync_metrics()
        else:
            self.device.sync_metrics()
