"""Data-parallel device kernels.

Each function here is the NumPy analogue of one GPU kernel launch from
Figure 4 of the paper: whole-array operations over a *batch* of adjacency
lists stored as one contiguous buffer plus an ``indptr`` boundary array —
never a per-element interpreted loop.  The kernels are pure functions over
ndarrays; :class:`repro.device.device.SimulatedDevice` wraps them with device
buffers, timing, and cost-model accounting.

Kernel inventory
----------------
``affine_hash``
    ``thrust::transform`` analogue: ``h_j(v) = (A_j*v + B_j) mod P`` for a
    chunk of trials ``j`` at once (one row per trial).
``pack_pairs`` / ``unpack_pairs``
    Pack (hash, id) into one uint64 so a single segmented min yields both the
    minimum hash and its original element.
``segmented_sort_top_s``
    ``thrust::sort`` analogue: stable segmented sort, then take each
    segment's first ``s`` entries.  Reference implementation.
``segmented_select_top_s``
    Optimized selection: ``s`` rounds of segmented min (``ufunc.reduceat``)
    with masking.  O(s*n) instead of O(n log n); produces identical output.
``fold_fingerprints``
    ``thrust::transform`` analogue folding each segment's top-``s`` ids into
    a 64-bit shingle fingerprint.
"""

from __future__ import annotations

import numpy as np

from repro.util.mixhash import fold_fingerprint_array

#: Sentinel marking "no element": larger than any packed (hash, id) pair.
SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Bits reserved for the element id in a packed pair.
_ID_BITS = np.uint64(32)
_ID_MASK = np.uint64((1 << 32) - 1)


def affine_hash(values: np.ndarray, a: np.ndarray, b: np.ndarray, prime: int) -> np.ndarray:
    """Min-wise hash a flat element buffer under a chunk of trials.

    Parameters
    ----------
    values:
        ``(nnz,)`` element ids (all ``< prime``).
    a, b:
        ``(T,)`` per-trial hash coefficients.
    prime:
        The modulus ``P``.

    Returns
    -------
    np.ndarray
        ``(T, nnz)`` uint64 hashed values, row ``t`` = trial ``t``.
    """
    v = np.asarray(values, dtype=np.uint64)
    a = np.asarray(a, dtype=np.uint64).reshape(-1, 1)
    b = np.asarray(b, dtype=np.uint64).reshape(-1, 1)
    if prime <= 0 or prime > (1 << 31) + (1 << 20):
        # Products a*v must stay below 2**64: both factors < ~2**31.5.
        raise ValueError(f"prime {prime} outside supported range")
    with np.errstate(over="ignore"):
        return (a * v + b) % np.uint64(prime)


def pack_pairs(hashed: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Pack ``(hash, id)`` into ``hash << 32 | id`` (uint64).

    Requires ``hash < 2**31`` (guaranteed by the prime bound) and
    ``id < 2**32``.  Ordering packed pairs orders primarily by hash, with the
    id as a deterministic tiebreaker — though within one adjacency list ties
    cannot occur because the affine map is injective mod P.
    """
    ids = np.asarray(ids, dtype=np.uint64)
    if ids.size and int(ids.max()) >> 32:
        raise ValueError("element ids must fit in 32 bits")
    return (np.asarray(hashed, dtype=np.uint64) << _ID_BITS) | ids


def unpack_pairs(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pairs`: returns ``(hash, id)`` arrays."""
    packed = np.asarray(packed, dtype=np.uint64)
    return packed >> _ID_BITS, packed & _ID_MASK


def _segment_geometry(indptr: np.ndarray, nnz: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Common precomputation: (starts, lengths, empty_mask).

    ``starts`` is ``indptr[:-1]`` unmodified; trailing empty segments have
    ``start == nnz``, which is NOT a valid ``reduceat`` index — callers must
    restrict reduceat to the prefix of segments with ``start < nnz`` (they
    form a suffix of empties, handled via the empty mask).  Clipping the
    invalid starts instead would silently shrink the *previous* segment's
    reduceat window.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr[0] != 0 or indptr[-1] != nnz or np.any(np.diff(indptr) < 0):
        raise ValueError("invalid indptr for segment buffer")
    lengths = np.diff(indptr)
    return indptr[:-1], lengths, lengths == 0


def segmented_select_top_s(packed: np.ndarray, indptr: np.ndarray, s: int) -> np.ndarray:
    """Top-``s`` smallest packed pairs per segment via s rounds of segmented min.

    Parameters
    ----------
    packed:
        ``(T, nnz)`` packed pairs (one row per trial).  Not modified.
    indptr:
        ``(n_seg + 1,)`` segment boundaries within each row.
    s:
        Number of minima to extract per segment.

    Returns
    -------
    np.ndarray
        ``(T, n_seg, s)`` uint64; position ``[t, i, r]`` holds the r-th
        smallest pair of segment ``i`` under trial ``t``, or ``SENTINEL``
        when the segment has fewer than ``r+1`` elements.
    """
    packed = np.array(packed, dtype=np.uint64, ndmin=2, copy=True)
    n_trials, nnz = packed.shape
    starts, lengths, empty = _segment_geometry(indptr, nnz)
    n_seg = lengths.size
    out = np.full((n_trials, n_seg, s), SENTINEL, dtype=np.uint64)
    if nnz == 0 or n_seg == 0:
        return out
    # Trailing empty segments have start == nnz (invalid for reduceat);
    # they are a suffix, so reduce over the valid prefix only.
    n_valid = int(np.searchsorted(starts, nnz, side="left"))
    for r in range(s):
        segmin = np.full((n_trials, n_seg), SENTINEL, dtype=np.uint64)
        segmin[:, :n_valid] = np.minimum.reduceat(packed, starts[:n_valid], axis=1)
        segmin[:, empty] = SENTINEL
        out[:, :, r] = segmin
        if r + 1 == s:
            break
        # Mask each extracted minimum so the next round finds the runner-up.
        expanded = np.repeat(segmin, lengths, axis=1)
        packed[packed == expanded] = SENTINEL
    return out


def segmented_sort_top_s(packed: np.ndarray, indptr: np.ndarray, s: int) -> np.ndarray:
    """Reference implementation: full segmented sort, then gather top ``s``.

    Mirrors the paper's Thrust pipeline (transform then ``thrust::sort`` of
    the whole batch with segment keys).  Output is identical to
    :func:`segmented_select_top_s`.
    """
    packed = np.array(packed, dtype=np.uint64, ndmin=2)
    n_trials, nnz = packed.shape
    indptr = np.asarray(indptr, dtype=np.int64)
    _, lengths, _ = _segment_geometry(indptr, nnz)
    n_seg = lengths.size
    out = np.full((n_trials, n_seg, s), SENTINEL, dtype=np.uint64)
    if nnz == 0 or n_seg == 0:
        return out
    seg_ids = np.repeat(np.arange(n_seg, dtype=np.int64), lengths)
    take = np.minimum(lengths, s)
    # Destination coordinates of the top-s entries of every segment.
    dst_seg = np.repeat(np.arange(n_seg, dtype=np.int64), take)
    dst_rank = _ranks_within(take)
    src_pos = np.repeat(indptr[:-1], take) + dst_rank
    for t in range(n_trials):
        order = np.lexsort((packed[t], seg_ids))
        sorted_row = packed[t, order]
        out[t, dst_seg, dst_rank] = sorted_row[src_pos]
    return out


def _ranks_within(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for a counts array (vectorized iota)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    idx = np.arange(total, dtype=np.int64)
    seg_start = np.repeat(ends - counts, counts)
    return idx - seg_start


def fold_fingerprints(top_ids: np.ndarray, salts: np.ndarray) -> np.ndarray:
    """Fold each segment's top-``s`` ids into a shingle fingerprint.

    Parameters
    ----------
    top_ids:
        ``(T, n_seg, s)`` ids in min-hash order.
    salts:
        ``(T,)`` per-trial salts.

    Returns
    -------
    np.ndarray
        ``(T, n_seg)`` uint64 fingerprints.
    """
    top_ids = np.asarray(top_ids, dtype=np.uint64)
    salts = np.asarray(salts, dtype=np.uint64).reshape(-1, 1)
    return fold_fingerprint_array(top_ids, salts)


def count_kernel_elements(kernel: str, n_trials: int, nnz: int, n_seg: int, s: int) -> int:
    """Element counts fed to the kernel cost model, per kernel class."""
    if kernel == "transform":
        return n_trials * nnz
    if kernel == "sort":
        return n_trials * nnz
    if kernel == "select":
        return n_trials * nnz * s
    if kernel == "reduce":
        return n_trials * n_seg * s
    raise ValueError(f"unknown kernel class {kernel!r}")
