"""Data-parallel device kernels.

Each function here is the NumPy analogue of one GPU kernel launch from
Figure 4 of the paper: whole-array operations over a *batch* of adjacency
lists stored as one contiguous buffer plus an ``indptr`` boundary array —
never a per-element interpreted loop.  The kernels are pure functions over
ndarrays; :class:`repro.device.device.SimulatedDevice` wraps them with device
buffers, timing, and cost-model accounting.

All hot-path kernels accept optional ``out=`` destinations and (where they
need internal working arrays) a :class:`repro.device.memory.ScratchPool`, so
the steady state of a shingling pass performs **zero** fresh large
allocations: every round reuses the previous round's buffers, exactly as a
real CUDA pipeline would reuse device allocations across kernel launches.
The defaults (no pool, no ``out``) preserve the original allocate-per-call
behaviour for tests and one-off callers.

Kernel inventory
----------------
``affine_hash``
    ``thrust::transform`` analogue: ``h_j(v) = (A_j*v + B_j) mod P`` for a
    chunk of trials ``j`` at once (one row per trial).
``pack_pairs`` / ``unpack_pairs`` / ``unpack_ids``
    Pack (hash, id) into one uint64 so a single segmented min yields both the
    minimum hash and its original element.
``segmented_sort_top_s``
    ``thrust::sort`` analogue: stable segmented sort, then take each
    segment's first ``s`` entries.  Reference implementation; the sort is a
    single 2-D composite-key argsort (value pass then stable segment pass),
    not a per-trial interpreted loop.
``segmented_select_top_s``
    Optimized selection: ``s`` rounds of segmented min (``ufunc.reduceat``)
    with masking.  O(s*n) instead of O(n log n); produces identical output.
``fold_fingerprints``
    ``thrust::transform`` analogue folding each segment's top-``s`` ids into
    a 64-bit shingle fingerprint.
``segment_element_ids``
    Auxiliary iota: the segment id of every element — computed once per
    batch and reused by every selection round.
"""

from __future__ import annotations

import numpy as np

from repro.device.memory import ScratchPool
from repro.util.mixhash import fold_fingerprint_array

#: Sentinel marking "no element": larger than any packed (hash, id) pair.
SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Bits reserved for the element id in a packed pair.
_ID_BITS = np.uint64(32)
_ID_MASK = np.uint64((1 << 32) - 1)


def _take(pool: ScratchPool | None, shape, dtype):
    """A scratch buffer from the pool, or a fresh allocation without one."""
    if pool is not None:
        return pool.take(shape, dtype)
    return np.empty(shape, dtype=dtype)


def _give(pool: ScratchPool | None, *arrays: np.ndarray) -> None:
    if pool is not None:
        pool.give(*arrays)


def affine_hash(values: np.ndarray, a: np.ndarray, b: np.ndarray, prime: int,
                out: np.ndarray | None = None) -> np.ndarray:
    """Min-wise hash a flat element buffer under a chunk of trials.

    Parameters
    ----------
    values:
        ``(nnz,)`` element ids (all ``< prime``).
    a, b:
        ``(T,)`` per-trial hash coefficients.
    prime:
        The modulus ``P``.
    out:
        Optional ``(T, nnz)`` uint64 destination; when given, no temporaries
        are allocated (the computation runs in place on ``out``).

    Returns
    -------
    np.ndarray
        ``(T, nnz)`` uint64 hashed values, row ``t`` = trial ``t``.
    """
    v = np.asarray(values, dtype=np.uint64)
    a = np.asarray(a, dtype=np.uint64).reshape(-1, 1)
    b = np.asarray(b, dtype=np.uint64).reshape(-1, 1)
    if prime <= 0 or prime > (1 << 31) + (1 << 20):
        # Products a*v must stay below 2**64: both factors < ~2**31.5.
        raise ValueError(f"prime {prime} outside supported range")
    with np.errstate(over="ignore"):
        if out is None:
            return (a * v + b) % np.uint64(prime)
        np.multiply(a, v, out=out)
        np.add(out, b, out=out)
        np.remainder(out, np.uint64(prime), out=out)
        return out


def pack_pairs(hashed: np.ndarray, ids: np.ndarray,
               out: np.ndarray | None = None,
               checked: bool = False) -> np.ndarray:
    """Pack ``(hash, id)`` into ``hash << 32 | id`` (uint64).

    Requires ``hash < 2**31`` (guaranteed by the prime bound) and
    ``id < 2**32``.  Ordering packed pairs orders primarily by hash, with the
    id as a deterministic tiebreaker — though within one adjacency list ties
    cannot occur because the affine map is injective mod P.

    ``out`` may alias ``hashed`` (the shift runs in place).  ``checked=True``
    skips the per-call id-range scan for callers that validated the element
    buffer once per batch.
    """
    ids = np.asarray(ids, dtype=np.uint64)
    if not checked and ids.size and int(ids.max()) >> 32:
        raise ValueError("element ids must fit in 32 bits")
    hashed = np.asarray(hashed, dtype=np.uint64)
    if out is None:
        return (hashed << _ID_BITS) | ids
    np.left_shift(hashed, _ID_BITS, out=out)
    np.bitwise_or(out, ids, out=out)
    return out


def unpack_pairs(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pairs`: returns ``(hash, id)`` arrays."""
    packed = np.asarray(packed, dtype=np.uint64)
    return packed >> _ID_BITS, packed & _ID_MASK


def unpack_ids(packed: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """The id halves of packed pairs only (the fingerprint fold's input)."""
    packed = np.asarray(packed, dtype=np.uint64)
    if out is None:
        return packed & _ID_MASK
    np.bitwise_and(packed, _ID_MASK, out=out)
    return out


def segment_element_ids(indptr: np.ndarray) -> np.ndarray:
    """Segment id of every element position (``[0,0,..,1,1,..]``).

    One gather table, computed once per batch; every selection round expands
    per-segment minima to element positions through it with ``np.take``.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    return np.repeat(np.arange(indptr.size - 1, dtype=np.int64),
                     np.diff(indptr))


def _segment_geometry(indptr: np.ndarray, nnz: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Common precomputation: (starts, lengths, empty_mask).

    ``starts`` is ``indptr[:-1]`` unmodified; trailing empty segments have
    ``start == nnz``, which is NOT a valid ``reduceat`` index — callers must
    restrict reduceat to the prefix of segments with ``start < nnz`` (they
    form a suffix of empties, handled via the empty mask).  Clipping the
    invalid starts instead would silently shrink the *previous* segment's
    reduceat window.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr[0] != 0 or indptr[-1] != nnz or np.any(np.diff(indptr) < 0):
        raise ValueError("invalid indptr for segment buffer")
    lengths = np.diff(indptr)
    return indptr[:-1], lengths, lengths == 0


def segmented_select_top_s(packed: np.ndarray, indptr: np.ndarray, s: int,
                           scratch: ScratchPool | None = None,
                           seg_ids: np.ndarray | None = None,
                           out: np.ndarray | None = None) -> np.ndarray:
    """Top-``s`` smallest packed pairs per segment via s rounds of segmented min.

    Parameters
    ----------
    packed:
        ``(T, nnz)`` packed pairs (one row per trial).  Not modified.
    indptr:
        ``(n_seg + 1,)`` segment boundaries within each row.
    s:
        Number of minima to extract per segment.
    scratch:
        Optional scratch pool for the working copy, per-round minima, the
        expanded-minimum matrix, and the equality mask — with it, repeated
        calls of the same geometry allocate nothing.
    seg_ids:
        Optional precomputed :func:`segment_element_ids` of ``indptr``.
    out:
        Optional ``(T, n_seg, s)`` uint64 destination.

    Returns
    -------
    np.ndarray
        ``(T, n_seg, s)`` uint64; position ``[t, i, r]`` holds the r-th
        smallest pair of segment ``i`` under trial ``t``, or ``SENTINEL``
        when the segment has fewer than ``r+1`` elements.
    """
    packed = np.array(packed, dtype=np.uint64, ndmin=2, copy=False)
    n_trials, nnz = packed.shape
    starts, lengths, empty = _segment_geometry(indptr, nnz)
    n_seg = lengths.size
    if out is None:
        out = np.empty((n_trials, n_seg, s), dtype=np.uint64)
    out[...] = SENTINEL
    if nnz == 0 or n_seg == 0:
        return out
    # Trailing empty segments have start == nnz (invalid for reduceat);
    # they are a suffix, so reduce over the valid prefix only.
    n_valid = int(np.searchsorted(starts, nnz, side="left"))
    work = _take(scratch, (n_trials, nnz), np.uint64)
    np.copyto(work, packed)
    segmin = _take(scratch, (n_trials, n_seg), np.uint64)
    if s > 1:
        if seg_ids is None:
            seg_ids = segment_element_ids(indptr)
        expanded = _take(scratch, (n_trials, nnz), np.uint64)
        mask = _take(scratch, (n_trials, nnz), np.bool_)
    for r in range(s):
        np.minimum.reduceat(work, starts[:n_valid], axis=1,
                            out=segmin[:, :n_valid])
        if n_valid < n_seg:
            segmin[:, n_valid:] = SENTINEL
        segmin[:, empty] = SENTINEL
        out[:, :, r] = segmin
        if r + 1 == s:
            break
        # Mask each extracted minimum so the next round finds the runner-up.
        # mode="clip" selects the fast gather path (indices are in range by
        # construction; "raise" would fall back to a slow checked loop).
        np.take(segmin, seg_ids, axis=1, out=expanded, mode="clip")
        np.equal(work, expanded, out=mask)
        np.copyto(work, SENTINEL, where=mask)
    _give(scratch, work, segmin)
    if s > 1:
        _give(scratch, expanded, mask)
    return out


def segmented_sort_top_s(packed: np.ndarray, indptr: np.ndarray, s: int,
                         scratch: ScratchPool | None = None,
                         seg_ids: np.ndarray | None = None,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Reference implementation: full segmented sort, then gather top ``s``.

    Mirrors the paper's Thrust pipeline (transform then ``thrust::sort`` of
    the whole batch with segment keys).  The segmented sort is composed as a
    least-significant-key radix pass over the whole 2-D trial block: a
    stable argsort by pair value, then a stable argsort by segment id of the
    value-ordered positions — one composite-key sort for *all* trials, with
    no per-trial interpreted loop.  Output is identical to
    :func:`segmented_select_top_s`.
    """
    packed = np.array(packed, dtype=np.uint64, ndmin=2, copy=False)
    n_trials, nnz = packed.shape
    indptr = np.asarray(indptr, dtype=np.int64)
    _, lengths, _ = _segment_geometry(indptr, nnz)
    n_seg = lengths.size
    if out is None:
        out = np.empty((n_trials, n_seg, s), dtype=np.uint64)
    out[...] = SENTINEL
    if nnz == 0 or n_seg == 0:
        return out
    if seg_ids is None:
        seg_ids = segment_element_ids(indptr)
    take = np.minimum(lengths, s)
    # Destination coordinates of the top-s entries of every segment.
    dst_seg = np.repeat(np.arange(n_seg, dtype=np.int64), take)
    dst_rank = _ranks_within(take)
    src_pos = np.repeat(indptr[:-1], take) + dst_rank
    # Stable LSD composition == np.lexsort((packed[t], seg_ids)) per trial.
    value_order = np.argsort(packed, axis=1, kind="stable")
    segment_keys = seg_ids[value_order]
    segment_order = np.argsort(segment_keys, axis=1, kind="stable")
    order = np.take_along_axis(value_order, segment_order, axis=1)
    sorted_rows = np.take_along_axis(packed, order, axis=1)
    out[:, dst_seg, dst_rank] = sorted_rows[:, src_pos]
    return out


def _ranks_within(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for a counts array (vectorized iota)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    idx = np.arange(total, dtype=np.int64)
    seg_start = np.repeat(ends - counts, counts)
    return idx - seg_start


def fold_fingerprints(top_ids: np.ndarray, salts: np.ndarray,
                      scratch: ScratchPool | None = None,
                      out: np.ndarray | None = None) -> np.ndarray:
    """Fold each segment's top-``s`` ids into a shingle fingerprint.

    Parameters
    ----------
    top_ids:
        ``(T, n_seg, s)`` ids in min-hash order.
    salts:
        ``(T,)`` per-trial salts.
    scratch, out:
        Optional scratch pool / destination for allocation-free folding.

    Returns
    -------
    np.ndarray
        ``(T, n_seg)`` uint64 fingerprints.
    """
    top_ids = np.asarray(top_ids, dtype=np.uint64)
    salts = np.asarray(salts, dtype=np.uint64).reshape(-1, 1)
    return fold_fingerprint_array(top_ids, salts, scratch=scratch, out=out)


def count_kernel_elements(kernel: str, n_trials: int, nnz: int, n_seg: int, s: int) -> int:
    """Element counts fed to the kernel cost model, per kernel class."""
    if kernel == "transform":
        return n_trials * nnz
    if kernel == "sort":
        return n_trials * nnz
    if kernel == "select":
        return n_trials * nnz * s
    if kernel == "reduce":
        return n_trials * n_seg * s
    raise ValueError(f"unknown kernel class {kernel!r}")
