"""Data-parallel device kernels.

Each function here is the NumPy analogue of one GPU kernel launch from
Figure 4 of the paper: whole-array operations over a *batch* of adjacency
lists stored as one contiguous buffer plus an ``indptr`` boundary array —
never a per-element interpreted loop.  The kernels are pure functions over
ndarrays; :class:`repro.device.device.SimulatedDevice` wraps them with device
buffers, timing, and cost-model accounting.

All hot-path kernels accept optional ``out=`` destinations and (where they
need internal working arrays) a :class:`repro.device.memory.ScratchPool`, so
the steady state of a shingling pass performs **zero** fresh large
allocations: every round reuses the previous round's buffers, exactly as a
real CUDA pipeline would reuse device allocations across kernel launches.
The defaults (no pool, no ``out``) preserve the original allocate-per-call
behaviour for tests and one-off callers.

Kernel inventory
----------------
``affine_hash``
    ``thrust::transform`` analogue: ``h_j(v) = (A_j*v + B_j) mod P`` for a
    chunk of trials ``j`` at once (one row per trial).
``pack_pairs`` / ``unpack_pairs`` / ``unpack_ids``
    Pack (hash, id) into one uint64 so a single segmented min yields both the
    minimum hash and its original element.
``fused_hash``
    Fused hash+pack: because the affine map is injective mod P, the uint32
    hash alone *is* the packed pair — one transform launch writes one
    ``(T, nnz)`` uint32 key buffer instead of the uint64 hash matrix plus the
    uint64 packed matrix, and :func:`recover_top_ids` inverts the map on the
    small top-``s`` block afterwards.
``chunk_reduce``
    On-device sort-dedup reduction: groups one trial chunk's ``(t, n)``
    shingle occurrences by packed ``(trial, member-tuple, column)`` keys so
    only the ``k`` distinct shingles (fingerprint-sorted, with first-
    occurrence members and ready-made generator lists) ship back to the
    host.
``segmented_sort_top_s``
    ``thrust::sort`` analogue: stable segmented sort, then take each
    segment's first ``s`` entries.  Reference implementation; the sort is a
    single 2-D composite-key argsort (value pass then stable segment pass),
    not a per-trial interpreted loop.
``segmented_select_top_s``
    Optimized selection: ``s`` rounds of segmented min (``ufunc.reduceat``)
    with masking.  O(s*n) instead of O(n log n); produces identical output.
``fold_fingerprints``
    ``thrust::transform`` analogue folding each segment's top-``s`` ids into
    a 64-bit shingle fingerprint.
``segment_element_ids``
    Auxiliary iota: the segment id of every element — computed once per
    batch and reused by every selection round.
``agg_sort`` / ``agg_boundaries`` / ``agg_invert``
    Inter-pass aggregation group-by: merge the per-chunk sorted fingerprint
    runs from ``chunk_reduce`` (stable argsort over the concatenation),
    flag run boundaries + build the group inverse, and invert the generator
    lists into one bipartite CSR — the device analogue of the host
    StreamingAggregator merge, bit-identical by construction.
``cc_hook`` / ``cc_jump``
    Phase III connected components: one min-label hooking round (atomic-min
    scatter over the edge list) and one pointer-jumping round
    (``labels[labels]`` gather).  Iterated to a fixpoint, these converge to
    the canonical min-vertex labeling of each component.
"""

from __future__ import annotations

import numpy as np

from repro.device.memory import ScratchPool
from repro.util.mixhash import fold_fingerprint_array

#: Sentinel marking "no element": larger than any packed (hash, id) pair.
SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Sentinel for the fused uint32 key lane: larger than any hash (< P < 2^32).
SENTINEL32 = np.uint32(0xFFFFFFFF)

#: Bits reserved for the element id in a packed pair.
_ID_BITS = np.uint64(32)
_ID_MASK = np.uint64((1 << 32) - 1)


def _take(pool: ScratchPool | None, shape, dtype):
    """A scratch buffer from the pool, or a fresh allocation without one."""
    if pool is not None:
        return pool.take(shape, dtype)
    return np.empty(shape, dtype=dtype)


def _give(pool: ScratchPool | None, *arrays: np.ndarray) -> None:
    if pool is not None:
        pool.give(*arrays)


def affine_hash(values: np.ndarray, a: np.ndarray, b: np.ndarray, prime: int,
                out: np.ndarray | None = None) -> np.ndarray:
    """Min-wise hash a flat element buffer under a chunk of trials.

    Parameters
    ----------
    values:
        ``(nnz,)`` element ids (all ``< prime``).
    a, b:
        ``(T,)`` per-trial hash coefficients.
    prime:
        The modulus ``P``.
    out:
        Optional ``(T, nnz)`` uint64 destination; when given, no temporaries
        are allocated (the computation runs in place on ``out``).

    Returns
    -------
    np.ndarray
        ``(T, nnz)`` uint64 hashed values, row ``t`` = trial ``t``.
    """
    v = np.asarray(values, dtype=np.uint64)
    a = np.asarray(a, dtype=np.uint64).reshape(-1, 1)
    b = np.asarray(b, dtype=np.uint64).reshape(-1, 1)
    if prime <= 0 or prime > (1 << 31) + (1 << 20):
        # Products a*v must stay below 2**64: both factors < ~2**31.5.
        raise ValueError(f"prime {prime} outside supported range")
    with np.errstate(over="ignore"):
        if out is None:
            return (a * v + b) % np.uint64(prime)
        np.multiply(a, v, out=out)
        np.add(out, b, out=out)
        np.remainder(out, np.uint64(prime), out=out)
        return out


def pack_pairs(hashed: np.ndarray, ids: np.ndarray,
               out: np.ndarray | None = None,
               checked: bool = False) -> np.ndarray:
    """Pack ``(hash, id)`` into ``hash << 32 | id`` (uint64).

    Requires ``hash < 2**31`` (guaranteed by the prime bound) and
    ``id < 2**32``.  Ordering packed pairs orders primarily by hash, with the
    id as a deterministic tiebreaker — though within one adjacency list ties
    cannot occur because the affine map is injective mod P.

    ``out`` may alias ``hashed`` (the shift runs in place).  ``checked=True``
    skips the per-call id-range scan for callers that validated the element
    buffer once per batch.
    """
    ids = np.asarray(ids, dtype=np.uint64)
    if not checked and ids.size and int(ids.max()) >> 32:
        raise ValueError("element ids must fit in 32 bits")
    hashed = np.asarray(hashed, dtype=np.uint64)
    if out is None:
        return (hashed << _ID_BITS) | ids
    np.left_shift(hashed, _ID_BITS, out=out)
    np.bitwise_or(out, ids, out=out)
    return out


def unpack_pairs(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pairs`: returns ``(hash, id)`` arrays."""
    packed = np.asarray(packed, dtype=np.uint64)
    return packed >> _ID_BITS, packed & _ID_MASK


def unpack_ids(packed: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """The id halves of packed pairs only (the fingerprint fold's input)."""
    packed = np.asarray(packed, dtype=np.uint64)
    if out is None:
        return packed & _ID_MASK
    np.bitwise_and(packed, _ID_MASK, out=out)
    return out


def fused_hash(values: np.ndarray, a: np.ndarray, b: np.ndarray, prime: int,
               out: np.ndarray | None = None,
               scratch: ScratchPool | None = None,
               n_values: int | None = None) -> np.ndarray:
    """Fused hash+pack: one uint32 key buffer replaces hash + packed matrices.

    The affine map ``h(v) = (a*v + b) mod P`` is injective for ``a`` in
    ``[1, P)`` and ``v < P``, so within one adjacency list (distinct ids) the
    hash alone orders exactly like the packed ``(hash, id)`` pair — ties are
    impossible — and the id is recoverable as ``v = (h - b) * a^{-1} mod P``
    (:func:`recover_top_ids`).  One ``(T, nnz)`` uint32 pass therefore does
    the work of :func:`affine_hash` + :func:`pack_pairs` with half the key
    bytes for the selection kernel.

    When the id range ``n_values`` is smaller than the element buffer, the
    hash is evaluated once per distinct id into a ``(T, n_values)`` lookup
    table and gathered (each table row is hit ``nnz / n_values`` times);
    otherwise the buffer is hashed directly.  Both give identical keys.
    """
    v = np.asarray(values)
    a = np.asarray(a, dtype=np.uint64).reshape(-1, 1)
    b = np.asarray(b, dtype=np.uint64).reshape(-1, 1)
    if prime <= 0 or prime > (1 << 31) + (1 << 20):
        raise ValueError(f"prime {prime} outside supported range")
    t, nnz = a.shape[0], v.size
    if out is None:
        out = np.empty((t, nnz), dtype=np.uint32)
    if nnz == 0:
        return out
    if n_values is None:
        n_values = int(v.max()) + 1
    p64 = np.uint64(prime)
    with np.errstate(over="ignore"):
        if n_values <= nnz:
            table64 = _take(scratch, (t, n_values), np.uint64)
            np.multiply(a, np.arange(n_values, dtype=np.uint64), out=table64)
            np.add(table64, b, out=table64)
            np.remainder(table64, p64, out=table64)
            table32 = _take(scratch, (t, n_values), np.uint32)
            np.copyto(table32, table64, casting="unsafe")
            np.take(table32, v, axis=1, out=out, mode="clip")
            _give(scratch, table64, table32)
        else:
            v64 = v.view(np.uint64) if v.dtype == np.int64 else v.astype(np.uint64)
            h64 = _take(scratch, (t, nnz), np.uint64)
            np.multiply(a, v64, out=h64)
            np.add(h64, b, out=h64)
            np.remainder(h64, p64, out=h64)
            np.copyto(out, h64, casting="unsafe")
            _give(scratch, h64)
    return out


def recover_top_ids(top_keys: np.ndarray, a: np.ndarray, b: np.ndarray,
                    prime: int, out_ids: np.ndarray | None = None,
                    out_packed: np.ndarray | None = None,
                    scratch: ScratchPool | None = None,
                    has_sentinels: bool = True) -> tuple[np.ndarray, np.ndarray | None]:
    """Invert the fused hash on a top-``s`` block: keys -> ids (and pairs).

    ``d = (h + P - b) mod P``; ``v = d * a^{-1} mod P`` — the inverse exists
    because P is prime and ``0 < a < P``.  Runs only on the small
    ``(t, n_seg, s)`` selection output, not the ``(t, nnz)`` element buffer.
    ``SENTINEL32`` keys map to id ``0xFFFFFFFF``, so the rebuilt packed pair
    (``hash << 32 | id``, written to ``out_packed`` when given) is exactly
    ``SENTINEL`` — bit-identical to the unfused pipeline's padding.

    Callers that guarantee a fully-compacted block (every segment has at
    least ``s`` elements, so no padding exists) pass
    ``has_sentinels=False`` to skip the sentinel mask-and-patch passes.
    """
    top_keys = np.asarray(top_keys, dtype=np.uint32)
    t = np.asarray(a).shape[0]
    a_inv = np.array([pow(int(x), prime - 2, prime)
                      for x in np.asarray(a).reshape(-1).tolist()],
                     dtype=np.uint64).reshape((t,) + (1,) * (top_keys.ndim - 1))
    b_neg = ((prime - np.asarray(b, dtype=np.int64)) % prime).astype(
        np.uint64).reshape(a_inv.shape)
    p64 = np.uint64(prime)
    if out_ids is None:
        out_ids = np.empty(top_keys.shape, dtype=np.uint64)
    if has_sentinels:
        mask = _take(scratch, top_keys.shape, np.bool_)
        np.equal(top_keys, SENTINEL32, out=mask)
    np.copyto(out_ids, top_keys, casting="unsafe")
    with np.errstate(over="ignore"):
        np.add(out_ids, b_neg, out=out_ids)
        # (h + b_neg) * a_inv is congruent mod P to the two-remainder
        # sequence; when the unreduced product provably fits 64 bits
        # (including sentinel keys up to 2**32-1, whose garbage product is
        # masked over below) one remainder pass over the block suffices.
        if (0xFFFFFFFF + prime) * (prime - 1) >= 1 << 64:
            np.remainder(out_ids, p64, out=out_ids)
        np.multiply(out_ids, a_inv, out=out_ids)
        np.remainder(out_ids, p64, out=out_ids)
    if has_sentinels:
        np.copyto(out_ids, _ID_MASK, where=mask)
    if out_packed is not None:
        np.copyto(out_packed, top_keys, casting="unsafe")
        np.left_shift(out_packed, _ID_BITS, out=out_packed)
        np.bitwise_or(out_packed, out_ids, out=out_packed)
    if has_sentinels:
        _give(scratch, mask)
    return out_ids, out_packed


def segment_element_ids(indptr: np.ndarray) -> np.ndarray:
    """Segment id of every element position (``[0,0,..,1,1,..]``).

    One gather table, computed once per batch; every selection round expands
    per-segment minima to element positions through it with ``np.take``.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    return np.repeat(np.arange(indptr.size - 1, dtype=np.int64),
                     np.diff(indptr))


def _segment_geometry(indptr: np.ndarray, nnz: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Common precomputation: (starts, lengths, empty_mask).

    ``starts`` is ``indptr[:-1]`` unmodified; trailing empty segments have
    ``start == nnz``, which is NOT a valid ``reduceat`` index — callers must
    restrict reduceat to the prefix of segments with ``start < nnz`` (they
    form a suffix of empties, handled via the empty mask).  Clipping the
    invalid starts instead would silently shrink the *previous* segment's
    reduceat window.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr[0] != 0 or indptr[-1] != nnz or np.any(np.diff(indptr) < 0):
        raise ValueError("invalid indptr for segment buffer")
    lengths = np.diff(indptr)
    return indptr[:-1], lengths, lengths == 0


def segmented_select_top_s(packed: np.ndarray, indptr: np.ndarray, s: int,
                           scratch: ScratchPool | None = None,
                           seg_ids: np.ndarray | None = None,
                           out: np.ndarray | None = None,
                           consume: bool = False) -> np.ndarray:
    """Top-``s`` smallest keys per segment via s rounds of segmented min.

    Parameters
    ----------
    packed:
        ``(T, nnz)`` keys, one row per trial — uint64 packed pairs or the
        fused kernel's uint32 hashes (any other dtype is cast to uint64).
        Not modified unless ``consume`` is set.
    indptr:
        ``(n_seg + 1,)`` segment boundaries within each row.
    s:
        Number of minima to extract per segment.
    scratch:
        Optional scratch pool for the working copy, per-round minima, the
        expanded-minimum matrix, and the equality mask — with it, repeated
        calls of the same geometry allocate nothing.
    seg_ids:
        Optional precomputed :func:`segment_element_ids` of ``indptr``.
    out:
        Optional ``(T, n_seg, s)`` destination matching ``packed``'s dtype.
    consume:
        Destroy ``packed`` in place instead of working on a copy — the fused
        path sets this because its key buffer is not needed afterwards,
        skipping one full ``(T, nnz)`` copy per round.

    Returns
    -------
    np.ndarray
        ``(T, n_seg, s)``; position ``[t, i, r]`` holds the r-th smallest
        key of segment ``i`` under trial ``t``, or the dtype's all-ones
        sentinel when the segment has fewer than ``r+1`` elements.
    """
    packed = np.asarray(packed)
    if packed.dtype not in (np.dtype(np.uint32), np.dtype(np.uint64)):
        packed = packed.astype(np.uint64)
    if packed.ndim == 1:
        packed = packed[np.newaxis, :]
    sentinel = packed.dtype.type(np.iinfo(packed.dtype).max)
    n_trials, nnz = packed.shape
    starts, lengths, empty = _segment_geometry(indptr, nnz)
    n_seg = lengths.size
    if out is None:
        out = np.empty((n_trials, n_seg, s), dtype=packed.dtype)
    out[...] = sentinel
    if nnz == 0 or n_seg == 0:
        return out
    # Trailing empty segments have start == nnz (invalid for reduceat);
    # they are a suffix, so reduce over the valid prefix only.
    n_valid = int(np.searchsorted(starts, nnz, side="left"))
    if consume:
        work = packed
    else:
        work = _take(scratch, (n_trials, nnz), packed.dtype)
        np.copyto(work, packed)
    segmin = _take(scratch, (n_trials, n_seg), packed.dtype)
    if s > 1:
        if seg_ids is None:
            seg_ids = segment_element_ids(indptr)
        expanded = _take(scratch, (n_trials, nnz), packed.dtype)
        mask = _take(scratch, (n_trials, nnz), np.bool_)
    for r in range(s):
        np.minimum.reduceat(work, starts[:n_valid], axis=1,
                            out=segmin[:, :n_valid])
        if n_valid < n_seg:
            segmin[:, n_valid:] = sentinel
        segmin[:, empty] = sentinel
        out[:, :, r] = segmin
        if r + 1 == s:
            break
        # Mask each extracted minimum so the next round finds the runner-up.
        # mode="clip" selects the fast gather path (indices are in range by
        # construction; "raise" would fall back to a slow checked loop).
        np.take(segmin, seg_ids, axis=1, out=expanded, mode="clip")
        np.equal(work, expanded, out=mask)
        np.copyto(work, sentinel, where=mask)
    if not consume:
        _give(scratch, work)
    _give(scratch, segmin)
    if s > 1:
        _give(scratch, expanded, mask)
    return out


def segmented_sort_top_s(packed: np.ndarray, indptr: np.ndarray, s: int,
                         scratch: ScratchPool | None = None,
                         seg_ids: np.ndarray | None = None,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Reference implementation: full segmented sort, then gather top ``s``.

    Mirrors the paper's Thrust pipeline (transform then ``thrust::sort`` of
    the whole batch with segment keys).  The segmented sort is composed as a
    least-significant-key radix pass over the whole 2-D trial block: a
    stable argsort by pair value, then a stable argsort by segment id of the
    value-ordered positions — one composite-key sort for *all* trials, with
    no per-trial interpreted loop.  Output is identical to
    :func:`segmented_select_top_s`.
    """
    packed = np.array(packed, dtype=np.uint64, ndmin=2, copy=False)
    n_trials, nnz = packed.shape
    indptr = np.asarray(indptr, dtype=np.int64)
    _, lengths, _ = _segment_geometry(indptr, nnz)
    n_seg = lengths.size
    if out is None:
        out = np.empty((n_trials, n_seg, s), dtype=np.uint64)
    out[...] = SENTINEL
    if nnz == 0 or n_seg == 0:
        return out
    if seg_ids is None:
        seg_ids = segment_element_ids(indptr)
    take = np.minimum(lengths, s)
    # Destination coordinates of the top-s entries of every segment.
    dst_seg = np.repeat(np.arange(n_seg, dtype=np.int64), take)
    dst_rank = _ranks_within(take)
    src_pos = np.repeat(indptr[:-1], take) + dst_rank
    # Stable LSD composition == np.lexsort((packed[t], seg_ids)) per trial.
    value_order = np.argsort(packed, axis=1, kind="stable")
    segment_keys = seg_ids[value_order]
    segment_order = np.argsort(segment_keys, axis=1, kind="stable")
    order = np.take_along_axis(value_order, segment_order, axis=1)
    sorted_rows = np.take_along_axis(packed, order, axis=1)
    out[:, dst_seg, dst_rank] = sorted_rows[:, src_pos]
    return out


def _ranks_within(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for a counts array (vectorized iota)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    idx = np.arange(total, dtype=np.int64)
    seg_start = np.repeat(ends - counts, counts)
    return idx - seg_start


def fold_fingerprints(top_ids: np.ndarray, salts: np.ndarray,
                      scratch: ScratchPool | None = None,
                      out: np.ndarray | None = None) -> np.ndarray:
    """Fold each segment's top-``s`` ids into a shingle fingerprint.

    Parameters
    ----------
    top_ids:
        ``(T, n_seg, s)`` ids in min-hash order.
    salts:
        ``(T,)`` per-trial salts.
    scratch, out:
        Optional scratch pool / destination for allocation-free folding.

    Returns
    -------
    np.ndarray
        ``(T, n_seg)`` uint64 fingerprints.
    """
    top_ids = np.asarray(top_ids, dtype=np.uint64)
    salts = np.asarray(salts, dtype=np.uint64).reshape(-1, 1)
    return fold_fingerprint_array(top_ids, salts, scratch=scratch, out=out)


def reduce_keys_fit(n_trials: int, n_seg: int, s: int, n_values: int) -> bool:
    """True when :func:`chunk_reduce`'s packed key fits 63 bits.

    The key is ``(trial * n_values**s + member_tuple) * n_seg + column``;
    evaluated in exact Python integers so enormous ``n_values**s`` cannot
    overflow the check itself.
    """
    if n_values < 1:
        return False
    return n_trials * (n_values ** s) * max(n_seg, 1) < (1 << 63)


def chunk_reduce(top_ids: np.ndarray, salts: np.ndarray, gen_ids: np.ndarray,
                 n_values: int, scratch: ScratchPool | None = None,
                 col_ids: np.ndarray | None = None,
                 col_to_row: np.ndarray | None = None,
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """On-device sort-dedup of one trial chunk's shingle occurrences.

    Groups the ``(t, n)`` occurrences by their identity — the ordered member
    tuple within a trial — using one packed-key quicksort (the ``uint64``
    key packs trial, base-``n_values`` member tuple, and column), mirroring
    the packed-key technique of the host-side generator sort.  Because the
    column occupies the low bits, equal-identity runs come out contiguous
    AND ascending by column without needing a stable sort, so the first
    element of each run is the first occurrence and each run's column list
    is already the sorted, duplicate-free generator list.  Fingerprints are
    folded only for the ``k`` distinct shingles.

    The caller must guarantee :func:`reduce_keys_fit` and that ``top_ids``
    contains no sentinel entries (all segments have length >= s — the device
    driver pre-compacts inputs this way).

    Parameters
    ----------
    top_ids:
        ``(t, n, s)`` uint64 member ids in min-hash order.
    salts:
        ``(t,)`` uint64 per-trial fingerprint salts.
    gen_ids:
        ``(n,)`` original segment id of each column, monotone increasing
        (the driver's ``valid_ids`` table, device-resident).
    n_values:
        Exclusive upper bound on member ids (the tuple-key base).
    col_ids, col_to_row:
        Launch-graph replay support for *column-permuted* ``top_ids``
        blocks: ``col_ids`` (``(n,)`` uint64) supplies the ORIGINAL column
        id of each permuted position for the packed key (instead of
        ``arange(n)``), and ``col_to_row`` (``(n,)`` int64) maps an original
        column back to its permuted row for the member gather.  Because the
        key then carries original ids, the global sort canonicalizes order
        and every output — including collision-merge tiebreaks, which use
        original flat positions — is bit-identical to the unpermuted call.

    Returns
    -------
    (fps, members, gen_counts, gens):
        ``fps`` — ``(k,)`` uint64, strictly ascending; ``members`` —
        ``(k, s)`` uint32 first-occurrence member rows; ``gen_counts`` —
        ``(k,)`` uint32 generator-list lengths; ``gens`` — concatenated
        uint32 generator lists in ``fps`` order (``t*n`` entries total).
        Exactly what host-side ``aggregate_pass`` would distill from the
        dense ``(t, n)`` arrays, at O(k) download size.
    """
    top_ids = np.asarray(top_ids, dtype=np.uint64)
    salts = np.asarray(salts, dtype=np.uint64)
    gen_ids = np.asarray(gen_ids)
    t, n, s = top_ids.shape
    total = t * n
    if total == 0:
        return (np.empty(0, dtype=np.uint64), np.empty((0, s), dtype=np.uint32),
                np.empty(0, dtype=np.uint32), np.empty(0, dtype=np.uint32))
    m_pow_s = np.uint64(n_values ** s)
    n64 = np.uint64(n)
    key = _take(scratch, (t, n), np.uint64)
    np.copyto(key, top_ids[..., 0])
    with np.errstate(over="ignore"):
        for j in range(1, s):
            np.multiply(key, np.uint64(n_values), out=key)
            np.add(key, top_ids[..., j], out=key)
        np.add(key, (np.arange(t, dtype=np.uint64) * m_pow_s).reshape(t, 1),
               out=key)
        np.multiply(key, n64, out=key)
        np.add(key,
               np.arange(n, dtype=np.uint64) if col_ids is None else col_ids,
               out=key)
    skey = key.reshape(total)
    skey.sort(kind="quicksort")

    # Run boundaries: adjacent positions with a different (trial, tuple) part.
    gkey_buf = _take(scratch, (t, n), np.uint64)
    gkey = gkey_buf.reshape(total)
    np.floor_divide(skey, n64, out=gkey)
    is_start = np.empty(total, dtype=bool)
    is_start[0] = True
    np.not_equal(gkey[1:], gkey[:-1], out=is_start[1:])
    run_start = np.flatnonzero(is_start)
    k = run_start.size
    counts = np.empty(k, dtype=np.int64)
    np.subtract(run_start[1:], run_start[:-1], out=counts[:-1])
    counts[-1] = total - run_start[-1]

    # First occurrence of each run = its smallest column (low key bits).
    start_keys = skey[run_start]
    col = (start_keys % n64).astype(np.int64)
    trial = (gkey[run_start] // m_pow_s).astype(np.int64)
    flatpos = trial * n + col
    gather_pos = flatpos if col_to_row is None else trial * n + col_to_row[col]
    members = top_ids.reshape(total, s)[gather_pos]
    fps = fold_fingerprint_array(members, salts[trial])

    # Column -> generator id for every occurrence, still in key order (runs
    # contiguous, columns ascending within each run).  ``take`` wants intp
    # indices; one explicit cast beats the fancy-index path's internal one.
    np.remainder(skey, n64, out=gkey)
    gens_all = np.take(np.asarray(gen_ids, dtype=np.uint32),
                       gkey.astype(np.int64))

    order = np.argsort(fps, kind="quicksort")
    fps_sorted = fps[order]
    counts_o = counts[order]
    # Reorder the runs of gens_all to fingerprint order with ONE repeat:
    # position j inside fp-ordered run r maps to run_start[order][r] + rank,
    # and rank == j - (fp-ordered run offset), so the gather index is just
    # j plus a per-run shift broadcast over the run.
    shift = run_start[order]
    np.subtract(shift, np.cumsum(counts_o), out=shift)
    np.add(shift, counts_o, out=shift)
    positions = np.repeat(shift, counts_o)
    positions += np.arange(total, dtype=np.int64)
    gens = np.take(gens_all, positions)
    # Narrow before the row gather: ids fit uint32, so permuting the
    # narrowed rows moves half the bytes of permute-then-cast.
    members_o = members.astype(np.uint32)[order]
    _give(scratch, key, gkey_buf)

    if k > 1 and np.any(fps_sorted[1:] == fps_sorted[:-1]):
        # Cross-trial (or cross-tuple) fingerprint collision within the
        # chunk — astronomically rare.  Merge the colliding runs exactly as
        # the dense np.unique path would: first occurrence in trial-major
        # order wins the member row; generator lists union.
        return _merge_fp_collisions(fps_sorted, members_o, counts_o, gens,
                                    flatpos[order])
    return fps_sorted, members_o, counts_o.astype(np.uint32), gens


def _merge_fp_collisions(fps: np.ndarray, members: np.ndarray,
                         counts: np.ndarray, gens: np.ndarray,
                         flatpos: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Collapse adjacent equal-fingerprint runs (cold path, k-sized)."""
    k = fps.size
    is_new = np.empty(k, dtype=bool)
    is_new[0] = True
    np.not_equal(fps[1:], fps[:-1], out=is_new[1:])
    group = np.cumsum(is_new) - 1
    n_groups = int(group[-1]) + 1
    # Representative row per group: the globally-first occurrence.
    rep_order = np.lexsort((flatpos, group))
    reps = rep_order[np.searchsorted(group[rep_order], np.arange(n_groups))]
    # Union the generator lists with one packed-key sort + dedup.
    entry_groups = np.repeat(group, counts).astype(np.uint64)
    keys = (entry_groups << _ID_BITS) | gens.astype(np.uint64)
    keys.sort()
    keep = np.empty(keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    kept = keys[keep]
    gen_counts = np.bincount((kept >> _ID_BITS).astype(np.int64),
                             minlength=n_groups).astype(np.uint32)
    return (fps[is_new], members[reps], gen_counts,
            (kept & _ID_MASK).astype(np.uint32))


def agg_sort(fp_parts: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Merge the sorted per-chunk fingerprint runs into one global order.

    A real device would run a segmented merge over the already-sorted runs;
    here one stable argsort over the concatenation produces the identical
    permutation (stability preserves within-run — i.e. chunk — order, which
    is what makes the first element of each run the globally-first
    occurrence downstream).

    Returns ``(fp_cat, order)``: the concatenated fingerprints and the
    stable sort permutation.
    """
    fp_cat = np.concatenate(fp_parts)
    order = np.argsort(fp_cat, kind="stable")
    return fp_cat, order


def agg_boundaries(fp_cat: np.ndarray, order: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run boundaries + group inverse over the globally-sorted fingerprints.

    Returns ``(fp_sorted, run_starts, inverse)`` where ``run_starts`` indexes
    the first (globally-first-occurrence) entry of each distinct fingerprint
    in the sorted order and ``inverse[i]`` is the dense group id of
    concatenated entry ``i`` — exactly the host merge's scatter
    ``inverse[order] = cumsum(is_start) - 1``.
    """
    fp_sorted = fp_cat[order]
    n = fp_cat.size
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(fp_sorted[1:], fp_sorted[:-1], out=is_start[1:])
    run_starts = np.flatnonzero(is_start)
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.cumsum(is_start) - 1
    return fp_sorted, run_starts, inverse


def agg_invert(inverse: np.ndarray, count_parts: list[np.ndarray],
               gen_parts: list[np.ndarray], n_groups: int
               ) -> tuple[np.ndarray, np.ndarray]:
    """Union the per-chunk generator lists per merged fingerprint group.

    Re-keys every generator entry by its merged group id (packed
    ``group << 32 | gen``), sorts, and drops adjacent duplicates — the same
    packed-key group-by as the host merge and :func:`_merge_fp_collisions`,
    so the resulting ``(gen_counts, gens)`` pair is bit-identical to the
    host StreamingAggregator's bipartite CSR payload.
    """
    keys_parts = []
    offset = 0
    for counts, gens in zip(count_parts, gen_parts):
        k = counts.size
        entry_groups = np.repeat(inverse[offset:offset + k].astype(np.uint64),
                                 counts)
        keys_parts.append((entry_groups << _ID_BITS) | gens.astype(np.uint64))
        offset += k
    keys = np.concatenate(keys_parts)
    if keys.size == 0:
        return (np.zeros(n_groups, dtype=np.uint32),
                np.empty(0, dtype=np.uint32))
    keys.sort(kind="stable")
    keep = np.empty(keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    kept = keys[keep]
    gen_counts = np.bincount((kept >> _ID_BITS).astype(np.int64),
                             minlength=n_groups).astype(np.uint32)
    return gen_counts, (kept & _ID_MASK).astype(np.uint32)


def cc_hook(labels: np.ndarray, src: np.ndarray, dst: np.ndarray) -> None:
    """One min-label hooking round over an edge list, in place.

    Every edge pulls both endpoints down to the smaller of their current
    labels — the atomic-min scatter of a GPU hooking kernel
    (``np.minimum.at`` is the unordered-atomic analogue).
    """
    lo = np.minimum(labels[src], labels[dst])
    np.minimum.at(labels, src, lo)
    np.minimum.at(labels, dst, lo)


def cc_jump(labels: np.ndarray, out: np.ndarray) -> bool:
    """One pointer-jumping round: ``out = labels[labels]``.

    Returns True when the round changed anything (the caller copies ``out``
    back into ``labels`` and iterates until False — at most O(log n)
    rounds since every jump at least halves the pointer-chain depth).
    """
    np.take(labels, labels, out=out)
    return not np.array_equal(out, labels)


def count_kernel_elements(kernel: str, n_trials: int, nnz: int, n_seg: int, s: int) -> int:
    """Element counts fed to the kernel cost model, per kernel class."""
    if kernel == "transform":
        return n_trials * nnz
    if kernel == "sort":
        return n_trials * nnz
    if kernel in ("select", "fused"):
        return n_trials * nnz * s
    if kernel == "reduce":
        return n_trials * n_seg * s
    if kernel == "chunk_reduce":
        return n_trials * n_seg
    raise ValueError(f"unknown kernel class {kernel!r}")
