"""LSD radix sort: the GPU sorting primitive the paper builds on.

The paper's segmented sort rides on Thrust's radix sort, citing Merrill &
Grimshaw's "High Performance and Scalable Radix Sorting" [15].  This module
implements the same least-significant-digit algorithm as a device kernel:
a sequence of stable per-digit partitions, each a whole-array operation
(NumPy's stable integer argsort is itself a counting/radix pass, so every
digit step is O(n)).

Exact and stable for uint64 keys; optional value payload is permuted along.
Early-exits once the remaining high bits are constant, which is what makes
it fast on the shingling workload (hashes bounded by the prime P < 2^31
need only four 8-bit passes).
"""

from __future__ import annotations

import numpy as np


def radix_sort(keys: np.ndarray, values: np.ndarray | None = None,
               bits_per_pass: int = 8) -> tuple[np.ndarray, np.ndarray | None]:
    """Stable LSD radix sort of uint64 keys (+ optional payload).

    Parameters
    ----------
    keys:
        1-D array; converted to uint64.
    values:
        Optional payload permuted with the keys.
    bits_per_pass:
        Digit width; 8 (256 buckets) is the classic choice.

    Returns
    -------
    (sorted_keys, sorted_values):
        ``sorted_values`` is None when no payload was given.
    """
    if not 1 <= bits_per_pass <= 16:
        raise ValueError("bits_per_pass must be in [1, 16]")
    keys = np.asarray(keys, dtype=np.uint64).copy()
    if keys.ndim != 1:
        raise ValueError("keys must be 1-D")
    if values is not None:
        values = np.asarray(values).copy()
        if values.shape[0] != keys.shape[0]:
            raise ValueError("values must align with keys")
    if keys.size <= 1:
        return keys, values

    mask = np.uint64((1 << bits_per_pass) - 1)
    shift = 0
    while shift < 64:
        remaining = keys >> np.uint64(shift)
        if bool((remaining == remaining[0]).all()):
            break  # all high bits equal: already fully ordered
        digits = (remaining & mask).astype(np.uint16)
        order = np.argsort(digits, kind="stable")
        keys = keys[order]
        if values is not None:
            values = values[order]
        shift += bits_per_pass
    return keys, values


def radix_argsort(keys: np.ndarray, bits_per_pass: int = 8) -> np.ndarray:
    """Stable sorting permutation via LSD radix passes."""
    keys = np.asarray(keys, dtype=np.uint64)
    index = np.arange(keys.size, dtype=np.int64)
    _, index = radix_sort(keys, index, bits_per_pass=bits_per_pass)
    assert index is not None
    return index


def radix_sort_pairs_by_segment(seg_ids: np.ndarray, keys: np.ndarray,
                                n_segments: int,
                                bits_per_pass: int = 8) -> np.ndarray:
    """Sorting permutation by (segment, key) using two radix passes.

    The Thrust idiom the paper's segmented sort uses: sort by key, then
    stably by segment id — stability makes the composition a lexicographic
    sort.  Returns the permutation.
    """
    if n_segments < 1:
        raise ValueError("n_segments must be >= 1")
    order1 = radix_argsort(keys, bits_per_pass=bits_per_pass)
    seg_sorted = np.asarray(seg_ids, dtype=np.uint64)[order1]
    order2 = radix_argsort(seg_sorted, bits_per_pass=bits_per_pass)
    return order1[order2]
