"""Cost models for the simulated device.

Measured wall time of the NumPy kernels is what the benchmarks report as
"GPU time" (it is the genuine cost of executing the data-parallel formulation
on this machine).  Alongside, a *modeled* time is accumulated from these cost
models so reports can also show what a K20-class device behind a PCIe-2.0
link would spend; the two are kept in separate buckets (see
:class:`repro.util.timer.TimeBreakdown`) and never mixed.

Defaults approximate the paper's platform: a Tesla K20 (208 GB/s device
memory bandwidth, 3.52 Tflop/s single precision) on PCIe 2.0 x16
(~6 GB/s effective, ~10 us launch/transfer latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TransferModel:
    """Latency + bandwidth model for host<->device copies."""

    latency_s: float = 10e-6
    bandwidth_bytes_per_s: float = 6.0e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be > 0")

    def seconds_for(self, nbytes: int) -> float:
        """Modeled seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class KernelCostModel:
    """Throughput model for device kernels, in elements per second.

    ``transform`` covers the elementwise hash map; ``sort`` the segmented
    sort (Thrust radix-sort class throughput); ``select`` the segmented
    top-s selection; ``reduce`` fingerprint folding and similar O(n) passes;
    ``scan`` block-parallel prefix scans (the alignment kernels' left-gap
    chain runs one max-plus scan per DP row).

    The inter-pass aggregation and Phase III offloads add their own classes:
    ``agg_sort`` (merging already-sorted fingerprint runs — cheaper than a
    from-scratch radix sort), ``agg_boundaries`` (run-boundary flags plus the
    inverse scatter, a scan-class pass), ``agg_invert`` (the generator-list
    re-key + sort + dedup group-by), ``cc_hook`` (atomic-min edge scatter of
    one hooking round) and ``cc_jump`` (the ``labels[labels]`` gather of one
    pointer-jumping round).

    **Launch-latency charging rule** (the PR 10 double-charge audit):
    ``launch_latency_s`` models the *per-launch* host dispatch cost, so

    * an **eager** kernel launch charges it once per launch —
      :meth:`seconds_for` = latency + rate term.  A fused eager step that
      stands for ``k`` physical launches (e.g. the unfused hash+pack
      transform pair) must charge ``k * seconds_for(...)``, i.e. ``k``
      latencies, and record ``k`` launches;
    * a **replayed launch graph** charges it once per *graph*, not once per
      node: the whole captured DAG goes through one host dispatch, exactly
      like a CUDA graph launch.  Replay node costs therefore use
      :meth:`rate_seconds_for`, with the single latency charge folded into
      the graph's first node (see ``repro.device.launchgraph``).
    """

    launch_latency_s: float = 5e-6
    transform_eps: float = 40e9
    sort_eps: float = 1.0e9
    select_eps: float = 8e9
    reduce_eps: float = 20e9
    scan_eps: float = 10e9
    agg_sort_eps: float = 1.2e9
    agg_scan_eps: float = 10e9
    agg_invert_eps: float = 1.5e9
    cc_hook_eps: float = 2.0e9
    cc_jump_eps: float = 8.0e9

    def _rates(self) -> dict[str, float]:
        rates = self.__dict__.get("_rates_cache")
        if rates is None:
            rates = {
                "transform": self.transform_eps,
                "sort": self.sort_eps,
                "select": self.select_eps,
                "reduce": self.reduce_eps,
                "scan": self.scan_eps,
                "agg_sort": self.agg_sort_eps,
                "agg_boundaries": self.agg_scan_eps,
                "agg_invert": self.agg_invert_eps,
                "cc_hook": self.cc_hook_eps,
                "cc_jump": self.cc_jump_eps,
            }
            object.__setattr__(self, "_rates_cache", rates)
        return rates

    def rate_seconds_for(self, kernel: str, n_elements: int) -> float:
        """The pure throughput term — NO launch latency.

        This is the per-node cost inside a replayed launch graph (the graph
        charges ``launch_latency_s`` exactly once; see the class docstring's
        charging rule).
        """
        rates = self._rates()
        if kernel not in rates:
            raise ValueError(f"unknown kernel class {kernel!r}")
        if n_elements < 0:
            raise ValueError("n_elements must be >= 0")
        return n_elements / rates[kernel]

    def seconds_for(self, kernel: str, n_elements: int) -> float:
        """Modeled seconds for one *eager* launch: latency + rate term."""
        return self.launch_latency_s + self.rate_seconds_for(kernel, n_elements)


@dataclass(frozen=True)
class DeviceSpec:
    """Full device description: memory capacity plus the cost models.

    The default 5 GiB matches the K20's per-board memory, but benchmarks use
    much smaller capacities to force multi-batch execution at laptop scale
    (the paper's 2M graph vs. 5 GB forces the same batching).
    """

    memory_capacity_bytes: int = 5 * 2**30
    transfer: TransferModel = field(default_factory=TransferModel)
    kernels: KernelCostModel = field(default_factory=KernelCostModel)
    name: str = "sim-k20"

    def __post_init__(self) -> None:
        if self.memory_capacity_bytes <= 0:
            raise ValueError("memory capacity must be > 0")
