"""Cost models for the simulated device.

Measured wall time of the NumPy kernels is what the benchmarks report as
"GPU time" (it is the genuine cost of executing the data-parallel formulation
on this machine).  Alongside, a *modeled* time is accumulated from these cost
models so reports can also show what a K20-class device behind a PCIe-2.0
link would spend; the two are kept in separate buckets (see
:class:`repro.util.timer.TimeBreakdown`) and never mixed.

Defaults approximate the paper's platform: a Tesla K20 (208 GB/s device
memory bandwidth, 3.52 Tflop/s single precision) on PCIe 2.0 x16
(~6 GB/s effective, ~10 us launch/transfer latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TransferModel:
    """Latency + bandwidth model for host<->device copies."""

    latency_s: float = 10e-6
    bandwidth_bytes_per_s: float = 6.0e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be > 0")

    def seconds_for(self, nbytes: int) -> float:
        """Modeled seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class KernelCostModel:
    """Throughput model for device kernels, in elements per second.

    ``transform`` covers the elementwise hash map; ``sort`` the segmented
    sort (Thrust radix-sort class throughput); ``select`` the segmented
    top-s selection; ``reduce`` fingerprint folding and similar O(n) passes;
    ``scan`` block-parallel prefix scans (the alignment kernels' left-gap
    chain runs one max-plus scan per DP row).

    The inter-pass aggregation and Phase III offloads add their own classes:
    ``agg_sort`` (merging already-sorted fingerprint runs — cheaper than a
    from-scratch radix sort), ``agg_boundaries`` (run-boundary flags plus the
    inverse scatter, a scan-class pass), ``agg_invert`` (the generator-list
    re-key + sort + dedup group-by), ``cc_hook`` (atomic-min edge scatter of
    one hooking round) and ``cc_jump`` (the ``labels[labels]`` gather of one
    pointer-jumping round).
    """

    launch_latency_s: float = 5e-6
    transform_eps: float = 40e9
    sort_eps: float = 1.0e9
    select_eps: float = 8e9
    reduce_eps: float = 20e9
    scan_eps: float = 10e9
    agg_sort_eps: float = 1.2e9
    agg_scan_eps: float = 10e9
    agg_invert_eps: float = 1.5e9
    cc_hook_eps: float = 2.0e9
    cc_jump_eps: float = 8.0e9

    def seconds_for(self, kernel: str, n_elements: int) -> float:
        """Modeled seconds for a kernel touching ``n_elements`` elements."""
        rates = {
            "transform": self.transform_eps,
            "sort": self.sort_eps,
            "select": self.select_eps,
            "reduce": self.reduce_eps,
            "scan": self.scan_eps,
            "agg_sort": self.agg_sort_eps,
            "agg_boundaries": self.agg_scan_eps,
            "agg_invert": self.agg_invert_eps,
            "cc_hook": self.cc_hook_eps,
            "cc_jump": self.cc_jump_eps,
        }
        if kernel not in rates:
            raise ValueError(f"unknown kernel class {kernel!r}")
        if n_elements < 0:
            raise ValueError("n_elements must be >= 0")
        return self.launch_latency_s + n_elements / rates[kernel]


@dataclass(frozen=True)
class DeviceSpec:
    """Full device description: memory capacity plus the cost models.

    The default 5 GiB matches the K20's per-board memory, but benchmarks use
    much smaller capacities to force multi-batch execution at laptop scale
    (the paper's 2M graph vs. 5 GB forces the same batching).
    """

    memory_capacity_bytes: int = 5 * 2**30
    transfer: TransferModel = field(default_factory=TransferModel)
    kernels: KernelCostModel = field(default_factory=KernelCostModel)
    name: str = "sim-k20"

    def __post_init__(self) -> None:
        if self.memory_capacity_bytes <= 0:
            raise ValueError("memory capacity must be > 0")
