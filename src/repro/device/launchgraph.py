"""Captured launch-graph replay for the shingle hot path.

The fused shingle pipeline launches the same kernel DAG for every trial
chunk of a pass: identical geometry, identical scratch bindings, identical
launch arguments except for the per-chunk hash coefficients.  Measured wall
time nevertheless dwarfs the modeled kernel seconds (the PR 9 attribution's
``roofline_gap:shingle``) because every chunk re-derives that DAG from
scratch — Python dispatch, shape planning, per-launch accounting.

This module is the CUDA-Graphs-style answer: *capture* the DAG once per
steady-state shape class into a :class:`LaunchGraph`, then *replay* it for
every later chunk whose :func:`chunk_signature` matches — pre-resolved
bindings, pre-bound launch constants, one batched metrics/tracer update per
replay, and no per-launch replanning.

Capture modes (the ``--launch-graph`` knob):

``off``
    Every chunk launches eagerly; nothing is recorded.
``on``
    The first chunk of each signature captures (it still executes eagerly
    and its output seeds the capture-time verification); all later matching
    chunks replay.
``auto``
    The first matching chunk runs eagerly and only *notes* the signature;
    capture happens on the second occurrence — one-off shapes (ragged final
    chunks of a one-pass run) never pay capture cost.

The cache is **process-wide** (`GRAPH_CACHE`): signatures embed content
tokens of the device-resident inputs, so a later pipeline run over the same
batch replays immediately instead of re-capturing.  Devices keep their own
hit/miss counters (the ``graph_hit_rate`` gauge); a
:class:`~repro.device.group.DeviceGroup`'s members replay independently
against the shared logical graphs.

Capture-time instantiation is where the replay speedup is *earned*, exactly
as a CUDA graph instantiation optimizes its node sequence:

* the fused-hash table, top-``s`` selection, and id recovery collapse into a
  length-binned **tournament selection** over capture-built gather tables
  (:func:`build_tournament_plan` / :func:`run_tournament`) — valid because
  per-segment keys are provably distinct (checked at capture), verified
  bit-identical against the capturing chunk's eager output, and auto-tuned:
  capture times the key-space tournament, its **rank-space** twin
  (:func:`run_tournament_ids`, which runs the chain on narrow per-trial
  hash ranks and skips the affine id recovery entirely), and the eager
  kernel sequence, committing whichever is fastest on this host;
* the reduction replays through :func:`~repro.device.kernels.chunk_reduce`
  with capture-constant column tables (``col_ids``/``col_to_row``), so the
  bin permutation needs no inverse scatter — the packed-key sort
  canonicalizes order and every output stays bit-identical;
* launch latency is charged **once per replayed graph** instead of once per
  node (see ``timingmodels.KernelCostModel``), the rule the PR 10 latency
  audit documents.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.device import kernels

#: Valid values of the ``launch_graph`` knob.
LG_AUTO = "auto"
LG_ON = "on"
LG_OFF = "off"
LAUNCH_GRAPH_MODES = (LG_AUTO, LG_ON, LG_OFF)

#: Resolve outcomes.
ACTION_EAGER = "eager"
ACTION_CAPTURE = "capture"
ACTION_REPLAY = "replay"

#: Bound on cached logical graphs (each may hold multi-MB gather tables).
_MAX_GRAPHS = 32
#: Bound on memoized content tokens.
_MAX_TOKENS = 256


# --------------------------------------------------------------------- #
# Content tokens and signatures
# --------------------------------------------------------------------- #

_token_memo: dict[int, tuple] = {}
_token_alias: dict[int, tuple] = {}
_token_lock = threading.Lock()


def adopt_token(copy: np.ndarray, source: np.ndarray) -> None:
    """Declare ``copy`` byte-identical to ``source`` for token purposes.

    The device upload path calls this for every host->device copy: the
    device-resident array then inherits the host array's content token
    lazily instead of re-hashing the same bytes, halving per-run hashing
    when the host inputs are long-lived (their tokens are memoized once).
    The alias is identity-guarded on both ends, so neither a recycled
    ``id()`` nor a collected source can mis-token anything — a dead source
    simply falls back to hashing the copy.
    """
    with _token_lock:
        if len(_token_alias) >= _MAX_TOKENS:
            _token_alias.clear()
        _token_alias[id(copy)] = (weakref.ref(copy), weakref.ref(source))


def content_token(array: np.ndarray) -> bytes:
    """A 16-byte digest of an array's dtype, shape, and contents.

    Memoized by object identity (guarded with a weakref so a recycled
    ``id()`` can never alias a dead array), because the same device-resident
    batch buffer is signatured once per trial chunk.
    """
    array = np.ascontiguousarray(array)
    key = id(array)
    with _token_lock:
        hit = _token_memo.get(key)
        if hit is not None and hit[0]() is array:
            return hit[1]
        alias = _token_alias.get(key)
    if alias is not None and alias[0]() is array:
        source = alias[1]()
        if source is not None:
            token = content_token(source)
            with _token_lock:
                if len(_token_memo) >= _MAX_TOKENS:
                    _token_memo.clear()
                _token_memo[key] = (weakref.ref(array), token)
            return token
    h = hashlib.blake2b(digest_size=16)
    h.update(str((array.dtype.str, array.shape)).encode())
    h.update(array.tobytes())
    token = h.digest()
    try:
        ref = weakref.ref(array)
    except TypeError:  # pragma: no cover - ndarray supports weakrefs
        return token
    with _token_lock:
        if len(_token_memo) >= _MAX_TOKENS:
            _token_memo.clear()
        _token_memo[key] = (ref, token)
    return token


def chunk_signature(kind: str, *, kernel: str, t: int, s: int, prime: int,
                    n_values: int | None, resident: bool,
                    elements: np.ndarray, indptr: np.ndarray,
                    gen_ids: np.ndarray | None = None) -> tuple:
    """The shape-class key of one trial chunk launch.

    Two chunk calls share a signature exactly when the captured DAG of one
    is valid for the other: same kind of chunk, same kernel, same trial
    count (ragged tails get their own signature), same hash modulus and id
    range, and byte-identical device-resident inputs (content tokens, not
    object identity, so a re-uploaded batch in a later run still matches).
    The per-chunk ``a``/``b``/``salts`` coefficients are deliberately *not*
    part of the signature — they are the replay's launch arguments.
    """
    return (kind, kernel, int(t), int(s), int(prime),
            None if n_values is None else int(n_values), bool(resident),
            content_token(elements), content_token(indptr),
            None if gen_ids is None else content_token(gen_ids))


# --------------------------------------------------------------------- #
# Graph structures
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class GraphNode:
    """One captured kernel launch: accounting identity + modeled cost.

    ``modeled_s`` is precomputed at capture (the graph's geometry is fixed,
    so each node's cost-model seconds are launch constants): the first node
    carries the graph's single ``launch_latency_s`` charge, all others are
    pure rate terms.
    """

    name: str
    elements: int
    modeled_s: float


@dataclass
class TournamentPlan:
    """Capture-built constants for the binned tournament selection.

    ``bins`` holds ``(pos0, idx)`` entries: ``idx`` is an ``(L, m)`` gather
    table whose row ``j`` maps bin columns to element values (pad slots
    point at the sentinel column ``n_values`` of the extended hash table);
    the bin's segments occupy permuted columns ``pos0:pos0+m``.
    ``perm_cols`` / ``col_to_row`` let :func:`kernels.chunk_reduce` consume
    the permuted block directly — packed keys carry original column ids, so
    its global sort restores eager order without an inverse scatter.
    """

    n_seg: int
    n_values: int
    iota: np.ndarray                       # (n_values+1,) uint64
    bins: list = field(default_factory=list)
    perm: np.ndarray | None = None         # (n_seg,) int64, permuted -> original
    perm_cols: np.ndarray | None = None    # (n_seg,) uint64 original column ids
    col_to_row: np.ndarray | None = None   # (n_seg,) int64, original -> permuted


@dataclass
class LaunchGraph:
    """One captured kernel DAG for a chunk shape class."""

    signature: tuple
    kind: str                              # "reduce" | "chunk"
    kernel: str                            # launch kernel name ("fused", ...)
    t: int
    s: int
    prime: int
    n_values: int | None
    n_seg: int
    nnz: int
    nodes: tuple                           # tuple[GraphNode, ...]
    modeled_s: float                       # sum of node modeled seconds
    executor: str = "kernels"     # "rank_tournament" | "tournament" | "kernels"
    plan: TournamentPlan | None = None
    replays: int = 0

    def node_summary(self) -> str:
        """Compact per-node breakdown for the replay span attrs."""
        return ",".join(f"{n.name}:{n.elements}:{n.modeled_s:.3e}"
                        for n in self.nodes)


class GraphCache:
    """Process-wide registry of captured launch graphs.

    ``resolve`` is the single entry point the device calls per chunk; it
    implements the ``on``/``auto`` occurrence state machine and returns the
    action plus (for replays) the committed graph.  Capture is serialized
    per signature: while one stream captures, concurrent matching chunks
    launch eagerly rather than blocking.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple, dict] = {}

    def resolve(self, signature: tuple, mode: str) -> tuple[str, LaunchGraph | None]:
        if mode == LG_OFF:
            return ACTION_EAGER, None
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                if len(self._entries) >= _MAX_GRAPHS:
                    # Evict the stalest shape class (insertion order).
                    self._entries.pop(next(iter(self._entries)))
                entry = {"seen": 0, "graph": None, "capturing": False}
                self._entries[signature] = entry
            entry["seen"] += 1
            graph = entry["graph"]
            if graph is not None:
                graph.replays += 1
                return ACTION_REPLAY, graph
            if entry["capturing"]:
                return ACTION_EAGER, None
            threshold = 1 if mode == LG_ON else 2
            if entry["seen"] >= threshold:
                entry["capturing"] = True
                return ACTION_CAPTURE, None
            return ACTION_EAGER, None

    def commit(self, graph: LaunchGraph) -> None:
        with self._lock:
            entry = self._entries.get(graph.signature)
            if entry is not None:
                entry["graph"] = graph
                entry["capturing"] = False

    def abort_capture(self, signature: tuple) -> None:
        with self._lock:
            entry = self._entries.get(signature)
            if entry is not None:
                entry["capturing"] = False

    def stats(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries),
                    "captured": sum(1 for e in self._entries.values()
                                    if e["graph"] is not None)}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
        with _token_lock:
            _token_memo.clear()
            _token_alias.clear()


#: The process-wide cache: logical graphs survive across pipeline runs, so
#: a warm process replays from the very first chunk of a repeat run.
GRAPH_CACHE = GraphCache()


# --------------------------------------------------------------------- #
# Capture-time planning
# --------------------------------------------------------------------- #


def _ceil_pow2(lengths: np.ndarray) -> np.ndarray:
    """Elementwise ``2**ceil(log2(x))``, int-exact (bit length of ``x-1``)."""
    out = np.ones(lengths.size, dtype=np.int64)
    rem = np.asarray(lengths, dtype=np.int64) - 1
    while np.any(rem > 0):
        np.left_shift(out, 1, out=out, where=rem > 0)
        np.right_shift(rem, 1, out=rem)
    return out


def build_tournament_plan(elements: np.ndarray, indptr: np.ndarray,
                          s: int, n_values: int) -> TournamentPlan | None:
    """Instantiate the binned tournament selection for one batch geometry.

    Returns ``None`` (caller falls back to the eager kernel sequence) when
    the geometry is out of scope: a segment shorter than ``s`` (sentinel
    padding would be needed) or duplicate element ids within a segment (the
    tournament computes multiset top-``s``, the eager masking select
    deduplicates — only distinctness makes them provably identical for
    every hash coefficient).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    elements = np.asarray(elements, dtype=np.int64)
    lengths = np.diff(indptr)
    n_seg = lengths.size
    if n_seg == 0 or elements.size == 0:
        return None
    if int(lengths.min()) < s:
        return None
    # Distinctness proof: one packed sort over (segment, value) pairs.
    seg_of = np.repeat(np.arange(n_seg, dtype=np.uint64),
                       lengths).astype(np.uint64)
    packed = seg_of * np.uint64(n_values) + elements.astype(np.uint64)
    packed.sort()
    if packed.size > 1 and np.any(packed[1:] == packed[:-1]):
        return None

    plan = TournamentPlan(
        n_seg=n_seg, n_values=n_values,
        iota=np.arange(n_values + 1, dtype=np.uint64))
    buckets = _ceil_pow2(lengths)
    perm = np.argsort(buckets, kind="stable")
    plan.perm = perm
    plan.perm_cols = perm.astype(np.uint64)
    inv = np.empty(n_seg, dtype=np.int64)
    inv[perm] = np.arange(n_seg, dtype=np.int64)
    plan.col_to_row = inv

    sorted_buckets = buckets[perm]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_buckets[1:] != sorted_buckets[:-1])))
    edges = np.append(boundaries, n_seg)
    for lo, hi in zip(edges[:-1], edges[1:]):
        segs = perm[lo:hi]
        seg_lengths = lengths[segs]
        pad_len = int(seg_lengths.max())
        m = segs.size
        idx = np.full((pad_len, m), n_values, dtype=np.int64)
        starts = indptr[segs]
        for j in range(pad_len):
            live = seg_lengths > j
            idx[j, live] = elements[starts[live] + j]
        plan.bins.append((int(lo), idx))
    return plan


def run_tournament(plan: TournamentPlan, pool, a: np.ndarray, b: np.ndarray,
                   prime: int, s: int, out32: np.ndarray) -> None:
    """Replay the captured selection: hash table + binned min tournaments.

    Writes the per-segment ascending top-``s`` hash keys into ``out32``
    (``(t, n_seg, s)`` uint32, *bin-permuted* segment order).  Equivalent to
    ``fused_hash`` + ``segmented_select_top_s`` composed with the plan's
    column permutation whenever per-segment keys are distinct.
    """
    a = np.asarray(a, dtype=np.uint64).reshape(-1, 1)
    b = np.asarray(b, dtype=np.uint64).reshape(-1, 1)
    t = a.shape[0]
    nv = plan.n_values
    p64 = np.uint64(prime)
    table64 = pool.take((t, nv + 1), np.uint64)
    with np.errstate(over="ignore"):
        np.multiply(a, plan.iota, out=table64)
        np.add(table64, b, out=table64)
        np.remainder(table64, p64, out=table64)
    table32 = pool.take((t, nv + 1), np.uint32)
    np.copyto(table32, table64, casting="unsafe")
    table32[:, nv] = kernels.SENTINEL32
    _run_bins(plan, pool, table32, s, out32, np.uint32(0xFFFFFFFF))
    pool.give(table64, table32)


def _run_bins(plan: TournamentPlan, pool, table: np.ndarray, s: int,
              out: np.ndarray, fill) -> None:
    """The binned min-tournament chain over an extended value table.

    Works for any unsigned value dtype (32-bit hash keys or narrow ranks);
    ``fill`` seeds the trailing registers and must exceed every real value.
    The last register's displaced-maximum is never read, so its ``maximum``
    launch is skipped — one fewer pass per row with identical registers.
    """
    t = table.shape[0]
    dtype = table.dtype
    for pos0, idx in plan.bins:
        rows, m = idx.shape
        regs = [pool.take((t, m), dtype) for _ in range(s)]
        np.take(table, idx[0], axis=1, out=regs[0], mode="clip")
        for r in range(1, s):
            regs[r].fill(fill)
        if rows > 1:
            x = pool.take((t, m), dtype)
            swap = pool.take((t, m), dtype)
            for j in range(1, rows):
                np.take(table, idx[j], axis=1, out=x, mode="clip")
                cur, spare = x, swap
                for r in range(s):
                    if r < s - 1:
                        np.maximum(regs[r], cur, out=spare)
                    np.minimum(regs[r], cur, out=regs[r])
                    if r < s - 1:
                        cur, spare = spare, cur
            pool.give(x, swap)
        for r in range(s):
            out[:, pos0:pos0 + m, r] = regs[r]
        pool.give(*regs)


def run_tournament_ids(plan: TournamentPlan, pool, a: np.ndarray,
                       b: np.ndarray, prime: int, s: int,
                       out_ids: np.ndarray) -> None:
    """Replay the captured selection in *rank space*, emitting member ids.

    Per trial the affine hash is injective over ids, so a hash value's rank
    (its position in the trial's sorted hash table) is a strictly monotone
    proxy: the binned min-tournament over ranks selects exactly the same
    elements in the same ascending-key order as :func:`run_tournament` over
    the 32-bit keys.  Running the chain on narrow ranks (uint16 whenever
    ``n_values`` fits) halves the register traffic, and the winners map
    straight back to member ids through the per-trial sort order — the
    affine inversion (:func:`kernels.recover_top_ids`) disappears from the
    replay entirely.  Writes ``(t, n_seg, s)`` uint64 ids, bin-permuted
    like the key tournament's output.
    """
    a = np.asarray(a, dtype=np.uint64).reshape(-1, 1)
    b = np.asarray(b, dtype=np.uint64).reshape(-1, 1)
    t = a.shape[0]
    nv = plan.n_values
    p64 = np.uint64(prime)
    table64 = pool.take((t, nv), np.uint64)
    with np.errstate(over="ignore"):
        np.multiply(a, plan.iota[:nv], out=table64)
        np.add(table64, b, out=table64)
        np.remainder(table64, p64, out=table64)
    keys32 = pool.take((t, nv), np.uint32)
    np.copyto(keys32, table64, casting="unsafe")
    # Distinct per trial (affine bijection over 0..nv-1), so the order is
    # unique and any sort kind yields the same permutation.
    order = np.argsort(keys32, axis=1, kind="quicksort")
    rank_dtype = np.uint16 if nv < 0xFFFF else np.uint32
    fill = np.iinfo(rank_dtype).max
    rank_table = pool.take((t, nv + 1), rank_dtype)
    np.put_along_axis(
        rank_table[:, :nv], order,
        np.broadcast_to(np.arange(nv, dtype=rank_dtype), (t, nv)), axis=1)
    rank_table[:, nv] = fill
    out_rank = pool.take(out_ids.shape, rank_dtype)
    _run_bins(plan, pool, rank_table, s, out_rank, fill)
    # Winners are never pad sentinels (every segment has >= s real
    # entries), so every rank indexes a real id in the trial's order row.
    ids_by_rank = order.view(np.uint64)
    for i in range(t):
        np.take(ids_by_rank[i], out_rank[i], out=out_ids[i])
    pool.give(table64, keys32, rank_table, out_rank)
