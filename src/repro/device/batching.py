"""Batch planning: fitting large graphs through small device memory.

"In order to process the large-scale input graph on the relatively small
device memory, the input graph ... can be partitioned into batches of
adjacency lists, and subsequently moved to the device memory batch by batch.
In case an adjacency list has to be split between two batches, a subsequent
data aggregation on the CPU side will ... merge the different copies of
shingles into one correct copy for the split adjacency list." (Section III-C)

:func:`plan_batches` produces that partition.  Each batch is a contiguous
slice of the flat CSR element buffer plus a local ``indptr``; a batch entry
(*chunk*) records which source segment it came from and whether it is a split
piece, so the aggregation step can merge split chunks correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Batch:
    """One device-sized slice of the input adjacency structure.

    Attributes
    ----------
    element_lo / element_hi:
        Half-open range into the source flat ``indices`` buffer.
    local_indptr:
        Segment boundaries *within* the batch slice (starts at 0).
    segment_ids:
        Source segment (vertex) id of each local segment; a source segment
        split across batches appears in several batches with the same id.
    is_split:
        Per-local-segment flag: True when this chunk is an incomplete piece
        of its source adjacency list.
    """

    element_lo: int
    element_hi: int
    local_indptr: np.ndarray
    segment_ids: np.ndarray
    is_split: np.ndarray

    @property
    def n_elements(self) -> int:
        return self.element_hi - self.element_lo

    @property
    def n_segments(self) -> int:
        return self.segment_ids.size

    def slice_elements(self, flat_indices: np.ndarray) -> np.ndarray:
        """The batch's element payload from the source buffer."""
        return flat_indices[self.element_lo:self.element_hi]


@dataclass(frozen=True)
class BatchPlan:
    """The full batch schedule for one shingling pass."""

    batches: list[Batch]
    max_elements_per_batch: int
    n_source_segments: int

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def n_split_segments(self) -> int:
        """Number of distinct source segments that were split."""
        split_ids = np.concatenate(
            [b.segment_ids[b.is_split] for b in self.batches]
        ) if self.batches else np.empty(0, dtype=np.int64)
        return int(np.unique(split_ids).size)

    def __iter__(self):
        return iter(self.batches)


def max_batch_elements(capacity_bytes: int, n_trials_chunk: int, s: int,
                       bytes_per_element: int = 8) -> int:
    """Derive the element budget per batch from device memory capacity.

    Resident on the device during one trial round: the element buffer (nnz),
    the hashed + packed + masking-copy working matrices (3 x T x nnz), the
    top-s output (T x n_seg x s <= T x nnz x s in the worst case of tiny
    segments) and the fingerprint row (T x n_seg <= T x nnz).  We budget
    conservatively: ``nnz * (1 + (4 + s) * T) * 8 bytes <= capacity``.
    """
    per_element = (1 + (4 + s) * n_trials_chunk) * bytes_per_element
    budget = capacity_bytes // per_element
    if budget < 1:
        raise ValueError(
            f"device capacity {capacity_bytes} B too small for even one element "
            f"per batch with trial chunk {n_trials_chunk}, s={s}"
        )
    return int(budget)


def plan_batches(indptr: np.ndarray, max_elements: int) -> BatchPlan:
    """Partition CSR segments into batches of at most ``max_elements``.

    Whole segments are packed greedily in order; a segment longer than
    ``max_elements`` (or one that crosses a batch boundary while the batch
    is still empty enough) is split across consecutive batches.

    Splitting policy: a segment is split only when it does not fit in the
    *remaining* space of the current batch AND is larger than half a batch —
    smaller segments just start a new batch, avoiding pointless splits while
    keeping batches near-full for big lists.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if max_elements < 1:
        raise ValueError("max_elements must be >= 1")
    n_seg = indptr.size - 1
    nnz = int(indptr[-1])

    batches: list[Batch] = []
    cur_lo = 0                      # element offset where current batch starts
    cur_fill = 0                    # elements used in current batch
    cur_bounds: list[int] = [0]     # local indptr under construction
    cur_ids: list[int] = []
    cur_split: list[bool] = []

    def flush() -> None:
        nonlocal cur_lo, cur_fill, cur_bounds, cur_ids, cur_split
        if cur_fill == 0 and not cur_ids:
            return
        batches.append(Batch(
            element_lo=cur_lo,
            element_hi=cur_lo + cur_fill,
            local_indptr=np.asarray(cur_bounds, dtype=np.int64),
            segment_ids=np.asarray(cur_ids, dtype=np.int64),
            is_split=np.asarray(cur_split, dtype=bool),
        ))
        cur_lo += cur_fill
        cur_fill = 0
        cur_bounds = [0]
        cur_ids = []
        cur_split = []

    for seg in range(n_seg):
        remaining = int(indptr[seg + 1] - indptr[seg])
        if remaining == 0:
            continue  # empty segments carry no work; they rejoin in aggregation
        first_piece = True
        while remaining > 0:
            space = max_elements - cur_fill
            if remaining <= space:
                take = remaining
            elif space >= max_elements // 2 or remaining > max_elements:
                take = space  # split: fill the batch
            else:
                flush()
                continue
            if take == 0:
                flush()
                continue
            cur_fill += take
            cur_bounds.append(cur_fill)
            cur_ids.append(seg)
            cur_split.append(take < int(indptr[seg + 1] - indptr[seg]))
            remaining -= take
            first_piece = False
            if cur_fill == max_elements:
                flush()
    flush()

    plan = BatchPlan(batches=batches, max_elements_per_batch=max_elements,
                     n_source_segments=n_seg)
    _validate_plan(plan, indptr, nnz)
    return plan


def _validate_plan(plan: BatchPlan, indptr: np.ndarray, nnz: int) -> None:
    """Internal consistency checks: full coverage, in-order, within budget."""
    covered = 0
    for batch in plan.batches:
        if batch.element_lo != covered:
            raise AssertionError("batches must tile the element buffer in order")
        if batch.n_elements > plan.max_elements_per_batch:
            raise AssertionError("batch exceeds element budget")
        if batch.local_indptr[-1] != batch.n_elements:
            raise AssertionError("batch indptr does not cover its elements")
        covered = batch.element_hi
    if covered != nnz:
        raise AssertionError(f"batches cover {covered} of {nnz} elements")
