"""Batch planning: fitting large graphs through small device memory.

"In order to process the large-scale input graph on the relatively small
device memory, the input graph ... can be partitioned into batches of
adjacency lists, and subsequently moved to the device memory batch by batch.
In case an adjacency list has to be split between two batches, a subsequent
data aggregation on the CPU side will ... merge the different copies of
shingles into one correct copy for the split adjacency list." (Section III-C)

:func:`plan_batches` produces that partition.  Each batch is a contiguous
slice of the flat CSR element buffer plus a local ``indptr``; a batch entry
(*chunk*) records which source segment it came from and whether it is a split
piece, so the aggregation step can merge split chunks correctly.

:func:`plan_alignment_bins` is the same idea for the alignment offload:
candidate pairs are grouped into *length bins* — dtype- and length-
homogeneous groups whose padded DP rectangle wastes a bounded fraction of
cells — so the batched Smith-Waterman kernels keep their vector lanes full
(MetaCache-GPU's length-aware batching, applied to pairs instead of reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class Batch:
    """One device-sized slice of the input adjacency structure.

    Attributes
    ----------
    element_lo / element_hi:
        Half-open range into the source flat ``indices`` buffer.
    local_indptr:
        Segment boundaries *within* the batch slice (starts at 0).
    segment_ids:
        Source segment (vertex) id of each local segment; a source segment
        split across batches appears in several batches with the same id.
    is_split:
        Per-local-segment flag: True when this chunk is an incomplete piece
        of its source adjacency list.
    """

    element_lo: int
    element_hi: int
    local_indptr: np.ndarray
    segment_ids: np.ndarray
    is_split: np.ndarray

    @property
    def n_elements(self) -> int:
        return self.element_hi - self.element_lo

    @property
    def n_segments(self) -> int:
        return self.segment_ids.size

    def slice_elements(self, flat_indices: np.ndarray) -> np.ndarray:
        """The batch's element payload from the source buffer."""
        return flat_indices[self.element_lo:self.element_hi]


@dataclass(frozen=True)
class BatchPlan:
    """The full batch schedule for one shingling pass."""

    batches: list[Batch]
    max_elements_per_batch: int
    n_source_segments: int

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def n_split_segments(self) -> int:
        """Number of distinct source segments that were split."""
        split_ids = np.concatenate(
            [b.segment_ids[b.is_split] for b in self.batches]
        ) if self.batches else np.empty(0, dtype=np.int64)
        return int(np.unique(split_ids).size)

    def __iter__(self):
        return iter(self.batches)


def max_batch_elements(capacity_bytes: int, n_trials_chunk: int, s: int,
                       bytes_per_element: int = 8) -> int:
    """Derive the element budget per batch from device memory capacity.

    Resident on the device during one trial round: the element buffer (nnz),
    the hashed + packed + masking-copy working matrices (3 x T x nnz), the
    top-s output (T x n_seg x s <= T x nnz x s in the worst case of tiny
    segments) and the fingerprint row (T x n_seg <= T x nnz).  We budget
    conservatively: ``nnz * (1 + (4 + s) * T) * 8 bytes <= capacity``.
    """
    per_element = (1 + (4 + s) * n_trials_chunk) * bytes_per_element
    budget = capacity_bytes // per_element
    if budget < 1:
        raise ValueError(
            f"device capacity {capacity_bytes} B too small for even one element "
            f"per batch with trial chunk {n_trials_chunk}, s={s}"
        )
    return int(budget)


def plan_batches(indptr: np.ndarray, max_elements: int) -> BatchPlan:
    """Partition CSR segments into batches of at most ``max_elements``.

    Whole segments are packed greedily in order; a segment longer than
    ``max_elements`` (or one that crosses a batch boundary while the batch
    is still empty enough) is split across consecutive batches.

    Splitting policy: a segment is split only when it does not fit in the
    *remaining* space of the current batch AND is larger than half a batch —
    smaller segments just start a new batch, avoiding pointless splits while
    keeping batches near-full for big lists.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if max_elements < 1:
        raise ValueError("max_elements must be >= 1")
    n_seg = indptr.size - 1
    nnz = int(indptr[-1])

    batches: list[Batch] = []
    cur_lo = 0                      # element offset where current batch starts
    cur_fill = 0                    # elements used in current batch
    cur_bounds: list[int] = [0]     # local indptr under construction
    cur_ids: list[int] = []
    cur_split: list[bool] = []

    def flush() -> None:
        nonlocal cur_lo, cur_fill, cur_bounds, cur_ids, cur_split
        if cur_fill == 0 and not cur_ids:
            return
        batches.append(Batch(
            element_lo=cur_lo,
            element_hi=cur_lo + cur_fill,
            local_indptr=np.asarray(cur_bounds, dtype=np.int64),
            segment_ids=np.asarray(cur_ids, dtype=np.int64),
            is_split=np.asarray(cur_split, dtype=bool),
        ))
        cur_lo += cur_fill
        cur_fill = 0
        cur_bounds = [0]
        cur_ids = []
        cur_split = []

    for seg in range(n_seg):
        remaining = int(indptr[seg + 1] - indptr[seg])
        if remaining == 0:
            continue  # empty segments carry no work; they rejoin in aggregation
        first_piece = True
        while remaining > 0:
            space = max_elements - cur_fill
            if remaining <= space:
                take = remaining
            elif space >= max_elements // 2 or remaining > max_elements:
                take = space  # split: fill the batch
            else:
                flush()
                continue
            if take == 0:
                flush()
                continue
            cur_fill += take
            cur_bounds.append(cur_fill)
            cur_ids.append(seg)
            cur_split.append(take < int(indptr[seg + 1] - indptr[seg]))
            remaining -= take
            first_piece = False
            if cur_fill == max_elements:
                flush()
    flush()

    plan = BatchPlan(batches=batches, max_elements_per_batch=max_elements,
                     n_source_segments=n_seg)
    _validate_plan(plan, indptr, nnz)
    return plan


# --------------------------------------------------------------------- #
# Length-binned packing for the alignment offload
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class AlignmentBin:
    """One dtype- and length-homogeneous group of candidate pairs.

    Attributes
    ----------
    order_lo / order_hi:
        Half-open range into the length-sorted pair order (see
        :class:`AlignmentBinPlan.order`): the bin's members are
        ``plan.order[order_lo:order_hi]``.
    max_short / max_long:
        Padded DP rectangle of the bin: every member pair is padded to
        ``(max_short, max_long)``.
    dtype:
        DP state dtype shared by every member (the planner cuts a bin
        whenever adding a pair would escalate the dtype).
    padded_cells / actual_cells:
        DP cells the padded rectangle computes vs. the cells the member
        pairs actually need; their gap is the bin's padding waste.
    """

    order_lo: int
    order_hi: int
    max_short: int
    max_long: int
    dtype: np.dtype
    padded_cells: int
    actual_cells: int

    @property
    def n_pairs(self) -> int:
        return self.order_hi - self.order_lo

    @property
    def padding_waste(self) -> float:
        """Fraction of the padded rectangle spent on padding (0 = none)."""
        if self.padded_cells == 0:
            return 0.0
        return 1.0 - self.actual_cells / self.padded_cells


@dataclass(frozen=True)
class AlignmentBinPlan:
    """The full bin schedule for one alignment shard.

    ``order`` is the length-sorted permutation of the shard's pair indices;
    each bin addresses a contiguous slice of it.
    """

    bins: list[AlignmentBin]
    order: np.ndarray

    @property
    def n_bins(self) -> int:
        return len(self.bins)

    @property
    def padded_cells(self) -> int:
        return sum(b.padded_cells for b in self.bins)

    @property
    def actual_cells(self) -> int:
        return sum(b.actual_cells for b in self.bins)

    @property
    def padding_waste(self) -> float:
        """Whole-plan wasted-cell fraction (the ``padding_waste`` metric)."""
        padded = self.padded_cells
        if padded == 0:
            return 0.0
        return 1.0 - self.actual_cells / padded

    def __iter__(self):
        return iter(self.bins)


def plan_alignment_bins(short_lens: np.ndarray, long_lens: np.ndarray,
                        dtype_for: Callable[[int, int], np.dtype],
                        max_pairs: int = 384,
                        max_waste: float = 0.25,
                        min_pairs: int = 32) -> AlignmentBinPlan:
    """Group candidate pairs into length-homogeneous alignment bins.

    Pairs are sorted by ``(long, short)`` length (so the padded rectangle
    tracks its members tightly), then cut greedily: a bin closes when it
    reaches ``max_pairs``, when admitting the next pair would push its
    wasted-cell fraction past ``max_waste`` (once at least ``min_pairs``
    members justify the per-bin launch overhead), or when the next pair
    would escalate the bin's DP dtype — naive rectangular padding over an
    unsorted chunk wastes 2-3x the cells on metagenomic length mixes.

    ``dtype_for(max_short, max_long)`` maps a bin's padded geometry to its
    DP state dtype (see :func:`repro.sequence.smith_waterman.dp_dtype`).
    """
    if max_pairs < 1:
        raise ValueError("max_pairs must be >= 1")
    if not 0.0 <= max_waste < 1.0:
        raise ValueError("max_waste must be in [0, 1)")
    short_lens = np.asarray(short_lens, dtype=np.int64)
    long_lens = np.asarray(long_lens, dtype=np.int64)
    n = short_lens.size
    order = np.lexsort((short_lens, long_lens))
    if n == 0:
        return AlignmentBinPlan(bins=[], order=order)

    ls = short_lens[order]
    ll = long_lens[order]
    cells = ls * ll
    cum_cells = np.concatenate([[0], np.cumsum(cells)])

    bins: list[AlignmentBin] = []
    lo = 0
    max_s = 0
    max_l = 0
    cur_dtype: np.dtype | None = None

    def close(hi: int) -> None:
        nonlocal lo, max_s, max_l, cur_dtype
        if hi == lo:
            return
        actual = int(cum_cells[hi] - cum_cells[lo])
        bins.append(AlignmentBin(
            order_lo=lo, order_hi=hi, max_short=max_s, max_long=max_l,
            dtype=cur_dtype, padded_cells=(hi - lo) * max_s * max_l,
            actual_cells=actual))
        lo = hi
        max_s = 0
        max_l = 0
        cur_dtype = None

    for i in range(n):
        new_s = max(max_s, int(ls[i]))
        new_l = max(max_l, int(ll[i]))
        new_dtype = dtype_for(new_s, new_l)
        size = i - lo + 1
        if size > max_pairs:
            close(i)
            new_s, new_l = int(ls[i]), int(ll[i])
            new_dtype = dtype_for(new_s, new_l)
        elif cur_dtype is not None and new_dtype != cur_dtype:
            close(i)
            new_s, new_l = int(ls[i]), int(ll[i])
            new_dtype = dtype_for(new_s, new_l)
        elif size > min_pairs:
            padded = size * new_s * new_l
            actual = int(cum_cells[i + 1] - cum_cells[lo])
            if padded > 0 and 1.0 - actual / padded > max_waste:
                close(i)
                new_s, new_l = int(ls[i]), int(ll[i])
                new_dtype = dtype_for(new_s, new_l)
        max_s, max_l, cur_dtype = new_s, new_l, new_dtype
    close(n)
    return AlignmentBinPlan(bins=bins, order=order)


def _validate_plan(plan: BatchPlan, indptr: np.ndarray, nnz: int) -> None:
    """Internal consistency checks: full coverage, in-order, within budget."""
    covered = 0
    for batch in plan.batches:
        if batch.element_lo != covered:
            raise AssertionError("batches must tile the element buffer in order")
        if batch.n_elements > plan.max_elements_per_batch:
            raise AssertionError("batch exceeds element budget")
        if batch.local_indptr[-1] != batch.n_elements:
            raise AssertionError("batch indptr does not cover its elements")
        covered = batch.element_hi
    if covered != nnz:
        raise AssertionError(f"batches cover {covered} of {nnz} elements")
