"""The simulated device facade.

Combines device memory, transfer accounting, and the data-parallel kernels
into the interface the gpClust driver programs against.  Responsibilities
mirror a CUDA device used through Thrust:

* ``upload``/``download`` move arrays across the (simulated) PCIe link,
  charging wall time to the ``data_c2g``/``data_g2c`` buckets and modeled
  seconds to the transfer model — synchronously, as the paper's Thrust 1.5
  does ("the data movement operations are implemented using synchronous
  mechanism, and the overhead ... is unavoidable");
* ``shingle_batch`` executes Algorithm 1 (the per-batch shingle extraction)
  on "device-resident" data, charging the ``gpu`` bucket, and streams each
  trial round's results back to the host — the paper transfers generated
  shingles back "after each iteration for the immediate processing on the
  CPU side", which also keeps the device working set small.

The facade never touches host-side graph structures: the driver uploads each
batch's flat element buffer and its boundary array first, exactly as Figure 4
describes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.device import kernels
from repro.device.memory import DeviceBuffer, DeviceMemory
from repro.device.timingmodels import DeviceSpec
from repro.util.timer import BUCKET_C2G, BUCKET_G2C, BUCKET_GPU, TimeBreakdown


class SimulatedDevice:
    """A K20-like device: limited memory, explicit transfers, bulk kernels."""

    def __init__(self, spec: DeviceSpec | None = None,
                 breakdown: TimeBreakdown | None = None,
                 timeline=None) -> None:
        self.spec = spec or DeviceSpec()
        self.memory = DeviceMemory(self.spec.memory_capacity_bytes, self.spec.transfer)
        self.breakdown = breakdown if breakdown is not None else TimeBreakdown()
        # Optional repro.device.timeline.Timeline recording the modeled
        # schedule of every transfer and kernel round.
        self.timeline = timeline

    def set_breakdown(self, breakdown: TimeBreakdown) -> None:
        """Point timing accumulation at a fresh breakdown (per pipeline run)."""
        self.breakdown = breakdown

    # ------------------------------------------------------------------ #
    # Transfers
    # ------------------------------------------------------------------ #

    def upload(self, host_array: np.ndarray) -> DeviceBuffer:
        """Host -> device copy (synchronous), charged to ``data_c2g``."""
        t0 = time.perf_counter()
        buf, modeled = self.memory.to_device(host_array)
        self.breakdown.add(BUCKET_C2G, time.perf_counter() - t0)
        self.breakdown.add_modeled(BUCKET_C2G, modeled)
        if self.timeline is not None:
            self.timeline.record(BUCKET_C2G, "upload", modeled)
        return buf

    def download(self, buffer: DeviceBuffer) -> np.ndarray:
        """Device -> host copy (synchronous), charged to ``data_g2c``."""
        t0 = time.perf_counter()
        data, modeled = self.memory.to_host(buffer)
        self.breakdown.add(BUCKET_G2C, time.perf_counter() - t0)
        self.breakdown.add_modeled(BUCKET_G2C, modeled)
        if self.timeline is not None:
            self.timeline.record(BUCKET_G2C, "download", modeled)
        return data

    def free(self, *buffers: DeviceBuffer) -> None:
        for buf in buffers:
            buf.free()

    # ------------------------------------------------------------------ #
    # Shingle extraction (Algorithm 1)
    # ------------------------------------------------------------------ #

    def shingle_batch(
        self,
        d_elements: DeviceBuffer,
        d_indptr: DeviceBuffer,
        *,
        a: np.ndarray,
        b: np.ndarray,
        prime: int,
        s: int,
        salts: np.ndarray,
        kernel: str = "select",
        trial_chunk: int = 16,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run all ``c`` shingling trials over one uploaded batch.

        Parameters
        ----------
        d_elements:
            Device buffer holding the batch's flat element ids.
        d_indptr:
            Device buffer holding the batch-local segment boundaries (the
            "auxiliary data structure ... to mark the boundaries of each
            adjacency list" of Section III-C).
        a, b:
            ``(c,)`` hash-pair coefficient arrays (kernel parameters; small
            enough to ride along with launches, not counted as transfers).
        prime:
            Min-wise hash modulus ``P``.
        s:
            Shingle size.
        salts:
            ``(c,)`` per-trial fingerprint salts.
        kernel:
            ``"select"`` (s-round segmented min) or ``"sort"`` (full
            segmented sort, the Thrust-faithful reference).
        trial_chunk:
            Trials per kernel round; bounds the device working set.

        Returns
        -------
        (fps, top):
            Host arrays — ``fps`` is ``(c, n_segments)`` uint64 shingle
            fingerprints; ``top`` is ``(c, n_segments, s)`` packed
            (hash, id) top-``s`` pairs (``SENTINEL``-padded for segments
            shorter than ``s``).  Each trial round's slice was produced on
            the device and downloaded synchronously.
        """
        if kernel not in ("select", "sort"):
            raise ValueError(f"unknown kernel {kernel!r}")
        if trial_chunk < 1:
            raise ValueError("trial_chunk must be >= 1")
        c = len(a)
        if not (len(b) == len(salts) == c):
            raise ValueError("a, b, salts must have equal length")

        elements = d_elements.device_view()
        indptr = d_indptr.device_view().astype(np.int64, copy=False)
        n_seg = indptr.size - 1
        nnz = elements.size

        fps_host = np.empty((c, n_seg), dtype=np.uint64)
        top_host = np.empty((c, n_seg, s), dtype=np.uint64)

        select_fn = (kernels.segmented_select_top_s if kernel == "select"
                     else kernels.segmented_sort_top_s)
        kernel_class = "sort" if kernel == "sort" else "select"

        for lo in range(0, c, trial_chunk):
            hi = min(lo + trial_chunk, c)
            t = hi - lo

            t0 = time.perf_counter()
            hashed = kernels.affine_hash(elements, a[lo:hi], b[lo:hi], prime)
            packed = kernels.pack_pairs(hashed, elements)
            d_work = self.memory.adopt(packed)       # working set on device
            top = select_fn(packed, indptr, s)       # (t, n_seg, s)
            _, top_ids = kernels.unpack_pairs(top)
            fps = kernels.fold_fingerprints(
                top_ids, np.asarray(salts[lo:hi], dtype=np.uint64))
            d_top = self.memory.adopt(top)
            d_fps = self.memory.adopt(fps)
            self.breakdown.add(BUCKET_GPU, time.perf_counter() - t0)
            modeled_gpu = (
                self.spec.kernels.seconds_for("transform", t * nnz)
                + self.spec.kernels.seconds_for(
                    kernel_class,
                    kernels.count_kernel_elements(kernel_class, t, nnz, n_seg, s))
                + self.spec.kernels.seconds_for(
                    "reduce",
                    kernels.count_kernel_elements("reduce", t, nnz, n_seg, s)))
            self.breakdown.add_modeled(BUCKET_GPU, modeled_gpu)
            if self.timeline is not None:
                self.timeline.record(BUCKET_GPU, f"trials {lo}-{hi - 1}",
                                     modeled_gpu)

            # Transfer this round's shingles back immediately (synchronous).
            top_host[lo:hi] = self.download(d_top)
            fps_host[lo:hi] = self.download(d_fps)
            self.free(d_work, d_top, d_fps)

        return fps_host, top_host
