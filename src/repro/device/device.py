"""The simulated device facade.

Combines device memory, transfer accounting, and the data-parallel kernels
into the interface the gpClust driver programs against.  Responsibilities
mirror a CUDA device used through Thrust:

* ``upload``/``download`` move arrays across the (simulated) PCIe link,
  charging wall time to the ``data_c2g``/``data_g2c`` buckets and modeled
  seconds to the transfer model — synchronously, as the paper's Thrust 1.5
  does ("the data movement operations are implemented using synchronous
  mechanism, and the overhead ... is unavoidable");
* ``shingle_batch`` executes Algorithm 1 (the per-batch shingle extraction)
  on "device-resident" data, charging the ``gpu`` bucket, and streams each
  trial round's results back to the host — the paper transfers generated
  shingles back "after each iteration for the immediate processing on the
  CPU side", which also keeps the device working set small.

The facade never touches host-side graph structures: the driver uploads each
batch's flat element buffer and its boundary array first, exactly as Figure 4
describes.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.device import kernels, launchgraph
from repro.device.memory import DeviceBuffer, DeviceMemory, ScratchPool
from repro.device.timingmodels import DeviceSpec
from repro.obs import MetricsRegistry, ObsContext, get_obs
from repro.util.timer import (BUCKET_C2G, BUCKET_CPU, BUCKET_G2C, BUCKET_GPU,
                              TimeBreakdown)

#: Valid values of the ``kernel`` argument of :meth:`SimulatedDevice.shingle_batch`.
KERNELS = ("select", "sort", "fused")


class SimulatedDevice:
    """A K20-like device: limited memory, explicit transfers, bulk kernels."""

    def __init__(self, spec: DeviceSpec | None = None,
                 breakdown: TimeBreakdown | None = None,
                 timeline=None, obs: ObsContext | None = None,
                 metric_prefix: str = "device",
                 proc: str | None = None,
                 host_link=None) -> None:
        self.spec = spec or DeviceSpec()
        self.memory = DeviceMemory(self.spec.memory_capacity_bytes, self.spec.transfer)
        self.breakdown = breakdown if breakdown is not None else TimeBreakdown()
        # Optional repro.device.timeline.Timeline recording the modeled
        # schedule of every transfer and kernel round.
        self.timeline = timeline
        # Recycled kernel working arrays: after the first round of a given
        # batch geometry, kernel launches allocate nothing fresh.
        self.scratch = ScratchPool()
        # Members of a DeviceGroup are distinguished by their metric prefix
        # ("device0", "device1", ...) and Chrome-trace process coordinate; a
        # standalone device keeps the historical "device" namespace and the
        # recording thread's default proc.
        self.metric_prefix = metric_prefix
        self.proc = proc
        # Optional repro.device.group.HostLink shared by group siblings:
        # concurrent host<->device transfers oversubscribe the PCIe lanes
        # and their modeled seconds stretch accordingly.
        self.host_link = host_link
        # Observability: kernel launch accounting always flows into a real
        # metrics registry (profile() reads it back), shared with the
        # ambient registry when one is active so a single snapshot() sees
        # the device; spans go to the ambient tracer (no-op by default).
        if obs is None:
            ambient = get_obs()
            metrics = (ambient.metrics if ambient.metrics.enabled
                       else MetricsRegistry())
            obs = ObsContext(tracer=ambient.tracer, metrics=metrics)
        elif not obs.metrics.enabled:
            obs = ObsContext(tracer=obs.tracer, metrics=MetricsRegistry())
        self.obs = obs
        # name -> (launches, elements, modeled_s) registry counters.
        self._kernel_counters: dict[str, tuple] = {}
        self._stats_lock = threading.Lock()
        # Launch-graph capture/replay (repro.device.launchgraph): the mode
        # knob plus this device's resolution counters behind the
        # ``graph_hit_rate`` gauge.  Logical graphs live in the process-wide
        # GRAPH_CACHE and are shared across devices and pipeline runs.
        self._graph_mode = launchgraph.LG_OFF
        self._graph_hits = 0
        self._graph_misses = 0
        self._graph_captures = 0

    def set_breakdown(self, breakdown: TimeBreakdown) -> None:
        """Point timing accumulation at a fresh breakdown (per pipeline run)."""
        self.breakdown = breakdown

    def configure_launch_graph(self, mode: str) -> None:
        """Select the launch-graph mode: ``"auto"``, ``"on"``, or ``"off"``."""
        if mode not in launchgraph.LAUNCH_GRAPH_MODES:
            raise ValueError(f"unknown launch-graph mode {mode!r}")
        self._graph_mode = mode

    @property
    def launch_graph_stats(self) -> dict:
        """Replay hit/miss/capture counters and the derived hit rate."""
        with self._stats_lock:
            hits, misses = self._graph_hits, self._graph_misses
            captures = self._graph_captures
        total = hits + misses
        return {"mode": self._graph_mode, "hits": hits, "misses": misses,
                "captures": captures,
                "hit_rate": (hits / total) if total else 0.0}

    def _graph_resolve(self, signature: tuple):
        """Consult the process cache and count the outcome on this device."""
        action, graph = launchgraph.GRAPH_CACHE.resolve(
            signature, self._graph_mode)
        with self._stats_lock:
            if action == launchgraph.ACTION_REPLAY:
                self._graph_hits += 1
            else:
                self._graph_misses += 1
                if action == launchgraph.ACTION_CAPTURE:
                    self._graph_captures += 1
        return action, graph

    def _record_kernel(self, name: str, n_elements: int, modeled_s: float,
                       n_launches: int = 1) -> None:
        counters = self._kernel_counters.get(name)
        if counters is None:
            metrics = self.obs.metrics
            prefix = self.metric_prefix
            with self._stats_lock:
                counters = self._kernel_counters.setdefault(name, (
                    metrics.counter(f"{prefix}.kernel.{name}.launches"),
                    metrics.counter(f"{prefix}.kernel.{name}.elements"),
                    metrics.counter(f"{prefix}.kernel.{name}.modeled_s")))
        launches, elements, modeled = counters
        launches.add(n_launches)
        elements.add(int(n_elements))
        modeled.add(modeled_s)

    @property
    def kernel_stats(self) -> dict[str, dict]:
        """Per-kernel-class launch counters (obs-registry-backed view)."""
        with self._stats_lock:
            return {name: {"launches": c[0].value, "elements": c[1].value,
                           "modeled_s": c[2].value}
                    for name, c in sorted(self._kernel_counters.items())}

    def sync_metrics(self) -> None:
        """Mirror transfer/scratch accounting into the metrics registry.

        Transfer bytes and scratch-pool counters accumulate in their own
        structures on the hot path (one lock each, no per-call registry
        lookups); this copies their totals into gauges so one
        ``metrics.snapshot()`` carries the whole device picture.
        """
        metrics = self.obs.metrics
        prefix = self.metric_prefix
        metrics.gauge(f"{prefix}.h2d_bytes").set(self.memory.bytes_to_device)
        metrics.gauge(f"{prefix}.d2h_bytes").set(self.memory.bytes_to_host)
        metrics.gauge(f"{prefix}.peak_device_bytes").set(self.memory.peak_bytes)
        metrics.gauge(f"{prefix}.scratch.hits").set(self.scratch.n_reuses)
        metrics.gauge(f"{prefix}.scratch.misses").set(self.scratch.n_allocations)
        metrics.gauge(f"{prefix}.scratch.peak_bytes").set(
            self.scratch.bytes_allocated)
        graph = self.launch_graph_stats
        metrics.gauge(f"{prefix}.graph.hits").set(graph["hits"])
        metrics.gauge(f"{prefix}.graph.misses").set(graph["misses"])
        metrics.gauge(f"{prefix}.graph_hit_rate").set(graph["hit_rate"])

    def profile(self) -> dict:
        """Machine-readable breakdown: kernel launches, bytes, pool counters.

        The per-kernel-launch view future perf work reads instead of editing
        benchmark code: counts and modeled seconds from the device cost
        model, transfer byte totals, scratch-pool reuse counters, and the
        measured wall-clock buckets of the attached breakdown.  All counts
        live in the obs metrics registry; this assembles the stable shape.
        """
        self.sync_metrics()
        return {
            "device": self.spec.name,
            "kernels": self.kernel_stats,
            "transfers": {
                "bytes_to_device": self.memory.bytes_to_device,
                "bytes_to_host": self.memory.bytes_to_host,
                "peak_device_bytes": self.memory.peak_bytes,
            },
            "scratch_pool": {
                "n_allocations": self.scratch.n_allocations,
                "n_reuses": self.scratch.n_reuses,
                "bytes_allocated": self.scratch.bytes_allocated,
            },
            "measured_buckets_s": {k: round(v, 6)
                                   for k, v in self.breakdown.as_row().items()},
            "launch_graph": self.launch_graph_stats,
        }

    # ------------------------------------------------------------------ #
    # Transfers
    # ------------------------------------------------------------------ #

    def _link_scaled(self, modeled: float, active: int) -> float:
        """Stretch modeled PCIe seconds by host-link oversubscription."""
        if self.host_link is None:
            return modeled
        return self.host_link.charge(modeled, active)

    def upload(self, host_array: np.ndarray) -> DeviceBuffer:
        """Host -> device copy (synchronous), charged to ``data_c2g``."""
        link = self.host_link
        active = link.begin() if link is not None else 1
        t0 = time.perf_counter()
        try:
            buf, modeled = self.memory.to_device(host_array)
        finally:
            t1 = time.perf_counter()
            if link is not None:
                link.end()
        modeled = self._link_scaled(modeled, active)
        self.breakdown.add(BUCKET_C2G, t1 - t0)
        self.breakdown.add_modeled(BUCKET_C2G, modeled)
        if self.timeline is not None:
            self.timeline.record(BUCKET_C2G, "upload", modeled)
        if self._graph_mode != launchgraph.LG_OFF:
            # The device copy is byte-identical to the host array: let
            # chunk signatures reuse the host side's memoized content token
            # instead of re-hashing the copy every run.
            launchgraph.adopt_token(buf.device_view(), host_array)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.upload", t0, t1, proc=self.proc,
                          attrs={"bytes": buf.nbytes, "modeled_s": modeled})
        return buf

    def download(self, buffer: DeviceBuffer) -> np.ndarray:
        """Device -> host copy (synchronous), charged to ``data_g2c``."""
        link = self.host_link
        active = link.begin() if link is not None else 1
        t0 = time.perf_counter()
        try:
            data, modeled = self.memory.to_host(buffer)
        finally:
            t1 = time.perf_counter()
            if link is not None:
                link.end()
        modeled = self._link_scaled(modeled, active)
        self.breakdown.add(BUCKET_G2C, t1 - t0)
        self.breakdown.add_modeled(BUCKET_G2C, modeled)
        if self.timeline is not None:
            self.timeline.record(BUCKET_G2C, "download", modeled)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.download", t0, t1, proc=self.proc,
                          attrs={"bytes": data.nbytes, "modeled_s": modeled})
        return data

    def download_into(self, buffer: DeviceBuffer, out: np.ndarray) -> np.ndarray:
        """Device -> host copy into an existing host array (``data_g2c``).

        Same accounting as :meth:`download`, but the destination is caller-
        provided (typically a slice of a pass-level accumulator), so the
        transfer allocates nothing.
        """
        link = self.host_link
        active = link.begin() if link is not None else 1
        t0 = time.perf_counter()
        try:
            modeled = self.memory.to_host_into(buffer, out)
        finally:
            t1 = time.perf_counter()
            if link is not None:
                link.end()
        modeled = self._link_scaled(modeled, active)
        self.breakdown.add(BUCKET_G2C, t1 - t0)
        self.breakdown.add_modeled(BUCKET_G2C, modeled)
        if self.timeline is not None:
            self.timeline.record(BUCKET_G2C, "download", modeled)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.download", t0, t1, proc=self.proc,
                          attrs={"bytes": out.nbytes, "modeled_s": modeled})
        return out

    def free(self, *buffers: DeviceBuffer) -> None:
        for buf in buffers:
            buf.free()

    # ------------------------------------------------------------------ #
    # Shingle extraction (Algorithm 1)
    # ------------------------------------------------------------------ #

    def shingle_batch(
        self,
        d_elements: DeviceBuffer,
        d_indptr: DeviceBuffer,
        *,
        a: np.ndarray,
        b: np.ndarray,
        prime: int,
        s: int,
        salts: np.ndarray,
        kernel: str = "select",
        trial_chunk: int = 16,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run all ``c`` shingling trials over one uploaded batch.

        Parameters
        ----------
        d_elements:
            Device buffer holding the batch's flat element ids.
        d_indptr:
            Device buffer holding the batch-local segment boundaries (the
            "auxiliary data structure ... to mark the boundaries of each
            adjacency list" of Section III-C).
        a, b:
            ``(c,)`` hash-pair coefficient arrays (kernel parameters; small
            enough to ride along with launches, not counted as transfers).
        prime:
            Min-wise hash modulus ``P``.
        s:
            Shingle size.
        salts:
            ``(c,)`` per-trial fingerprint salts.
        kernel:
            ``"select"`` (s-round segmented min), ``"sort"`` (full segmented
            sort, the Thrust-faithful reference) or ``"fused"`` (fused
            hash+pack into one uint32 key buffer; see
            :func:`repro.device.kernels.fused_hash`).
        trial_chunk:
            Trials per kernel round; bounds the device working set.

        Returns
        -------
        (fps, top):
            Host arrays — ``fps`` is ``(c, n_segments)`` uint64 shingle
            fingerprints; ``top`` is ``(c, n_segments, s)`` packed
            (hash, id) top-``s`` pairs (``SENTINEL``-padded for segments
            shorter than ``s``).  Each trial round's slice was produced on
            the device and downloaded synchronously.
        """
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        if trial_chunk < 1:
            raise ValueError("trial_chunk must be >= 1")
        c = len(a)
        if not (len(b) == len(salts) == c):
            raise ValueError("a, b, salts must have equal length")

        indptr = d_indptr.device_view().astype(np.int64, copy=False)
        n_seg = indptr.size - 1

        fps_host = np.empty((c, n_seg), dtype=np.uint64)
        top_host = np.empty((c, n_seg, s), dtype=np.uint64)

        # Per-element segment ids: one gather table shared by every round.
        t0 = time.perf_counter()
        seg_ids = kernels.segment_element_ids(indptr)
        self.breakdown.add(BUCKET_GPU, time.perf_counter() - t0)

        for lo in range(0, c, trial_chunk):
            hi = min(lo + trial_chunk, c)
            self.shingle_chunk(
                d_elements, d_indptr,
                a=a[lo:hi], b=b[lo:hi], prime=prime, s=s, salts=salts[lo:hi],
                kernel=kernel, seg_ids=seg_ids,
                out_fps=fps_host[lo:hi], out_top=top_host[lo:hi],
                label=f"trials {lo}-{hi - 1}")

        return fps_host, top_host

    def shingle_chunk(
        self,
        d_elements: DeviceBuffer,
        d_indptr: DeviceBuffer,
        *,
        a: np.ndarray,
        b: np.ndarray,
        prime: int,
        s: int,
        salts: np.ndarray,
        kernel: str = "select",
        seg_ids: np.ndarray | None = None,
        n_values: int | None = None,
        out_fps: np.ndarray | None = None,
        out_top: np.ndarray | None = None,
        label: str = "trial chunk",
    ) -> tuple[np.ndarray, np.ndarray]:
        """One kernel round: a chunk of trials over one uploaded batch.

        This is the unit of work a multi-stream execution plan schedules:
        every internal working array comes from :attr:`scratch` and the
        results land in the caller-provided ``out_fps``/``out_top`` host
        buffers (or fresh arrays when omitted), so the steady state of a
        pass performs zero fresh large allocations.  Thread-safe: concurrent
        streams draw distinct scratch buffers and the breakdown/timeline/
        memory accounting are all lock-protected.

        ``kernel="fused"`` runs the fused hash+pack transform (one uint32
        key buffer, one launch) and recovers ids/packed pairs from the
        selected top block via the inverse affine map; ``n_values`` (the
        exclusive id upper bound, computed once per batch by the driver)
        sizes its lookup table.  Output is bit-identical to the other
        kernels.

        Returns the ``(fps, top)`` host arrays for trials ``a``/``b``/``salts``
        describe — shapes ``(t, n_seg)`` and ``(t, n_seg, s)``.
        """
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        t = len(a)
        elements = d_elements.device_view()
        indptr = d_indptr.device_view().astype(np.int64, copy=False)
        n_seg = indptr.size - 1
        nnz = elements.size
        pool = self.scratch

        graph_sig = None
        if (self._graph_mode != launchgraph.LG_OFF
                and t > 0 and nnz > 0 and n_seg > 0):
            graph_sig = launchgraph.chunk_signature(
                "chunk", kernel=kernel, t=t, s=s, prime=prime,
                n_values=n_values, resident=False,
                elements=elements, indptr=indptr)
            action, graph = self._graph_resolve(graph_sig)
            if action == launchgraph.ACTION_REPLAY:
                return self._replay_chunk(
                    graph, d_elements, d_indptr, a=a, b=b, prime=prime, s=s,
                    salts=salts, seg_ids=seg_ids, n_values=n_values,
                    out_fps=out_fps, out_top=out_top, label=label)
            if action != launchgraph.ACTION_CAPTURE:
                graph_sig = None

        t0 = time.perf_counter()
        d_work, small, fps, d_top, d_fps, kernel_class, n_transforms = (
            self._chunk_kernels(elements, indptr, a=a, b=b, prime=prime, s=s,
                                salts=salts, kernel=kernel, seg_ids=seg_ids,
                                n_values=n_values))
        t1 = time.perf_counter()
        self.breakdown.add(BUCKET_GPU, t1 - t0)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.shingle_chunk", t0, t1, proc=self.proc,
                          attrs={"kernel": kernel, "trials": t, "nnz": nnz,
                                 "n_seg": n_seg, "label": label})
        transform_s = self.spec.kernels.seconds_for("transform", t * nnz)
        select_s = self.spec.kernels.seconds_for(
            kernel_class,
            kernels.count_kernel_elements(kernel_class, t, nnz, n_seg, s))
        reduce_s = self.spec.kernels.seconds_for(
            "reduce",
            kernels.count_kernel_elements("reduce", t, nnz, n_seg, s))
        modeled_gpu = n_transforms * transform_s + select_s + reduce_s
        # The unfused transform stands for two physical launches (hash +
        # pack): charge and count both (the launch-latency audit rule in
        # timingmodels.KernelCostModel).
        self._record_kernel("fused_transform" if kernel == "fused" else
                            "hash+pack_transform",
                            n_transforms * t * nnz, n_transforms * transform_s,
                            n_launches=n_transforms)
        self._record_kernel(f"top_s_{kernel_class}", t * nnz * s, select_s)
        self._record_kernel("fingerprint_fold", t * n_seg * s, reduce_s)
        self.breakdown.add_modeled(BUCKET_GPU, modeled_gpu)
        if self.timeline is not None:
            self.timeline.record(BUCKET_GPU, label, modeled_gpu)
        if graph_sig is not None:
            self._commit_chunk_graph(graph_sig, kernel=kernel, t=t, nnz=nnz,
                                     n_seg=n_seg, s=s, prime=prime,
                                     n_values=n_values,
                                     kernel_class=kernel_class,
                                     n_transforms=n_transforms)

        # Transfer this round's shingles back immediately (synchronous).
        if out_top is None:
            out_top = self.download(d_top)
        else:
            self.download_into(d_top, out_top)
        if out_fps is None:
            out_fps = self.download(d_fps)
        else:
            self.download_into(d_fps, out_fps)
        self.free(d_work, d_top, d_fps)
        pool.give(fps, *small)
        return out_fps, out_top

    def _chunk_kernels(self, elements, indptr, *, a, b, prime, s, salts,
                       kernel, seg_ids, n_values):
        """The eager kernel DAG of one :meth:`shingle_chunk` (no accounting).

        Shared by the eager path and the launch-graph "kernels" replay
        executor, so both launch byte-identical kernel sequences.
        """
        t = len(a)
        n_seg = indptr.size - 1
        nnz = elements.size
        pool = self.scratch
        if kernel == "fused":
            keys = pool.take((t, nnz), np.uint32)
            kernels.fused_hash(elements, a, b, prime, out=keys,
                               scratch=pool, n_values=n_values)
            d_work = self.memory.adopt(keys)         # working set on device
            top32 = pool.take((t, n_seg, s), np.uint32)
            kernels.segmented_select_top_s(keys, indptr, s, scratch=pool,
                                           seg_ids=seg_ids, out=top32,
                                           consume=True)
            top = pool.take((t, n_seg, s), np.uint64)
            top_ids = pool.take((t, n_seg, s), np.uint64)
            kernels.recover_top_ids(top32, a, b, prime, out_ids=top_ids,
                                    out_packed=top, scratch=pool)
            small = (keys, top32, top, top_ids)
            kernel_class = "select"
            n_transforms = 1
        else:
            packed = pool.take((t, nnz), np.uint64)
            kernels.affine_hash(elements, a, b, prime, out=packed)
            kernels.pack_pairs(packed, elements, out=packed)
            d_work = self.memory.adopt(packed)       # working set on device
            select_fn = (kernels.segmented_select_top_s if kernel == "select"
                         else kernels.segmented_sort_top_s)
            top = pool.take((t, n_seg, s), np.uint64)
            select_fn(packed, indptr, s, scratch=pool, seg_ids=seg_ids, out=top)
            top_ids = pool.take((t, n_seg, s), np.uint64)
            kernels.unpack_ids(top, out=top_ids)
            small = (packed, top, top_ids)
            kernel_class = "sort" if kernel == "sort" else "select"
            n_transforms = 2                          # hash launch + pack launch
        fps = pool.take((t, n_seg), np.uint64)
        kernels.fold_fingerprints(
            top_ids, np.asarray(salts, dtype=np.uint64),
            scratch=pool, out=fps)
        d_top = self.memory.adopt(top)
        d_fps = self.memory.adopt(fps)
        return d_work, small, fps, d_top, d_fps, kernel_class, n_transforms

    def _commit_chunk_graph(self, signature, *, kernel, t, nnz, n_seg, s,
                            prime, n_values, kernel_class, n_transforms):
        """Record the dense-output chunk DAG (always the kernels executor)."""
        km = self.spec.kernels
        nodes = (
            launchgraph.GraphNode(
                "fused_transform" if kernel == "fused"
                else "hash+pack_transform",
                n_transforms * t * nnz,
                km.launch_latency_s
                + n_transforms * km.rate_seconds_for("transform", t * nnz)),
            launchgraph.GraphNode(
                f"top_s_{kernel_class}", t * nnz * s,
                km.rate_seconds_for(
                    kernel_class,
                    kernels.count_kernel_elements(kernel_class, t, nnz,
                                                  n_seg, s))),
            launchgraph.GraphNode(
                "fingerprint_fold", t * n_seg * s,
                km.rate_seconds_for(
                    "reduce",
                    kernels.count_kernel_elements("reduce", t, nnz,
                                                  n_seg, s))),
        )
        launchgraph.GRAPH_CACHE.commit(launchgraph.LaunchGraph(
            signature=signature, kind="chunk", kernel=kernel, t=t, s=s,
            prime=prime, n_values=n_values, n_seg=n_seg, nnz=nnz,
            nodes=nodes, modeled_s=float(sum(n.modeled_s for n in nodes)),
            executor="kernels"))

    def _replay_chunk(self, graph, d_elements, d_indptr, *, a, b, prime, s,
                      salts, seg_ids, n_values, out_fps, out_top, label):
        """Replay a captured dense-output chunk: one batched accounting pass."""
        elements = d_elements.device_view()
        indptr = d_indptr.device_view().astype(np.int64, copy=False)
        pool = self.scratch
        t0 = time.perf_counter()
        d_work, small, fps, d_top, d_fps, _, _ = self._chunk_kernels(
            elements, indptr, a=a, b=b, prime=prime, s=s, salts=salts,
            kernel=graph.kernel, seg_ids=seg_ids, n_values=n_values)
        t1 = time.perf_counter()
        self.breakdown.add(BUCKET_GPU, t1 - t0)
        self._account_replay(graph, t0, t1, label=label, executor="kernels",
                             extra={"kernel": graph.kernel, "trials": graph.t,
                                    "nnz": graph.nnz, "n_seg": graph.n_seg})
        if out_top is None:
            out_top = self.download(d_top)
        else:
            self.download_into(d_top, out_top)
        if out_fps is None:
            out_fps = self.download(d_fps)
        else:
            self.download_into(d_fps, out_fps)
        self.free(d_work, d_top, d_fps)
        pool.give(fps, *small)
        return out_fps, out_top

    def _account_replay(self, graph, t0: float, t1: float, *, label: str,
                        executor: str, extra: dict) -> None:
        """One batched metrics/tracer update for a whole replayed graph.

        The same per-kernel counters as the eager path advance (so
        ``kernel_stats``/``profile()`` keep their shapes), but the modeled
        seconds follow the graph charging rule: each node contributes its
        rate term only, and the single ``launch_latency_s`` of the graph
        launch is folded into the first node at capture.  Instead of one
        span per launch, a single ``device.graph_replay`` span carries the
        per-node breakdown.
        """
        for node in graph.nodes:
            self._record_kernel(node.name, node.elements, node.modeled_s)
        self.breakdown.add_modeled(BUCKET_GPU, graph.modeled_s)
        if self.timeline is not None:
            self.timeline.record(BUCKET_GPU, label, graph.modeled_s)
        tracer = self.obs.tracer
        if tracer.enabled:
            attrs = {"graph": f"shingle_{graph.kind}", "executor": executor,
                     "replay": graph.replays, "modeled_s": graph.modeled_s,
                     "nodes": graph.node_summary(), "label": label}
            attrs.update(extra)
            tracer.record("device.graph_replay", t0, t1, proc=self.proc,
                          attrs=attrs)

    def shingle_chunk_reduce(
        self,
        d_elements: DeviceBuffer,
        d_indptr: DeviceBuffer,
        d_gen_ids: DeviceBuffer,
        *,
        a: np.ndarray,
        b: np.ndarray,
        prime: int,
        s: int,
        salts: np.ndarray,
        seg_ids: np.ndarray | None = None,
        n_values: int | None = None,
        resident: bool = False,
        label: str = "trial chunk",
    ) -> tuple:
        """One fused kernel round with on-device sort-dedup reduction.

        Runs the fused hash + top-``s`` selection like
        :meth:`shingle_chunk` with ``kernel="fused"``, then
        :func:`repro.device.kernels.chunk_reduce` on the device: the raw
        ``(t, n_seg, s)`` occurrence block is sorted and deduplicated
        *before* transfer, so the host downloads a compacted
        ``(k_chunk,)``-shaped partial (fingerprint-sorted, with first-
        occurrence member rows and ready-made generator lists) instead of
        the dense arrays — cutting g2c bytes from O(t*n*(s+1)*8) to
        roughly O(t*n*4 + k*(8+4*s+4)).

        Requires pre-compacted input (every segment's length >= s, so no
        sentinel entries) and ``reduce_keys_fit(t, n_seg, s, n_values)`` —
        the driver checks both.  ``d_gen_ids`` is the device-resident uint32
        table mapping columns to original segment ids.

        Returns host arrays ``(fps, members, gen_counts, gens)`` in the
        wire dtypes of ``chunk_reduce`` (uint64/uint32).  With
        ``resident=True`` the four outputs stay on the device and their
        :class:`DeviceBuffer` handles are returned instead — nothing crosses
        the PCIe link; :meth:`aggregate_merge` later consumes (and frees)
        the resident partials and downloads only the final merged result.
        """
        t = len(a)
        elements = d_elements.device_view()
        indptr = d_indptr.device_view().astype(np.int64, copy=False)
        n_seg = indptr.size - 1
        nnz = elements.size
        pool = self.scratch

        graph_sig = None
        if (self._graph_mode != launchgraph.LG_OFF and n_values is not None
                and t > 0 and nnz > 0 and n_seg > 0):
            graph_sig = launchgraph.chunk_signature(
                "reduce", kernel="fused", t=t, s=s, prime=prime,
                n_values=n_values, resident=bool(resident),
                elements=elements, indptr=indptr,
                gen_ids=d_gen_ids.device_view())
            action, graph = self._graph_resolve(graph_sig)
            if action == launchgraph.ACTION_REPLAY:
                return self._replay_chunk_reduce(
                    graph, d_elements, d_indptr, d_gen_ids, a=a, b=b,
                    prime=prime, s=s, salts=salts, seg_ids=seg_ids,
                    resident=resident, label=label)
            if action != launchgraph.ACTION_CAPTURE:
                graph_sig = None

        t0 = time.perf_counter()
        keys = pool.take((t, nnz), np.uint32)
        sel0 = time.perf_counter()
        kernels.fused_hash(elements, a, b, prime, out=keys,
                           scratch=pool, n_values=n_values)
        d_work = self.memory.adopt(keys)
        top32 = pool.take((t, n_seg, s), np.uint32)
        kernels.segmented_select_top_s(keys, indptr, s, scratch=pool,
                                       seg_ids=seg_ids, out=top32, consume=True)
        sel1 = time.perf_counter()
        top_ids = pool.take((t, n_seg, s), np.uint64)
        # Pre-compacted input (driver contract): no sentinel padding exists.
        kernels.recover_top_ids(top32, a, b, prime, out_ids=top_ids,
                                scratch=pool, has_sentinels=False)
        rec1 = time.perf_counter()
        fps, members, gen_counts, gens = kernels.chunk_reduce(
            top_ids, np.asarray(salts, dtype=np.uint64),
            d_gen_ids.device_view(), n_values, scratch=pool)
        d_out = [self.memory.adopt(arr)
                 for arr in (fps, members, gen_counts, gens)]
        t1 = time.perf_counter()
        self.breakdown.add(BUCKET_GPU, t1 - t0)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.shingle_chunk_reduce", t0, t1, proc=self.proc,
                          attrs={"trials": t, "nnz": nnz, "n_seg": n_seg,
                                 "k_chunk": int(fps.size), "label": label})
        transform_s = self.spec.kernels.seconds_for("transform", t * nnz)
        select_s = self.spec.kernels.seconds_for(
            "select", kernels.count_kernel_elements("select", t, nnz, n_seg, s))
        sort_s = self.spec.kernels.seconds_for(
            "sort", kernels.count_kernel_elements("chunk_reduce", t, nnz, n_seg, s))
        reduce_s = self.spec.kernels.seconds_for(
            "reduce", kernels.count_kernel_elements("reduce", t, nnz, n_seg, s))
        modeled_gpu = transform_s + select_s + sort_s + reduce_s
        self._record_kernel("fused_transform", t * nnz, transform_s)
        self._record_kernel("top_s_select", t * nnz * s, select_s)
        self._record_kernel("chunk_reduce_sort", t * n_seg, sort_s)
        self._record_kernel("chunk_reduce_fold", t * n_seg * s, reduce_s)
        self.breakdown.add_modeled(BUCKET_GPU, modeled_gpu)
        if self.timeline is not None:
            self.timeline.record(BUCKET_GPU, label, modeled_gpu)
        if graph_sig is not None:
            self._capture_reduce_graph(
                graph_sig, elements=elements, indptr=indptr, t=t, nnz=nnz,
                n_seg=n_seg, s=s, prime=prime, n_values=n_values, a=a, b=b,
                eager_top32=top32, eager_top_ids=top_ids,
                eager_select_s=sel1 - sel0, eager_recover_s=rec1 - sel1)

        if resident:
            # The partial stays device-resident for aggregate_merge; only
            # the kernel working set is released.
            self.free(d_work)
            pool.give(keys, top32, top_ids)
            return tuple(d_out)
        # The compacted partial is all that crosses the PCIe link.
        host = tuple(self.download(buf) for buf in d_out)
        self.free(d_work, *d_out)
        pool.give(keys, top32, top_ids)
        return host

    def _capture_reduce_graph(self, signature, *, elements, indptr, t, nnz,
                              n_seg, s, prime, n_values, a, b, eager_top32,
                              eager_top_ids, eager_select_s,
                              eager_recover_s) -> None:
        """Instantiate + auto-tune the reduce-chunk graph (capture time).

        Builds the binned tournament plan, replays its selection once
        against the capturing chunk's inputs in both key space and rank
        space, and verifies each bit-identical against the eager output
        (modulo the plan's known column permutation).  The cheapest
        verified executor wins — candidates are compared on the work they
        replace, so the key tournament and eager select both carry the id
        recovery the rank tournament skips.  Any mismatch or out-of-scope
        geometry pins the graph to the eager kernel sequence.  Runs outside
        the chunk's timed GPU region — capture is host-side instantiation
        work, charged to the ``cpu`` bucket and traced separately as a
        ``device.graph_capture`` span, once per shape class per process.
        """
        c0 = time.perf_counter()
        committed = False
        try:
            executor = "kernels"
            tournament_s = None
            rank_s = None
            plan = launchgraph.build_tournament_plan(
                elements, indptr, s, n_values)
            if plan is not None and not np.any(np.asarray(a) == 0):
                pool = self.scratch
                trial32 = pool.take((t, n_seg, s), np.uint32)
                s0 = time.perf_counter()
                launchgraph.run_tournament(plan, pool, a, b, prime, s,
                                           out32=trial32)
                tournament_s = time.perf_counter() - s0
                identical = bool(
                    np.array_equal(trial32, eager_top32[:, plan.perm, :]))
                pool.give(trial32)
                trial_ids = pool.take((t, n_seg, s), np.uint64)
                s1 = time.perf_counter()
                launchgraph.run_tournament_ids(plan, pool, a, b, prime, s,
                                               out_ids=trial_ids)
                rank_s = time.perf_counter() - s1
                rank_identical = bool(np.array_equal(
                    trial_ids, eager_top_ids[:, plan.perm, :]))
                pool.give(trial_ids)
                candidates = [("kernels", eager_select_s + eager_recover_s)]
                if identical:
                    candidates.append(
                        ("tournament", tournament_s + eager_recover_s))
                if rank_identical:
                    candidates.append(("rank_tournament", rank_s))
                if not identical and not rank_identical:
                    plan = None
                else:
                    executor = min(candidates, key=lambda c: c[1])[0]
            km = self.spec.kernels
            nodes = (
                launchgraph.GraphNode(
                    "fused_transform", t * nnz,
                    km.launch_latency_s
                    + km.rate_seconds_for("transform", t * nnz)),
                launchgraph.GraphNode(
                    "top_s_select", t * nnz * s,
                    km.rate_seconds_for("select", kernels.count_kernel_elements(
                        "select", t, nnz, n_seg, s))),
                launchgraph.GraphNode(
                    "chunk_reduce_sort", t * n_seg,
                    km.rate_seconds_for("sort", kernels.count_kernel_elements(
                        "chunk_reduce", t, nnz, n_seg, s))),
                launchgraph.GraphNode(
                    "chunk_reduce_fold", t * n_seg * s,
                    km.rate_seconds_for("reduce", kernels.count_kernel_elements(
                        "reduce", t, nnz, n_seg, s))),
            )
            launchgraph.GRAPH_CACHE.commit(launchgraph.LaunchGraph(
                signature=signature, kind="reduce", kernel="fused", t=t, s=s,
                prime=prime, n_values=n_values, n_seg=n_seg, nnz=nnz,
                nodes=nodes, modeled_s=float(sum(n.modeled_s for n in nodes)),
                executor=executor, plan=plan))
            committed = True
        finally:
            if not committed:
                launchgraph.GRAPH_CACHE.abort_capture(signature)
            c1 = time.perf_counter()
            self.breakdown.add(BUCKET_CPU, c1 - c0)
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.record(
                    "device.graph_capture", c0, c1, proc=self.proc,
                    attrs={"graph": "shingle_reduce", "trials": t, "nnz": nnz,
                           "n_seg": n_seg,
                           "executor": executor if committed else "aborted",
                           "eager_select_s": eager_select_s,
                           "eager_recover_s": eager_recover_s,
                           "tournament_s": tournament_s,
                           "rank_tournament_s": rank_s})

    def _replay_chunk_reduce(self, graph, d_elements, d_indptr, d_gen_ids, *,
                             a, b, prime, s, salts, seg_ids, resident, label):
        """Replay a captured reduce-chunk graph with pre-resolved bindings."""
        pool = self.scratch
        t, n_seg, nnz = graph.t, graph.n_seg, graph.nnz
        n_values = graph.n_values
        gen_view = d_gen_ids.device_view()
        salts64 = np.asarray(salts, dtype=np.uint64)
        plan = graph.plan
        d_work = None
        t0 = time.perf_counter()
        # a == 0 breaks the distinct-keys proof (the affine map degenerates);
        # hash pairs never contain it, but guard the replay regardless.
        if (graph.executor == "rank_tournament" and plan is not None
                and not np.any(np.asarray(a) == 0)):
            executor = "rank_tournament"
            top_ids = pool.take((t, n_seg, s), np.uint64)
            launchgraph.run_tournament_ids(plan, pool, a, b, prime, s,
                                           out_ids=top_ids)
            fps, members, gen_counts, gens = kernels.chunk_reduce(
                top_ids, salts64, gen_view, n_values, scratch=pool,
                col_ids=plan.perm_cols, col_to_row=plan.col_to_row)
            small = (top_ids,)
        elif (graph.executor == "tournament" and plan is not None
                and not np.any(np.asarray(a) == 0)):
            executor = "tournament"
            top32 = pool.take((t, n_seg, s), np.uint32)
            launchgraph.run_tournament(plan, pool, a, b, prime, s, out32=top32)
            top_ids = pool.take((t, n_seg, s), np.uint64)
            kernels.recover_top_ids(top32, a, b, prime, out_ids=top_ids,
                                    scratch=pool, has_sentinels=False)
            fps, members, gen_counts, gens = kernels.chunk_reduce(
                top_ids, salts64, gen_view, n_values, scratch=pool,
                col_ids=plan.perm_cols, col_to_row=plan.col_to_row)
            small = (top32, top_ids)
        else:
            executor = "kernels"
            elements = d_elements.device_view()
            indptr = d_indptr.device_view().astype(np.int64, copy=False)
            keys = pool.take((t, nnz), np.uint32)
            kernels.fused_hash(elements, a, b, prime, out=keys,
                               scratch=pool, n_values=n_values)
            d_work = self.memory.adopt(keys)
            top32 = pool.take((t, n_seg, s), np.uint32)
            kernels.segmented_select_top_s(keys, indptr, s, scratch=pool,
                                           seg_ids=seg_ids, out=top32,
                                           consume=True)
            top_ids = pool.take((t, n_seg, s), np.uint64)
            kernels.recover_top_ids(top32, a, b, prime, out_ids=top_ids,
                                    scratch=pool, has_sentinels=False)
            fps, members, gen_counts, gens = kernels.chunk_reduce(
                top_ids, salts64, gen_view, n_values, scratch=pool)
            small = (keys, top32, top_ids)
        d_out = [self.memory.adopt(arr)
                 for arr in (fps, members, gen_counts, gens)]
        t1 = time.perf_counter()
        self.breakdown.add(BUCKET_GPU, t1 - t0)
        self._account_replay(graph, t0, t1, label=label, executor=executor,
                             extra={"trials": t, "nnz": nnz, "n_seg": n_seg,
                                    "k_chunk": int(fps.size)})
        if resident:
            if d_work is not None:
                self.free(d_work)
            pool.give(*small)
            return tuple(d_out)
        host = tuple(self.download(buf) for buf in d_out)
        if d_work is not None:
            self.free(d_work)
        self.free(*d_out)
        pool.give(*small)
        return host

    # ------------------------------------------------------------------ #
    # Inter-pass aggregation (device-resident group-by merge)
    # ------------------------------------------------------------------ #

    def aggregate_merge(
        self,
        parts: list,
        *,
        s: int,
        label: str = "aggregate",
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Merge device-resident ``chunk_reduce`` partials on the device.

        ``parts`` is a list of ``(owner, buffers)`` tuples in ascending
        trial order, where ``buffers`` is the 4-tuple of resident
        :class:`DeviceBuffer` handles returned by
        :meth:`shingle_chunk_reduce` with ``resident=True`` (``owner`` is
        the producing device — ignored here, used by
        :class:`~repro.device.group.DeviceGroup`).  Runs the
        ``agg_sort``/``agg_boundaries``/``agg_invert`` group-by kernels over
        the concatenated runs and downloads only the merged result, so the
        per-chunk partial bytes never cross the PCIe link.  The merge is the
        exact device analogue of the host StreamingAggregator's stable
        sorted-run merge — bit-identical output by construction.

        Returns host arrays ``(fps, members, gen_counts, gens)`` in the
        ``chunk_reduce`` wire dtypes; all input buffers are freed.
        """
        bufs = [part[1] for part in parts]
        part_bytes = sum(b.nbytes for part in bufs for b in part)
        fp_parts = [part[0].device_view() for part in bufs]
        k_in = sum(fp.size for fp in fp_parts)
        tracer = self.obs.tracer
        if k_in == 0:
            for part in bufs:
                self.free(*part)
            return (np.empty(0, dtype=np.uint64),
                    np.empty((0, s), dtype=np.uint32),
                    np.empty(0, dtype=np.uint32),
                    np.empty(0, dtype=np.uint32))
        if len(bufs) == 1:
            # Single partial: nothing to merge, the deferred download is the
            # only remaining work.
            host = tuple(self.download(b) for b in bufs[0])
            self.free(*bufs[0])
            if tracer.enabled:
                t_now = time.perf_counter()
                tracer.record("device.aggregate", t_now, t_now,
                              proc=self.proc,
                              attrs={"parts": 1, "k_in": k_in,
                                     "k_out": k_in, "bytes_saved": 0,
                                     "label": label})
            return host

        member_parts = [part[1].device_view() for part in bufs]
        count_parts = [part[2].device_view() for part in bufs]
        gen_parts = [part[3].device_view() for part in bufs]
        nnz_in = sum(g.size for g in gen_parts)

        t0 = time.perf_counter()
        fp_cat, order = kernels.agg_sort(fp_parts)
        fp_sorted, run_starts, inverse = kernels.agg_boundaries(fp_cat, order)
        uniq = fp_sorted[run_starts]
        members_cat = np.concatenate(member_parts)
        members = members_cat[order[run_starts]]
        gen_counts, gens = kernels.agg_invert(inverse, count_parts,
                                              gen_parts, uniq.size)
        d_out = [self.memory.adopt(arr)
                 for arr in (uniq, members, gen_counts, gens)]
        for part in bufs:
            self.free(*part)
        t1 = time.perf_counter()
        self.breakdown.add(BUCKET_GPU, t1 - t0)

        sort_s = self.spec.kernels.seconds_for("agg_sort", k_in)
        bounds_s = self.spec.kernels.seconds_for("agg_boundaries", k_in)
        invert_s = self.spec.kernels.seconds_for("agg_invert", nnz_in)
        self._record_kernel("agg_sort", k_in, sort_s)
        self._record_kernel("agg_boundaries", k_in, bounds_s)
        self._record_kernel("agg_invert", nnz_in, invert_s)
        modeled_gpu = sort_s + bounds_s + invert_s
        self.breakdown.add_modeled(BUCKET_GPU, modeled_gpu)
        if self.timeline is not None:
            self.timeline.record(BUCKET_GPU, label, modeled_gpu)

        final_bytes = sum(b.nbytes for b in d_out)
        bytes_saved = max(0, part_bytes - final_bytes)
        self.obs.metrics.counter(
            f"{self.metric_prefix}.aggregate.bytes_saved").add(bytes_saved)
        if tracer.enabled:
            tracer.record("device.aggregate", t0, t1, proc=self.proc,
                          attrs={"parts": len(bufs), "k_in": k_in,
                                 "k_out": int(uniq.size),
                                 "bytes_saved": bytes_saved, "label": label})
        host = tuple(self.download(buf) for buf in d_out)
        self.free(*d_out)
        return host

    # ------------------------------------------------------------------ #
    # Phase III connected components (hooking + pointer jumping)
    # ------------------------------------------------------------------ #

    def cc_round(self, labels: np.ndarray, src: np.ndarray,
                 dst: np.ndarray, jumped: np.ndarray) -> None:
        """One hooking round plus pointer jumping to a local fixpoint.

        Mutates ``labels`` in place (``jumped`` is caller-provided scratch
        of the same shape).  Charges modeled seconds and kernel counters
        only — the *measured* GPU wall time is charged once by the caller
        around its whole solve loop, so per-round timing overhead never
        double-counts against the breakdown buckets.
        """
        kernels.cc_hook(labels, src, dst)
        jumps = 1
        while kernels.cc_jump(labels, jumped):
            np.copyto(labels, jumped)
            jumps += 1
        hook_s = self.spec.kernels.seconds_for("cc_hook", src.size)
        jump_s = self.spec.kernels.seconds_for("cc_jump", jumps * labels.size)
        self._record_kernel("cc_hook", src.size, hook_s)
        self._record_kernel("cc_jump", jumps * labels.size, jump_s)
        self.breakdown.add_modeled(BUCKET_GPU, hook_s + jump_s)

    def connected_components(self, src: np.ndarray, dst: np.ndarray,
                             n: int, label: str = "phase3") -> np.ndarray:
        """Min-label connected components over an edge list, on the device.

        Uploads the edge list, iterates :meth:`cc_round` (hooking +
        pointer jumping) until the labels reach a fixpoint, and downloads
        the result.  Labels are monotonically non-increasing with
        ``labels[x] <= x`` as an invariant, so the unique fixpoint is the
        canonical min-vertex labeling — bit-identical to the host
        ``union_edges`` output regardless of edge order or sharding.

        Returns the ``(n,)`` int64 label array.
        """
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        d_src = self.upload(src)
        d_dst = self.upload(dst)
        labels = np.arange(n, dtype=np.int64)
        d_labels = self.memory.adopt(labels)
        pool = self.scratch
        before = pool.take((n,), np.int64)
        jumped = pool.take((n,), np.int64)
        srcv = d_src.device_view()
        dstv = d_dst.device_view()
        rounds = 0
        t0 = time.perf_counter()
        while True:
            np.copyto(before, labels)
            self.cc_round(labels, srcv, dstv, jumped)
            rounds += 1
            if np.array_equal(labels, before):
                break
        t1 = time.perf_counter()
        self.breakdown.add(BUCKET_GPU, t1 - t0)
        metrics = self.obs.metrics
        prefix = self.metric_prefix
        metrics.counter(f"{prefix}.cc.rounds").add(rounds)
        metrics.counter(f"{prefix}.cc.edges").add(int(src.size))
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.cc.solve", t0, t1, proc=self.proc,
                          attrs={"rounds": rounds, "edges": int(src.size),
                                 "n": int(n), "label": label})
        out = self.download(d_labels)
        self.free(d_src, d_dst, d_labels)
        pool.give(before, jumped)
        return out
