"""Capacity-limited device memory with explicit transfers.

The CPU and GPU "cannot directly access each other's memory space" (Section
II of the paper); all movement goes through copy operations whose cost Table I
accounts separately.  :class:`DeviceMemory` enforces both properties for the
simulated device:

* allocations beyond the configured capacity raise :class:`DeviceMemoryError`
  (this is what forces the batch planner to split large graphs, exactly as
  the K20's 5 GB forces batching of the 2M graph);
* :class:`DeviceBuffer` hides its storage behind a device-only accessor so
  host-side code paths cannot silently bypass the transfer step.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.device.timingmodels import TransferModel


class DeviceMemoryError(MemoryError):
    """Raised when an allocation would exceed device memory capacity."""


class ScratchPool:
    """Recycled scratch buffers for allocation-free steady-state kernels.

    Kernel rounds repeatedly need working arrays of identical geometry (the
    hashed matrix, the masking copy, the expanded-minimum matrix, ...).
    Allocating them fresh every round costs page faults and memset time on
    the CPU analogue — and on a real device would fragment the allocator.
    The pool hands out buffers keyed by exact ``(dtype, shape)`` and takes
    them back after the round, so after the first round of a given geometry
    the steady state performs **zero** fresh allocations.

    Counters (``n_allocations``, ``n_reuses``, ``bytes_allocated``) are the
    observable contract: a benchmark or test can assert that repeated rounds
    stop allocating.  Thread-safe — concurrent streams draw distinct buffers
    from the same free lists.
    """

    def __init__(self) -> None:
        self._free: dict[tuple[str, tuple[int, ...]], list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.n_allocations = 0
        self.n_reuses = 0
        self.bytes_allocated = 0

    @staticmethod
    def _key(shape: tuple[int, ...], dtype) -> tuple[str, tuple[int, ...]]:
        return (np.dtype(dtype).str, tuple(int(d) for d in shape))

    def take(self, shape: tuple[int, ...] | int, dtype=np.uint64) -> np.ndarray:
        """A buffer of exactly ``shape``/``dtype``; contents are undefined."""
        if isinstance(shape, int):
            shape = (shape,)
        key = self._key(shape, dtype)
        with self._lock:
            stack = self._free.get(key)
            if stack:
                self.n_reuses += 1
                return stack.pop()
            self.n_allocations += 1
            arr = np.empty(shape, dtype=dtype)
            self.bytes_allocated += arr.nbytes
            return arr

    def give(self, *arrays: np.ndarray) -> None:
        """Return buffers to the pool for reuse."""
        with self._lock:
            for arr in arrays:
                self._free.setdefault(self._key(arr.shape, arr.dtype), []).append(arr)

    @property
    def bytes_pooled(self) -> int:
        """Bytes currently sitting in free lists."""
        with self._lock:
            return sum(a.nbytes for stack in self._free.values() for a in stack)

    def clear(self) -> None:
        """Drop all pooled buffers (counters are preserved)."""
        with self._lock:
            self._free.clear()


class DeviceBuffer:
    """A device-resident array.

    Host code must use :meth:`DeviceMemory.to_host` to read its contents;
    kernels (which receive the buffer explicitly) use :meth:`device_view`.
    """

    __slots__ = ("_array", "_pool", "_freed")

    def __init__(self, array: np.ndarray, pool: "DeviceMemory") -> None:
        self._array = array
        self._pool = pool
        self._freed = False

    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    @property
    def nbytes(self) -> int:
        return self._array.nbytes

    def device_view(self) -> np.ndarray:
        """The raw storage — for kernel code only, never host logic."""
        if self._freed:
            raise RuntimeError("use-after-free of device buffer")
        return self._array

    def free(self) -> None:
        """Return this buffer's bytes to the pool."""
        if not self._freed:
            self._pool._release(self.nbytes)
            self._freed = True

    def __repr__(self) -> str:
        state = "freed" if self._freed else f"{self.nbytes} B"
        return f"DeviceBuffer(shape={self.shape}, dtype={self.dtype}, {state})"


class DeviceMemory:
    """Allocator for device global memory with a hard capacity."""

    def __init__(self, capacity_bytes: int, transfer_model: TransferModel | None = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be > 0")
        self.capacity_bytes = int(capacity_bytes)
        self.used_bytes = 0
        self.peak_bytes = 0
        self.transfer_model = transfer_model or TransferModel()
        # Transfer accounting (bytes), inspected by benchmarks.
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        # Multi-stream execution reserves/releases from worker threads.
        self._lock = threading.Lock()

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def _reserve(self, nbytes: int) -> None:
        with self._lock:
            if nbytes > self.capacity_bytes - self.used_bytes:
                raise DeviceMemoryError(
                    f"device OOM: requested {nbytes} B with {self.free_bytes} B free "
                    f"of {self.capacity_bytes} B"
                )
            self.used_bytes += nbytes
            self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def _release(self, nbytes: int) -> None:
        with self._lock:
            self.used_bytes -= nbytes
            if self.used_bytes < 0:
                raise RuntimeError("device memory accounting underflow")

    def alloc(self, shape: tuple[int, ...] | int, dtype=np.uint64) -> DeviceBuffer:
        """Allocate an uninitialized device buffer."""
        probe = np.empty(shape, dtype=dtype)
        self._reserve(probe.nbytes)
        return DeviceBuffer(probe, self)

    def adopt(self, array: np.ndarray) -> DeviceBuffer:
        """Wrap a kernel-produced array as a device-resident buffer.

        Kernels run "on the device" and their outputs are device-resident by
        construction; adopting reserves their bytes against capacity (raising
        :class:`DeviceMemoryError` on overflow) without a host<->device copy.
        """
        self._reserve(array.nbytes)
        return DeviceBuffer(array, self)

    def to_device(self, host_array: np.ndarray) -> tuple[DeviceBuffer, float]:
        """Copy a host array into a fresh device buffer.

        Returns the buffer and the *modeled* PCIe seconds for the copy; the
        caller measures wall time around this call for the measured bucket.
        """
        host_array = np.ascontiguousarray(host_array)
        self._reserve(host_array.nbytes)
        buf = DeviceBuffer(host_array.copy(), self)
        with self._lock:
            self.bytes_to_device += host_array.nbytes
        return buf, self.transfer_model.seconds_for(host_array.nbytes)

    def to_host(self, buffer: DeviceBuffer) -> tuple[np.ndarray, float]:
        """Copy a device buffer back to host memory.

        Returns the host array and the modeled PCIe seconds.
        """
        data = buffer.device_view().copy()
        with self._lock:
            self.bytes_to_host += data.nbytes
        return data, self.transfer_model.seconds_for(data.nbytes)

    def to_host_into(self, buffer: DeviceBuffer, out: np.ndarray) -> float:
        """Copy a device buffer into an existing host array (pinned-style).

        The allocation-free sibling of :meth:`to_host`: the destination is a
        host staging buffer the caller reuses across rounds.  Returns the
        modeled PCIe seconds.
        """
        data = buffer.device_view()
        np.copyto(out, data)
        with self._lock:
            self.bytes_to_host += data.nbytes
        return self.transfer_model.seconds_for(data.nbytes)

    def reset_counters(self) -> None:
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.peak_bytes = self.used_bytes
