"""Modeled execution timeline of a device run (ASCII Gantt).

The cost models in :mod:`repro.device.timingmodels` give every transfer and
kernel launch a modeled duration; recording them in order yields a timeline
of what a real K20 + PCIe pipeline would do.  Two schedules can be derived:

* **synchronous** — events back to back, as the paper's Thrust 1.5 pipeline
  executes ("the overhead of transferring data ... is unavoidable");
* **overlapped** — each transfer slides under the preceding compute where
  capacity allows, the paper's asynchronous future work.

The Gantt rendering makes the Table-I structure visible at a glance: how
much of the critical path is kernels vs. copies vs. host work.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

LANES = ("cpu", "gpu", "data_c2g", "data_g2c")


@dataclass(frozen=True)
class TimelineEvent:
    """One modeled operation: its lane, start time, and duration."""

    lane: str
    label: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Timeline:
    """An ordered record of modeled device operations."""

    events: list[TimelineEvent] = field(default_factory=list)
    _cursor: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, lane: str, label: str, duration: float) -> None:
        """Append an event at the current cursor (sequential schedule).

        Thread-safe: concurrent streams append atomically; the sequential
        cursor then represents the device's serialized submission order.
        """
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane!r}")
        if duration < 0:
            raise ValueError("duration must be >= 0")
        with self._lock:
            self.events.append(TimelineEvent(lane, label, self._cursor, duration))
            self._cursor += duration

    @property
    def makespan(self) -> float:
        return max((e.end for e in self.events), default=0.0)

    def lane_total(self, lane: str) -> float:
        return sum(e.duration for e in self.events if e.lane == lane)

    def overlapped(self) -> "Timeline":
        """Reschedule with transfers overlapping compute (two resources).

        Model: one copy engine (both transfer lanes) and one compute engine
        (gpu + cpu lanes), as on a single-copy-engine GPU.  Each event starts
        as early as its resource and its *predecessor's resource handoff*
        allow: an event may begin once the previous event on the OTHER
        resource that produced its input has finished.  We use the simple
        conservative rule: compute events wait for the latest prior transfer
        INTO the device; transfers wait for the latest prior compute that
        produced their payload; same-resource events queue.
        """
        copy_free = 0.0
        compute_free = 0.0
        last_upload_end = 0.0
        last_compute_end = 0.0
        out = Timeline()
        for e in self.events:
            if e.lane in ("data_c2g", "data_g2c"):
                ready = copy_free
                if e.lane == "data_g2c":
                    ready = max(ready, last_compute_end)  # result must exist
                start = ready
                copy_free = start + e.duration
                if e.lane == "data_c2g":
                    last_upload_end = copy_free
            else:
                start = max(compute_free, last_upload_end)
                compute_free = start + e.duration
                last_compute_end = compute_free
            out.events.append(TimelineEvent(e.lane, e.label, start, e.duration))
        out._cursor = out.makespan
        return out

    def render(self, width: int = 72) -> str:
        """ASCII Gantt: one row per lane, time left to right."""
        span = self.makespan
        if span <= 0:
            return "(empty timeline)"
        lines = [f"modeled makespan: {span * 1e3:.2f} ms"]
        for lane in LANES:
            row = [" "] * width
            for e in self.events:
                if e.lane != lane:
                    continue
                lo = int(e.start / span * (width - 1))
                hi = max(int(e.end / span * (width - 1)), lo)
                for x in range(lo, hi + 1):
                    row[x] = "#"
            lines.append(f"{lane:>9} |{''.join(row)}|")
        return "\n".join(lines)
