"""A group of simulated devices behind one facade.

The paper's gpClust drives a single Tesla K20 and names its scaling limits
explicitly: device memory and the one CPU<->GPU link.  This module models
the obvious next platform — several boards in one host — the way the rest
of ``repro.device`` models one board:

* :class:`DeviceGroup` owns N independent :class:`SimulatedDevice` members.
  Each member keeps its *own* memory capacity, scratch pool, and kernel
  counters (metric prefix ``device{i}``, Chrome-trace process coordinate
  ``device{i}``), while all members share one :class:`TimeBreakdown` and
  one obs context — so Table-I accounting and a single metrics snapshot
  still see the whole pipeline, exactly like the multistream precedent
  where concurrent streams accumulate busy seconds into shared buckets.
* :class:`GroupTopology` describes the transfer fabric: ``host_lanes``
  PCIe lanes shared by every member (a :class:`HostLink` stretches modeled
  transfer seconds when siblings copy concurrently — the oversubscription
  a real dual-board host shows on one x16 switch) and a cheaper
  peer-to-peer :class:`TransferModel` for device<->device exchange
  (NVLink/PCIe P2P class), exercised by :meth:`DeviceGroup.broadcast`.
* :func:`least_loaded_assignment` is the dispatcher primitive: a static
  greedy assignment of independent work items to the member with the
  smallest accumulated modeled cost.  Static-by-cost (rather than dynamic
  work stealing by wall clock) keeps every device's kernel stream — and
  therefore the modeled group timeline — deterministic for a fixed
  workload, which is what lets benchmarks assert modeled speedups exactly.

Bit-identity across device counts holds by construction: the shingle pass
merges per-device chunk partials through the order-tolerant
``StreamingAggregator`` and the aligner's bins write disjoint output
slices, so *where* a unit of work ran never reaches the results.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.device.device import SimulatedDevice
from repro.device.memory import DeviceBuffer
from repro.device.timingmodels import DeviceSpec, TransferModel
from repro.obs import MetricsRegistry, ObsContext, get_obs
from repro.util.timer import BUCKET_GPU, BUCKET_P2P, TimeBreakdown

#: Default peer-to-peer link: twice the PCIe-2.0 host bandwidth at half the
#: latency — the class of advantage direct GPU<->GPU copies show over a
#: host-bounce on real multi-board systems.
DEFAULT_P2P = TransferModel(latency_s=5e-6, bandwidth_bytes_per_s=12.0e9)


@dataclass(frozen=True)
class GroupTopology:
    """Transfer fabric of a device group.

    Attributes
    ----------
    host_lanes:
        How many host<->device transfers proceed at full modeled bandwidth
        concurrently.  With ``k`` simultaneous transfers over ``lanes``
        lanes, each transfer's modeled seconds stretch by ``k / lanes``
        (wall time is unaffected — contention is a property of the modeled
        PCIe fabric, not of this machine).
    p2p:
        Transfer model for direct device<->device copies.
    """

    host_lanes: int = 1
    p2p: TransferModel = field(default_factory=lambda: DEFAULT_P2P)

    def __post_init__(self) -> None:
        if self.host_lanes < 1:
            raise ValueError("host_lanes must be >= 1")


class HostLink:
    """Shared host<->device lanes with modeled contention.

    Every member of a group routes its uploads/downloads through one of
    these.  ``begin()`` returns the number of transfers in flight (self
    included) sampled under the lock; ``charge`` stretches the modeled
    seconds by the oversubscription factor and accumulates the surplus in
    ``contended_s`` so tests and benchmarks can observe exactly how much
    modeled time the shared link cost.
    """

    def __init__(self, lanes: int = 1) -> None:
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self.lanes = int(lanes)
        self._lock = threading.Lock()
        self._active = 0
        self.peak_active = 0
        self.contended_s = 0.0

    def begin(self) -> int:
        with self._lock:
            self._active += 1
            if self._active > self.peak_active:
                self.peak_active = self._active
            return self._active

    def end(self) -> None:
        with self._lock:
            self._active -= 1

    def charge(self, modeled: float, active: int) -> float:
        """Modeled seconds stretched by the oversubscription at ``active``."""
        factor = max(1.0, active / self.lanes)
        if factor > 1.0:
            with self._lock:
                self.contended_s += modeled * (factor - 1.0)
        return modeled * factor


def least_loaded_assignment(costs, n_members: int) -> list[int]:
    """Assign work items to members, greedily balancing modeled cost.

    ``costs[j]`` is the modeled cost of item ``j`` (any positive unit —
    trial-chunk element volume, padded DP cells).  Items are walked in
    order and each goes to the member with the smallest accumulated load
    (ties to the lowest index), so the assignment — and every member's
    kernel stream — is a pure function of the cost vector.
    """
    if n_members < 1:
        raise ValueError("n_members must be >= 1")
    loads = [0.0] * n_members
    owners: list[int] = []
    for cost in costs:
        owner = min(range(n_members), key=lambda i: (loads[i], i))
        loads[owner] += float(cost)
        owners.append(owner)
    return owners


class DeviceGroup:
    """N simulated devices presented as one accelerator.

    Drivers that understand groups (the multidevice shingle path, the
    device aligner) schedule work onto :attr:`members` directly; everything
    else — breakdown plumbing, metrics flushing, profiling — goes through
    the same method names :class:`SimulatedDevice` exposes, so ``GpClust``
    and the CLI treat a group exactly like a device.
    """

    def __init__(self, n_devices: int, spec: DeviceSpec | None = None,
                 breakdown: TimeBreakdown | None = None,
                 obs: ObsContext | None = None,
                 topology: GroupTopology | None = None) -> None:
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        self.spec = spec or DeviceSpec()
        self.breakdown = breakdown if breakdown is not None else TimeBreakdown()
        self.topology = topology or GroupTopology()
        if obs is None:
            ambient = get_obs()
            metrics = (ambient.metrics if ambient.metrics.enabled
                       else MetricsRegistry())
            obs = ObsContext(tracer=ambient.tracer, metrics=metrics)
        elif not obs.metrics.enabled:
            obs = ObsContext(tracer=obs.tracer, metrics=MetricsRegistry())
        self.obs = obs
        self.host_link = HostLink(self.topology.host_lanes)
        self.members = [
            SimulatedDevice(self.spec, breakdown=self.breakdown, obs=obs,
                            metric_prefix=f"device{i}", proc=f"device{i}",
                            host_link=self.host_link)
            for i in range(n_devices)
        ]
        # Peer-transfer accounting (bytes over the p2p fabric).
        self._p2p_lock = threading.Lock()
        self.p2p_bytes = 0

    @property
    def n_devices(self) -> int:
        return len(self.members)

    def set_breakdown(self, breakdown: TimeBreakdown) -> None:
        """Point every member's accounting at a fresh breakdown."""
        self.breakdown = breakdown
        for member in self.members:
            member.set_breakdown(breakdown)

    def configure_launch_graph(self, mode: str) -> None:
        """Fan the launch-graph mode out to every member.

        Each member keeps its own hit/miss/capture counters (reported under
        its ``device{i}`` metric prefix); the underlying graph cache is
        shared process-wide, so a shape class captured on one member replays
        on its siblings too.
        """
        for member in self.members:
            member.configure_launch_graph(mode)

    # ------------------------------------------------------------------ #
    # Transfers
    # ------------------------------------------------------------------ #

    def peer_copy(self, src_buffer: DeviceBuffer,
                  dst: SimulatedDevice) -> DeviceBuffer:
        """Device->device copy over the peer fabric (``data_p2p`` bucket).

        No PCIe counters move — the bytes never touch the host — but the
        destination's capacity is reserved like any allocation and the
        wall/modeled seconds land in the shared breakdown's ``data_p2p``
        bucket.
        """
        t0 = time.perf_counter()
        data = src_buffer.device_view().copy()
        buf = dst.memory.adopt(data)
        t1 = time.perf_counter()
        modeled = self.topology.p2p.seconds_for(data.nbytes)
        self.breakdown.add(BUCKET_P2P, t1 - t0)
        self.breakdown.add_modeled(BUCKET_P2P, modeled)
        with self._p2p_lock:
            self.p2p_bytes += data.nbytes
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.p2p_copy", t0, t1, proc=dst.proc,
                          attrs={"bytes": data.nbytes, "modeled_s": modeled})
        return buf

    def peer_copy_into(self, src_buffer: DeviceBuffer,
                       dst_buffer: DeviceBuffer,
                       dst_member: SimulatedDevice) -> DeviceBuffer:
        """Device->device copy into an existing destination buffer.

        Same ``data_p2p`` accounting as :meth:`peer_copy`, but the
        destination capacity is already reserved — the per-round label
        redistribution of the sharded connected-components solve reuses one
        resident buffer per member instead of reallocating every round.
        """
        t0 = time.perf_counter()
        np.copyto(dst_buffer.device_view(), src_buffer.device_view())
        t1 = time.perf_counter()
        nbytes = src_buffer.nbytes
        modeled = self.topology.p2p.seconds_for(nbytes)
        self.breakdown.add(BUCKET_P2P, t1 - t0)
        self.breakdown.add_modeled(BUCKET_P2P, modeled)
        with self._p2p_lock:
            self.p2p_bytes += nbytes
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.p2p_copy", t0, t1, proc=dst_member.proc,
                          attrs={"bytes": nbytes, "modeled_s": modeled})
        return dst_buffer

    def broadcast(self, host_array: np.ndarray) -> list[DeviceBuffer]:
        """Replicate a host array onto every member.

        One PCIe upload to member 0, then peer copies fan the buffer out to
        the siblings — the cheap path a real group uses for shared inputs
        (the batch element buffer, the residue arena): the host link is
        crossed once regardless of group size.
        """
        buffers = [self.members[0].upload(host_array)]
        for member in self.members[1:]:
            buffers.append(self.peer_copy(buffers[0], member))
        return buffers

    def free(self, *buffers: DeviceBuffer) -> None:
        for buf in buffers:
            buf.free()

    # ------------------------------------------------------------------ #
    # Inter-pass aggregation + Phase III (group-aware offloads)
    # ------------------------------------------------------------------ #

    def aggregate_merge(self, parts: list, *, s: int,
                        label: str = "aggregate"):
        """Merge resident chunk partials produced across the group.

        Partials owned by siblings are gathered onto member 0 over the
        peer fabric (the whole point: per-chunk bytes cross the cheap p2p
        link, never the host link), then member 0 runs the same group-by
        merge a single device would.  ``parts`` entries are
        ``(owner_device, buffers)`` in ascending trial order.
        """
        primary = self.members[0]
        gathered = []
        for owner, bufs in parts:
            if owner is primary or owner is None:
                gathered.append((primary, bufs))
            else:
                moved = tuple(self.peer_copy(b, primary) for b in bufs)
                self.free(*bufs)
                gathered.append((primary, moved))
        return primary.aggregate_merge(gathered, s=s, label=label)

    def connected_components(self, src: np.ndarray, dst: np.ndarray,
                             n: int, label: str = "phase3") -> np.ndarray:
        """Sharded min-label connected components across the group.

        Edge blocks are sharded contiguously across members; every round,
        each member runs one hooking + pointer-jumping round over its shard
        against its local label copy, the per-member labels are min-combined
        onto member 0 over the p2p fabric, and (if anything changed) the
        combined labels are redistributed for the next round.

        Because every label array is monotonically non-increasing with
        ``labels[x] <= x`` invariant, the min-combine of member copies that
        all started the round from the same labels equals each copy exactly
        when nothing changed — so the fixpoint test on the combined array is
        exact, and the fixpoint itself is the canonical min-vertex labeling:
        bit-identical to the host ``union_edges`` and to the single-device
        solve, independent of how edges were sharded.
        """
        if self.n_devices == 1:
            return self.members[0].connected_components(src, dst, n,
                                                        label=label)
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        m = self.n_devices
        e = int(src.size)
        bounds = [e * i // m for i in range(m + 1)]
        shards = []
        for i, member in enumerate(self.members):
            lo, hi = bounds[i], bounds[i + 1]
            shards.append((member, member.upload(src[lo:hi]),
                           member.upload(dst[lo:hi])))
        label_bufs = self.broadcast(np.arange(n, dtype=np.int64))
        jump_tmps = [member.scratch.take((n,), np.int64)
                     for member in self.members]
        primary = self.members[0]
        combined = label_bufs[0].device_view()
        prev = primary.scratch.take((n,), np.int64)
        kernels_model = primary.spec.kernels
        rounds = 0
        t0 = time.perf_counter()
        while True:
            np.copyto(prev, combined)
            for i, (member, d_s, d_d) in enumerate(shards):
                member.cc_round(label_bufs[i].device_view(),
                                d_s.device_view(), d_d.device_view(),
                                jump_tmps[i])
            # Min-combine sibling label copies onto member 0's array.
            for i in range(1, m):
                tmp = self.peer_copy(label_bufs[i], primary)
                np.minimum(combined, tmp.device_view(), out=combined)
                self.free(tmp)
            combine_s = kernels_model.seconds_for("cc_jump", n * (m - 1))
            primary._record_kernel("cc_exchange_min", n * (m - 1), combine_s)
            self.breakdown.add_modeled(BUCKET_GPU, combine_s)
            rounds += 1
            if np.array_equal(combined, prev):
                break
            # Redistribute the combined labels for the next round.
            for i in range(1, m):
                self.peer_copy_into(label_bufs[0], label_bufs[i],
                                    self.members[i])
        t1 = time.perf_counter()
        self.breakdown.add(BUCKET_GPU, t1 - t0)
        metrics = self.obs.metrics
        metrics.counter("group.cc.rounds").add(rounds)
        metrics.counter("group.cc.edges").add(e)
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.record("device.cc.solve", t0, t1, proc=primary.proc,
                          attrs={"rounds": rounds, "edges": e, "n": int(n),
                                 "devices": m, "label": label})
        out = primary.download(label_bufs[0])
        for member, d_s, d_d in shards:
            self.free(d_s, d_d)
        self.free(*label_bufs)
        for member, tmp in zip(self.members, jump_tmps):
            member.scratch.give(tmp)
        primary.scratch.give(prev)
        return out

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def sync_metrics(self) -> None:
        """Flush every member's transfer/scratch gauges, plus group gauges."""
        for member in self.members:
            member.sync_metrics()
        metrics = self.obs.metrics
        metrics.gauge("group.n_devices").set(self.n_devices)
        metrics.gauge("group.p2p_bytes").set(self.p2p_bytes)
        metrics.gauge("group.host_link.peak_active").set(
            self.host_link.peak_active)
        metrics.gauge("group.host_link.contended_modeled_s").set(
            round(self.host_link.contended_s, 9))

    def modeled_kernel_seconds(self) -> list[float]:
        """Per-member modeled busy seconds (sum over kernel counters).

        The deterministic quantity the scaling benchmark reports: the
        group's modeled device time is the *maximum* over members (devices
        run concurrently in the model), so halving the max is what "2
        devices are 2x" means.
        """
        return [sum(stats["modeled_s"]
                    for stats in member.kernel_stats.values())
                for member in self.members]

    @property
    def kernel_stats(self) -> dict[str, dict]:
        """Group-wide kernel counters: member counters summed per kernel."""
        totals: dict[str, dict] = {}
        for member in self.members:
            for name, stats in member.kernel_stats.items():
                agg = totals.setdefault(
                    name, {"launches": 0, "elements": 0, "modeled_s": 0.0})
                for key, value in stats.items():
                    agg[key] += value
        return dict(sorted(totals.items()))

    def profile(self) -> dict:
        """Per-member profiles plus the group-level transfer picture.

        Carries the same ``kernels`` / ``transfers`` / ``scratch_pool`` /
        ``measured_buckets_s`` keys as a single device's profile (summed
        across members) so profile consumers treat a group like a device.
        """
        self.sync_metrics()
        members = [member.profile() for member in self.members]
        return {
            "device": f"{self.spec.name} x{self.n_devices}",
            "n_devices": self.n_devices,
            "members": members,
            "kernels": self.kernel_stats,
            "transfers": {
                key: sum(m["transfers"][key] for m in members)
                for key in ("bytes_to_device", "bytes_to_host",
                            "peak_device_bytes")
            },
            "scratch_pool": {
                key: sum(m["scratch_pool"][key] for m in members)
                for key in ("n_allocations", "n_reuses", "bytes_allocated")
            },
            "measured_buckets_s": {
                k: round(v, 6) for k, v in self.breakdown.as_row().items()},
            "p2p_bytes": self.p2p_bytes,
            "host_link": {
                "lanes": self.host_link.lanes,
                "peak_active": self.host_link.peak_active,
                "contended_modeled_s": round(self.host_link.contended_s, 9),
            },
            "modeled_kernel_seconds": [round(s, 9) for s in
                                       self.modeled_kernel_seconds()],
        }
