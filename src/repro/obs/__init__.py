"""``repro.obs`` — unified tracing + metrics for the whole pipeline.

The observability subsystem the runtime analysis is built on (the paper's
Table I component split and Figure 4 kernel decomposition, generalized):

* :class:`Tracer` / :func:`traced` — nested timed spans with attributes,
  exported as run-summary JSON (:meth:`Tracer.summary`) and Chrome Trace
  Event JSON (:mod:`repro.obs.chrome_trace`, Perfetto-loadable, with
  process-pool workers and kernel streams as separate tracks);
* :class:`MetricsRegistry` — counters/gauges/histograms (kernel launches,
  transfer bytes, scratch hits/misses, pairs kept/dropped, dedup ratios,
  peak RSS) with a single :meth:`~MetricsRegistry.snapshot`.  The device
  aggregation/Phase-III offloads add ``device.aggregate`` and
  ``device.cc.solve`` spans plus ``*.aggregate.bytes_saved``,
  ``*.cc.rounds``/``*.cc.edges`` and ``group.cc.*`` counters;
* :func:`observe` / :func:`use_obs` / :func:`get_obs` — the ambient
  context instrumented layers consult; :data:`NULL_OBS` (the default)
  makes every instrumentation site a near-free no-op.

See ``docs/OBSERVABILITY.md`` for the API walkthrough and how to read a
Perfetto trace of a Table-I run.
"""

from repro.obs.chrome_trace import (
    load_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.context import (
    NULL_OBS,
    ObsContext,
    get_obs,
    observe,
    set_obs,
    use_obs,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    peak_rss_bytes,
)
from repro.obs.summary import render_summary, summarize_trace
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    timed,
    traced,
    worker_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "ObsContext",
    "Span",
    "SpanRecord",
    "Tracer",
    "get_obs",
    "load_trace",
    "observe",
    "peak_rss_bytes",
    "render_summary",
    "set_obs",
    "summarize_trace",
    "timed",
    "to_chrome_trace",
    "traced",
    "use_obs",
    "validate_chrome_trace",
    "worker_tracer",
    "write_chrome_trace",
]
