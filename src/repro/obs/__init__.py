"""``repro.obs`` — unified tracing + metrics for the whole pipeline.

The observability subsystem the runtime analysis is built on (the paper's
Table I component split and Figure 4 kernel decomposition, generalized):

* :class:`Tracer` / :func:`traced` — nested timed spans with attributes,
  exported as run-summary JSON (:meth:`Tracer.summary`) and Chrome Trace
  Event JSON (:mod:`repro.obs.chrome_trace`, Perfetto-loadable, with
  process-pool workers and kernel streams as separate tracks);
* :class:`MetricsRegistry` — counters/gauges/histograms (kernel launches,
  transfer bytes, scratch hits/misses, pairs kept/dropped, dedup ratios,
  peak RSS) with a single :meth:`~MetricsRegistry.snapshot`.  The device
  aggregation/Phase-III offloads add ``device.aggregate`` and
  ``device.cc.solve`` spans plus ``*.aggregate.bytes_saved``,
  ``*.cc.rounds``/``*.cc.edges`` and ``group.cc.*`` counters;
* :func:`observe` / :func:`use_obs` / :func:`get_obs` — the ambient
  context instrumented layers consult; :data:`NULL_OBS` (the default)
  makes every instrumentation site a near-free no-op.

See ``docs/OBSERVABILITY.md`` for the API walkthrough and how to read a
Perfetto trace of a Table-I run.
"""

from repro.obs.analysis import (
    attribute,
    critical_path,
    diff_traces,
    render_attribution,
    render_critical_path,
    render_diff,
    trace_spans,
    track_busy_seconds,
)
from repro.obs.chrome_trace import (
    load_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.context import (
    NULL_OBS,
    ObsContext,
    get_obs,
    observe,
    set_obs,
    use_obs,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    peak_rss_bytes,
)
from repro.obs.ledger import (
    append_ledger,
    compare_rows,
    config_fingerprint,
    detect_drift,
    ledger_report,
    load_ledger,
    parse_metric_spec,
    render_deltas,
    render_ledger_report,
    rows_from,
    skipped_wall_note,
)
from repro.obs.summary import render_summary, summarize_trace
from repro.obs.tracer import (
    NULL_TRACER,
    SUMMARY_SCHEMA_VERSION,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    timed,
    traced,
    worker_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "ObsContext",
    "SUMMARY_SCHEMA_VERSION",
    "Span",
    "SpanRecord",
    "Tracer",
    "append_ledger",
    "attribute",
    "compare_rows",
    "config_fingerprint",
    "critical_path",
    "detect_drift",
    "diff_traces",
    "get_obs",
    "ledger_report",
    "load_ledger",
    "load_trace",
    "observe",
    "parse_metric_spec",
    "peak_rss_bytes",
    "render_attribution",
    "render_critical_path",
    "render_deltas",
    "render_diff",
    "render_ledger_report",
    "render_summary",
    "rows_from",
    "set_obs",
    "skipped_wall_note",
    "summarize_trace",
    "timed",
    "to_chrome_trace",
    "trace_spans",
    "traced",
    "track_busy_seconds",
    "use_obs",
    "validate_chrome_trace",
    "worker_tracer",
    "write_chrome_trace",
]
